//! Seeded fault plans and the sink-borne fault injector.
//!
//! Every engine in the workspace already reports its progress through
//! `air_trace` at named sites — phase spans (`verify.backward`,
//! `repair.forward`, `absint.star`, `corpus.<name>` …), cache traffic
//! (`cache.exec` …) and derivation rules (`lcl.iterate` …). A
//! [`FaultPlan`] keys an ordered schedule of faults on those site names,
//! and an [`InjectSink`] spliced between the tracer and its real sinks
//! fires them: the *N*-th event matching a spec's site triggers its
//! fault. Because the schedule is derived from a seed and fires on the
//! deterministic event stream of a sequential run, identical seeds
//! produce identical chaos — the property the `air chaos` contract
//! (byte-identical `--stats-json`) rests on.

use crate::SplitMix64;
use air_lattice::Governor;
use air_trace::{Event, EventKind, Sink, Tracer};
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// The trace-point sites a generated plan draws from. These are phase
/// names and event-derived site labels the engines emit today; a plan
/// spec matches by prefix, so `"repair."` covers both repair directions
/// and `"corpus."` covers every program of a sweep.
pub const SITE_VOCABULARY: &[&str] = &[
    "verify.backward",
    "verify.forward",
    "repair.forward",
    "repair.backward",
    "absint.star",
    "lcl.",
    "cegar.",
    "corpus.",
    "cache.exec",
    "cache.wlp",
    "cache.sat",
    "cache.closure",
];

/// What a firing fault does.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic on the spot; the unwind crosses the engine and is caught by
    /// the [`Supervisor`](crate::Supervisor) (or a corpus task boundary).
    Panic,
    /// Cancel the run's [`Governor`], the deterministic stand-in for a
    /// latency spike blowing the deadline: the engine stops at its next
    /// governed check and surfaces a sound partial result.
    Cancel,
    /// Sleep for the given duration — a real latency spike. Generated
    /// plans avoid it (wall-clock outcomes are nondeterministic); it
    /// exists for deadline tests that want actual elapsed time.
    Sleep(Duration),
    /// Poison shard `shard` of the named memo table by panicking while
    /// holding its write lock, via the hook installed with
    /// [`FaultInjector::on_poison`]. Exercises shard quarantine.
    PoisonShard { table: String, shard: usize },
    /// Trip the shared [`FailSwitch`]: every later write through a
    /// [`FlakyWriter`] fails with an I/O error. Exercises per-sink trace
    /// degradation.
    SinkFail,
}

impl FaultKind {
    /// Short wire name used in `fault_injected` events and reports.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Cancel => "cancel",
            FaultKind::Sleep(_) => "sleep",
            FaultKind::PoisonShard { .. } => "poison",
            FaultKind::SinkFail => "sink_fail",
        }
    }
}

/// One scheduled fault: fire `kind` on the `after`-th (0-based) event
/// whose site starts with `site`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    pub site: String,
    pub after: u64,
    pub kind: FaultKind,
}

/// A seed-derived, ordered fault schedule. Same seed ⇒ same plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    pub seed: u64,
    pub faults: Vec<FaultSpec>,
}

/// Memo-table names a generated `PoisonShard` fault can target.
const POISON_TABLES: &[&str] = &["exec", "wlp", "sat", "closure"];

impl FaultPlan {
    /// An empty plan (inject nothing).
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            faults: Vec::new(),
        }
    }

    /// Expands `seed` into 1–3 faults over [`SITE_VOCABULARY`].
    ///
    /// Only deterministic kinds are generated: `Panic`, `Cancel`,
    /// `PoisonShard` and `SinkFail`. `Sleep` is excluded because its
    /// observable outcome depends on wall-clock scheduling.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0xC0A5_F00D);
        let count = 1 + rng.below(3) as usize;
        let faults = (0..count)
            .map(|_| {
                let site = SITE_VOCABULARY[rng.below(SITE_VOCABULARY.len() as u64) as usize];
                let after = rng.below(4);
                let kind = match rng.below(5) {
                    0 | 1 => FaultKind::Panic,
                    2 => FaultKind::Cancel,
                    3 => FaultKind::PoisonShard {
                        table: POISON_TABLES[rng.below(POISON_TABLES.len() as u64) as usize]
                            .to_string(),
                        shard: rng.below(16) as usize,
                    },
                    _ => FaultKind::SinkFail,
                };
                FaultSpec {
                    site: site.to_string(),
                    after,
                    kind,
                }
            })
            .collect();
        FaultPlan { seed, faults }
    }

    /// Deterministic one-line description (for reports and logs).
    pub fn describe(&self) -> String {
        self.faults
            .iter()
            .map(|f| format!("{}@{}+{}", f.kind.name(), f.site, f.after))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// A shared flag tripped by [`FaultKind::SinkFail`]; writers built from
/// it start failing once it is set.
#[derive(Clone, Default, Debug)]
pub struct FailSwitch(Arc<AtomicBool>);

impl FailSwitch {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn trip(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    pub fn is_tripped(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A writer that fails every write once its [`FailSwitch`] trips —
/// the stand-in for a trace file on a dying disk.
pub struct FlakyWriter<W> {
    inner: W,
    switch: FailSwitch,
}

impl<W: Write> FlakyWriter<W> {
    pub fn new(inner: W, switch: FailSwitch) -> Self {
        FlakyWriter { inner, switch }
    }
}

impl<W: Write> Write for FlakyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.switch.is_tripped() {
            return Err(io::Error::other("injected trace-sink write failure"));
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.switch.is_tripped() {
            return Err(io::Error::other("injected trace-sink write failure"));
        }
        self.inner.flush()
    }
}

struct ArmedSpec {
    spec: FaultSpec,
    hits: AtomicU64,
    fired: AtomicBool,
}

type PoisonHook = Box<dyn Fn(&str, usize) + Send + Sync>;

struct InjectorInner {
    specs: Vec<ArmedSpec>,
    governor: Governor,
    sink_switch: FailSwitch,
    /// Set after construction (the tracer wraps the sink that holds this
    /// injector, so it cannot exist first). Shares the run's sequence
    /// counter, so `fault_injected` events interleave correctly.
    tracer: OnceLock<Tracer>,
    poison_hook: OnceLock<PoisonHook>,
    injected: AtomicU64,
    log: Mutex<Vec<(String, &'static str)>>,
}

/// Cheap clonable handle to an armed fault schedule; the default handle
/// is disabled and injects nothing.
#[derive(Clone, Default)]
pub struct FaultInjector {
    inner: Option<Arc<InjectorInner>>,
}

impl FaultInjector {
    /// A handle that never fires (the production configuration).
    pub fn disabled() -> Self {
        FaultInjector { inner: None }
    }

    /// Arms `plan`. `governor` is cancelled by [`FaultKind::Cancel`]
    /// faults and `sink_switch` is tripped by [`FaultKind::SinkFail`].
    pub fn armed(plan: &FaultPlan, governor: Governor, sink_switch: FailSwitch) -> Self {
        FaultInjector {
            inner: Some(Arc::new(InjectorInner {
                specs: plan
                    .faults
                    .iter()
                    .map(|spec| ArmedSpec {
                        spec: spec.clone(),
                        hits: AtomicU64::new(0),
                        fired: AtomicBool::new(false),
                    })
                    .collect(),
                governor,
                sink_switch,
                tracer: OnceLock::new(),
                poison_hook: OnceLock::new(),
                injected: AtomicU64::new(0),
                log: Mutex::new(Vec::new()),
            })),
        }
    }

    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// Connects the run's tracer so fired faults emit `fault_injected`
    /// events. Call once, after the tracer exists; later calls are no-ops.
    pub fn set_tracer(&self, tracer: &Tracer) {
        if let Some(inner) = &self.inner {
            let _ = inner.tracer.set(tracer.clone());
        }
    }

    /// Installs the callback a [`FaultKind::PoisonShard`] fault invokes
    /// (typically `SemCache::chaos_poison_shard`). One-shot.
    pub fn on_poison(&self, hook: impl Fn(&str, usize) + Send + Sync + 'static) {
        if let Some(inner) = &self.inner {
            let _ = inner.poison_hook.set(Box::new(hook));
        }
    }

    /// Total faults fired so far.
    pub fn injected(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.injected.load(Ordering::Relaxed))
    }

    /// `(site, kind)` pairs of fired faults, in firing order.
    pub fn fired_log(&self) -> Vec<(String, &'static str)> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            i.log.lock().unwrap_or_else(|p| p.into_inner()).clone()
        })
    }

    /// Re-arms every spec (hit counters and fired flags reset), so one
    /// plan can run against several programs in sequence.
    pub fn reset(&self) {
        if let Some(inner) = &self.inner {
            for armed in &inner.specs {
                armed.hits.store(0, Ordering::Relaxed);
                armed.fired.store(false, Ordering::Relaxed);
            }
        }
    }

    /// Offers one trace event to the schedule; fires at most one fault.
    /// Called by [`InjectSink`]; public so non-sink call sites (e.g. a
    /// test driving the injector directly) can participate.
    pub fn observe(&self, event: &Event) {
        let Some(inner) = &self.inner else { return };
        let Some(site) = site_of(&event.kind) else {
            return;
        };
        for armed in &inner.specs {
            if armed.fired.load(Ordering::Relaxed) || !site.starts_with(&armed.spec.site) {
                continue;
            }
            let hit = armed.hits.fetch_add(1, Ordering::Relaxed);
            if hit < armed.spec.after {
                continue;
            }
            if armed.fired.swap(true, Ordering::Relaxed) {
                continue;
            }
            inner.fire(&site, &armed.spec.kind);
            // One fault per observed event keeps schedules readable.
            return;
        }
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("armed", &self.is_armed())
            .field("injected", &self.injected())
            .finish()
    }
}

impl InjectorInner {
    fn fire(&self, site: &str, kind: &FaultKind) {
        self.injected.fetch_add(1, Ordering::Relaxed);
        self.log
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push((site.to_string(), kind.name()));
        if let Some(tracer) = self.tracer.get() {
            tracer.emit_with(|| EventKind::FaultInjected {
                site: site.to_string(),
                fault: kind.name().to_string(),
            });
        }
        match kind {
            FaultKind::Panic => panic!("fault injected: panic at {site}"),
            FaultKind::Cancel => self.governor.cancel(),
            FaultKind::Sleep(d) => std::thread::sleep(*d),
            FaultKind::PoisonShard { table, shard } => {
                if let Some(hook) = self.poison_hook.get() {
                    hook(table, *shard);
                }
            }
            FaultKind::SinkFail => self.sink_switch.trip(),
        }
    }
}

/// Maps an event to the site label fault specs match against. Events
/// that carry no site — and all resilience events, to keep the injector
/// from feeding on its own output — return `None`.
fn site_of(kind: &EventKind) -> Option<String> {
    match kind {
        EventKind::SpanEnter { phase } => Some(phase.clone()),
        EventKind::CacheHit { table }
        | EventKind::CacheMiss { table }
        | EventKind::CacheBypass { table } => Some(format!("cache.{table}")),
        EventKind::LclRule { rule } => Some(format!("lcl.{rule}")),
        EventKind::Widening { site } => Some(format!("widening.{site}")),
        EventKind::CegarIteration { .. } => Some("cegar.iteration".to_string()),
        EventKind::CegarRefinement { .. } => Some("cegar.refinement".to_string()),
        EventKind::CegarSplit { .. } => Some("cegar.split".to_string()),
        EventKind::Incompleteness { .. } => Some("repair.incompleteness".to_string()),
        _ => None,
    }
}

/// A [`Sink`] adapter that offers every event to a [`FaultInjector`]
/// before forwarding it. Splice it between a tracer and its real sinks:
///
/// ```text
/// Tracer → InjectSink{ injector } → MultiSink → [jsonl, profiler, …]
/// ```
pub struct InjectSink {
    inner: Arc<dyn Sink>,
    injector: FaultInjector,
}

impl InjectSink {
    pub fn new(inner: Arc<dyn Sink>, injector: FaultInjector) -> Self {
        InjectSink { inner, injector }
    }
}

impl Sink for InjectSink {
    fn record(&self, event: &Event) {
        // Forward first: if the fault panics, the event that triggered it
        // is already on record — the trace tells the whole story.
        self.inner.record(event);
        self.injector.observe(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use air_trace::MemorySink;

    fn span(seq: u64, phase: &str) -> Event {
        Event {
            seq,
            t_ns: 0,
            kind: EventKind::SpanEnter {
                phase: phase.into(),
            },
        }
    }

    #[test]
    fn plans_are_deterministic_and_nonempty() {
        for seed in 0..64 {
            let a = FaultPlan::from_seed(seed);
            let b = FaultPlan::from_seed(seed);
            assert_eq!(a, b, "seed {seed}");
            assert!(!a.faults.is_empty() && a.faults.len() <= 3);
            for f in &a.faults {
                assert_ne!(f.kind.name(), "sleep", "generated plans stay deterministic");
            }
        }
        assert_ne!(
            FaultPlan::from_seed(1).describe(),
            FaultPlan::from_seed(2).describe(),
            "different seeds give different schedules"
        );
    }

    #[test]
    fn panic_fault_fires_on_the_nth_site_hit() {
        let plan = FaultPlan {
            seed: 0,
            faults: vec![FaultSpec {
                site: "repair.".into(),
                after: 1,
                kind: FaultKind::Panic,
            }],
        };
        let injector = FaultInjector::armed(&plan, Governor::unlimited(), FailSwitch::new());
        injector.observe(&span(0, "verify.backward")); // no match
        injector.observe(&span(1, "repair.forward")); // hit 0: below threshold
        assert_eq!(injector.injected(), 0);
        let i2 = injector.clone();
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            i2.observe(&span(2, "repair.forward")); // hit 1: fires
        }));
        assert!(unwound.is_err(), "the panic fault must unwind");
        assert_eq!(injector.injected(), 1);
        assert_eq!(
            injector.fired_log(),
            vec![("repair.forward".into(), "panic")]
        );
        // One-shot: the spec never fires again.
        injector.observe(&span(3, "repair.forward"));
        assert_eq!(injector.injected(), 1);
        // …until reset re-arms it.
        injector.reset();
        injector.observe(&span(4, "repair.forward"));
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            injector.observe(&span(5, "repair.forward"));
        }));
        assert_eq!(injector.injected(), 2);
    }

    #[test]
    fn cancel_fault_cancels_the_governor() {
        let gov = Governor::cancellable();
        let plan = FaultPlan {
            seed: 0,
            faults: vec![FaultSpec {
                site: "absint.star".into(),
                after: 0,
                kind: FaultKind::Cancel,
            }],
        };
        let injector = FaultInjector::armed(&plan, gov.clone(), FailSwitch::new());
        assert!(!gov.is_cancelled());
        injector.observe(&span(0, "absint.star"));
        assert!(gov.is_cancelled(), "cancel fault must cancel the governor");
    }

    #[test]
    fn sink_fail_fault_trips_the_switch_and_flaky_writer_fails() {
        let switch = FailSwitch::new();
        let plan = FaultPlan {
            seed: 0,
            faults: vec![FaultSpec {
                site: "cache.exec".into(),
                after: 0,
                kind: FaultKind::SinkFail,
            }],
        };
        let injector = FaultInjector::armed(&plan, Governor::unlimited(), switch.clone());
        let mut w = FlakyWriter::new(Vec::new(), switch.clone());
        assert!(w.write(b"ok").is_ok());
        injector.observe(&Event {
            seq: 0,
            t_ns: 0,
            kind: EventKind::CacheHit { table: "exec" },
        });
        assert!(switch.is_tripped());
        assert!(w.write(b"fails").is_err());
        assert!(w.flush().is_err());
    }

    #[test]
    fn poison_fault_invokes_the_hook() {
        let plan = FaultPlan {
            seed: 0,
            faults: vec![FaultSpec {
                site: "verify.".into(),
                after: 0,
                kind: FaultKind::PoisonShard {
                    table: "wlp".into(),
                    shard: 5,
                },
            }],
        };
        let injector = FaultInjector::armed(&plan, Governor::unlimited(), FailSwitch::new());
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        injector.on_poison(move |table, shard| {
            sink.lock().unwrap().push((table.to_string(), shard));
        });
        injector.observe(&span(0, "verify.backward"));
        assert_eq!(*seen.lock().unwrap(), vec![("wlp".to_string(), 5)]);
    }

    #[test]
    fn inject_sink_forwards_then_fires_and_emits_fault_events() {
        let memory = Arc::new(MemorySink::new());
        let plan = FaultPlan {
            seed: 0,
            faults: vec![FaultSpec {
                site: "repair.forward".into(),
                after: 0,
                kind: FaultKind::Panic,
            }],
        };
        let injector = FaultInjector::armed(&plan, Governor::unlimited(), FailSwitch::new());
        let tracer = Tracer::new(Arc::new(InjectSink::new(memory.clone(), injector.clone())));
        injector.set_tracer(&tracer);
        tracer.emit(EventKind::Verdict {
            phase: "warmup".into(),
            verdict: "proved".into(),
        });
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _span = tracer.span(|| "repair.forward".into());
        }));
        assert!(unwound.is_err());
        let kinds: Vec<&'static str> = memory.drain().iter().map(|e| e.kind.kind_name()).collect();
        // The triggering span_enter is on record, then the fault event,
        // then the panic unwound (no span_exit).
        assert_eq!(kinds, vec!["verdict", "span_enter", "fault_injected"]);
    }

    #[test]
    fn disabled_injector_is_inert() {
        let injector = FaultInjector::disabled();
        injector.observe(&span(0, "repair.forward"));
        assert_eq!(injector.injected(), 0);
        assert!(!injector.is_armed());
    }
}
