//! Crash-safe checkpoints: atomic write-tmp-rename JSON snapshots.
//!
//! A sweep that can be `SIGKILL`ed at any instruction must never leave a
//! half-written checkpoint behind, or resume would corrupt the very run
//! it was meant to save. The discipline here is the classic one: write
//! the full contents to `<path>.tmp`, `fsync`, then `rename` over the
//! destination, then `fsync` the parent directory — readers observe
//! either the old snapshot or the new one, never a torn file, and the
//! rename itself survives power loss.

use air_trace::{EventKind, Tracer};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Atomically replaces `path` with `contents` (write-tmp-rename, with an
/// `fsync` of the temporary file before the rename and of the parent
/// directory after it).
///
/// Syncing the file alone is not enough: the `rename` lives in the
/// directory, and until the directory entry itself is durable a power
/// loss can roll the whole checkpoint back to *absent* — exactly the
/// state resume must never see after it reported a checkpoint written.
/// The directory sync is best-effort on platforms where directories
/// cannot be opened for syncing.
///
/// # Errors
///
/// Any I/O failure creating, writing, syncing or renaming the file.
pub fn atomic_write(path: &Path, contents: &str) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(contents.as_bytes())?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    sync_parent_dir(path);
    Ok(())
}

/// Best-effort `fsync` of `path`'s parent directory, making a completed
/// `rename` durable. Failures are swallowed: some filesystems (and
/// non-Unix platforms) refuse to open or sync directories, and an
/// already-renamed checkpoint is still crash-*consistent* without the
/// sync — just not yet crash-*durable*.
fn sync_parent_dir(path: &Path) {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    if let Ok(dir) = fs::File::open(parent) {
        let _ = dir.sync_all();
    }
}

/// Writes periodic checkpoints for a sweep, emitting `checkpoint_written`
/// trace events. The render closure only runs when a checkpoint is due,
/// so the serialization cost is paid once per `every` items.
pub struct Checkpointer {
    path: PathBuf,
    every: u64,
    tracer: Tracer,
    written: u64,
}

impl Checkpointer {
    /// Checkpoints to `path` every `every` completed items (`every` is
    /// clamped to ≥ 1).
    pub fn new(path: impl Into<PathBuf>, every: u64, tracer: Tracer) -> Self {
        Checkpointer {
            path: path.into(),
            every: every.max(1),
            tracer,
            written: 0,
        }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Checkpoints written so far (via [`maybe_write`](Self::maybe_write)
    /// and [`write_now`](Self::write_now)).
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Writes a checkpoint if `items_done` is on the cadence. Returns
    /// whether one was written.
    ///
    /// # Errors
    ///
    /// Propagates [`atomic_write`] failures.
    pub fn maybe_write(
        &mut self,
        items_done: u64,
        render: impl FnOnce() -> String,
    ) -> io::Result<bool> {
        if items_done == 0 || !items_done.is_multiple_of(self.every) {
            return Ok(false);
        }
        self.write_now(items_done, render)?;
        Ok(true)
    }

    /// Writes a checkpoint unconditionally.
    ///
    /// # Errors
    ///
    /// Propagates [`atomic_write`] failures.
    pub fn write_now(
        &mut self,
        items_done: u64,
        render: impl FnOnce() -> String,
    ) -> io::Result<()> {
        atomic_write(&self.path, &render())?;
        self.written += 1;
        self.tracer.emit_with(|| EventKind::CheckpointWritten {
            path: self.path.display().to_string(),
            items: items_done,
        });
        Ok(())
    }

    /// Removes the checkpoint file (after a sweep completes cleanly, its
    /// checkpoint is stale state that must not leak into the next run).
    pub fn remove(&self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Reads a checkpoint, distinguishing "absent" (fresh start) from a real
/// I/O failure.
///
/// # Errors
///
/// Any failure other than [`io::ErrorKind::NotFound`].
pub fn load(path: &Path) -> io::Result<Option<String>> {
    match fs::read_to_string(path) {
        Ok(text) => Ok(Some(text)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use air_trace::{MemorySink, Tracer};
    use std::sync::Arc;

    fn tmp_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "air-ckpt-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_replaces_whole_files_and_leaves_no_tmp() {
        let dir = tmp_dir();
        let path = dir.join("ck.json");
        atomic_write(&path, "{\"v\":1}").unwrap();
        atomic_write(&path, "{\"v\":2}").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"v\":2}");
        assert!(!dir.join("ck.json.tmp").exists(), "tmp file was renamed");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_distinguishes_absent_from_present() {
        let dir = tmp_dir();
        let path = dir.join("none.json");
        assert_eq!(load(&path).unwrap(), None);
        atomic_write(&path, "x").unwrap();
        assert_eq!(load(&path).unwrap().as_deref(), Some("x"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpointer_respects_cadence_and_traces() {
        let dir = tmp_dir();
        let path = dir.join("sweep.json");
        let sink = Arc::new(MemorySink::new());
        let mut ck = Checkpointer::new(&path, 3, Tracer::new(sink.clone()));
        let mut renders = 0;
        for done in 1..=7u64 {
            let wrote = ck
                .maybe_write(done, || {
                    renders += 1;
                    format!("{{\"done\":{done}}}")
                })
                .unwrap();
            assert_eq!(wrote, done % 3 == 0, "cadence at {done}");
        }
        assert_eq!(renders, 2, "render runs only when due");
        assert_eq!(ck.written(), 2);
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"done\":6}");
        let items: Vec<u64> = sink
            .drain()
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::CheckpointWritten { items, .. } => Some(*items),
                _ => None,
            })
            .collect();
        assert_eq!(items, vec![3, 6]);
        ck.remove();
        assert!(!path.exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
