//! Deterministic fault injection, supervision and crash-safe checkpoints.
//!
//! The paper's repair theorems (Thm 7.1 / Thm 7.6) guarantee that *any
//! prefix* of a repair derivation is a sound over-approximation, which
//! means a correctly built engine can lose a worker, a cache shard or an
//! observer mid-flight and still return a usable, provably sound partial
//! result. This crate exists to make that claim falsifiable:
//!
//! - [`FaultPlan`] — a seed expanded into an ordered, deterministic fault
//!   schedule keyed on the engine's existing trace-point sites
//!   (`verify.backward`, `repair.forward`, `cache.exec`, …). The same
//!   seed always produces the same plan, so every chaos run replays.
//! - [`FaultInjector`] / [`InjectSink`] — the delivery mechanism. The
//!   injector rides the [`air_trace::Sink`] chain: every engine already
//!   emits events at exactly the sites a plan names, so wrapping the
//!   sink injects panics, governor cancellations, latency spikes, cache
//!   shard poisoning and trace-sink write failures at those sites with
//!   no new plumbing through the engines.
//! - [`Supervisor`] — wraps tasks in `catch_unwind` with bounded
//!   deterministic retry, emitting `task_retried` events. One-shot
//!   faults make retries converge; persistent panics surface as a
//!   structured [`TaskFailure`], never an abort.
//! - [`checkpoint`] — atomic (write-tmp-rename) JSON checkpoints plus a
//!   cadence helper, so corpus and fuzz sweeps survive `SIGKILL` and
//!   resume to byte-identical reports.
//!
//! Recovery of poisoned cache shards lives with the shards themselves
//! (see `air_lattice::MemoTable`); this crate supplies the faults that
//! poison them and the harness that proves the quarantine path works.

#![forbid(unsafe_code)]

pub mod checkpoint;
mod fault;
mod pool;
mod supervisor;

pub use checkpoint::{atomic_write, Checkpointer};
pub use fault::{
    FailSwitch, FaultInjector, FaultKind, FaultPlan, FaultSpec, FlakyWriter, InjectSink,
    SITE_VOCABULARY,
};
pub use pool::{PoolStats, WorkerPool};
pub use supervisor::{
    install_quiet_fault_hook, panic_message, RetryPolicy, Supervisor, TaskFailure,
};

/// SplitMix64: the tiny, well-distributed PRNG used to expand a plan
/// seed into a fault schedule. Deterministic and dependency-free.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `0..bound` (`bound` must be nonzero).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_moves() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }
}
