//! Trace → metrics bridge: one instrumentation layer, two consumers.
//!
//! The engines are already instrumented with RAII spans and typed cache
//! events for single-run tracing (PR 2). [`MetricsBridge`] is a [`Sink`]
//! that folds the *aggregatable* subset of that stream into an
//! `air_metrics::MetricsRegistry`, so a long-running daemon gets
//! per-phase latency histograms and cache/fault counters without a
//! second set of probes in the hot paths. Tee it next to any other sink
//! with [`crate::Tracer::tee`].
//!
//! | trace event        | metric series                                          |
//! |--------------------|--------------------------------------------------------|
//! | `span_exit`        | `air_phase_duration_ns{phase}` histogram               |
//! | `cache_hit`        | `air_cache_events_total{table, event="hit"}`           |
//! | `cache_miss`       | `air_cache_events_total{table, event="miss"}`          |
//! | `cache_bypass`     | `air_cache_events_total{table, event="bypass"}`        |
//! | `budget_exhausted` | `air_budget_exhausted_total{phase, reason}`            |
//! | `task_retried`     | `air_task_retries_total{site}`                         |
//! | `shard_quarantined`| `air_shard_quarantines_total{table}`                   |
//!
//! Everything else (derivation rules, verdicts, request lifecycle —
//! which the serve engine meters directly with tenant labels the events
//! do not carry) passes through untouched. The bridge never panics and
//! never blocks beyond the registry's short registration lock, so it is
//! safe under `MultiSink`'s panic quarantine and in worker threads.
//!
//! ## Hot-path cost
//!
//! A warm `verify` request emits ~30 cache events plus a handful of span
//! pairs, so the bridge is the single most-executed metrics consumer in
//! the daemon and its per-event cost is what the `metrics_overhead`
//! section of `BENCH_serve.json` measures. Two things keep it cheap:
//!
//! * Series handles are memoized. The cache tables form a closed set
//!   (`exec`/`wlp`/`sat`), so their counters live in a fixed
//!   `OnceLock` grid; phase histograms are memoized in a small
//!   read-mostly list. Either way the steady state is one atomic RMW
//!   per event instead of a registry lookup (name hashing + lock).
//! * The bridge reports [`Sink::wants_timestamps`]` == false`: it only
//!   aggregates, so when it is the *sole* sink the tracer skips the
//!   clock read and sequence stamp entirely (span durations are
//!   unaffected — spans carry their own start instant).

use crate::event::{Event, EventKind};
use crate::tracer::Sink;
use air_metrics::{CounterHandle, HistogramHandle, MetricsRegistry};
use std::sync::{OnceLock, PoisonError, RwLock};

/// Phase-duration histogram series fed by every `span_exit`.
pub const PHASE_DURATION_METRIC: &str = "air_phase_duration_ns";

/// The closed set of cache tables instrumented by the engines; events
/// naming any other table fall back to a plain registry lookup.
const CACHE_TABLES: [&str; 3] = ["exec", "wlp", "sat"];
const CACHE_EVENTS: [&str; 3] = ["hit", "miss", "bypass"];

/// Most phase names the engines emit; beyond this the memo stops
/// growing and stragglers pay the registry-lookup path (still correct).
const PHASE_MEMO_CAP: usize = 64;

/// A [`Sink`] that aggregates trace events into metrics; see module docs.
pub struct MetricsBridge {
    registry: MetricsRegistry,
    /// `[table][event]` counter handles for the known cache tables.
    cache_counters: [[OnceLock<CounterHandle>; 3]; 3],
    /// Phase-name → histogram handle memo, linear-scanned under a read
    /// lock (the phase set is small and reads vastly outnumber inserts).
    phase_histograms: RwLock<Vec<(String, HistogramHandle)>>,
}

impl MetricsBridge {
    pub fn new(registry: MetricsRegistry) -> Self {
        Self {
            registry,
            cache_counters: Default::default(),
            phase_histograms: RwLock::new(Vec::new()),
        }
    }

    fn cache_event(&self, table: &str, event_idx: usize) {
        match CACHE_TABLES.iter().position(|t| *t == table) {
            Some(t) => self.cache_counters[t][event_idx]
                .get_or_init(|| {
                    self.registry.counter_handle(
                        "air_cache_events_total",
                        &[("table", table), ("event", CACHE_EVENTS[event_idx])],
                    )
                })
                .add(1),
            None => self.registry.inc(
                "air_cache_events_total",
                &[("table", table), ("event", CACHE_EVENTS[event_idx])],
            ),
        }
    }

    fn phase_observe(&self, phase: &str, duration_ns: u64) {
        {
            let memo = self
                .phase_histograms
                .read()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some((_, h)) = memo.iter().find(|(p, _)| p == phase) {
                h.observe(duration_ns);
                return;
            }
        }
        let h = self
            .registry
            .histogram_handle(PHASE_DURATION_METRIC, &[("phase", phase)]);
        h.observe(duration_ns);
        let mut memo = self
            .phase_histograms
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        if memo.len() < PHASE_MEMO_CAP && !memo.iter().any(|(p, _)| p == phase) {
            memo.push((phase.to_string(), h));
        }
    }
}

impl Sink for MetricsBridge {
    /// The bridge only aggregates; it never reads `seq` or `t_ns`.
    fn wants_timestamps(&self) -> bool {
        false
    }

    /// Detail events (rules, shells, witnesses, verdicts) fall through
    /// the `match` below — declining them lets bridge-only tracers skip
    /// rendering their payloads.
    fn wants_detail(&self) -> bool {
        false
    }

    fn record(&self, event: &Event) {
        match &event.kind {
            EventKind::SpanExit { phase, duration_ns } => {
                self.phase_observe(phase, *duration_ns);
            }
            EventKind::CacheHit { table } => self.cache_event(table, 0),
            EventKind::CacheMiss { table } => self.cache_event(table, 1),
            EventKind::CacheBypass { table } => self.cache_event(table, 2),
            EventKind::BudgetExhausted { phase, reason, .. } => {
                self.registry.inc(
                    "air_budget_exhausted_total",
                    &[("phase", phase), ("reason", reason)],
                );
            }
            EventKind::TaskRetried { site, .. } => {
                self.registry
                    .inc("air_task_retries_total", &[("site", site)]);
            }
            EventKind::ShardQuarantined { table, .. } => {
                self.registry
                    .inc("air_shard_quarantines_total", &[("table", table)]);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;
    use std::sync::Arc;

    #[test]
    fn span_exits_feed_phase_histograms() {
        let registry = MetricsRegistry::new();
        let t = Tracer::new(Arc::new(MetricsBridge::new(registry.clone())));
        {
            let _s = t.span(|| "verify.backward".into());
        }
        {
            let _s = t.span(|| "verify.backward".into());
        }
        let snap = registry.snapshot();
        let h = snap
            .histogram(PHASE_DURATION_METRIC, &[("phase", "verify.backward")])
            .expect("phase histogram registered");
        assert_eq!(h.count, 2);
        assert_eq!(h.buckets.iter().map(|b| b.count).sum::<u64>(), 2);
    }

    #[test]
    fn cache_and_budget_events_become_counters() {
        let registry = MetricsRegistry::new();
        let t = Tracer::new(Arc::new(MetricsBridge::new(registry.clone())));
        t.emit(EventKind::CacheHit { table: "exec" });
        t.emit(EventKind::CacheHit { table: "exec" });
        t.emit(EventKind::CacheMiss { table: "exec" });
        t.emit(EventKind::CacheBypass { table: "sem" });
        t.emit(EventKind::BudgetExhausted {
            phase: "repair.backward".into(),
            spent: 100,
            reason: "fuel".into(),
        });
        let snap = registry.snapshot();
        let c = |labels: &[(&str, &str)]| snap.counter("air_cache_events_total", labels);
        assert_eq!(c(&[("table", "exec"), ("event", "hit")]), Some(2));
        assert_eq!(c(&[("table", "exec"), ("event", "miss")]), Some(1));
        assert_eq!(c(&[("table", "sem"), ("event", "bypass")]), Some(1));
        assert_eq!(
            snap.counter(
                "air_budget_exhausted_total",
                &[("phase", "repair.backward"), ("reason", "fuel")]
            ),
            Some(1)
        );
    }

    #[test]
    fn unrelated_events_leave_the_registry_untouched() {
        let registry = MetricsRegistry::new();
        let t = Tracer::new(Arc::new(MetricsBridge::new(registry.clone())));
        t.emit(EventKind::LclRule {
            rule: "iterate".into(),
        });
        t.emit(EventKind::Verdict {
            phase: "verify".into(),
            verdict: "proved".into(),
        });
        let snap = registry.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
    }
}
