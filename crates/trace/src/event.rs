//! Typed trace events.
//!
//! Every observable step of the pipeline — repair iterations, derivation
//! rules, CEGAR refinements, cache traffic — is reported as one
//! [`Event`]: a monotone sequence number, a nanosecond timestamp relative
//! to the tracer's epoch, and a typed [`EventKind`] payload. The JSONL
//! wire format is one object per line with a `kind` discriminant; the
//! set of kinds is closed (see [`KNOWN_KINDS`]) and validated in CI.

use crate::json::escape_str;
use std::fmt::Write as _;

/// One trace record. `seq` orders events within a tracer; `t_ns` is the
/// time since the tracer was created.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub seq: u64,
    pub t_ns: u64,
    pub kind: EventKind,
}

/// The typed payload of a trace event.
///
/// Kinds map to paper artifacts: `Incompleteness` witnesses a violation
/// of local completeness (Def. 4.1), `ShellPoint` records a pointed-shell
/// addition (Thm. 4.9 / Thm. 4.11), `Widening` a pointed-widening
/// application, and `CegarSplit` a partition refinement (Thm. 6.2 / 6.4).
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A named phase began (RAII: paired with `SpanExit`).
    SpanEnter { phase: String },
    /// A named phase ended; `duration_ns` is its wall-clock time.
    SpanExit { phase: String, duration_ns: u64 },
    /// Local incompleteness detected on expression `exp` (Def. 4.1).
    Incompleteness { exp: String, input_size: usize },
    /// A shell point was added to the domain by `rule` (Thm. 4.9/4.11).
    ShellPoint {
        rule: String,
        exp: String,
        point_size: usize,
    },
    /// Pointed widening applied at `site` (backward repair / absint star).
    Widening { site: String },
    /// An LCL_A derivation rule fired (transfer/seq/join/rec/iterate/relax).
    LclRule { rule: String },
    /// One CEGAR iteration over `blocks` partition blocks.
    CegarIteration { iteration: usize, blocks: usize },
    /// A spurious counterexample triggered a refinement.
    CegarRefinement { iteration: usize },
    /// A refinement split blocks (Thm. 6.2/6.4); `blocks` is the new total.
    CegarSplit {
        heuristic: String,
        splits: usize,
        blocks: usize,
    },
    /// Memo-table hit in `table` (exec/wlp/sat/closure/...).
    CacheHit { table: &'static str },
    /// Memo-table miss in `table`.
    CacheMiss { table: &'static str },
    /// A memoization layer was deliberately skipped (e.g. small universe).
    CacheBypass { table: &'static str },
    /// A named monotone counter increment.
    Counter { name: String, delta: u64 },
    /// Final verdict of a phase (`proved`, `refuted`, `true_alarm`, ...).
    Verdict { phase: String, verdict: String },
    /// A resource budget ran out in `phase` after `spent` governed ticks;
    /// `reason` is `fuel`, `deadline` or `cancelled`. The engine returns
    /// its best partial result instead of hanging.
    BudgetExhausted {
        phase: String,
        spent: u64,
        reason: String,
    },
    /// A unit of work was skipped because the run was cancelled (e.g. a
    /// corpus program never started after a sibling exhausted the budget).
    Cancelled { phase: String },
    /// One fuzz case finished: how many oracle violations and pairwise
    /// configuration disagreements it produced (both 0 on a pass).
    FuzzCase {
        seed: u64,
        violations: u64,
        disagreements: u64,
    },
    /// The shrinker minimized a failing fuzz case from `before` to
    /// `after` basic commands.
    FuzzShrink { seed: u64, before: u64, after: u64 },
    /// The fault injector fired a planned fault at a trace-point `site`;
    /// `fault` names the kind (`panic`, `cancel`, `sleep`, `poison`,
    /// `sink_fail`). Soundness of whatever survives is Thm 7.1/7.6.
    FaultInjected { site: String, fault: String },
    /// The supervisor retried a failed (panicked) task; `attempt` is the
    /// 1-based retry number.
    TaskRetried { site: String, attempt: u64 },
    /// A memo-table shard poisoned by a panicking writer was quarantined:
    /// cleared and rebuilt, falling back to uncached evaluation.
    ShardQuarantined { table: &'static str, shard: u64 },
    /// A crash-safe checkpoint was atomically written after `items`
    /// completed units of work.
    CheckpointWritten { path: String, items: u64 },
    /// The serve daemon accepted a request into the admission queue.
    /// `job` is the request kind (`verify`, `analyze`, ...); the field is
    /// not called `kind` because that name is the envelope discriminant.
    RequestReceived {
        id: String,
        job: String,
        tenant: String,
    },
    /// A served request finished; `status` is `ok`, `usage`, `budget`,
    /// `internal` or `cancelled`, and `duration_ns` spans admission to
    /// response (queueing included).
    RequestCompleted {
        id: String,
        status: String,
        duration_ns: u64,
    },
    /// The distributed coordinator spawned a worker process into `shard`
    /// (0-based slot); `pid` is the OS process id.
    WorkerSpawned { shard: u64, pid: u64 },
    /// A lease — the half-open item range `[lo, hi)` of the campaign's
    /// deterministic seed/program space — was issued to `shard`.
    LeaseIssued {
        lease: u64,
        shard: u64,
        lo: u64,
        hi: u64,
    },
    /// A straggler's unfinished tail was resplit: the old lease now ends
    /// at `at` on `from_shard`, and `[at, hi)` was reissued to `to_shard`.
    LeaseStolen {
        lease: u64,
        from_shard: u64,
        to_shard: u64,
        at: u64,
    },
    /// A worker died or hung (`reason` is `exit`, `killed`, `hang` or
    /// `protocol`); its unfinished lease range is reissued from the
    /// shard's last crash-safe checkpoint.
    WorkerLost { shard: u64, reason: String },
    /// The supervisor restarted a lost worker in `shard`; `attempt` is
    /// the 1-based restart number for that slot.
    WorkerRestarted { shard: u64, attempt: u64 },
}

/// Every wire-format `kind` value the engine can emit, in one place so
/// the schema validator and docs cannot drift from the implementation.
pub const KNOWN_KINDS: &[&str] = &[
    "span_enter",
    "span_exit",
    "incompleteness",
    "shell_point",
    "widening",
    "lcl_rule",
    "cegar_iteration",
    "cegar_refinement",
    "cegar_split",
    "cache_hit",
    "cache_miss",
    "cache_bypass",
    "counter",
    "verdict",
    "budget_exhausted",
    "cancelled",
    "fuzz_case",
    "fuzz_shrink",
    "fault_injected",
    "task_retried",
    "shard_quarantined",
    "checkpoint_written",
    "request_received",
    "request_completed",
    "worker_spawned",
    "lease_issued",
    "lease_stolen",
    "worker_lost",
    "worker_restarted",
];

impl EventKind {
    /// The JSONL `kind` discriminant.
    pub fn kind_name(&self) -> &'static str {
        match self {
            EventKind::SpanEnter { .. } => "span_enter",
            EventKind::SpanExit { .. } => "span_exit",
            EventKind::Incompleteness { .. } => "incompleteness",
            EventKind::ShellPoint { .. } => "shell_point",
            EventKind::Widening { .. } => "widening",
            EventKind::LclRule { .. } => "lcl_rule",
            EventKind::CegarIteration { .. } => "cegar_iteration",
            EventKind::CegarRefinement { .. } => "cegar_refinement",
            EventKind::CegarSplit { .. } => "cegar_split",
            EventKind::CacheHit { .. } => "cache_hit",
            EventKind::CacheMiss { .. } => "cache_miss",
            EventKind::CacheBypass { .. } => "cache_bypass",
            EventKind::Counter { .. } => "counter",
            EventKind::Verdict { .. } => "verdict",
            EventKind::BudgetExhausted { .. } => "budget_exhausted",
            EventKind::Cancelled { .. } => "cancelled",
            EventKind::FuzzCase { .. } => "fuzz_case",
            EventKind::FuzzShrink { .. } => "fuzz_shrink",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::TaskRetried { .. } => "task_retried",
            EventKind::ShardQuarantined { .. } => "shard_quarantined",
            EventKind::CheckpointWritten { .. } => "checkpoint_written",
            EventKind::RequestReceived { .. } => "request_received",
            EventKind::RequestCompleted { .. } => "request_completed",
            EventKind::WorkerSpawned { .. } => "worker_spawned",
            EventKind::LeaseIssued { .. } => "lease_issued",
            EventKind::LeaseStolen { .. } => "lease_stolen",
            EventKind::WorkerLost { .. } => "worker_lost",
            EventKind::WorkerRestarted { .. } => "worker_restarted",
        }
    }

    /// Cache traffic is telemetry about *how* a result was obtained, not
    /// *what* was computed: it legitimately differs between cached and
    /// uncached runs of the same program. Determinism tests drop it.
    pub fn is_cache_telemetry(&self) -> bool {
        matches!(
            self,
            EventKind::CacheHit { .. }
                | EventKind::CacheMiss { .. }
                | EventKind::CacheBypass { .. }
        )
    }
}

impl Event {
    /// Serialize as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"seq\":{},\"t_ns\":{},\"kind\":",
            self.seq, self.t_ns
        );
        escape_str(self.kind.kind_name(), out);
        match &self.kind {
            EventKind::SpanEnter { phase } => {
                field_str(out, "phase", phase);
            }
            EventKind::SpanExit { phase, duration_ns } => {
                field_str(out, "phase", phase);
                let _ = write!(out, ",\"duration_ns\":{duration_ns}");
            }
            EventKind::Incompleteness { exp, input_size } => {
                field_str(out, "exp", exp);
                let _ = write!(out, ",\"input_size\":{input_size}");
            }
            EventKind::ShellPoint {
                rule,
                exp,
                point_size,
            } => {
                field_str(out, "rule", rule);
                field_str(out, "exp", exp);
                let _ = write!(out, ",\"point_size\":{point_size}");
            }
            EventKind::Widening { site } => {
                field_str(out, "site", site);
            }
            EventKind::LclRule { rule } => {
                field_str(out, "rule", rule);
            }
            EventKind::CegarIteration { iteration, blocks } => {
                let _ = write!(out, ",\"iteration\":{iteration},\"blocks\":{blocks}");
            }
            EventKind::CegarRefinement { iteration } => {
                let _ = write!(out, ",\"iteration\":{iteration}");
            }
            EventKind::CegarSplit {
                heuristic,
                splits,
                blocks,
            } => {
                field_str(out, "heuristic", heuristic);
                let _ = write!(out, ",\"splits\":{splits},\"blocks\":{blocks}");
            }
            EventKind::CacheHit { table }
            | EventKind::CacheMiss { table }
            | EventKind::CacheBypass { table } => {
                field_str(out, "table", table);
            }
            EventKind::Counter { name, delta } => {
                field_str(out, "name", name);
                let _ = write!(out, ",\"delta\":{delta}");
            }
            EventKind::Verdict { phase, verdict } => {
                field_str(out, "phase", phase);
                field_str(out, "verdict", verdict);
            }
            EventKind::BudgetExhausted {
                phase,
                spent,
                reason,
            } => {
                field_str(out, "phase", phase);
                let _ = write!(out, ",\"spent\":{spent}");
                field_str(out, "reason", reason);
            }
            EventKind::Cancelled { phase } => {
                field_str(out, "phase", phase);
            }
            EventKind::FuzzCase {
                seed,
                violations,
                disagreements,
            } => {
                let _ = write!(
                    out,
                    ",\"seed\":{seed},\"violations\":{violations},\"disagreements\":{disagreements}"
                );
            }
            EventKind::FuzzShrink {
                seed,
                before,
                after,
            } => {
                let _ = write!(
                    out,
                    ",\"seed\":{seed},\"before\":{before},\"after\":{after}"
                );
            }
            EventKind::FaultInjected { site, fault } => {
                field_str(out, "site", site);
                field_str(out, "fault", fault);
            }
            EventKind::TaskRetried { site, attempt } => {
                field_str(out, "site", site);
                let _ = write!(out, ",\"attempt\":{attempt}");
            }
            EventKind::ShardQuarantined { table, shard } => {
                field_str(out, "table", table);
                let _ = write!(out, ",\"shard\":{shard}");
            }
            EventKind::CheckpointWritten { path, items } => {
                field_str(out, "path", path);
                let _ = write!(out, ",\"items\":{items}");
            }
            EventKind::RequestReceived { id, job, tenant } => {
                field_str(out, "id", id);
                field_str(out, "job", job);
                field_str(out, "tenant", tenant);
            }
            EventKind::RequestCompleted {
                id,
                status,
                duration_ns,
            } => {
                field_str(out, "id", id);
                field_str(out, "status", status);
                let _ = write!(out, ",\"duration_ns\":{duration_ns}");
            }
            EventKind::WorkerSpawned { shard, pid } => {
                let _ = write!(out, ",\"shard\":{shard},\"pid\":{pid}");
            }
            EventKind::LeaseIssued {
                lease,
                shard,
                lo,
                hi,
            } => {
                let _ = write!(
                    out,
                    ",\"lease\":{lease},\"shard\":{shard},\"lo\":{lo},\"hi\":{hi}"
                );
            }
            EventKind::LeaseStolen {
                lease,
                from_shard,
                to_shard,
                at,
            } => {
                let _ = write!(
                    out,
                    ",\"lease\":{lease},\"from_shard\":{from_shard},\"to_shard\":{to_shard},\"at\":{at}"
                );
            }
            EventKind::WorkerLost { shard, reason } => {
                let _ = write!(out, ",\"shard\":{shard}");
                field_str(out, "reason", reason);
            }
            EventKind::WorkerRestarted { shard, attempt } => {
                let _ = write!(out, ",\"shard\":{shard},\"attempt\":{attempt}");
            }
        }
        out.push('}');
    }
}

fn field_str(out: &mut String, key: &str, value: &str) {
    out.push(',');
    escape_str(key, out);
    out.push(':');
    escape_str(value, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn line(kind: EventKind) -> String {
        let mut s = String::new();
        Event {
            seq: 7,
            t_ns: 42,
            kind,
        }
        .to_jsonl(&mut s);
        s
    }

    #[test]
    fn every_kind_serializes_to_valid_json_with_known_kind() {
        let samples = vec![
            EventKind::SpanEnter {
                phase: "verify.backward".into(),
            },
            EventKind::SpanExit {
                phase: "verify.backward".into(),
                duration_ns: 99,
            },
            EventKind::Incompleteness {
                exp: "x := x + 1".into(),
                input_size: 3,
            },
            EventKind::ShellPoint {
                rule: "guard shell (Thm 4.11)".into(),
                exp: "x >= \"0\"".into(),
                point_size: 5,
            },
            EventKind::Widening {
                site: "star".into(),
            },
            EventKind::LclRule {
                rule: "iterate".into(),
            },
            EventKind::CegarIteration {
                iteration: 1,
                blocks: 4,
            },
            EventKind::CegarRefinement { iteration: 1 },
            EventKind::CegarSplit {
                heuristic: "forward-air".into(),
                splits: 2,
                blocks: 6,
            },
            EventKind::CacheHit { table: "exec" },
            EventKind::CacheMiss { table: "exec" },
            EventKind::CacheBypass { table: "exec" },
            EventKind::Counter {
                name: "analysis_runs".into(),
                delta: 1,
            },
            EventKind::Verdict {
                phase: "verify.backward".into(),
                verdict: "proved".into(),
            },
            EventKind::BudgetExhausted {
                phase: "repair.backward".into(),
                spent: 5000,
                reason: "fuel".into(),
            },
            EventKind::Cancelled {
                phase: "corpus.program".into(),
            },
            EventKind::FuzzCase {
                seed: 17,
                violations: 0,
                disagreements: 0,
            },
            EventKind::FuzzShrink {
                seed: 17,
                before: 12,
                after: 3,
            },
            EventKind::FaultInjected {
                site: "repair.backward".into(),
                fault: "panic".into(),
            },
            EventKind::TaskRetried {
                site: "corpus.gauss_sum".into(),
                attempt: 1,
            },
            EventKind::ShardQuarantined {
                table: "exec",
                shard: 3,
            },
            EventKind::CheckpointWritten {
                path: "sweep.ckpt.json".into(),
                items: 50,
            },
            EventKind::RequestReceived {
                id: "req-1".into(),
                job: "verify".into(),
                tenant: "default".into(),
            },
            EventKind::RequestCompleted {
                id: "req-1".into(),
                status: "ok".into(),
                duration_ns: 1234,
            },
            EventKind::WorkerSpawned {
                shard: 0,
                pid: 4242,
            },
            EventKind::LeaseIssued {
                lease: 3,
                shard: 1,
                lo: 96,
                hi: 128,
            },
            EventKind::LeaseStolen {
                lease: 3,
                from_shard: 1,
                to_shard: 0,
                at: 112,
            },
            EventKind::WorkerLost {
                shard: 1,
                reason: "killed".into(),
            },
            EventKind::WorkerRestarted {
                shard: 1,
                attempt: 1,
            },
        ];
        assert_eq!(samples.len(), KNOWN_KINDS.len(), "sample per kind");
        for kind in samples {
            let name = kind.kind_name();
            assert!(KNOWN_KINDS.contains(&name), "{name} not in KNOWN_KINDS");
            let doc = json::parse(&line(kind)).expect("valid JSON");
            assert_eq!(doc.get("kind").unwrap().as_str(), Some(name));
            assert_eq!(doc.get("seq").unwrap().as_num(), Some(7.0));
            assert_eq!(doc.get("t_ns").unwrap().as_num(), Some(42.0));
        }
    }

    #[test]
    fn cache_telemetry_predicate_matches_exactly_the_cache_kinds() {
        let hit = EventKind::CacheHit { table: "t" };
        let span = EventKind::SpanEnter { phase: "p".into() };
        assert!(hit.is_cache_telemetry());
        assert!(!span.is_cache_telemetry());
    }
}
