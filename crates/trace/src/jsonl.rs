//! JSONL sink: one JSON object per event, one event per line.

use crate::event::Event;
use crate::tracer::Sink;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

struct Out {
    writer: BufWriter<Box<dyn Write + Send>>,
    /// The first write/flush error observed. Trace output stays
    /// best-effort — a full disk must not abort a proof — but the failure
    /// is no longer silent: it is reported by [`JsonlSink::flush`],
    /// [`JsonlSink::take_error`], or on drop (to stderr).
    error: Option<io::Error>,
}

/// Writes each event as a JSONL line to an arbitrary writer. Buffered;
/// flushed when the sink is dropped (or explicitly via [`JsonlSink::flush`]).
pub struct JsonlSink {
    out: Mutex<Out>,
}

impl JsonlSink {
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::from_writer(Box::new(file)))
    }

    pub fn from_writer(writer: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out: Mutex::new(Out {
                writer: BufWriter::new(writer),
                error: None,
            }),
        }
    }

    /// Flushes buffered lines. Reports the first I/O error recorded since
    /// the last [`JsonlSink::take_error`] — including earlier `write_all`
    /// failures that `record` could not surface.
    pub fn flush(&self) -> io::Result<()> {
        let Ok(mut out) = self.out.lock() else {
            return Err(io::Error::other("trace sink poisoned by a panic"));
        };
        if let Err(e) = out.writer.flush() {
            if out.error.is_none() {
                out.error = Some(clone_io_error(&e));
            }
            return Err(e);
        }
        match out.error.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Takes the first recorded I/O error, if any, clearing it.
    pub fn take_error(&self) -> Option<io::Error> {
        self.out.lock().ok().and_then(|mut out| out.error.take())
    }
}

/// `io::Error` is not `Clone`; preserve the kind and rendered message.
fn clone_io_error(e: &io::Error) -> io::Error {
    io::Error::new(e.kind(), e.to_string())
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut line = String::with_capacity(96);
        event.to_jsonl(&mut line);
        line.push('\n');
        // Best-effort, but remember the first failure for flush/drop.
        if let Ok(mut out) = self.out.lock() {
            if let Err(e) = out.writer.write_all(line.as_bytes()) {
                if out.error.is_none() {
                    out.error = Some(e);
                }
            }
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if let Ok(mut out) = self.out.lock() {
            if let Err(e) = out.writer.flush() {
                if out.error.is_none() {
                    out.error = Some(e);
                }
            }
            if let Some(e) = out.error.take() {
                eprintln!("warning: trace output incomplete: {e}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::json;
    use crate::tracer::Tracer;
    use std::sync::Arc;

    /// A Vec<u8> writer we can read back after the sink is dropped.
    #[derive(Clone, Default)]
    struct Shared(Arc<Mutex<Vec<u8>>>);
    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    /// A writer that fails every write with `WriteZero`.
    struct Failing;
    impl Write for Failing {
        fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
            Err(io::Error::new(io::ErrorKind::WriteZero, "disk full"))
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn emits_one_valid_json_object_per_line() {
        let buf = Shared::default();
        {
            let t = Tracer::new(Arc::new(JsonlSink::from_writer(Box::new(buf.clone()))));
            let _span = t.span(|| "phase".into());
            t.emit(EventKind::CacheHit {
                table: "exec".into(),
            });
        }
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3); // enter, hit, exit
        for line in lines {
            json::parse(line).expect("each line is standalone JSON");
        }
    }

    #[test]
    fn write_errors_are_recorded_and_reported_on_flush() {
        let sink = JsonlSink::from_writer(Box::new(Failing));
        // Overflow the BufWriter so write_all actually reaches Failing.
        let big = "x".repeat(1 << 16);
        sink.record(&Event {
            seq: 0,
            t_ns: 0,
            kind: EventKind::SpanEnter { phase: big },
        });
        let err = sink.flush().expect_err("the write failure must surface");
        assert!(
            err.to_string().contains("disk full") || err.kind() == io::ErrorKind::WriteZero,
            "unexpected error: {err}"
        );
        // The error is cleared once reported.
        assert!(sink.take_error().is_none());
    }

    #[test]
    fn take_error_exposes_the_first_failure() {
        let sink = JsonlSink::from_writer(Box::new(Failing));
        let big = "x".repeat(1 << 16);
        sink.record(&Event {
            seq: 0,
            t_ns: 0,
            kind: EventKind::SpanEnter { phase: big },
        });
        let e = sink.take_error();
        assert!(e.is_some(), "buffered write failure must be recorded");
    }

    #[test]
    fn healthy_sink_flushes_clean() {
        let buf = Shared::default();
        let sink = JsonlSink::from_writer(Box::new(buf.clone()));
        sink.record(&Event {
            seq: 0,
            t_ns: 0,
            kind: EventKind::CacheHit {
                table: "exec".into(),
            },
        });
        sink.flush().expect("no error on a healthy writer");
        assert!(sink.take_error().is_none());
    }
}
