//! JSONL sink: one JSON object per event, one event per line.

use crate::event::Event;
use crate::tracer::Sink;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Writes each event as a JSONL line to an arbitrary writer. Buffered;
/// flushed when the sink is dropped (or explicitly via [`JsonlSink::flush`]).
pub struct JsonlSink {
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl JsonlSink {
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::from_writer(Box::new(file)))
    }

    pub fn from_writer(writer: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out: Mutex::new(BufWriter::new(writer)),
        }
    }

    pub fn flush(&self) -> io::Result<()> {
        self.out.lock().unwrap().flush()
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut line = String::with_capacity(96);
        event.to_jsonl(&mut line);
        line.push('\n');
        // Trace output is best-effort: a full disk must not abort a proof.
        let _ = self.out.lock().unwrap().write_all(line.as_bytes());
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.lock().unwrap().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::json;
    use crate::tracer::Tracer;
    use std::sync::Arc;

    /// A Vec<u8> writer we can read back after the sink is dropped.
    #[derive(Clone, Default)]
    struct Shared(Arc<Mutex<Vec<u8>>>);
    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn emits_one_valid_json_object_per_line() {
        let buf = Shared::default();
        {
            let t = Tracer::new(Arc::new(JsonlSink::from_writer(Box::new(buf.clone()))));
            let _span = t.span(|| "phase".into());
            t.emit(EventKind::CacheHit {
                table: "exec".into(),
            });
        }
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3); // enter, hit, exit
        for line in lines {
            json::parse(line).expect("each line is standalone JSON");
        }
    }
}
