//! JSONL sink: one JSON object per event, one event per line.

use crate::event::Event;
use crate::tracer::Sink;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

struct Out {
    writer: BufWriter<Box<dyn Write + Send>>,
    /// The first write/flush error observed. Trace output stays
    /// best-effort — a full disk must not abort a proof — but the failure
    /// is no longer silent: it is reported by [`JsonlSink::flush`],
    /// [`JsonlSink::take_error`], or on drop (to stderr).
    error: Option<io::Error>,
}

/// Writes each event as a JSONL line to an arbitrary writer. Buffered;
/// flushed when the sink is dropped (or explicitly via [`JsonlSink::flush`]).
pub struct JsonlSink {
    out: Mutex<Out>,
    /// Set once the mutex has been recovered from a panic poison, so the
    /// warning is printed at most once per sink.
    poison_warned: AtomicBool,
}

impl JsonlSink {
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::from_writer(Box::new(file)))
    }

    pub fn from_writer(writer: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out: Mutex::new(Out {
                writer: BufWriter::new(writer),
                error: None,
            }),
            poison_warned: AtomicBool::new(false),
        }
    }

    /// Locks the writer, recovering from a mutex poisoned by a panicking
    /// writer thread: the poison is cleared (warn-once) and tracing
    /// continues best-effort, instead of every later write failing. The
    /// buffered state is plain bytes plus a sticky error slot, so there
    /// is no broken invariant to fear from the interrupted critical
    /// section — at worst one line is torn, which trace consumers
    /// already tolerate.
    fn lock_recovering(&self) -> MutexGuard<'_, Out> {
        match self.out.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.out.clear_poison();
                if !self.poison_warned.swap(true, Ordering::Relaxed) {
                    eprintln!(
                        "warning: trace sink mutex poisoned by a panicking writer; \
                         recovered and continuing"
                    );
                }
                poisoned.into_inner()
            }
        }
    }

    /// Flushes buffered lines. Reports the first I/O error recorded since
    /// the last [`JsonlSink::take_error`] — including earlier `write_all`
    /// failures that `record` could not surface.
    pub fn flush(&self) -> io::Result<()> {
        let mut out = self.lock_recovering();
        if let Err(e) = out.writer.flush() {
            if out.error.is_none() {
                out.error = Some(clone_io_error(&e));
            }
            return Err(e);
        }
        match out.error.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Takes the first recorded I/O error, if any, clearing it.
    pub fn take_error(&self) -> Option<io::Error> {
        self.lock_recovering().error.take()
    }
}

/// `io::Error` is not `Clone`; preserve the kind and rendered message.
fn clone_io_error(e: &io::Error) -> io::Error {
    io::Error::new(e.kind(), e.to_string())
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut line = String::with_capacity(96);
        event.to_jsonl(&mut line);
        line.push('\n');
        // Best-effort, but remember the first failure for flush/drop.
        let mut out = self.lock_recovering();
        if let Err(e) = out.writer.write_all(line.as_bytes()) {
            if out.error.is_none() {
                out.error = Some(e);
            }
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let mut out = self.lock_recovering();
        if let Err(e) = out.writer.flush() {
            if out.error.is_none() {
                out.error = Some(e);
            }
        }
        if let Some(e) = out.error.take() {
            eprintln!("warning: trace output incomplete: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::json;
    use crate::tracer::Tracer;
    use std::sync::Arc;

    /// A Vec<u8> writer we can read back after the sink is dropped.
    #[derive(Clone, Default)]
    struct Shared(Arc<Mutex<Vec<u8>>>);
    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    /// A writer that fails every write with `WriteZero`.
    struct Failing;
    impl Write for Failing {
        fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
            Err(io::Error::new(io::ErrorKind::WriteZero, "disk full"))
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn emits_one_valid_json_object_per_line() {
        let buf = Shared::default();
        {
            let t = Tracer::new(Arc::new(JsonlSink::from_writer(Box::new(buf.clone()))));
            let _span = t.span(|| "phase".into());
            t.emit(EventKind::CacheHit { table: "exec" });
        }
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3); // enter, hit, exit
        for line in lines {
            json::parse(line).expect("each line is standalone JSON");
        }
    }

    #[test]
    fn write_errors_are_recorded_and_reported_on_flush() {
        let sink = JsonlSink::from_writer(Box::new(Failing));
        // Overflow the BufWriter so write_all actually reaches Failing.
        let big = "x".repeat(1 << 16);
        sink.record(&Event {
            seq: 0,
            t_ns: 0,
            kind: EventKind::SpanEnter { phase: big },
        });
        let err = sink.flush().expect_err("the write failure must surface");
        assert!(
            err.to_string().contains("disk full") || err.kind() == io::ErrorKind::WriteZero,
            "unexpected error: {err}"
        );
        // The error is cleared once reported.
        assert!(sink.take_error().is_none());
    }

    #[test]
    fn take_error_exposes_the_first_failure() {
        let sink = JsonlSink::from_writer(Box::new(Failing));
        let big = "x".repeat(1 << 16);
        sink.record(&Event {
            seq: 0,
            t_ns: 0,
            kind: EventKind::SpanEnter { phase: big },
        });
        let e = sink.take_error();
        assert!(e.is_some(), "buffered write failure must be recorded");
    }

    #[test]
    fn poisoned_mutex_recovers_and_keeps_writing() {
        let buf = Shared::default();
        let sink = Arc::new(JsonlSink::from_writer(Box::new(buf.clone())));
        // Poison the mutex: panic while holding the guard.
        let poisoner = Arc::clone(&sink);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _guard = poisoner.out.lock().unwrap();
            panic!("writer thread dies mid-record");
        }));
        assert!(sink.out.is_poisoned(), "setup: the mutex must be poisoned");
        // Later writes and flushes must still succeed (was: io::Error forever).
        sink.record(&Event {
            seq: 0,
            t_ns: 0,
            kind: EventKind::CacheHit { table: "exec" },
        });
        sink.flush().expect("recovered sink flushes clean");
        assert!(!sink.out.is_poisoned(), "poison must be cleared");
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 1, "the post-poison event was written");
        json::parse(text.lines().next().unwrap()).expect("valid JSON line");
    }

    #[test]
    fn healthy_sink_flushes_clean() {
        let buf = Shared::default();
        let sink = JsonlSink::from_writer(Box::new(buf.clone()));
        sink.record(&Event {
            seq: 0,
            t_ns: 0,
            kind: EventKind::CacheHit { table: "exec" },
        });
        sink.flush().expect("no error on a healthy writer");
        assert!(sink.take_error().is_none());
    }
}
