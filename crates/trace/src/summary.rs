//! Aggregated view of a trace: per-phase wall time, per-kind event
//! counts, and named counters. Built live by the [`crate::Profiler`]
//! sink or after the fact from a JSONL file (`air trace summarize`).

use crate::json::{self, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-phase aggregate: how many times the phase ran and its total
/// wall-clock time (sum over all spans, including nested ones).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStat {
    pub count: u64,
    pub total_ns: u64,
}

/// Aggregated trace statistics; renderable as a text table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Summary {
    pub phases: BTreeMap<String, PhaseStat>,
    pub kinds: BTreeMap<String, u64>,
    pub counters: BTreeMap<String, u64>,
    pub events: u64,
}

impl Summary {
    /// Fold one event (by wire kind + fields) into the aggregate.
    pub fn record_kind(&mut self, kind: &str) {
        self.events += 1;
        *self.kinds.entry(kind.to_string()).or_insert(0) += 1;
    }

    pub fn record_span_exit(&mut self, phase: &str, duration_ns: u64) {
        let stat = self.phases.entry(phase.to_string()).or_default();
        stat.count += 1;
        stat.total_ns += duration_ns;
    }

    pub fn record_counter(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Rebuild a summary from JSONL text (as written by the JSONL sink).
    /// Unknown kinds are counted but otherwise ignored; malformed lines
    /// are errors.
    pub fn from_jsonl(text: &str) -> Result<Summary, String> {
        let mut summary = Summary::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let doc = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let kind = doc
                .get("kind")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("line {}: missing \"kind\"", lineno + 1))?;
            summary.record_kind(kind);
            match kind {
                "span_exit" => {
                    let phase = doc
                        .get("phase")
                        .and_then(Value::as_str)
                        .ok_or_else(|| format!("line {}: span_exit without phase", lineno + 1))?;
                    let dur = doc
                        .get("duration_ns")
                        .and_then(Value::as_num)
                        .ok_or_else(|| {
                            format!("line {}: span_exit without duration_ns", lineno + 1)
                        })?;
                    summary.record_span_exit(phase, dur as u64);
                }
                "counter" => {
                    let name = doc
                        .get("name")
                        .and_then(Value::as_str)
                        .ok_or_else(|| format!("line {}: counter without name", lineno + 1))?;
                    let delta = doc.get("delta").and_then(Value::as_num).unwrap_or(1.0);
                    summary.record_counter(name, delta as u64);
                }
                _ => {}
            }
        }
        Ok(summary)
    }

    /// Per-phase total times in milliseconds, sorted by phase name.
    /// Used by `bench_tables` for the `phase_ms` breakdown.
    pub fn phase_ms(&self) -> Vec<(String, f64)> {
        self.phases
            .iter()
            .map(|(name, stat)| (name.clone(), stat.total_ns as f64 / 1e6))
            .collect()
    }

    /// Render the per-phase time/count table plus event-kind and counter
    /// tables as aligned plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{} events", self.events);
        if !self.phases.is_empty() {
            out.push('\n');
            render_table(
                &mut out,
                ("phase", "count", "total ms"),
                self.phases.iter().map(|(name, stat)| {
                    (
                        name.clone(),
                        stat.count.to_string(),
                        format!("{:.3}", stat.total_ns as f64 / 1e6),
                    )
                }),
            );
        }
        if !self.kinds.is_empty() {
            out.push('\n');
            render_table(
                &mut out,
                ("event kind", "count", ""),
                self.kinds
                    .iter()
                    .map(|(kind, n)| (kind.clone(), n.to_string(), String::new())),
            );
        }
        if !self.counters.is_empty() {
            out.push('\n');
            render_table(
                &mut out,
                ("counter", "total", ""),
                self.counters
                    .iter()
                    .map(|(name, n)| (name.clone(), n.to_string(), String::new())),
            );
        }
        out
    }
}

/// Three-column left/right/right table; the third column is dropped when
/// every cell (and the header) is empty.
fn render_table(
    out: &mut String,
    headers: (&str, &str, &str),
    rows: impl Iterator<Item = (String, String, String)>,
) {
    let rows: Vec<(String, String, String)> = rows.collect();
    let three = !headers.2.is_empty() || rows.iter().any(|r| !r.2.is_empty());
    let w0 = rows
        .iter()
        .map(|r| r.0.len())
        .chain([headers.0.len()])
        .max()
        .unwrap_or(0);
    let w1 = rows
        .iter()
        .map(|r| r.1.len())
        .chain([headers.1.len()])
        .max()
        .unwrap_or(0);
    let w2 = rows
        .iter()
        .map(|r| r.2.len())
        .chain([headers.2.len()])
        .max()
        .unwrap_or(0);
    let mut line = |c0: &str, c1: &str, c2: &str| {
        if three {
            let _ = writeln!(out, "{c0:<w0$}  {c1:>w1$}  {c2:>w2$}");
        } else {
            let _ = writeln!(out, "{c0:<w0$}  {c1:>w1$}");
        }
    };
    line(headers.0, headers.1, headers.2);
    line(&"-".repeat(w0), &"-".repeat(w1), &"-".repeat(w2));
    for (c0, c1, c2) in &rows {
        line(c0, c1, c2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_jsonl_aggregates_phases_kinds_and_counters() {
        let text = "\
{\"seq\":0,\"t_ns\":1,\"kind\":\"span_enter\",\"phase\":\"p\"}\n\
{\"seq\":1,\"t_ns\":2,\"kind\":\"cache_hit\",\"table\":\"exec\"}\n\
{\"seq\":2,\"t_ns\":3,\"kind\":\"counter\",\"name\":\"runs\",\"delta\":2}\n\
{\"seq\":3,\"t_ns\":9,\"kind\":\"span_exit\",\"phase\":\"p\",\"duration_ns\":2000000}\n\
{\"seq\":4,\"t_ns\":11,\"kind\":\"span_exit\",\"phase\":\"p\",\"duration_ns\":1000000}\n";
        let s = Summary::from_jsonl(text).unwrap();
        assert_eq!(s.events, 5);
        assert_eq!(s.kinds["cache_hit"], 1);
        assert_eq!(s.kinds["span_exit"], 2);
        assert_eq!(s.counters["runs"], 2);
        assert_eq!(
            s.phases["p"],
            PhaseStat {
                count: 2,
                total_ns: 3_000_000
            }
        );
        assert_eq!(s.phase_ms(), vec![("p".to_string(), 3.0)]);
        let table = s.render();
        assert!(table.contains("phase"), "{table}");
        assert!(table.contains("3.000"), "{table}");
        assert!(table.contains("cache_hit"), "{table}");
    }

    #[test]
    fn from_jsonl_rejects_malformed_lines() {
        assert!(Summary::from_jsonl("{\"no_kind\":1}").is_err());
        assert!(Summary::from_jsonl("not json").is_err());
        assert!(
            Summary::from_jsonl("{\"kind\":\"span_exit\",\"phase\":\"p\"}").is_err(),
            "span_exit needs duration_ns"
        );
    }
}
