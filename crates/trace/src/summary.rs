//! Aggregated view of a trace: per-phase wall time, per-kind event
//! counts, and named counters. Built live by the [`crate::Profiler`]
//! sink or after the fact from a JSONL file (`air trace summarize`).

use crate::json::{self, Value};
use air_metrics::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-phase aggregate: how many times the phase ran, its total
/// wall-clock time (sum over all spans, including nested ones), and a
/// log2-bucket histogram of per-span durations for the p50/p90/p99
/// columns. The histogram is `air_metrics::Histogram`, the same code
/// that backs the serve metrics plane, so `air trace summarize` and a
/// scraped daemon report quantiles with identical semantics (bucket
/// upper bounds, ≤ 2x relative error).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseStat {
    pub count: u64,
    pub total_ns: u64,
    pub durations: Histogram,
}

impl PhaseStat {
    /// Upper-bound estimate of the `q`-quantile of span durations, ns.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        self.durations.quantile(q)
    }
}

/// Aggregated trace statistics; renderable as a text table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Summary {
    pub phases: BTreeMap<String, PhaseStat>,
    pub kinds: BTreeMap<String, u64>,
    pub counters: BTreeMap<String, u64>,
    pub events: u64,
}

impl Summary {
    /// Fold one event (by wire kind + fields) into the aggregate.
    pub fn record_kind(&mut self, kind: &str) {
        self.events += 1;
        *self.kinds.entry(kind.to_string()).or_insert(0) += 1;
    }

    pub fn record_span_exit(&mut self, phase: &str, duration_ns: u64) {
        let stat = self.phases.entry(phase.to_string()).or_default();
        stat.count += 1;
        stat.total_ns += duration_ns;
        stat.durations.observe(duration_ns);
    }

    pub fn record_counter(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Rebuild a summary from JSONL text (as written by the JSONL sink).
    /// Unknown kinds are counted but otherwise ignored; malformed lines
    /// are errors.
    pub fn from_jsonl(text: &str) -> Result<Summary, String> {
        let mut summary = Summary::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let doc = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let kind = doc
                .get("kind")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("line {}: missing \"kind\"", lineno + 1))?;
            summary.record_kind(kind);
            match kind {
                "span_exit" => {
                    let phase = doc
                        .get("phase")
                        .and_then(Value::as_str)
                        .ok_or_else(|| format!("line {}: span_exit without phase", lineno + 1))?;
                    let dur = doc
                        .get("duration_ns")
                        .and_then(Value::as_num)
                        .ok_or_else(|| {
                            format!("line {}: span_exit without duration_ns", lineno + 1)
                        })?;
                    summary.record_span_exit(phase, dur as u64);
                }
                "counter" => {
                    let name = doc
                        .get("name")
                        .and_then(Value::as_str)
                        .ok_or_else(|| format!("line {}: counter without name", lineno + 1))?;
                    let delta = doc.get("delta").and_then(Value::as_num).unwrap_or(1.0);
                    summary.record_counter(name, delta as u64);
                }
                _ => {}
            }
        }
        Ok(summary)
    }

    /// Per-phase total times in milliseconds, sorted by phase name.
    /// Used by `bench_tables` for the `phase_ms` breakdown.
    pub fn phase_ms(&self) -> Vec<(String, f64)> {
        self.phases
            .iter()
            .map(|(name, stat)| (name.clone(), stat.total_ns as f64 / 1e6))
            .collect()
    }

    /// Render the per-phase time/count/percentile table plus event-kind
    /// and counter tables as aligned plain text.
    pub fn render(&self) -> String {
        let ms = |ns: u64| format!("{:.3}", ns as f64 / 1e6);
        let mut out = String::new();
        let _ = writeln!(out, "{} events", self.events);
        if !self.phases.is_empty() {
            out.push('\n');
            render_table(
                &mut out,
                &["phase", "count", "total ms", "p50 ms", "p90 ms", "p99 ms"],
                self.phases
                    .iter()
                    .map(|(name, stat)| {
                        vec![
                            name.clone(),
                            stat.count.to_string(),
                            ms(stat.total_ns),
                            ms(stat.quantile_ns(0.50)),
                            ms(stat.quantile_ns(0.90)),
                            ms(stat.quantile_ns(0.99)),
                        ]
                    })
                    .collect(),
            );
        }
        if !self.kinds.is_empty() {
            out.push('\n');
            render_table(
                &mut out,
                &["event kind", "count"],
                self.kinds
                    .iter()
                    .map(|(kind, n)| vec![kind.clone(), n.to_string()])
                    .collect(),
            );
        }
        if !self.counters.is_empty() {
            out.push('\n');
            render_table(
                &mut out,
                &["counter", "total"],
                self.counters
                    .iter()
                    .map(|(name, n)| vec![name.clone(), n.to_string()])
                    .collect(),
            );
        }
        out
    }
}

/// Aligned plain-text table: first column left-aligned, the rest
/// right-aligned. Rows shorter than the header are padded with empties.
fn render_table(out: &mut String, headers: &[&str], rows: Vec<Vec<String>>) {
    let cols = headers.len();
    let widths: Vec<usize> = (0..cols)
        .map(|c| {
            rows.iter()
                .map(|r| r.get(c).map_or(0, String::len))
                .chain([headers[c].len()])
                .max()
                .unwrap_or(0)
        })
        .collect();
    let mut line = |cells: &[String]| {
        for (c, w) in widths.iter().enumerate() {
            let cell = cells.get(c).map_or("", String::as_str);
            if c > 0 {
                out.push_str("  ");
            }
            let _ = if c == 0 {
                write!(out, "{cell:<w$}")
            } else {
                write!(out, "{cell:>w$}")
            };
        }
        out.push('\n');
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in &rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_jsonl_aggregates_phases_kinds_and_counters() {
        let text = "\
{\"seq\":0,\"t_ns\":1,\"kind\":\"span_enter\",\"phase\":\"p\"}\n\
{\"seq\":1,\"t_ns\":2,\"kind\":\"cache_hit\",\"table\":\"exec\"}\n\
{\"seq\":2,\"t_ns\":3,\"kind\":\"counter\",\"name\":\"runs\",\"delta\":2}\n\
{\"seq\":3,\"t_ns\":9,\"kind\":\"span_exit\",\"phase\":\"p\",\"duration_ns\":2000000}\n\
{\"seq\":4,\"t_ns\":11,\"kind\":\"span_exit\",\"phase\":\"p\",\"duration_ns\":1000000}\n";
        let s = Summary::from_jsonl(text).unwrap();
        assert_eq!(s.events, 5);
        assert_eq!(s.kinds["cache_hit"], 1);
        assert_eq!(s.kinds["span_exit"], 2);
        assert_eq!(s.counters["runs"], 2);
        assert_eq!(s.phases["p"].count, 2);
        assert_eq!(s.phases["p"].total_ns, 3_000_000);
        assert_eq!(s.phase_ms(), vec![("p".to_string(), 3.0)]);
        let table = s.render();
        assert!(table.contains("phase"), "{table}");
        assert!(table.contains("3.000"), "{table}");
        assert!(table.contains("cache_hit"), "{table}");
    }

    #[test]
    fn phase_percentiles_come_from_the_shared_histogram() {
        let mut s = Summary::default();
        // 99 fast spans (~1ms, log2 bucket ub 1_048_575 ns) and one slow
        // outlier (~1s, bucket ub 1_073_741_823 ns): the median stays in
        // the fast bucket, p99 lands on it too (rank 100*0.99 = 99), and
        // only the max reaches the outlier bucket.
        for _ in 0..99 {
            s.record_span_exit("p", 1_000_000);
        }
        s.record_span_exit("p", 1_000_000_000);
        let stat = &s.phases["p"];
        assert_eq!(stat.quantile_ns(0.50), (1 << 20) - 1);
        assert_eq!(stat.quantile_ns(0.99), (1 << 20) - 1);
        assert_eq!(stat.quantile_ns(1.0), (1 << 30) - 1);
        let table = s.render();
        assert!(table.contains("p50 ms"), "{table}");
        assert!(table.contains("p99 ms"), "{table}");
        // 1_048_575 ns renders as 1.049 ms in the p50 column.
        assert!(table.contains("1.049"), "{table}");
    }

    #[test]
    fn from_jsonl_rejects_malformed_lines() {
        assert!(Summary::from_jsonl("{\"no_kind\":1}").is_err());
        assert!(Summary::from_jsonl("not json").is_err());
        assert!(
            Summary::from_jsonl("{\"kind\":\"span_exit\",\"phase\":\"p\"}").is_err(),
            "span_exit needs duration_ns"
        );
    }
}
