//! Generic Graphviz DOT builder, used by `air-core` to export repair
//! derivation trees (`Derivation::to_dot`). Kept here so the export
//! format lives next to the other trace outputs without `air-trace`
//! depending on the engine crates.

use std::fmt::Write as _;

/// Accumulates nodes and edges, then renders a `digraph`.
pub struct DotBuilder {
    name: String,
    nodes: Vec<String>,
    edges: Vec<String>,
}

/// Opaque node handle returned by [`DotBuilder::node`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeId(usize);

impl DotBuilder {
    pub fn new(name: &str) -> Self {
        DotBuilder {
            name: name.to_string(),
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Add a box-shaped node with the given (multi-line) label.
    pub fn node(&mut self, label: &str) -> NodeId {
        self.node_with_attrs(label, "")
    }

    /// Add a node with extra attributes, e.g. `style=filled,fillcolor=gold`.
    pub fn node_with_attrs(&mut self, label: &str, attrs: &str) -> NodeId {
        let id = NodeId(self.nodes.len());
        let mut line = format!("  n{} [label=\"{}\"", id.0, escape_label(label));
        if !attrs.is_empty() {
            let _ = write!(line, ", {attrs}");
        }
        line.push_str("];");
        self.nodes.push(line);
        id
    }

    pub fn edge(&mut self, from: NodeId, to: NodeId) {
        self.edges.push(format!("  n{} -> n{};", from.0, to.0));
    }

    pub fn edge_labeled(&mut self, from: NodeId, to: NodeId, label: &str) {
        self.edges.push(format!(
            "  n{} -> n{} [label=\"{}\"];",
            from.0,
            to.0,
            escape_label(label)
        ));
    }

    /// Render the complete DOT document.
    pub fn finish(self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", escape_label(&self.name));
        let _ = writeln!(out, "  rankdir=TB;");
        let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
        for node in &self.nodes {
            let _ = writeln!(out, "{node}");
        }
        for edge in &self.edges {
            let _ = writeln!(out, "{edge}");
        }
        out.push_str("}\n");
        out
    }
}

/// Escape a label for use inside a double-quoted DOT string.
fn escape_label(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for c in label.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_well_formed_digraph() {
        let mut dot = DotBuilder::new("proof");
        let root = dot.node_with_attrs("iterate\n{P} r* {Q}", "style=filled");
        let child = dot.node("transfer");
        dot.edge(root, child);
        dot.edge_labeled(child, root, "back \"edge\"");
        let text = dot.finish();
        assert!(text.starts_with("digraph \"proof\" {"));
        assert!(text.contains("n0 [label=\"iterate\\n{P} r* {Q}\", style=filled];"));
        assert!(text.contains("n0 -> n1;"));
        assert!(text.contains("n1 -> n0 [label=\"back \\\"edge\\\"\"];"));
        assert!(text.trim_end().ends_with('}'));
    }
}
