//! Aggregating profiler sink: folds the event stream into a
//! [`Summary`] on the fly instead of storing events, so profiling a
//! long corpus run costs O(phases + kinds) memory.

use crate::event::{Event, EventKind};
use crate::summary::Summary;
use crate::tracer::Sink;
use std::sync::Mutex;

/// Sink that keeps only aggregates (per-phase wall time, per-kind
/// counts, counter totals). Attach with [`crate::Tracer::new`], run the
/// workload, then read [`Profiler::summary`] or [`Profiler::render`].
#[derive(Default)]
pub struct Profiler {
    summary: Mutex<Summary>,
}

impl Profiler {
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of the aggregates so far.
    pub fn summary(&self) -> Summary {
        self.summary.lock().unwrap().clone()
    }

    /// Render the current aggregates as a text table.
    pub fn render(&self) -> String {
        self.summary().render()
    }
}

impl Sink for Profiler {
    fn record(&self, event: &Event) {
        let mut summary = self.summary.lock().unwrap();
        summary.record_kind(event.kind.kind_name());
        match &event.kind {
            EventKind::SpanExit { phase, duration_ns } => {
                summary.record_span_exit(phase, *duration_ns);
            }
            EventKind::Counter { name, delta } => {
                summary.record_counter(name, *delta);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;
    use std::sync::Arc;

    #[test]
    fn profiler_aggregates_like_summary_from_jsonl() {
        let profiler = Arc::new(Profiler::new());
        let t = Tracer::new(profiler.clone());
        for _ in 0..3 {
            let _span = t.span(|| "work".into());
            t.emit(EventKind::CacheMiss { table: "wlp" });
        }
        t.emit(EventKind::Counter {
            name: "widenings".into(),
            delta: 4,
        });
        let s = profiler.summary();
        assert_eq!(s.phases["work"].count, 3);
        assert_eq!(s.kinds["cache_miss"], 3);
        assert_eq!(s.counters["widenings"], 4);
        assert_eq!(s.events, 10); // 3 enter + 3 exit + 3 miss + 1 counter
        assert!(profiler.render().contains("work"));
    }
}
