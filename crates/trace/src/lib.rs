//! # air-trace — structured event tracing and phase profiling
//!
//! Dependency-light observability substrate for the AIR engine (its
//! only dependency is the workspace's own zero-dependency
//! `air-metrics`, which supplies the histogram type behind
//! [`PhaseStat`] percentiles and the [`MetricsBridge`] sink). The
//! pipeline (verifier, forward/backward repair, LCL_A derivations,
//! CEGAR) reports every interesting step as a typed [`Event`] through a
//! [`Tracer`] handle; sinks turn the stream into a JSONL log
//! ([`JsonlSink`]), a per-phase profile ([`Profiler`]), or stay
//! in-memory for tests ([`MemorySink`]). [`DotBuilder`] renders
//! derivation trees as Graphviz DOT.
//!
//! Design constraints, in order:
//!
//! 1. **Free when off.** `Tracer::default()` is a `None`; every emit
//!    site is a single branch and payload closures never run
//!    ([`Tracer::emit_with`], [`Tracer::span`]).
//! 2. **Deterministic content.** Event payloads carry only data derived
//!    from the computation (expressions, sizes, rules) — never
//!    pointers, thread ids, or times — so the stream (modulo `seq`,
//!    `t_ns` and cache telemetry) is reproducible across runs,
//!    cached/uncached, and thread counts.
//! 3. **Closed schema.** The wire format's `kind` set is
//!    [`KNOWN_KINDS`]; CI validates every emitted line against it.
//!
//! Paper correspondence (Bruni, Giacobazzi, Gori, Ranzato — PLDI 2022):
//! `incompleteness` events witness Def. 4.1 violations, `shell_point`
//! events record Thm. 4.9 / Thm. 4.11 pointed-shell additions,
//! `cegar_split` events record Thm. 6.2 / 6.4 partition refinements.
//!
//! Module map:
//!
//! | module | contents |
//! |---|---|
//! | [`event`] | [`Event`], [`EventKind`], JSONL serialization, [`KNOWN_KINDS`] |
//! | [`tracer`] | [`Tracer`], [`Sink`], RAII [`Span`], [`MemorySink`], [`MultiSink`] |
//! | [`jsonl`] | [`JsonlSink`] file/writer sink |
//! | [`profile`] | [`Profiler`] aggregating sink |
//! | [`summary`] | [`Summary`] aggregates + table renderer (`air trace summarize`) |
//! | [`bridge`] | [`MetricsBridge`] sink folding span exits into metric histograms |
//! | [`dot`] | [`DotBuilder`] Graphviz export |
//! | [`json`] | dependency-free JSON escape/parse helpers |

pub mod bridge;
pub mod dot;
pub mod event;
pub mod json;
pub mod jsonl;
pub mod profile;
pub mod summary;
pub mod tracer;

pub use bridge::{MetricsBridge, PHASE_DURATION_METRIC};
pub use dot::{DotBuilder, NodeId};
pub use event::{Event, EventKind, KNOWN_KINDS};
pub use jsonl::JsonlSink;
pub use profile::Profiler;
pub use summary::{PhaseStat, Summary};
pub use tracer::{MemorySink, MultiSink, Sink, Span, Tracer};
