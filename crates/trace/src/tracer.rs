//! The [`Tracer`] handle and [`Sink`] trait.
//!
//! A `Tracer` is a cheap, clonable handle that is either *disabled* (the
//! default — one `Option` branch per call site, no allocation, no clock
//! read) or *enabled*, in which case every event is stamped with a
//! sequence number and a monotonic timestamp and forwarded to a shared
//! [`Sink`]. Engines accept a `Tracer` by value and clone it freely;
//! all clones feed the same sink and share one sequence counter.

use crate::event::{Event, EventKind};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Receives every event emitted through a tracer. Implementations must
/// be thread-safe: parallel sweeps share one sink across workers.
pub trait Sink: Send + Sync {
    fn record(&self, event: &Event);
}

struct Inner {
    sink: Arc<dyn Sink>,
    seq: AtomicU64,
    epoch: Instant,
}

/// Cheap handle to a trace sink; `Tracer::default()` is disabled.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl Tracer {
    /// A tracer that drops everything (same as `Tracer::default()`).
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// A tracer forwarding to `sink`, with its epoch set to now.
    pub fn new(sink: Arc<dyn Sink>) -> Self {
        Tracer {
            inner: Some(Arc::new(Inner {
                sink,
                seq: AtomicU64::new(0),
                epoch: Instant::now(),
            })),
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Emit one event. When disabled this is a single branch.
    #[inline]
    pub fn emit(&self, kind: EventKind) {
        if let Some(inner) = &self.inner {
            inner.record(kind);
        }
    }

    /// Emit an event whose payload is expensive to build (e.g. renders an
    /// expression): the closure only runs when tracing is enabled.
    #[inline]
    pub fn emit_with(&self, kind: impl FnOnce() -> EventKind) {
        if let Some(inner) = &self.inner {
            inner.record(kind());
        }
    }

    /// Enter a named phase; the returned guard emits `span_exit` with the
    /// measured duration when dropped. The phase name closure only runs
    /// when tracing is enabled, so hot paths pay no formatting cost.
    #[inline]
    pub fn span(&self, phase: impl FnOnce() -> String) -> Span {
        match &self.inner {
            None => Span { active: None },
            Some(inner) => {
                let phase = phase();
                inner.record(EventKind::SpanEnter {
                    phase: phase.clone(),
                });
                Span {
                    active: Some(ActiveSpan {
                        inner: Arc::clone(inner),
                        phase,
                        start: Instant::now(),
                    }),
                }
            }
        }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Inner {
    fn record(&self, kind: EventKind) {
        let event = Event {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            t_ns: self.epoch.elapsed().as_nanos() as u64,
            kind,
        };
        self.sink.record(&event);
    }
}

/// RAII guard for a phase; see [`Tracer::span`].
pub struct Span {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    inner: Arc<Inner>,
    phase: String,
    start: Instant,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            let duration_ns = active.start.elapsed().as_nanos() as u64;
            active.inner.record(EventKind::SpanExit {
                phase: active.phase.clone(),
                duration_ns,
            });
        }
    }
}

/// Buffers events in memory; the sink used by tests and the determinism
/// suite. `drain()` returns everything recorded so far, in seq order.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    pub fn new() -> Self {
        Self::default()
    }

    /// All events recorded so far, sorted by sequence number. Sorting
    /// matters: under parallelism, threads may reach `record` out of
    /// stamp order.
    pub fn drain(&self) -> Vec<Event> {
        let mut events = std::mem::take(&mut *self.events.lock().unwrap());
        events.sort_by_key(|e| e.seq);
        events
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.events.lock().unwrap().push(event.clone());
    }
}

/// Fans every event out to several sinks (e.g. JSONL file + profiler).
///
/// Degrades per-sink instead of failing the fan-out: a sink that panics
/// while recording is disabled (with a one-time stderr warning) and the
/// remaining sinks keep receiving events. Losing one observer must never
/// cost the run — or its other observers — anything.
pub struct MultiSink {
    sinks: Vec<FanoutSlot>,
}

struct FanoutSlot {
    sink: Arc<dyn Sink>,
    disabled: std::sync::atomic::AtomicBool,
}

impl MultiSink {
    pub fn new(sinks: Vec<Arc<dyn Sink>>) -> Self {
        MultiSink {
            sinks: sinks
                .into_iter()
                .map(|sink| FanoutSlot {
                    sink,
                    disabled: std::sync::atomic::AtomicBool::new(false),
                })
                .collect(),
        }
    }

    /// How many sinks are still live (not disabled by a panic).
    pub fn live_sinks(&self) -> usize {
        self.sinks
            .iter()
            .filter(|s| !s.disabled.load(Ordering::Relaxed))
            .count()
    }
}

impl Sink for MultiSink {
    fn record(&self, event: &Event) {
        for slot in &self.sinks {
            if slot.disabled.load(Ordering::Relaxed) {
                continue;
            }
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                slot.sink.record(event);
            }));
            if outcome.is_err() && !slot.disabled.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "warning: a trace sink panicked while recording seq {}; \
                     disabling that sink, others continue",
                    event.seq
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_runs_no_closures() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.emit_with(|| unreachable!("closure must not run when disabled"));
        let _span = t.span(|| unreachable!("span name must not render"));
    }

    #[test]
    fn spans_nest_and_measure() {
        let sink = Arc::new(MemorySink::new());
        let t = Tracer::new(sink.clone());
        {
            let _outer = t.span(|| "outer".into());
            let _inner = t.span(|| "inner".into());
        }
        let events = sink.drain();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind.kind_name()).collect();
        assert_eq!(
            kinds,
            ["span_enter", "span_enter", "span_exit", "span_exit"]
        );
        // Inner exits before outer (LIFO drop order).
        match (&events[2].kind, &events[3].kind) {
            (EventKind::SpanExit { phase: p2, .. }, EventKind::SpanExit { phase: p3, .. }) => {
                assert_eq!(p2, "inner");
                assert_eq!(p3, "outer");
            }
            _ => unreachable!(),
        }
        // Sequence numbers are dense and increasing.
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }

    #[test]
    fn clones_share_one_sequence() {
        let sink = Arc::new(MemorySink::new());
        let t = Tracer::new(sink.clone());
        let t2 = t.clone();
        t.emit(EventKind::Counter {
            name: "a".into(),
            delta: 1,
        });
        t2.emit(EventKind::Counter {
            name: "b".into(),
            delta: 1,
        });
        let seqs: Vec<u64> = sink.drain().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [0, 1]);
    }

    #[test]
    fn multi_sink_duplicates_events() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let t = Tracer::new(Arc::new(MultiSink::new(vec![a.clone(), b.clone()])));
        t.emit(EventKind::Widening { site: "s".into() });
        assert_eq!(a.drain().len(), 1);
        assert_eq!(b.drain().len(), 1);
    }

    /// A sink that panics on every record, to exercise fan-out degradation.
    struct PanickySink;
    impl Sink for PanickySink {
        fn record(&self, _event: &Event) {
            panic!("observer crashed");
        }
    }

    #[test]
    fn multi_sink_degrades_per_sink_on_panic() {
        let healthy = Arc::new(MemorySink::new());
        let multi = Arc::new(MultiSink::new(vec![
            Arc::new(PanickySink) as Arc<dyn Sink>,
            healthy.clone(),
        ]));
        let t = Tracer::new(multi.clone());
        t.emit(EventKind::Widening { site: "a".into() });
        t.emit(EventKind::Widening { site: "b".into() });
        // The panicking sink is disabled after its first failure; the
        // healthy sink saw every event.
        assert_eq!(multi.live_sinks(), 1);
        assert_eq!(healthy.drain().len(), 2);
    }
}
