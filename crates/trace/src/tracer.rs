//! The [`Tracer`] handle and [`Sink`] trait.
//!
//! A `Tracer` is a cheap, clonable handle that is either *disabled* (the
//! default — one `Option` branch per call site, no allocation, no clock
//! read) or *enabled*, in which case every event is stamped with a
//! sequence number and a monotonic timestamp and forwarded to a shared
//! [`Sink`]. Engines accept a `Tracer` by value and clone it freely;
//! all clones feed the same sink and share one sequence counter.

use crate::event::{Event, EventKind};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Receives every event emitted through a tracer. Implementations must
/// be thread-safe: parallel sweeps share one sink across workers.
pub trait Sink: Send + Sync {
    fn record(&self, event: &Event);

    /// Whether this sink reads `Event::seq` / `Event::t_ns`. Defaults to
    /// `true`. A purely aggregating sink (e.g. the metrics bridge) can
    /// return `false`; when *every* attached sink declines, the tracer
    /// skips the per-event clock read and sequence stamp and delivers
    /// events with `seq == 0` and `t_ns == 0`. Span durations are not
    /// affected — spans measure their own elapsed time.
    fn wants_timestamps(&self) -> bool {
        true
    }

    /// Whether this sink consumes high-frequency *detail* events —
    /// derivation rules, shell points, incompleteness witnesses,
    /// verdicts, counters, span enters — whose payloads render
    /// expressions and allocate. Defaults to `true`. The metrics bridge
    /// aggregates a small closed set of events and returns `false`;
    /// when every attached sink declines, [`Tracer::emit_detail_with`]
    /// never runs its payload closure, so a daemon that traces only
    /// into metrics skips the rendering cost entirely.
    fn wants_detail(&self) -> bool {
        true
    }
}

struct Inner {
    sink: Arc<dyn Sink>,
    seq: AtomicU64,
    epoch: Instant,
    /// Cached `sink.wants_timestamps()`: consulted on every event, and
    /// sinks never change their answer after construction.
    stamp: bool,
    /// Cached `sink.wants_detail()`, same lifecycle as `stamp`.
    detail: bool,
}

/// Cheap handle to a trace sink; `Tracer::default()` is disabled.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl Tracer {
    /// A tracer that drops everything (same as `Tracer::default()`).
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// A tracer forwarding to `sink`, with its epoch set to now.
    pub fn new(sink: Arc<dyn Sink>) -> Self {
        let stamp = sink.wants_timestamps();
        let detail = sink.wants_detail();
        Tracer {
            inner: Some(Arc::new(Inner {
                sink,
                seq: AtomicU64::new(0),
                epoch: Instant::now(),
                stamp,
                detail,
            })),
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A tracer that feeds `extra` *in addition to* whatever this tracer
    /// already feeds: the way `air serve` attaches a metrics bridge next
    /// to an operator-requested JSONL sink without knowing what that
    /// sink is. If `self` is disabled the result records to `extra`
    /// alone. The returned tracer is a fresh handle (own epoch and
    /// sequence counter); clones of `self` keep recording to the
    /// original sink only.
    pub fn tee(&self, extra: Arc<dyn Sink>) -> Tracer {
        match &self.inner {
            None => Tracer::new(extra),
            Some(inner) => Tracer::new(Arc::new(MultiSink::new(vec![
                Arc::clone(&inner.sink),
                extra,
            ]))),
        }
    }

    /// Emit one event. When disabled this is a single branch.
    #[inline]
    pub fn emit(&self, kind: EventKind) {
        if let Some(inner) = &self.inner {
            inner.record(kind);
        }
    }

    /// Emit an event whose payload is expensive to build (e.g. renders an
    /// expression): the closure only runs when tracing is enabled.
    #[inline]
    pub fn emit_with(&self, kind: impl FnOnce() -> EventKind) {
        if let Some(inner) = &self.inner {
            inner.record(kind());
        }
    }

    /// Like [`emit_with`](Self::emit_with), for *detail* events no
    /// aggregating sink consumes (see [`Sink::wants_detail`]): the
    /// closure additionally does not run when every attached sink has
    /// declined detail. Engines use this for derivation-rule, shell,
    /// witness, verdict and counter events; aggregated events (cache
    /// traffic, budget exhaustion, span exits) keep `emit_with`.
    #[inline]
    pub fn emit_detail_with(&self, kind: impl FnOnce() -> EventKind) {
        if let Some(inner) = &self.inner {
            if inner.detail {
                inner.record(kind());
            }
        }
    }

    /// Enter a named phase; the returned guard emits `span_exit` with the
    /// measured duration when dropped. The phase name closure only runs
    /// when tracing is enabled, so hot paths pay no formatting cost.
    #[inline]
    pub fn span(&self, phase: impl FnOnce() -> String) -> Span {
        match &self.inner {
            None => Span { active: None },
            Some(inner) => {
                let phase = phase();
                // `span_enter` is pure detail: only the paired exit
                // carries the measured duration the bridge aggregates.
                if inner.detail {
                    inner.record(EventKind::SpanEnter {
                        phase: phase.clone(),
                    });
                }
                Span {
                    active: Some(ActiveSpan {
                        inner: Arc::clone(inner),
                        phase,
                        start: Instant::now(),
                    }),
                }
            }
        }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Inner {
    fn record(&self, kind: EventKind) {
        let (seq, t_ns) = if self.stamp {
            (
                self.seq.fetch_add(1, Ordering::Relaxed),
                self.epoch.elapsed().as_nanos() as u64,
            )
        } else {
            (0, 0)
        };
        let event = Event { seq, t_ns, kind };
        self.sink.record(&event);
    }
}

/// RAII guard for a phase; see [`Tracer::span`].
pub struct Span {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    inner: Arc<Inner>,
    phase: String,
    start: Instant,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            let duration_ns = active.start.elapsed().as_nanos() as u64;
            let ActiveSpan { inner, phase, .. } = active;
            inner.record(EventKind::SpanExit { phase, duration_ns });
        }
    }
}

/// Buffers events in memory; the sink used by tests and the determinism
/// suite. `drain()` returns everything recorded so far, in seq order.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    pub fn new() -> Self {
        Self::default()
    }

    /// All events recorded so far, sorted by sequence number. Sorting
    /// matters: under parallelism, threads may reach `record` out of
    /// stamp order.
    pub fn drain(&self) -> Vec<Event> {
        let mut events = std::mem::take(&mut *self.events.lock().unwrap());
        events.sort_by_key(|e| e.seq);
        events
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.events.lock().unwrap().push(event.clone());
    }
}

/// Fans every event out to several sinks (e.g. JSONL file + profiler).
///
/// Degrades per-sink instead of failing the fan-out: a sink that panics
/// while recording is disabled (with a one-time stderr warning) and the
/// remaining sinks keep receiving events. Losing one observer must never
/// cost the run — or its other observers — anything.
pub struct MultiSink {
    sinks: Vec<FanoutSlot>,
}

struct FanoutSlot {
    sink: Arc<dyn Sink>,
    disabled: std::sync::atomic::AtomicBool,
}

impl MultiSink {
    pub fn new(sinks: Vec<Arc<dyn Sink>>) -> Self {
        MultiSink {
            sinks: sinks
                .into_iter()
                .map(|sink| FanoutSlot {
                    sink,
                    disabled: std::sync::atomic::AtomicBool::new(false),
                })
                .collect(),
        }
    }

    /// How many sinks are still live (not disabled by a panic).
    pub fn live_sinks(&self) -> usize {
        self.sinks
            .iter()
            .filter(|s| !s.disabled.load(Ordering::Relaxed))
            .count()
    }
}

impl Sink for MultiSink {
    /// A fan-out stamps events iff any child wants them stamped.
    fn wants_timestamps(&self) -> bool {
        self.sinks.iter().any(|s| s.sink.wants_timestamps())
    }

    /// A fan-out carries detail events iff any child wants them.
    fn wants_detail(&self) -> bool {
        self.sinks.iter().any(|s| s.sink.wants_detail())
    }

    fn record(&self, event: &Event) {
        for slot in &self.sinks {
            if slot.disabled.load(Ordering::Relaxed) {
                continue;
            }
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                slot.sink.record(event);
            }));
            if outcome.is_err() && !slot.disabled.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "warning: a trace sink panicked while recording seq {}; \
                     disabling that sink, others continue",
                    event.seq
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_runs_no_closures() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.emit_with(|| unreachable!("closure must not run when disabled"));
        let _span = t.span(|| unreachable!("span name must not render"));
    }

    #[test]
    fn spans_nest_and_measure() {
        let sink = Arc::new(MemorySink::new());
        let t = Tracer::new(sink.clone());
        {
            let _outer = t.span(|| "outer".into());
            let _inner = t.span(|| "inner".into());
        }
        let events = sink.drain();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind.kind_name()).collect();
        assert_eq!(
            kinds,
            ["span_enter", "span_enter", "span_exit", "span_exit"]
        );
        // Inner exits before outer (LIFO drop order).
        match (&events[2].kind, &events[3].kind) {
            (EventKind::SpanExit { phase: p2, .. }, EventKind::SpanExit { phase: p3, .. }) => {
                assert_eq!(p2, "inner");
                assert_eq!(p3, "outer");
            }
            _ => unreachable!(),
        }
        // Sequence numbers are dense and increasing.
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }

    #[test]
    fn clones_share_one_sequence() {
        let sink = Arc::new(MemorySink::new());
        let t = Tracer::new(sink.clone());
        let t2 = t.clone();
        t.emit(EventKind::Counter {
            name: "a".into(),
            delta: 1,
        });
        t2.emit(EventKind::Counter {
            name: "b".into(),
            delta: 1,
        });
        let seqs: Vec<u64> = sink.drain().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [0, 1]);
    }

    #[test]
    fn multi_sink_duplicates_events() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let t = Tracer::new(Arc::new(MultiSink::new(vec![a.clone(), b.clone()])));
        t.emit(EventKind::Widening { site: "s".into() });
        assert_eq!(a.drain().len(), 1);
        assert_eq!(b.drain().len(), 1);
    }

    /// A sink that panics on every record, to exercise fan-out degradation.
    struct PanickySink;
    impl Sink for PanickySink {
        fn record(&self, _event: &Event) {
            panic!("observer crashed");
        }
    }

    /// Buffers like `MemorySink` but declines timestamps.
    #[derive(Default)]
    struct StamplessSink(Mutex<Vec<Event>>);
    impl Sink for StamplessSink {
        fn wants_timestamps(&self) -> bool {
            false
        }
        fn record(&self, event: &Event) {
            self.0.lock().unwrap().push(event.clone());
        }
    }

    #[test]
    fn stampless_sinks_skip_the_clock_but_teeing_a_stamped_sink_restores_it() {
        let quiet = Arc::new(StamplessSink::default());
        let t = Tracer::new(quiet.clone());
        t.emit(EventKind::Widening { site: "a".into() });
        t.emit(EventKind::Widening { site: "b".into() });
        let events = std::mem::take(&mut *quiet.0.lock().unwrap());
        assert!(events.iter().all(|e| e.seq == 0 && e.t_ns == 0));

        // Tee in a sink that wants timestamps: the fan-out stamps again.
        let full = Arc::new(MemorySink::new());
        let t2 = t.tee(full.clone());
        t2.emit(EventKind::Widening { site: "c".into() });
        t2.emit(EventKind::Widening { site: "d".into() });
        let seqs: Vec<u64> = full.drain().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [0, 1]);
    }

    #[test]
    fn multi_sink_degrades_per_sink_on_panic() {
        let healthy = Arc::new(MemorySink::new());
        let multi = Arc::new(MultiSink::new(vec![
            Arc::new(PanickySink) as Arc<dyn Sink>,
            healthy.clone(),
        ]));
        let t = Tracer::new(multi.clone());
        t.emit(EventKind::Widening { site: "a".into() });
        t.emit(EventKind::Widening { site: "b".into() });
        // The panicking sink is disabled after its first failure; the
        // healthy sink saw every event.
        assert_eq!(multi.live_sinks(), 1);
        assert_eq!(healthy.drain().len(), 2);
    }
}
