//! Minimal JSON support: string escaping for the writers and a small
//! recursive-descent parser for the readers (`summary`, the bench
//! validator). Hand-rolled so the crate stays dependency-free.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Append `s` to `out` as a JSON string literal (including the quotes).
pub fn escape_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders `s` as a freestanding JSON string literal (including the
/// quotes). Convenience over [`escape_str`] for `write!`-style renderers
/// that want an expression rather than an out-parameter.
pub fn str_lit(s: &str) -> String {
    let mut out = String::new();
    escape_str(s, &mut out);
    out
}

/// A parsed JSON value. Numbers are kept as `f64`, which is exact for the
/// integer ranges the trace format uses (< 2^53).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Field lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a complete JSON document; trailing garbage is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ascii \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the trace
                            // format; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        c => return Err(format!("bad escape '\\{}'", c as char)),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 character verbatim.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_through_parser() {
        let raw = "a\"b\\c\nd\te\u{1}f — π";
        let mut doc = String::from("{\"k\":");
        escape_str(raw, &mut doc);
        doc.push('}');
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(raw));
    }

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,-3],"b":{"c":true,"d":null},"e":"x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(-3.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_tokens() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
    }
}
