//! Crash-tolerant distributed campaigns.
//!
//! The deterministic sweeps in this workspace — fuzz campaigns over a
//! seed range, corpus sweeps over a sorted file list, chaos sweeps over
//! a plan range — are all *pure functions of an integer interval*. This
//! crate shards such an interval across N worker OS processes and
//! merges their partial results back into a report that is
//! **byte-identical** to the single-process run, regardless of shard
//! count, work-stealing schedule, or workers killed mid-run.
//!
//! Architecture (one coordinator, N workers, pipes only — no sockets,
//! no threads shared across processes):
//!
//! - The coordinator spawns each worker as a child process running the
//!   same binary with a hidden `--dist-worker` flag, and speaks the
//!   length-prefixed JSON frame protocol of [`air_serve`] over the
//!   child's stdin/stdout ([`protocol::Frame`]).
//! - Work is handed out in fine-grained **leases** (sub-ranges of the
//!   interval) on demand, so fast workers naturally take more of the
//!   space.
//! - **Work-stealing**: when a worker goes idle and no fresh ranges
//!   remain, the coordinator truncates the straggler with the most
//!   remaining work at its midpoint and reissues the tail once the
//!   straggler's (authoritative) result arrives.
//! - **Crash tolerance**: workers send heartbeat frames as they
//!   advance; a missed deadline, a non-zero exit, or a SIGKILL marks
//!   the worker lost, and its lease is reissued from the shard's last
//!   crash-safe checkpoint under a bounded, deterministic
//!   restart-with-backoff policy (the same shape as
//!   [`air_resilience`]'s supervisor).
//! - **Deterministic merges**: a lease result is the same
//!   checkpoint-format payload a crash would have left behind, so
//!   partial results from crashes and clean completions merge through
//!   one code path, and the merge is a fold over *sorted disjoint
//!   tiles* — order-insensitive by construction.
//!
//! The [`coordinator`] is generic over the campaign: callers provide
//! the worker argv, a crash-recovery hook, and consume the ordered
//! tiles. The `air` CLI wires it to `fuzz run`, `corpus` and `chaos`
//! via `--shards N`.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod coordinator;
pub mod protocol;
pub mod worker;

pub use coordinator::{
    run_distributed, DistConfig, DistError, DistHooks, DistOutcome, DistStats, RecoverFn, Tile,
};
pub use protocol::{Frame, KNOWN_FRAMES};
pub use worker::{run_worker, FrameWriter, LeaseCtx, LeaseDone};
