//! Worker side of the distributed campaign protocol.
//!
//! A worker is an ordinary `air` process spawned with a hidden
//! `--dist-worker SHARD` flag. [`run_worker`] owns the protocol: it
//! sends `hello`, then loops pulling `lease` frames from stdin and
//! running the caller's closure over each `[lo, hi)` range. A reader
//! thread applies `truncate` frames to the *active* lease's cap (an
//! atomic shared with [`LeaseCtx`]) without blocking the sweep, so
//! work-stealing and campaign halts take effect at the next case
//! boundary.
//!
//! The closure reports where it actually stopped; that value is echoed
//! back in the `result` frame and is authoritative — a truncation that
//! arrives after the worker passed the cut point is simply ignored by
//! both sides.

use std::io::{BufReader, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread;

use air_serve::{read_frame, write_frame, DEFAULT_MAX_FRAME};

use crate::protocol::Frame;

/// Cheap clonable, thread-safe frame sender (stdout is shared between
/// the sweep thread's heartbeats and the main loop's results).
#[derive(Clone)]
pub struct FrameWriter {
    inner: Arc<Mutex<Box<dyn Write + Send>>>,
}

impl FrameWriter {
    pub fn new(w: impl Write + Send + 'static) -> Self {
        FrameWriter {
            inner: Arc::new(Mutex::new(Box::new(w))),
        }
    }

    /// Sends one frame; returns `false` when the pipe is gone (the
    /// coordinator died), which workers treat as a shutdown.
    pub fn send(&self, frame: &Frame) -> bool {
        let mut w = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        write_frame(&mut *w, &frame.render()).is_ok()
    }
}

/// Handle a lease closure uses to heartbeat and observe truncation.
#[derive(Clone)]
pub struct LeaseCtx {
    pub lease: u64,
    pub lo: u64,
    pub hi: u64,
    cap: Arc<AtomicU64>,
    out: FrameWriter,
}

impl LeaseCtx {
    /// Current effective end of the lease: `hi`, lowered by any
    /// `truncate` frames received so far.
    pub fn cap(&self) -> u64 {
        self.cap.load(Ordering::SeqCst).min(self.hi)
    }

    /// Reports liveness and progress (`next` = next item to run) and
    /// returns the effective lease end, so sweeps fold the truncation
    /// check into their heartbeat cadence.
    pub fn heartbeat(&self, next: u64) -> u64 {
        self.out.send(&Frame::Heartbeat {
            lease: self.lease,
            next,
        });
        self.cap()
    }
}

/// What a lease closure produced: the first item it did **not** run
/// (authoritative, `lo <= stopped <= hi`) and the partial-result
/// payload covering `[lo, stopped)`.
pub struct LeaseDone {
    pub stopped: u64,
    pub payload: String,
}

/// `(lease id, cap)` of the lease currently being swept, shared with
/// the reader thread so truncations land mid-sweep.
type ActiveLease = Arc<Mutex<Option<(u64, Arc<AtomicU64>)>>>;

enum Inbound {
    Lease {
        lease: u64,
        lo: u64,
        hi: u64,
        /// Created (and registered as the active lease) by the reader
        /// thread *before* the lease is handed to the sweep, so a
        /// truncate arriving immediately after the lease frame cannot
        /// be lost in the hand-off.
        cap: Arc<AtomicU64>,
    },
    Shutdown,
    /// Pipe closed or protocol error; carries a human-readable reason.
    Gone(String),
}

/// Runs the worker protocol until shutdown. `run` is invoked once per
/// lease; an `Err` from it is reported to the coordinator as an `error`
/// frame and aborts the worker with the same message.
pub fn run_worker(
    shard: u64,
    input: impl Read + Send + 'static,
    output: impl Write + Send + 'static,
    mut run: impl FnMut(&LeaseCtx) -> Result<LeaseDone, String>,
) -> Result<(), String> {
    let out = FrameWriter::new(output);
    if !out.send(&Frame::Hello {
        shard,
        pid: u64::from(std::process::id()),
    }) {
        return Ok(()); // coordinator already gone; nothing to do
    }

    // The reader thread applies truncations directly to the active
    // lease's cap so they land even while `run` is mid-sweep.
    let active: ActiveLease = Arc::new(Mutex::new(None));
    let (tx, rx): (Sender<Inbound>, Receiver<Inbound>) = channel();
    {
        let active = Arc::clone(&active);
        thread::spawn(move || read_loop(input, &tx, &active));
    }

    loop {
        let msg = match rx.recv() {
            Ok(msg) => msg,
            Err(_) => return Ok(()), // reader thread ended after Gone/Shutdown
        };
        match msg {
            Inbound::Shutdown => return Ok(()),
            Inbound::Gone(_reason) => {
                // Coordinator vanished (crashed or was killed). The
                // worker has no one to report to; exit quietly and let
                // the on-disk checkpoint carry any partial progress.
                return Ok(());
            }
            Inbound::Lease { lease, lo, hi, cap } => {
                let ctx = LeaseCtx {
                    lease,
                    lo,
                    hi,
                    cap,
                    out: out.clone(),
                };
                let outcome = run(&ctx);
                {
                    let mut guard = active.lock().unwrap_or_else(|e| e.into_inner());
                    if guard.as_ref().is_some_and(|(l, _)| *l == lease) {
                        *guard = None;
                    }
                }
                match outcome {
                    Ok(done) => {
                        out.send(&Frame::Result {
                            lease,
                            lo,
                            stopped: done.stopped.clamp(lo, hi),
                            payload: done.payload,
                        });
                    }
                    Err(message) => {
                        out.send(&Frame::Error {
                            message: message.clone(),
                        });
                        return Err(message);
                    }
                }
            }
        }
    }
}

fn read_loop(
    input: impl Read,
    tx: &Sender<Inbound>,
    active: &Mutex<Option<(u64, Arc<AtomicU64>)>>,
) {
    let mut reader = BufReader::new(input);
    loop {
        let payload = match read_frame(&mut reader, DEFAULT_MAX_FRAME) {
            Ok(Some(p)) => p,
            Ok(None) => {
                let _ = tx.send(Inbound::Gone("eof".to_string()));
                return;
            }
            Err(e) => {
                let _ = tx.send(Inbound::Gone(format!("frame error: {e}")));
                return;
            }
        };
        match Frame::parse(&payload) {
            Ok(Frame::Lease { lease, lo, hi }) => {
                let cap = Arc::new(AtomicU64::new(hi));
                *active.lock().unwrap_or_else(|e| e.into_inner()) = Some((lease, Arc::clone(&cap)));
                if tx.send(Inbound::Lease { lease, lo, hi, cap }).is_err() {
                    return;
                }
            }
            Ok(Frame::Truncate { lease, hi }) => {
                let guard = active.lock().unwrap_or_else(|e| e.into_inner());
                if let Some((active_lease, cap)) = guard.as_ref() {
                    if *active_lease == lease {
                        cap.fetch_min(hi, Ordering::SeqCst);
                    }
                }
                // A truncate for a finished lease raced its result;
                // the coordinator resolves the race from `stopped`.
            }
            Ok(Frame::Shutdown) => {
                let _ = tx.send(Inbound::Shutdown);
                return;
            }
            Ok(other) => {
                let _ = tx.send(Inbound::Gone(format!(
                    "unexpected {} frame from coordinator",
                    other.name()
                )));
                return;
            }
            Err(e) => {
                let _ = tx.send(Inbound::Gone(format!("bad frame: {e}")));
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// In-memory pipe end the tests use to capture worker output.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn frames_of(buf: &SharedBuf) -> Vec<Frame> {
        let bytes = buf.0.lock().unwrap().clone();
        let mut reader = BufReader::new(Cursor::new(bytes));
        let mut frames = Vec::new();
        while let Some(p) = read_frame(&mut reader, DEFAULT_MAX_FRAME).unwrap() {
            frames.push(Frame::parse(&p).unwrap());
        }
        frames
    }

    fn script(frames: &[Frame]) -> Cursor<Vec<u8>> {
        let mut buf = Vec::new();
        for f in frames {
            write_frame(&mut buf, &f.render()).unwrap();
        }
        Cursor::new(buf)
    }

    #[test]
    fn worker_runs_leases_and_reports_results() {
        let input = script(&[
            Frame::Lease {
                lease: 1,
                lo: 10,
                hi: 14,
            },
            Frame::Lease {
                lease: 2,
                lo: 14,
                hi: 16,
            },
            Frame::Shutdown,
        ]);
        let out = SharedBuf::default();
        let mut seen = Vec::new();
        run_worker(5, input, out.clone(), |ctx| {
            seen.push((ctx.lease, ctx.lo, ctx.hi));
            Ok(LeaseDone {
                stopped: ctx.hi,
                payload: format!("tile-{}", ctx.lease),
            })
        })
        .unwrap();
        assert_eq!(seen, vec![(1, 10, 14), (2, 14, 16)]);
        let frames = frames_of(&out);
        assert_eq!(frames.len(), 3);
        assert!(matches!(frames[0], Frame::Hello { shard: 5, .. }));
        assert_eq!(
            frames[1],
            Frame::Result {
                lease: 1,
                lo: 10,
                stopped: 14,
                payload: "tile-1".to_string(),
            }
        );
        assert_eq!(
            frames[2],
            Frame::Result {
                lease: 2,
                lo: 14,
                stopped: 16,
                payload: "tile-2".to_string(),
            }
        );
    }

    #[test]
    fn truncate_lowers_the_active_cap() {
        let input = script(&[
            Frame::Lease {
                lease: 1,
                lo: 0,
                hi: 100,
            },
            Frame::Truncate { lease: 1, hi: 3 },
            Frame::Shutdown,
        ]);
        let out = SharedBuf::default();
        run_worker(0, input, out.clone(), |ctx| {
            // Walk one item at a time until the heartbeat says stop.
            let mut next = ctx.lo;
            while next < ctx.heartbeat(next) {
                next += 1;
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            Ok(LeaseDone {
                stopped: next,
                payload: String::new(),
            })
        })
        .unwrap();
        let frames = frames_of(&out);
        let stopped = frames
            .iter()
            .find_map(|f| match f {
                Frame::Result { stopped, .. } => Some(*stopped),
                _ => None,
            })
            .expect("result frame");
        assert!(stopped < 100, "truncate should stop the sweep early");
    }

    #[test]
    fn truncate_for_other_lease_is_ignored() {
        let input = script(&[
            Frame::Lease {
                lease: 1,
                lo: 0,
                hi: 4,
            },
            Frame::Truncate { lease: 9, hi: 1 },
            Frame::Shutdown,
        ]);
        let out = SharedBuf::default();
        run_worker(0, input, out.clone(), |ctx| {
            std::thread::sleep(std::time::Duration::from_millis(10));
            Ok(LeaseDone {
                stopped: ctx.cap(),
                payload: String::new(),
            })
        })
        .unwrap();
        let frames = frames_of(&out);
        assert!(frames
            .iter()
            .any(|f| matches!(f, Frame::Result { stopped: 4, .. })));
    }

    #[test]
    fn lease_error_is_reported_and_aborts() {
        let input = script(&[Frame::Lease {
            lease: 1,
            lo: 0,
            hi: 4,
        }]);
        let out = SharedBuf::default();
        let err = run_worker(
            0,
            input,
            out.clone(),
            |_| Err("engine exploded".to_string()),
        )
        .expect_err("worker should abort");
        assert_eq!(err, "engine exploded");
        let frames = frames_of(&out);
        assert!(frames
            .iter()
            .any(|f| matches!(f, Frame::Error { message } if message == "engine exploded")));
    }

    #[test]
    fn eof_is_a_clean_exit() {
        let input = script(&[]);
        let out = SharedBuf::default();
        run_worker(0, input, out, |_| {
            Ok(LeaseDone {
                stopped: 0,
                payload: String::new(),
            })
        })
        .unwrap();
    }
}
