//! The coordinator: spawns worker processes, hands out leases, steals
//! from stragglers, survives worker death, and returns sorted disjoint
//! result tiles whose merge is independent of every scheduling choice.
//!
//! # Determinism argument
//!
//! The coordinator never computes campaign results itself — it only
//! partitions the integer interval `[base, base + items)` into tiles
//! and collects one payload per tile. Three invariants make the merged
//! report a pure function of the interval:
//!
//! 1. **Tiles are disjoint and exact.** A lease covers `[lo, hi)`; a
//!    worker's `result` reports the half-open prefix `[lo, stopped)` it
//!    actually ran, and only `[stopped, hi)` is ever reissued. The
//!    worker's `stopped` is authoritative, so a `truncate` that races
//!    past the sweep cannot double-cover or skip an item.
//! 2. **Recovery resumes at a checkpoint boundary.** When a worker
//!    dies, its tile is reconstructed from the shard's last crash-safe
//!    checkpoint (written through `atomic_write`, so it is either the
//!    previous complete checkpoint or the new one). Items after the
//!    checkpoint are re-run from scratch; items before it are never
//!    re-run, so side-effect-free sweeps produce identical counters.
//! 3. **The merge is a fold over sorted tiles.** [`DistOutcome::tiles`]
//!    come back sorted by `lo` and verified gap-free; callers fold
//!    payloads in that order. Scheduling (shard count, steal schedule,
//!    kill schedule) only changes *which process computed which tile*,
//!    never the tile boundaries' union or the fold order.
//!
//! Hence `--shards N` reports are byte-identical for every `N` and
//! under any worker-kill schedule — which CI enforces by diffing.

use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use air_metrics::MetricsRegistry;
use air_resilience::SplitMix64;
use air_serve::{read_frame, DEFAULT_MAX_FRAME};
use air_trace::{EventKind, Tracer};

use crate::protocol::Frame;
use crate::worker::FrameWriter;

/// Shape of a distributed campaign: the interval, the fleet, and the
/// fault-tolerance envelope.
pub struct DistConfig {
    /// Number of worker processes to spawn (clamped to `items`).
    pub shards: u64,
    /// First item of the campaign interval.
    pub base: u64,
    /// Number of items; the interval is `[base, base + items)`.
    pub items: u64,
    /// Items per lease (0 = auto: `items / (shards * 4)`, clamped to
    /// `[1, 256]`), so each worker sees several leases and stragglers
    /// hold small ranges.
    pub lease_items: u64,
    /// A busy worker silent for this long is declared hung and killed.
    pub hang_timeout: Duration,
    /// Restarts allowed per shard before it is abandoned.
    pub max_restarts: u32,
    /// Base delay before restarting a lost worker; doubles per restart
    /// of that shard (deterministic exponential backoff).
    pub restart_backoff: Duration,
    /// Minimum remaining items that make a straggler worth stealing
    /// from (the thief gets at least half of this).
    pub steal_min: u64,
    /// Chaos axis: SIGKILL this many workers mid-campaign.
    pub kill_workers: u64,
    /// Seed for the deterministic kill schedule.
    pub kill_seed: u64,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            shards: 2,
            base: 0,
            items: 0,
            lease_items: 0,
            hang_timeout: Duration::from_secs(30),
            max_restarts: 3,
            restart_backoff: Duration::from_millis(50),
            steal_min: 4,
            kill_workers: 0,
            kill_seed: 0,
        }
    }
}

/// Crash-recovery hook: `(shard, lo, hi)` of a lost lease → salvaged
/// `(stopped, payload)` from the shard's last checkpoint, or `None`.
pub type RecoverFn = Box<dyn Fn(u64, u64, u64) -> Option<(u64, String)>>;

/// Campaign-specific glue the CLI provides.
pub struct DistHooks {
    /// Worker executable (normally `std::env::current_exe()`).
    pub program: PathBuf,
    /// Full argv (minus program) for a given shard's worker process.
    pub args_for: Box<dyn Fn(u64) -> Vec<String>>,
    /// Crash recovery: given `(shard, lo, hi)` of the lost lease,
    /// return `(stopped, payload)` salvaged from the shard's last
    /// crash-safe checkpoint, with `lo < stopped <= hi`. `None` re-runs
    /// the whole lease.
    pub recover: RecoverFn,
    /// Receives `worker_spawned` / `lease_issued` / `lease_stolen` /
    /// `worker_lost` / `worker_restarted` events.
    pub tracer: Tracer,
    /// Gauges and counters under `air_dist_*`.
    pub metrics: MetricsRegistry,
    /// When set, every frame sent/received is appended as JSONL
    /// (`{"dir":…,"shard":…,"frame":…}`) for `dist_validate`.
    pub frame_log: Option<PathBuf>,
    /// Cooperative cancellation (SIGINT/SIGTERM): when it flips true
    /// the coordinator truncates all active leases and drains.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Stop issuing work once this many items have completed (the
    /// distributed analogue of `--halt-after`; the actual stop point
    /// lands at the next case boundary of each active lease).
    pub halt_after: Option<u64>,
}

/// One covered sub-range and its partial-result payload.
#[derive(Clone, Debug, PartialEq)]
pub struct Tile {
    pub lo: u64,
    pub hi: u64,
    pub payload: String,
}

/// Fleet counters for the final stats line / `--stats-json`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DistStats {
    pub workers_spawned: u64,
    pub leases_issued: u64,
    pub leases_stolen: u64,
    pub workers_lost: u64,
    pub workers_restarted: u64,
    pub kills: u64,
}

/// What the fleet produced.
pub struct DistOutcome {
    /// Disjoint tiles sorted by `lo`. When `complete`, they cover
    /// exactly `[base, base + items)` with no gaps.
    pub tiles: Vec<Tile>,
    /// Whole interval covered (false after cancel / halt).
    pub complete: bool,
    /// Length of the contiguous covered prefix starting at `base` —
    /// the resumable frontier after a halt.
    pub covered: u64,
    pub stats: DistStats,
}

/// Coordinator-level failure (worker error frame, fleet exhaustion, or
/// an internal coverage bug).
#[derive(Clone, Debug)]
pub struct DistError {
    pub message: String,
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DistError {}

fn err(message: impl Into<String>) -> DistError {
    DistError {
        message: message.into(),
    }
}

/// A not-yet-leased sub-range. `stolen_from` carries the provenance of
/// a stolen tail so `lease_stolen` is emitted at reissue time, when the
/// thief is known.
struct PendingRange {
    lo: u64,
    hi: u64,
    stolen_from: Option<(u64, u64)>, // (lease, shard)
}

struct Active {
    lease: u64,
    lo: u64,
    hi: u64,
    /// Worker's last reported `next` item (heartbeat), our best guess
    /// of its progress for stealing and hang recovery.
    cursor: u64,
    last_beat: Instant,
    /// Truncation point sent for a steal; cleared when the result
    /// arrives.
    steal_to: Option<u64>,
}

enum SlotState {
    /// Spawned, waiting for `hello`.
    Starting {
        since: Instant,
    },
    Idle,
    Busy(Active),
    /// Lost; respawn when `due` passes.
    Waiting {
        due: Instant,
    },
    /// Restart budget exhausted.
    Gone,
}

struct Slot {
    shard: u64,
    /// Bumped on every (re)spawn; events from older epochs are stale.
    epoch: u64,
    child: Option<Child>,
    stdin: Option<FrameWriter>,
    state: SlotState,
    restarts: u32,
    /// Set when the coordinator itself killed the child (chaos axis),
    /// so the exit is reported as `killed` rather than `exit`.
    kill_mark: bool,
}

enum Ev {
    Frame {
        shard: u64,
        epoch: u64,
        frame: Frame,
    },
    Eof {
        shard: u64,
        epoch: u64,
        detail: String,
    },
}

struct Coordinator {
    cfg: DistConfig,
    hooks: DistHooks,
    end: u64,
    lease_items: u64,
    next: u64,
    next_lease: u64,
    pending: VecDeque<PendingRange>,
    tiles: Vec<Tile>,
    slots: Vec<Slot>,
    tx: Sender<Ev>,
    stats: DistStats,
    frame_log: Option<File>,
    /// Cancel/halt reached: truncate active leases, stop issuing work.
    halting: bool,
    shutting_down: bool,
    /// Items the fleet has reported progress past (heartbeat cursor
    /// advances plus result tails), the clock of the chaos
    /// (`kill_workers`) schedule. Reaches at least `items` in any
    /// completing campaign, so every scheduled kill fires.
    progress_items: u64,
    kill_at: VecDeque<u64>,
}

/// Runs the campaign over `[base, base + items)` across
/// `config.shards` worker processes. Returns the sorted tiles; callers
/// fold them, in order, into the final report.
pub fn run_distributed(config: DistConfig, hooks: DistHooks) -> Result<DistOutcome, DistError> {
    let end = config
        .base
        .checked_add(config.items)
        .ok_or_else(|| err("campaign interval overflows u64"))?;
    if config.items == 0 {
        return Ok(DistOutcome {
            tiles: Vec::new(),
            complete: true,
            covered: 0,
            stats: DistStats::default(),
        });
    }
    let shards = config.shards.clamp(1, config.items);
    let lease_items = if config.lease_items > 0 {
        config.lease_items
    } else {
        (config.items / (shards * 4)).clamp(1, 256)
    };
    let frame_log = match &hooks.frame_log {
        Some(path) => Some(
            File::create(path)
                .map_err(|e| err(format!("cannot create frame log {}: {e}", path.display())))?,
        ),
        None => None,
    };
    let kill_at = kill_schedule(config.kill_seed, config.kill_workers, config.items);
    let (tx, rx) = channel();
    let mut co = Coordinator {
        end,
        lease_items,
        next: config.base,
        next_lease: 0,
        pending: VecDeque::new(),
        tiles: Vec::new(),
        slots: Vec::new(),
        tx,
        stats: DistStats::default(),
        frame_log,
        halting: false,
        shutting_down: false,
        progress_items: 0,
        kill_at,
        cfg: config,
        hooks,
    };
    for shard in 0..shards {
        let mut slot = Slot {
            shard,
            epoch: 0,
            child: None,
            stdin: None,
            state: SlotState::Gone,
            restarts: 0,
            kill_mark: false,
        };
        co.spawn_worker(&mut slot);
        co.slots.push(slot);
    }
    let outcome = co.event_loop(&rx);
    co.shutdown_fleet();
    let mut outcome = outcome?;
    co.hooks.metrics.set_gauge("air_dist_workers_alive", &[], 0);
    outcome.stats = co.stats;
    Ok(outcome)
}

/// Deterministic chaos schedule: `kills` item-progress thresholds in
/// `[1, items]`, sorted. When the fleet's cumulative item progress
/// (heartbeat cursor advances plus result tails) crosses a threshold,
/// the worker that sent the crossing frame is SIGKILLed. Because a
/// completing campaign progresses past every item, every threshold is
/// guaranteed to fire.
fn kill_schedule(seed: u64, kills: u64, items: u64) -> VecDeque<u64> {
    let mut rng = SplitMix64::new(seed);
    let mut at: Vec<u64> = (0..kills).map(|_| 1 + rng.below(items.max(1))).collect();
    at.sort_unstable();
    at.into()
}

/// Exponential backoff for the `attempt`-th restart (1-based), capped
/// so a byzantine flapper cannot stall the campaign for minutes.
fn backoff_for(base: Duration, attempt: u32) -> Duration {
    let factor = 1u32 << attempt.saturating_sub(1).min(6);
    base.saturating_mul(factor).min(Duration::from_secs(5))
}

/// Length of the contiguous covered prefix starting at `base`.
/// `tiles` must be sorted by `lo`.
pub(crate) fn contiguous_covered(tiles: &[Tile], base: u64) -> u64 {
    let mut frontier = base;
    for t in tiles {
        if t.lo > frontier {
            break;
        }
        frontier = frontier.max(t.hi);
    }
    frontier - base
}

impl Coordinator {
    fn event_loop(&mut self, rx: &Receiver<Ev>) -> Result<DistOutcome, DistError> {
        loop {
            self.check_cancel_and_halt();
            self.respawn_due();
            if !self.halting {
                self.issue_leases();
                self.try_steal();
            }
            self.hooks.metrics.set_gauge(
                "air_dist_pending_ranges",
                &[],
                i64::try_from(self.pending.len()).unwrap_or(i64::MAX),
            );
            if self.drained() {
                return self.finish();
            }
            if self.fleet_dead() {
                return Err(err(format!(
                    "all {} worker(s) lost with work remaining (restart budget {} exhausted)",
                    self.slots.len(),
                    self.cfg.max_restarts
                )));
            }
            match rx.recv_timeout(Duration::from_millis(20)) {
                Ok(ev) => self.handle_event(ev)?,
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(err("coordinator event channel closed unexpectedly"))
                }
            }
            self.check_hangs();
        }
    }

    /// All work accounted for: nothing pending or unissued, and no
    /// worker still holds a lease. During a halt the unissued tail is
    /// intentionally abandoned, so only in-flight leases gate draining.
    fn drained(&self) -> bool {
        let busy = self
            .slots
            .iter()
            .any(|s| matches!(s.state, SlotState::Busy(_)));
        if busy {
            return false;
        }
        if self.halting {
            // Workers that never said hello can't hold work.
            return true;
        }
        self.next >= self.end && self.pending.is_empty()
    }

    fn fleet_dead(&self) -> bool {
        self.slots
            .iter()
            .all(|s| matches!(s.state, SlotState::Gone))
    }

    fn finish(&mut self) -> Result<DistOutcome, DistError> {
        self.tiles.retain(|t| t.hi > t.lo);
        self.tiles.sort_by_key(|t| t.lo);
        let base = self.cfg.base;
        let covered = contiguous_covered(&self.tiles, base);
        let complete = !self.halting && self.next >= self.end && self.pending.is_empty();
        if complete {
            // Invariant 1 (disjoint, exact): verify before anyone
            // trusts the merge.
            let mut frontier = base;
            for t in &self.tiles {
                if t.lo != frontier {
                    return Err(err(format!(
                        "internal coverage bug: expected tile at {frontier}, found [{}, {})",
                        t.lo, t.hi
                    )));
                }
                frontier = t.hi;
            }
            if frontier != self.end {
                return Err(err(format!(
                    "internal coverage bug: tiles end at {frontier}, campaign ends at {}",
                    self.end
                )));
            }
        }
        Ok(DistOutcome {
            tiles: std::mem::take(&mut self.tiles),
            complete,
            covered,
            stats: self.stats,
        })
    }

    fn check_cancel_and_halt(&mut self) {
        if self.halting {
            return;
        }
        let cancelled = self
            .hooks
            .cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::SeqCst));
        let halted = self.hooks.halt_after.is_some_and(|h| {
            let in_flight: u64 = self
                .slots
                .iter()
                .filter_map(|s| match &s.state {
                    SlotState::Busy(a) => Some(a.cursor.saturating_sub(a.lo)),
                    _ => None,
                })
                .sum();
            let done: u64 = self.tiles.iter().map(|t| t.hi - t.lo).sum();
            done + in_flight >= h
        });
        if !(cancelled || halted) {
            return;
        }
        self.halting = true;
        for i in 0..self.slots.len() {
            if let SlotState::Busy(a) = &self.slots[i].state {
                let frame = Frame::Truncate {
                    lease: a.lease,
                    hi: a.cursor.max(a.lo),
                };
                self.send_to(i, &frame);
            }
        }
    }

    fn respawn_due(&mut self) {
        if self.halting {
            return;
        }
        let now = Instant::now();
        for i in 0..self.slots.len() {
            let due = matches!(self.slots[i].state, SlotState::Waiting { due } if due <= now);
            if due {
                let (shard_v, epoch_v, restarts_v) = {
                    let s = &self.slots[i];
                    (s.shard, s.epoch, s.restarts)
                };
                let mut slot = std::mem::replace(
                    &mut self.slots[i],
                    Slot {
                        shard: shard_v,
                        epoch: epoch_v,
                        child: None,
                        stdin: None,
                        state: SlotState::Gone,
                        restarts: restarts_v,
                        kill_mark: false,
                    },
                );
                let attempt = u64::from(slot.restarts);
                self.spawn_worker(&mut slot);
                self.stats.workers_restarted += 1;
                self.hooks.metrics.inc("air_dist_workers_restarted", &[]);
                let shard = slot.shard;
                self.hooks
                    .tracer
                    .emit_with(|| EventKind::WorkerRestarted { shard, attempt });
                self.slots[i] = slot;
            }
        }
    }

    fn spawn_worker(&mut self, slot: &mut Slot) {
        slot.epoch += 1;
        slot.kill_mark = false;
        let shard = slot.shard;
        let epoch = slot.epoch;
        let spawned = Command::new(&self.hooks.program)
            .args((self.hooks.args_for)(shard))
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn();
        match spawned {
            Ok(mut child) => {
                let stdout = child.stdout.take();
                let stdin = child.stdin.take();
                slot.stdin = stdin.map(FrameWriter::new);
                slot.child = Some(child);
                slot.state = SlotState::Starting {
                    since: Instant::now(),
                };
                self.stats.workers_spawned += 1;
                if let Some(stdout) = stdout {
                    let tx = self.tx.clone();
                    thread::spawn(move || {
                        let mut reader = BufReader::new(stdout);
                        loop {
                            match read_frame(&mut reader, DEFAULT_MAX_FRAME) {
                                Ok(Some(payload)) => match Frame::parse(&payload) {
                                    Ok(frame) => {
                                        if tx
                                            .send(Ev::Frame {
                                                shard,
                                                epoch,
                                                frame,
                                            })
                                            .is_err()
                                        {
                                            return;
                                        }
                                    }
                                    Err(e) => {
                                        let _ = tx.send(Ev::Eof {
                                            shard,
                                            epoch,
                                            detail: format!("protocol: {e}"),
                                        });
                                        return;
                                    }
                                },
                                Ok(None) => {
                                    let _ = tx.send(Ev::Eof {
                                        shard,
                                        epoch,
                                        detail: "exit".to_string(),
                                    });
                                    return;
                                }
                                Err(e) => {
                                    let _ = tx.send(Ev::Eof {
                                        shard,
                                        epoch,
                                        detail: format!("protocol: {e}"),
                                    });
                                    return;
                                }
                            }
                        }
                    });
                }
            }
            Err(e) => {
                // Treat a spawn failure like an instant worker loss so
                // the backoff/abandon policy applies uniformly.
                eprintln!(
                    "air dist: shard {shard}: spawn {} failed: {e}",
                    self.hooks.program.display()
                );
                slot.child = None;
                slot.stdin = None;
                slot.state = SlotState::Starting {
                    since: Instant::now(),
                };
                let _ = self.tx.send(Ev::Eof {
                    shard,
                    epoch,
                    detail: "exit".to_string(),
                });
            }
        }
    }

    fn issue_leases(&mut self) {
        for i in 0..self.slots.len() {
            if !matches!(self.slots[i].state, SlotState::Idle) {
                continue;
            }
            let range = if let Some(p) = self.pending.pop_front() {
                Some(p)
            } else if self.next < self.end {
                let lo = self.next;
                let hi = (lo + self.lease_items).min(self.end);
                self.next = hi;
                Some(PendingRange {
                    lo,
                    hi,
                    stolen_from: None,
                })
            } else {
                None
            };
            let Some(range) = range else { return };
            self.next_lease += 1;
            let lease = self.next_lease;
            let shard = self.slots[i].shard;
            if let Some((stolen_lease, from_shard)) = range.stolen_from {
                self.stats.leases_stolen += 1;
                self.hooks.metrics.inc("air_dist_leases_stolen", &[]);
                let at = range.lo;
                self.hooks.tracer.emit_with(|| EventKind::LeaseStolen {
                    lease: stolen_lease,
                    from_shard,
                    to_shard: shard,
                    at,
                });
            }
            let frame = Frame::Lease {
                lease,
                lo: range.lo,
                hi: range.hi,
            };
            self.send_to(i, &frame);
            self.slots[i].state = SlotState::Busy(Active {
                lease,
                lo: range.lo,
                hi: range.hi,
                cursor: range.lo,
                last_beat: Instant::now(),
                steal_to: None,
            });
            self.stats.leases_issued += 1;
            self.hooks.metrics.inc("air_dist_leases_issued", &[]);
            let (lo, hi) = (range.lo, range.hi);
            self.hooks.tracer.emit_with(|| EventKind::LeaseIssued {
                lease,
                shard,
                lo,
                hi,
            });
        }
    }

    /// With no fresh or pending work left, put idle workers back to
    /// work by splitting the straggler with the most remaining items.
    fn try_steal(&mut self) {
        if self.next < self.end || !self.pending.is_empty() {
            return;
        }
        let idle = self
            .slots
            .iter()
            .filter(|s| matches!(s.state, SlotState::Idle))
            .count();
        if idle == 0 {
            return;
        }
        let mut best: Option<(usize, u64)> = None;
        for (i, s) in self.slots.iter().enumerate() {
            if let SlotState::Busy(a) = &s.state {
                if a.steal_to.is_some() {
                    continue; // one steal in flight per lease
                }
                let remaining = a.hi.saturating_sub(a.cursor);
                if remaining >= self.cfg.steal_min * 2 && best.is_none_or(|(_, r)| remaining > r) {
                    best = Some((i, remaining));
                }
            }
        }
        let Some((i, remaining)) = best else { return };
        if let SlotState::Busy(a) = &mut self.slots[i].state {
            let mid = a.cursor + remaining / 2;
            a.steal_to = Some(mid);
            let frame = Frame::Truncate {
                lease: a.lease,
                hi: mid,
            };
            self.send_to(i, &frame);
        }
    }

    fn handle_event(&mut self, ev: Ev) -> Result<(), DistError> {
        match ev {
            Ev::Frame {
                shard,
                epoch,
                frame,
            } => {
                let Some(i) = self.slot_index(shard, epoch) else {
                    return Ok(()); // stale epoch: a ghost of a killed worker
                };
                self.log_frame("recv", shard, &frame);
                match frame {
                    Frame::Hello { shard: claimed, .. } => {
                        if claimed != shard {
                            self.lose(i, "protocol");
                            return Ok(());
                        }
                        if matches!(self.slots[i].state, SlotState::Starting { .. }) {
                            self.slots[i].state = SlotState::Idle;
                            let pid = self.slots[i]
                                .child
                                .as_ref()
                                .map(|c| u64::from(c.id()))
                                .unwrap_or_default();
                            self.hooks
                                .tracer
                                .emit_with(|| EventKind::WorkerSpawned { shard, pid });
                            self.update_alive_gauge();
                        }
                    }
                    Frame::Heartbeat { lease, next } => {
                        if let SlotState::Busy(a) = &mut self.slots[i].state {
                            if a.lease == lease {
                                let was = a.cursor;
                                a.cursor = next.clamp(a.lo, a.hi);
                                a.last_beat = Instant::now();
                                let gained = a.cursor.saturating_sub(was);
                                self.progress_items += gained;
                            }
                        }
                        self.maybe_chaos_kill(i);
                    }
                    Frame::Result {
                        lease,
                        lo,
                        stopped,
                        payload,
                    } => {
                        let state = std::mem::replace(&mut self.slots[i].state, SlotState::Idle);
                        let SlotState::Busy(a) = state else {
                            self.slots[i].state = state;
                            self.lose(i, "protocol");
                            return Ok(());
                        };
                        if a.lease != lease || a.lo != lo || stopped < lo || stopped > a.hi {
                            self.lose(i, "protocol");
                            return Ok(());
                        }
                        if stopped > lo {
                            self.tiles.push(Tile {
                                lo,
                                hi: stopped,
                                payload,
                            });
                        }
                        if stopped < a.hi && !self.halting {
                            // Unfinished tail: reissue. Provenance is a
                            // steal only if we truncated for one.
                            self.pending.push_back(PendingRange {
                                lo: stopped,
                                hi: a.hi,
                                stolen_from: a.steal_to.map(|_| (lease, shard)),
                            });
                        }
                        // A result advances the chaos clock by the
                        // lease tail no heartbeat claimed yet, so small
                        // campaigns whose leases finish between
                        // heartbeats still exercise worker kills (the
                        // result frame is already banked — the kill
                        // lands between leases, like a crash there).
                        self.progress_items += stopped.saturating_sub(a.cursor);
                        self.maybe_chaos_kill(i);
                    }
                    Frame::Error { message } => {
                        return Err(err(format!("shard {shard}: worker error: {message}")));
                    }
                    Frame::Lease { .. } | Frame::Truncate { .. } | Frame::Shutdown => {
                        self.lose(i, "protocol");
                    }
                }
            }
            Ev::Eof {
                shard,
                epoch,
                detail,
            } => {
                let Some(i) = self.slot_index(shard, epoch) else {
                    return Ok(());
                };
                if self.shutting_down {
                    return Ok(());
                }
                let reason = if self.slots[i].kill_mark {
                    "killed"
                } else if detail.starts_with("protocol") {
                    "protocol"
                } else {
                    "exit"
                };
                self.lose(i, reason);
            }
        }
        Ok(())
    }

    fn slot_index(&self, shard: u64, epoch: u64) -> Option<usize> {
        self.slots
            .iter()
            .position(|s| s.shard == shard && s.epoch == epoch)
    }

    fn check_hangs(&mut self) {
        let now = Instant::now();
        let timeout = self.cfg.hang_timeout;
        for i in 0..self.slots.len() {
            let hung = match &self.slots[i].state {
                SlotState::Busy(a) => now.duration_since(a.last_beat) > timeout,
                SlotState::Starting { since } => now.duration_since(*since) > timeout,
                _ => false,
            };
            if hung {
                self.lose(i, "hang");
            }
        }
    }

    /// SIGKILL the worker whose frame pushed the item-progress clock
    /// past the chaos schedule's next threshold.
    fn maybe_chaos_kill(&mut self, i: usize) {
        let due = self
            .kill_at
            .front()
            .is_some_and(|&at| self.progress_items >= at);
        if !due {
            return;
        }
        self.kill_at.pop_front();
        if self.slots[i].child.is_some() {
            self.slots[i].kill_mark = true;
            if let Some(child) = &mut self.slots[i].child {
                let _ = child.kill();
            }
            self.stats.kills += 1;
        }
    }

    /// A worker is gone (died, hung, or spoke garbage): salvage its
    /// lease from the crash checkpoint and schedule a restart.
    fn lose(&mut self, i: usize, reason: &str) {
        let shard = self.slots[i].shard;
        if let Some(child) = &mut self.slots[i].child {
            let _ = child.kill();
            let _ = child.wait();
        }
        self.slots[i].child = None;
        self.slots[i].stdin = None;
        self.slots[i].epoch += 1; // orphan any in-flight events
        self.stats.workers_lost += 1;
        self.hooks.metrics.inc("air_dist_workers_lost", &[]);
        {
            let reason = reason.to_string();
            self.hooks
                .tracer
                .emit_with(|| EventKind::WorkerLost { shard, reason });
        }
        let state = std::mem::replace(&mut self.slots[i].state, SlotState::Gone);
        if let SlotState::Busy(a) = state {
            // Invariant 2: resume at the shard's last crash-safe
            // checkpoint, or re-run the lease from scratch.
            match (self.hooks.recover)(shard, a.lo, a.hi) {
                Some((stopped, payload)) if a.lo < stopped && stopped <= a.hi => {
                    self.tiles.push(Tile {
                        lo: a.lo,
                        hi: stopped,
                        payload,
                    });
                    if stopped < a.hi {
                        self.pending.push_back(PendingRange {
                            lo: stopped,
                            hi: a.hi,
                            stolen_from: None,
                        });
                    }
                }
                _ => {
                    self.pending.push_back(PendingRange {
                        lo: a.lo,
                        hi: a.hi,
                        stolen_from: None,
                    });
                }
            }
        }
        self.slots[i].restarts += 1;
        self.slots[i].state = if self.slots[i].restarts > self.cfg.max_restarts {
            SlotState::Gone
        } else {
            SlotState::Waiting {
                due: Instant::now() + backoff_for(self.cfg.restart_backoff, self.slots[i].restarts),
            }
        };
        self.update_alive_gauge();
    }

    fn update_alive_gauge(&self) {
        let alive = self
            .slots
            .iter()
            .filter(|s| {
                matches!(
                    s.state,
                    SlotState::Idle | SlotState::Busy(_) | SlotState::Starting { .. }
                )
            })
            .count();
        self.hooks.metrics.set_gauge(
            "air_dist_workers_alive",
            &[],
            i64::try_from(alive).unwrap_or(i64::MAX),
        );
    }

    fn send_to(&mut self, i: usize, frame: &Frame) {
        let shard = self.slots[i].shard;
        self.log_frame("send", shard, frame);
        if let Some(stdin) = &self.slots[i].stdin {
            // A failed send means the pipe died; the reader thread's
            // EOF event will drive recovery.
            let _ = stdin.send(frame);
        }
    }

    fn log_frame(&mut self, dir: &str, shard: u64, frame: &Frame) {
        if let Some(log) = &mut self.frame_log {
            let _ = writeln!(
                log,
                "{{\"dir\":\"{dir}\",\"shard\":{shard},\"frame\":{}}}",
                frame.render()
            );
        }
    }

    /// Ask every live worker to exit, give the fleet a grace period,
    /// then kill stragglers. Runs on every exit path.
    fn shutdown_fleet(&mut self) {
        self.shutting_down = true;
        for i in 0..self.slots.len() {
            if self.slots[i].child.is_some() {
                self.send_to(i, &Frame::Shutdown);
            }
            self.slots[i].stdin = None; // close stdin: belt and braces
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let mut waiting = false;
            for slot in &mut self.slots {
                if let Some(child) = &mut slot.child {
                    match child.try_wait() {
                        Ok(Some(_)) => slot.child = None,
                        Ok(None) => waiting = true,
                        Err(_) => slot.child = None,
                    }
                }
            }
            if !waiting {
                return;
            }
            if Instant::now() >= deadline {
                for slot in &mut self.slots {
                    if let Some(child) = &mut slot.child {
                        let _ = child.kill();
                        let _ = child.wait();
                    }
                    slot.child = None;
                }
                return;
            }
            thread::sleep(Duration::from_millis(20));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile(lo: u64, hi: u64) -> Tile {
        Tile {
            lo,
            hi,
            payload: String::new(),
        }
    }

    #[test]
    fn contiguous_prefix_walks_sorted_tiles() {
        assert_eq!(contiguous_covered(&[], 10), 0);
        assert_eq!(contiguous_covered(&[tile(10, 14)], 10), 4);
        assert_eq!(contiguous_covered(&[tile(10, 14), tile(14, 20)], 10), 10);
        assert_eq!(contiguous_covered(&[tile(10, 14), tile(16, 20)], 10), 4);
        assert_eq!(contiguous_covered(&[tile(12, 14)], 10), 0);
    }

    #[test]
    fn kill_schedule_is_deterministic_and_sorted() {
        let a = kill_schedule(7, 3, 100);
        let b = kill_schedule(7, 3, 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|&t| (1..=100).contains(&t)));
        assert!(a.iter().zip(a.iter().skip(1)).all(|(x, y)| x <= y));
        assert_ne!(kill_schedule(8, 3, 100), a);
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let base = Duration::from_millis(50);
        assert_eq!(backoff_for(base, 1), Duration::from_millis(50));
        assert_eq!(backoff_for(base, 2), Duration::from_millis(100));
        assert_eq!(backoff_for(base, 3), Duration::from_millis(200));
        assert!(backoff_for(base, 40) <= Duration::from_secs(5));
    }

    #[test]
    fn zero_items_completes_immediately() {
        let outcome = run_distributed(
            DistConfig {
                items: 0,
                ..DistConfig::default()
            },
            DistHooks {
                program: PathBuf::from("/nonexistent"),
                args_for: Box::new(|_| Vec::new()),
                recover: Box::new(|_, _, _| None),
                tracer: Tracer::disabled(),
                metrics: MetricsRegistry::disabled(),
                frame_log: None,
                cancel: None,
                halt_after: None,
            },
        )
        .expect("empty campaign");
        assert!(outcome.complete);
        assert!(outcome.tiles.is_empty());
    }
}
