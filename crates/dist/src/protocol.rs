//! Coordinator ⇄ worker wire frames (`dist-frame` schema).
//!
//! Each frame is one JSON object carried over the length-prefixed
//! transport of [`air_serve`] (`read_frame`/`write_frame`), with a
//! `"frame"` tag naming the variant. The set is closed and documented
//! in `schemas/dist-frame.schema.json`; `cargo run -p air-bench --bin
//! dist_validate` cross-checks a recorded `--dist-frame-log` against
//! that schema and against [`KNOWN_FRAMES`] in CI.
//!
//! Direction of each frame:
//!
//! | frame       | direction            | meaning                                        |
//! |-------------|----------------------|------------------------------------------------|
//! | `hello`     | worker → coordinator | shard is up, ready for leases                  |
//! | `lease`     | coordinator → worker | run items `[lo, hi)`                           |
//! | `truncate`  | coordinator → worker | stop the lease early at `hi` (steal / halt)    |
//! | `heartbeat` | worker → coordinator | liveness + progress (`next` = next item)       |
//! | `result`    | worker → coordinator | lease done: covered `[lo, stopped)`, `payload` |
//! | `error`     | worker → coordinator | lease failed; coordinator aborts the campaign  |
//! | `shutdown`  | coordinator → worker | no more work; exit cleanly                     |
//!
//! The worker's `stopped` in a `result` is **authoritative**: a
//! `truncate` that races past the worker's progress is simply ignored,
//! and the coordinator only reissues `[stopped, hi)` after seeing the
//! result. This makes stealing safe without any locking across
//! processes.

use std::fmt::Write as _;

use air_trace::json::{self, str_lit, Value};

/// Every `"frame"` tag on the wire, in one place so the schema
/// validator and the docs cannot drift from the implementation.
pub const KNOWN_FRAMES: &[&str] = &[
    "hello",
    "lease",
    "truncate",
    "heartbeat",
    "result",
    "error",
    "shutdown",
];

/// One coordinator ⇄ worker message. See the module table for
/// directions and semantics.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Worker `shard` (OS process `pid`) is ready for leases.
    Hello { shard: u64, pid: u64 },
    /// Run items `[lo, hi)` under lease id `lease`.
    Lease { lease: u64, lo: u64, hi: u64 },
    /// Stop lease `lease` at `hi` (work-stealing or campaign halt).
    Truncate { lease: u64, hi: u64 },
    /// Still alive on `lease`; `next` is the next item to run.
    Heartbeat { lease: u64, next: u64 },
    /// Lease `lease` finished: `[lo, stopped)` is covered and `payload`
    /// holds the partial-result checkpoint for that tile.
    Result {
        lease: u64,
        lo: u64,
        stopped: u64,
        payload: String,
    },
    /// The worker hit an unrecoverable error; the campaign aborts.
    Error { message: String },
    /// No more work; the worker should exit 0.
    Shutdown,
}

impl Frame {
    /// The `"frame"` tag this variant renders with.
    pub fn name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "hello",
            Frame::Lease { .. } => "lease",
            Frame::Truncate { .. } => "truncate",
            Frame::Heartbeat { .. } => "heartbeat",
            Frame::Result { .. } => "result",
            Frame::Error { .. } => "error",
            Frame::Shutdown => "shutdown",
        }
    }

    /// Renders the frame as one deterministic JSON object.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"frame\":\"{}\"", self.name());
        match self {
            Frame::Hello { shard, pid } => {
                let _ = write!(out, ",\"shard\":{shard},\"pid\":{pid}");
            }
            Frame::Lease { lease, lo, hi } => {
                let _ = write!(out, ",\"lease\":{lease},\"lo\":{lo},\"hi\":{hi}");
            }
            Frame::Truncate { lease, hi } => {
                let _ = write!(out, ",\"lease\":{lease},\"hi\":{hi}");
            }
            Frame::Heartbeat { lease, next } => {
                let _ = write!(out, ",\"lease\":{lease},\"next\":{next}");
            }
            Frame::Result {
                lease,
                lo,
                stopped,
                payload,
            } => {
                let _ = write!(
                    out,
                    ",\"lease\":{lease},\"lo\":{lo},\"stopped\":{stopped},\"payload\":{}",
                    str_lit(payload)
                );
            }
            Frame::Error { message } => {
                let _ = write!(out, ",\"message\":{}", str_lit(message));
            }
            Frame::Shutdown => {}
        }
        out.push('}');
        out
    }

    /// Parses a frame, rejecting unknown tags and missing fields.
    pub fn parse(text: &str) -> Result<Frame, String> {
        let doc = json::parse(text.trim())?;
        let tag = doc
            .get("frame")
            .and_then(Value::as_str)
            .ok_or_else(|| "missing \"frame\" tag".to_string())?;
        let num = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Value::as_num)
                .map(|n| n as u64)
                .ok_or_else(|| format!("{tag} frame: missing numeric {key:?}"))
        };
        let text_field = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{tag} frame: missing string {key:?}"))
        };
        match tag {
            "hello" => Ok(Frame::Hello {
                shard: num("shard")?,
                pid: num("pid")?,
            }),
            "lease" => Ok(Frame::Lease {
                lease: num("lease")?,
                lo: num("lo")?,
                hi: num("hi")?,
            }),
            "truncate" => Ok(Frame::Truncate {
                lease: num("lease")?,
                hi: num("hi")?,
            }),
            "heartbeat" => Ok(Frame::Heartbeat {
                lease: num("lease")?,
                next: num("next")?,
            }),
            "result" => Ok(Frame::Result {
                lease: num("lease")?,
                lo: num("lo")?,
                stopped: num("stopped")?,
                payload: text_field("payload")?,
            }),
            "error" => Ok(Frame::Error {
                message: text_field("message")?,
            }),
            "shutdown" => Ok(Frame::Shutdown),
            other => Err(format!("unknown frame tag {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let text = f.render();
        assert_eq!(Frame::parse(&text).expect("parse"), f, "wire: {text}");
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(Frame::Hello { shard: 3, pid: 42 });
        roundtrip(Frame::Lease {
            lease: 7,
            lo: 100,
            hi: 164,
        });
        roundtrip(Frame::Truncate { lease: 7, hi: 132 });
        roundtrip(Frame::Heartbeat {
            lease: 7,
            next: 120,
        });
        roundtrip(Frame::Result {
            lease: 7,
            lo: 100,
            stopped: 132,
            payload: "{\"schema\":\"air-fuzz-checkpoint/1\"}".to_string(),
        });
        roundtrip(Frame::Error {
            message: "boom \"quoted\"\nline".to_string(),
        });
        roundtrip(Frame::Shutdown);
    }

    #[test]
    fn every_known_frame_has_a_variant() {
        let rendered = [
            Frame::Hello { shard: 0, pid: 0 }.name(),
            Frame::Lease {
                lease: 0,
                lo: 0,
                hi: 0,
            }
            .name(),
            Frame::Truncate { lease: 0, hi: 0 }.name(),
            Frame::Heartbeat { lease: 0, next: 0 }.name(),
            Frame::Result {
                lease: 0,
                lo: 0,
                stopped: 0,
                payload: String::new(),
            }
            .name(),
            Frame::Error {
                message: String::new(),
            }
            .name(),
            Frame::Shutdown.name(),
        ];
        assert_eq!(rendered.as_slice(), KNOWN_FRAMES);
    }

    #[test]
    fn parse_rejects_unknown_and_malformed() {
        assert!(Frame::parse("{\"frame\":\"warp\"}").is_err());
        assert!(Frame::parse("{\"lease\":1}").is_err());
        assert!(Frame::parse("{\"frame\":\"lease\",\"lease\":1,\"lo\":0}").is_err());
        assert!(Frame::parse("not json").is_err());
    }
}
