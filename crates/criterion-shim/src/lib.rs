//! A self-contained, offline subset of the [criterion](https://docs.rs/criterion)
//! benchmarking API, so `cargo bench` works without network access. It
//! keeps the measurement loop (warm-up, timed samples, median/mean report
//! to stdout) but none of the statistical machinery, HTML reports or
//! command-line filtering of the real crate.
//!
//! Provided surface: [`Criterion`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkGroup::sample_size`], [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`], [`criterion_group!`] and [`criterion_main!`].

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver; collects groups and prints results.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, 10, f);
        self
    }
}

/// A named benchmark within a group, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Upper-bounds the measurement time; accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark closure under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), self.sample_size, f);
        self
    }

    /// Runs one benchmark closure with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (report flushing is a no-op here).
    pub fn finish(&mut self) {}
}

/// The timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, collecting one duration per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One calibration call; keeps total runtime bounded on slow
        // routines while still averaging fast ones over many iterations.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed();
        self.iters_per_sample = if once < Duration::from_micros(50) {
            100
        } else if once < Duration::from_millis(5) {
            10
        } else {
            1
        };
        for _ in 0..self.samples.capacity() {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {id}: no samples");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "  {id}: median {:?}  mean {:?}  ({} samples × {} iters)",
        median,
        mean,
        b.samples.len(),
        b.iters_per_sample
    );
}

/// Declares a function running each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from one or more [`criterion_group!`] names.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut runs = 0usize;
        group.sample_size(3).bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert!(runs >= 3);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
