//! The CLI side of `--shards N`: glue between the campaign commands
//! (`fuzz run`, `corpus`, `chaos`) and the crates/dist coordinator.
//!
//! Each campaign kind provides three things:
//!
//! * a **coordinator** entry point that maps the campaign onto an
//!   integer interval (seeds, program indices, plan indices), spawns
//!   the fleet and merges the returned tiles into the *same* final
//!   report the single-process path prints — byte-identical stdout for
//!   `fuzz run` and `chaos`, modulo wall-clock for `corpus`;
//! * a **worker** entry point (the hidden `--dist-worker K` flag) that
//!   loops over leases, heartbeating between items so truncation
//!   (work-stealing, cancel, halt) lands at the next item boundary;
//! * a **recovery** hook mapping a dead worker's lease to the tile its
//!   last crash-safe checkpoint covers (`fuzz` only — corpus and chaos
//!   leases are cheap enough to re-run from the lease start).
//!
//! SIGINT/SIGTERM flow through the same truncation path as a steal: the
//! coordinator truncates every active lease, collects the authoritative
//! partial tiles, persists the contiguous frontier (fuzz) and exits
//! with the budget-class code 3.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use air_dist::{run_distributed, run_worker, DistConfig, DistHooks, DistStats, LeaseDone, Tile};
use air_fuzz::checkpoint::{self, CheckpointState};
use air_lattice::Governor;
use air_metrics::MetricsRegistry;
use air_trace::Tracer;

use crate::args::{ChaosTask, CorpusTask, DistOpts, DomainKind, EngineKind, StrategyKind};
use crate::run::{usage, AirError, Outcome, TraceSession};

/// How many cases a fuzz worker runs between heartbeats. Truncation is
/// still checked every case (the cap read is one atomic load); only the
/// progress *frame* is rate-limited.
const FUZZ_HEARTBEAT_EVERY: u64 = 8;

/// Builds the fleet envelope shared by all three campaign kinds.
fn fleet_config(dist: &DistOpts, base: u64, items: u64) -> DistConfig {
    let defaults = DistConfig::default();
    DistConfig {
        shards: dist.shards,
        base,
        items,
        lease_items: dist.lease,
        hang_timeout: if dist.hang_ms > 0 {
            Duration::from_millis(dist.hang_ms)
        } else {
            defaults.hang_timeout
        },
        kill_workers: dist.kill_workers,
        kill_seed: dist.kill_seed,
        ..defaults
    }
}

fn self_exe() -> Result<PathBuf, AirError> {
    std::env::current_exe()
        .map_err(|e| AirError::Internal(format!("cannot locate own executable: {e}")))
}

fn dist_error(e: &air_dist::DistError) -> AirError {
    AirError::Internal(format!("distributed campaign failed: {e}"))
}

/// Bridges the async-signal-safe SIGINT flag to the coordinator's
/// cancel token: a watcher thread polls the flag and flips the token,
/// which the coordinator reads between events.
struct CancelWatch {
    token: Arc<AtomicBool>,
    done: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl CancelWatch {
    fn start() -> CancelWatch {
        crate::signal::install();
        let token = Arc::new(AtomicBool::new(false));
        let done = Arc::new(AtomicBool::new(false));
        let thread = std::thread::spawn({
            let token = Arc::clone(&token);
            let done = Arc::clone(&done);
            move || {
                while !done.load(Ordering::Relaxed) {
                    if crate::signal::interrupted() {
                        token.store(true, Ordering::SeqCst);
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        });
        CancelWatch {
            token,
            done,
            thread: Some(thread),
        }
    }

    fn token(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.token)
    }

    /// Stops the watcher and reports whether a signal arrived.
    fn finish(mut self) -> bool {
        self.done.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        crate::signal::interrupted()
    }
}

/// The fleet summary goes to stderr: stdout must stay byte-identical to
/// the single-process report.
fn eprint_fleet(stats: &DistStats) {
    eprintln!(
        "dist fleet: {} worker(s) spawned, {} lease(s) issued, {} stolen, {} worker(s) lost, {} restarted, {} killed",
        stats.workers_spawned,
        stats.leases_issued,
        stats.leases_stolen,
        stats.workers_lost,
        stats.workers_restarted,
        stats.kills
    );
}

// ---------------------------------------------------------------- fuzz

/// Everything `fuzz run --shards N` needs, mirroring the single-process
/// flag set.
pub(crate) struct FuzzDist {
    pub seed: u64,
    pub cases: u64,
    pub oracle: Option<String>,
    pub corpus_dir: String,
    pub shrink: bool,
    pub stats_json: bool,
    pub trace: Option<String>,
    pub checkpoint: Option<String>,
    pub resume: bool,
    pub halt_after: Option<u64>,
    pub dist: DistOpts,
}

/// Per-shard checkpoint file (`<base>.shard-<K>`), the crash-recovery
/// state a SIGKILLed worker leaves behind.
fn shard_checkpoint(base: &str, shard: u64) -> PathBuf {
    PathBuf::from(format!("{base}.shard-{shard}"))
}

/// Crash recovery for a fuzz lease: salvage the dead shard's last
/// checkpoint when it covers a prefix of the lost lease.
fn fuzz_recover(checkpoint: Option<String>, oracle: Option<String>) -> air_dist::RecoverFn {
    Box::new(move |shard, lo, hi| {
        let base = checkpoint.as_ref()?;
        let path = shard_checkpoint(base, shard);
        let text = std::fs::read_to_string(&path).ok()?;
        // Consume the file either way: a stale checkpoint must not leak
        // into a later recovery of a different lease.
        let _ = std::fs::remove_file(&path);
        let lease_opts = air_fuzz::FuzzOptions {
            base_seed: lo,
            cases: hi - lo,
            oracle: oracle.clone(),
            ..air_fuzz::FuzzOptions::default()
        };
        let st = checkpoint::parse(&text, &lease_opts)?;
        (st.next_seed > lo && st.next_seed <= hi).then_some((st.next_seed, text))
    })
}

/// Folds sorted disjoint tiles into one [`CheckpointState`], stopping at
/// the first gap (after a cancel/halt, ranges beyond a lost lease are
/// not resumable from a linear checkpoint — their work is re-run on
/// resume, never double-counted). Returns the merged prefix and whether
/// the fold consumed every tile.
fn merge_fuzz_tiles(seed: u64, tiles: &[Tile]) -> Result<(CheckpointState, bool), AirError> {
    let mut state = CheckpointState {
        next_seed: seed,
        built: 0,
        build_skips: 0,
        eval_skips: 0,
        violations: 0,
        disagreements: 0,
        rows: std::collections::BTreeMap::new(),
        failure_seeds: Vec::new(),
    };
    for (consumed, t) in tiles.iter().enumerate() {
        if t.lo != state.next_seed {
            return Ok((state, consumed == tiles.len()));
        }
        let st = checkpoint::parse_any(&t.payload).ok_or_else(|| {
            AirError::Internal(format!(
                "malformed lease payload for tile [{}, {})",
                t.lo, t.hi
            ))
        })?;
        state.built += st.built;
        state.build_skips += st.build_skips;
        state.eval_skips += st.eval_skips;
        state.violations += st.violations;
        state.disagreements += st.disagreements;
        for (name, row) in st.rows {
            let agg = state.rows.entry(name).or_default();
            agg.runs += row.runs;
            agg.violations += row.violations;
            agg.skips += row.skips;
        }
        // Tiles are sorted and failure seeds live inside their tile's
        // range, so plain concatenation keeps them ascending.
        state.failure_seeds.extend(st.failure_seeds);
        state.next_seed = t.hi;
    }
    Ok((state, true))
}

/// `fuzz run --shards N` — the coordinator. Maps the campaign onto the
/// seed interval, shards it over a worker fleet and merges the tiles
/// into a report byte-identical to the single-process run.
pub(crate) fn fuzz_dist(a: FuzzDist) -> Result<Outcome, AirError> {
    // The coordinator replays failing seeds (rebuild_failures) itself,
    // so the injected-panic hook applies here too.
    air_resilience::install_quiet_fault_hook();
    let session = TraceSession::open(a.trace.as_deref(), false)?;
    let identity = air_fuzz::FuzzOptions {
        base_seed: a.seed,
        cases: a.cases,
        oracle: a.oracle.clone(),
        shrink: a.shrink,
        tracer: Some(session.tracer()),
        ..air_fuzz::FuzzOptions::default()
    };
    let end = a.seed.saturating_add(a.cases);
    let mut tiles: Vec<Tile> = Vec::new();
    let mut base = a.seed;
    if a.resume {
        if let Some(path) = &a.checkpoint {
            if let Ok(Some(text)) = air_resilience::checkpoint::load(Path::new(path)) {
                if let Some(st) = checkpoint::parse(&text, &identity) {
                    if st.next_seed > a.seed && st.next_seed <= end {
                        base = st.next_seed;
                        tiles.push(Tile {
                            lo: a.seed,
                            hi: base,
                            payload: text,
                        });
                    }
                }
            }
        }
    }
    let watch = CancelWatch::start();
    let hooks = DistHooks {
        program: self_exe()?,
        args_for: Box::new({
            let oracle = a.oracle.clone();
            let ckpt = a.checkpoint.clone();
            move |shard| {
                let mut v = vec![
                    "fuzz".to_string(),
                    "run".to_string(),
                    "--dist-worker".to_string(),
                    shard.to_string(),
                    // Shrinking only affects failure rendering, which the
                    // coordinator redoes after the merge; workers skip it.
                    "--no-shrink".to_string(),
                ];
                if let Some(o) = &oracle {
                    v.push("--oracle".to_string());
                    v.push(o.clone());
                }
                if let Some(c) = &ckpt {
                    v.push("--checkpoint".to_string());
                    v.push(c.clone());
                }
                v
            }
        }),
        recover: fuzz_recover(a.checkpoint.clone(), a.oracle.clone()),
        tracer: session.tracer(),
        metrics: MetricsRegistry::new(),
        frame_log: a.dist.frame_log.as_ref().map(PathBuf::from),
        cancel: Some(watch.token()),
        // `--halt-after` counts campaign cases including a resumed
        // prefix; the coordinator counts items in `[base, end)`.
        halt_after: a.halt_after.map(|h| h.saturating_sub(base - a.seed)),
    };
    let fleet = run_distributed(fleet_config(&a.dist, base, end - base), hooks)
        .map_err(|e| dist_error(&e))?;
    let interrupted = watch.finish();
    eprint_fleet(&fleet.stats);
    tiles.extend(fleet.tiles);
    let (state, gap_free) = merge_fuzz_tiles(a.seed, &tiles)?;
    if let Some(ckpt) = &a.checkpoint {
        // Orphaned shard checkpoints (a worker killed after the final
        // merge no longer owes recovery state) are stale either way.
        for shard in 0..a.dist.shards {
            let _ = std::fs::remove_file(shard_checkpoint(ckpt, shard));
        }
    }
    let complete = fleet.complete && gap_free && state.next_seed == end;
    if !complete {
        let done = state.next_seed - a.seed;
        if let Some(path) = &a.checkpoint {
            let text = checkpoint::render_state(&state, a.seed, a.cases, a.oracle.as_deref());
            air_resilience::atomic_write(Path::new(path), &text)
                .map_err(|e| usage(format!("cannot write checkpoint `{path}`: {e}")))?;
        }
        session.finish()?;
        if interrupted {
            eprintln!("interrupted after {done} case(s); checkpoint saved, restart with --resume");
            return Err(AirError::Budget {
                phase: "fuzz.campaign".to_string(),
                spent: done,
                reason: "cancelled".to_string(),
            });
        }
        println!("halted after {done} case(s); checkpoint saved, restart with --resume");
        return Ok(Outcome::Positive);
    }
    let mut report = air_fuzz::CampaignReport {
        base_seed: a.seed,
        cases: a.cases,
        built: state.built,
        build_skips: state.build_skips,
        eval_skips: state.eval_skips,
        violations: state.violations,
        disagreements: state.disagreements,
        oracle_rows: state.rows,
        failures: Vec::new(),
    };
    // Failures are replayed (and minimized) from their seeds, exactly
    // like a single-process resume — both are pure functions of the
    // same seeds, which is what makes the merged report byte-identical.
    air_fuzz::rebuild_failures(&mut report, &state.failure_seeds, &identity);
    if let Some(path) = &a.checkpoint {
        let _ = std::fs::remove_file(path);
    }
    let outcome = crate::run::print_fuzz_report(&report, &a.corpus_dir, a.stats_json)?;
    session.finish()?;
    Ok(outcome)
}

/// `fuzz run --dist-worker K` — the worker. Each lease runs as its own
/// mini-campaign over `[lo, hi)` with the shard's crash-safe checkpoint
/// file; the lease payload *is* the final checkpoint.
pub(crate) fn fuzz_worker(
    shard: u64,
    oracle: Option<String>,
    checkpoint_base: Option<String>,
) -> Result<Outcome, AirError> {
    air_resilience::install_quiet_fault_hook();
    let ckpt = checkpoint_base.map(|base| shard_checkpoint(&base, shard));
    let result = run_worker(shard, std::io::stdin(), std::io::stdout(), |ctx| {
        let watch = air_fuzz::CampaignWatch::new();
        let observer = watch.clone();
        let hb = ctx.clone();
        let lo = ctx.lo;
        let watch = watch.with_progress(move |done| {
            let cap = if done % FUZZ_HEARTBEAT_EVERY == 0 {
                hb.heartbeat(lo + done)
            } else {
                hb.cap()
            };
            if cap < hb.hi {
                observer.truncate(cap.saturating_sub(lo));
            }
        });
        let opts = air_fuzz::FuzzOptions {
            base_seed: ctx.lo,
            cases: ctx.hi - ctx.lo,
            oracle: oracle.clone(),
            shrink: false,
            checkpoint: ckpt.clone(),
            resume: false,
            watch: Some(watch),
            ..air_fuzz::FuzzOptions::default()
        };
        let report = air_fuzz::run_campaign(&opts);
        let stopped = ctx.lo + report.built + report.build_skips;
        let payload = checkpoint::render(&report, stopped, &opts);
        Ok(LeaseDone { stopped, payload })
    });
    // A cleanly exiting worker owes no recovery state.
    if let Some(p) = &ckpt {
        let _ = std::fs::remove_file(p);
    }
    result
        .map(|()| Outcome::Positive)
        .map_err(AirError::Internal)
}

// -------------------------------------------------------------- corpus

fn corpus_worker_argv(task: &CorpusTask) -> Vec<String> {
    let domain = match task.domain {
        DomainKind::Int => "int",
        DomainKind::Oct => "oct",
        DomainKind::Sign => "sign",
        DomainKind::Parity => "parity",
        DomainKind::Const => "const",
        DomainKind::Cong => "cong",
        DomainKind::Karr => "karr",
    };
    let mut v = vec![
        "corpus".to_string(),
        "--dir".to_string(),
        task.dir.clone(),
        "--domain".to_string(),
        domain.to_string(),
        "--strategy".to_string(),
        match task.strategy {
            StrategyKind::Backward => "backward".to_string(),
            StrategyKind::Forward => "forward".to_string(),
        },
        "--engine".to_string(),
        match task.engine {
            EngineKind::Enumerative => "enumerative".to_string(),
            EngineKind::Symbolic => "symbolic".to_string(),
        },
    ];
    if task.uncached {
        v.push("--uncached".to_string());
    }
    v
}

/// `corpus --shards N` — the coordinator. Items are program indices in
/// sorted file order; tiles concatenate back into file order, so rows
/// print exactly where the in-process sweep would put them.
pub(crate) fn corpus_dist(task: &CorpusTask) -> Result<Outcome, AirError> {
    let programs = crate::run::load_corpus_programs(task)?;
    let items = programs.len() as u64;
    println!(
        "corpus sweep: {} programs, {} shard(s), strategy {:?}{}{}",
        programs.len(),
        task.dist.shards.min(items.max(1)),
        task.strategy,
        if task.engine == EngineKind::Symbolic {
            ", symbolic engine"
        } else {
            ""
        },
        if task.uncached { ", uncached" } else { "" }
    );
    let started = std::time::Instant::now();
    let watch = CancelWatch::start();
    let hooks = DistHooks {
        program: self_exe()?,
        args_for: Box::new({
            let argv = corpus_worker_argv(task);
            move |shard| {
                let mut v = argv.clone();
                v.push("--dist-worker".to_string());
                v.push(shard.to_string());
                v
            }
        }),
        // Corpus leases are a handful of sub-second programs: re-running
        // a lost lease is cheaper than checkpointing every row.
        recover: Box::new(|_, _, _| None),
        tracer: Tracer::disabled(),
        metrics: MetricsRegistry::new(),
        frame_log: task.dist.frame_log.as_ref().map(PathBuf::from),
        cancel: Some(watch.token()),
        halt_after: None,
    };
    let fleet =
        run_distributed(fleet_config(&task.dist, 0, items), hooks).map_err(|e| dist_error(&e))?;
    let _ = watch.finish();
    eprint_fleet(&fleet.stats);
    if !fleet.complete {
        eprintln!(
            "corpus sweep interrupted; {} of {} program(s) completed",
            fleet.covered,
            programs.len()
        );
        return Err(AirError::Budget {
            phase: "corpus.sweep".to_string(),
            spent: fleet.covered,
            reason: "cancelled".to_string(),
        });
    }
    let mut reports = Vec::with_capacity(programs.len());
    for t in &fleet.tiles {
        let rows = crate::run::parse_corpus_rows(&t.payload, &task.dir).ok_or_else(|| {
            AirError::Internal(format!(
                "malformed corpus lease payload for tile [{}, {})",
                t.lo, t.hi
            ))
        })?;
        if rows.len() as u64 != t.hi - t.lo {
            return Err(AirError::Internal(format!(
                "corpus tile [{}, {}) carried {} row(s)",
                t.lo,
                t.hi,
                rows.len()
            )));
        }
        reports.extend(rows);
    }
    let total_ms = started.elapsed().as_secs_f64() * 1e3;
    crate::run::print_corpus_rows(task, &reports, total_ms);
    crate::run::corpus_outcome(&reports, fleet.covered)
}

/// `corpus --dist-worker K` — the worker. Verifies one program per
/// heartbeat; a truncated lease stops at the next program boundary.
pub(crate) fn corpus_worker(shard: u64, task: &CorpusTask) -> Result<Outcome, AirError> {
    let programs = crate::run::load_corpus_programs(task)?;
    let dir = task.dir.clone();
    let result = run_worker(shard, std::io::stdin(), std::io::stdout(), move |ctx| {
        if ctx.hi > programs.len() as u64 {
            return Err(format!(
                "lease [{}, {}) beyond corpus of {} program(s)",
                ctx.lo,
                ctx.hi,
                programs.len()
            ));
        }
        let mut rows = Vec::new();
        let mut next = ctx.lo;
        while next < ctx.heartbeat(next) {
            let (name, t) = &programs[next as usize];
            let row = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                crate::run::run_corpus_program(name, t, Tracer::disabled(), Governor::cancellable())
            })) {
                Ok(row) => row,
                Err(payload) => crate::run::ProgramReport::bare(
                    name,
                    crate::run::ProgramStatus::Panicked(crate::run::panic_message(payload)),
                    0.0,
                ),
            };
            rows.push(row);
            next += 1;
        }
        Ok(LeaseDone {
            stopped: next,
            payload: crate::run::render_corpus_checkpoint(&dir, &rows),
        })
    });
    result
        .map(|()| Outcome::Positive)
        .map_err(AirError::Internal)
}

// --------------------------------------------------------------- chaos

/// Counts the corpus without preparing it — the coordinator only needs
/// the program count for the banner and report; workers do the heavy
/// concrete-oracle preparation themselves.
fn count_corpus(dir: &str) -> Result<usize, AirError> {
    let n = std::fs::read_dir(dir)
        .map_err(|e| usage(format!("cannot read corpus dir `{dir}`: {e}")))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "imp"))
        .count();
    if n == 0 {
        return Err(usage(format!("no *.imp programs under `{dir}`")));
    }
    Ok(n)
}

/// `chaos --shards N` — the coordinator. Items are plan indices; plan
/// rows carry no wall-clock data, so the merged report (stdout and
/// `--stats-json`) is byte-identical to the single-process sweep even
/// under worker kills.
pub(crate) fn chaos_dist(task: &ChaosTask) -> Result<Outcome, AirError> {
    let programs = count_corpus(&task.dir)?;
    let fuel = task.fuel.unwrap_or(crate::chaos::DEFAULT_CHAOS_FUEL);
    println!(
        "chaos sweep: {} plan(s) from seed {}, {} program(s), fuel {} per run",
        task.plans, task.seed, programs, fuel
    );
    let watch = CancelWatch::start();
    let hooks = DistHooks {
        program: self_exe()?,
        args_for: Box::new({
            let dir = task.dir.clone();
            let seed = task.seed;
            let fuel_arg = task.fuel;
            move |shard| {
                let mut v = vec![
                    "chaos".to_string(),
                    "--dist-worker".to_string(),
                    shard.to_string(),
                    "--dir".to_string(),
                    dir.clone(),
                    "--seed".to_string(),
                    seed.to_string(),
                ];
                if let Some(f) = fuel_arg {
                    v.push("--fuel".to_string());
                    v.push(f.to_string());
                }
                v
            }
        }),
        // A chaos plan is seed-deterministic: re-running a lost lease
        // reproduces the identical rows.
        recover: Box::new(|_, _, _| None),
        tracer: Tracer::disabled(),
        metrics: MetricsRegistry::new(),
        frame_log: task.dist.frame_log.as_ref().map(PathBuf::from),
        cancel: Some(watch.token()),
        halt_after: None,
    };
    let fleet = run_distributed(fleet_config(&task.dist, 0, task.plans), hooks)
        .map_err(|e| dist_error(&e))?;
    let _ = watch.finish();
    eprint_fleet(&fleet.stats);
    if !fleet.complete {
        eprintln!(
            "chaos sweep interrupted; {} of {} plan(s) completed",
            fleet.covered, task.plans
        );
        return Err(AirError::Budget {
            phase: "chaos.sweep".to_string(),
            spent: fleet.covered,
            reason: "cancelled".to_string(),
        });
    }
    let mut rows = Vec::with_capacity(task.plans as usize);
    for t in &fleet.tiles {
        let tile_rows = crate::chaos::parse_rows(&t.payload).ok_or_else(|| {
            AirError::Internal(format!(
                "malformed chaos lease payload for tile [{}, {})",
                t.lo, t.hi
            ))
        })?;
        if tile_rows.len() as u64 != t.hi - t.lo {
            return Err(AirError::Internal(format!(
                "chaos tile [{}, {}) carried {} row(s)",
                t.lo,
                t.hi,
                tile_rows.len()
            )));
        }
        rows.extend(tile_rows);
    }
    crate::chaos::finish_chaos(task, fuel, programs, &rows)
}

/// `chaos --dist-worker K` — the worker. One fault plan per heartbeat.
pub(crate) fn chaos_worker(shard: u64, task: &ChaosTask) -> Result<Outcome, AirError> {
    air_resilience::install_quiet_fault_hook();
    let programs = crate::chaos::prepare_corpus(&task.dir)?;
    let fuel = task.fuel.unwrap_or(crate::chaos::DEFAULT_CHAOS_FUEL);
    let seed = task.seed;
    let result = run_worker(shard, std::io::stdin(), std::io::stdout(), move |ctx| {
        let mut rows = Vec::new();
        let mut next = ctx.lo;
        while next < ctx.heartbeat(next) {
            rows.push(crate::chaos::run_plan(
                &programs,
                seed.saturating_add(next),
                fuel,
                None,
            ));
            next += 1;
        }
        Ok(LeaseDone {
            stopped: next,
            payload: crate::chaos::render_rows(&rows),
        })
    });
    result
        .map(|()| Outcome::Positive)
        .map_err(AirError::Internal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use air_fuzz::OracleRow;

    fn tile(lo: u64, hi: u64, rows: &[(&str, u64, u64, u64)], failures: &[u64]) -> Tile {
        let state = CheckpointState {
            next_seed: hi,
            built: hi - lo,
            build_skips: 0,
            eval_skips: 0,
            violations: rows.iter().map(|r| r.2).sum(),
            disagreements: 0,
            rows: rows
                .iter()
                .map(|(name, runs, violations, skips)| {
                    (
                        (*name).to_string(),
                        OracleRow {
                            runs: *runs,
                            violations: *violations,
                            skips: *skips,
                        },
                    )
                })
                .collect(),
            failure_seeds: failures.to_vec(),
        };
        Tile {
            lo,
            hi,
            payload: checkpoint::render_state(&state, lo, hi - lo, None),
        }
    }

    #[test]
    fn merge_folds_counters_rows_and_failures_in_order() {
        let tiles = vec![
            tile(10, 14, &[("soundness", 4, 1, 0)], &[12]),
            tile(
                14,
                20,
                &[("soundness", 6, 0, 1), ("progress", 2, 0, 0)],
                &[],
            ),
        ];
        let (state, gap_free) = merge_fuzz_tiles(10, &tiles).unwrap();
        assert!(gap_free);
        assert_eq!(state.next_seed, 20);
        assert_eq!(state.built, 10);
        assert_eq!(state.violations, 1);
        assert_eq!(state.rows["soundness"].runs, 10);
        assert_eq!(state.rows["soundness"].skips, 1);
        assert_eq!(state.rows["progress"].runs, 2);
        assert_eq!(state.failure_seeds, vec![12]);
    }

    #[test]
    fn merge_stops_at_the_first_gap() {
        let tiles = vec![
            tile(0, 4, &[], &[]),
            // Gap: [4, 6) is missing after a cancel.
            tile(6, 8, &[], &[]),
        ];
        let (state, gap_free) = merge_fuzz_tiles(0, &tiles).unwrap();
        assert!(!gap_free);
        assert_eq!(state.next_seed, 4, "frontier stops at the gap");
        assert_eq!(state.built, 4, "work beyond the gap is not counted");
    }

    #[test]
    fn merge_rejects_garbage_payloads() {
        let tiles = vec![Tile {
            lo: 0,
            hi: 4,
            payload: "not json".to_string(),
        }];
        assert!(merge_fuzz_tiles(0, &tiles).is_err());
    }

    #[test]
    fn fuzz_recover_validates_the_lease_identity() {
        let dir = std::env::temp_dir().join(format!("air-dist-recover-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("ck").to_string_lossy().into_owned();
        let recover = fuzz_recover(Some(base.clone()), None);
        // No file: no salvage.
        assert!(recover(3, 0, 16).is_none());
        // A checkpoint for lease [0, 16) stopped at 9.
        let state = CheckpointState {
            next_seed: 9,
            built: 9,
            build_skips: 0,
            eval_skips: 0,
            violations: 0,
            disagreements: 0,
            rows: std::collections::BTreeMap::new(),
            failure_seeds: vec![],
        };
        let text = checkpoint::render_state(&state, 0, 16, None);
        std::fs::write(shard_checkpoint(&base, 3), &text).unwrap();
        let (stopped, payload) = recover(3, 0, 16).expect("salvage");
        assert_eq!(stopped, 9);
        assert_eq!(payload, text);
        // Consumed: a second recovery finds nothing.
        assert!(recover(3, 0, 16).is_none());
        // Mismatched lease bounds are rejected (stale file consumed).
        std::fs::write(shard_checkpoint(&base, 3), &text).unwrap();
        assert!(recover(3, 16, 32).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
