//! Executing parsed CLI commands against the AIR engine.

use std::error::Error;
use std::sync::Arc;
use std::time::Instant;

use air_core::summarize::display_set;
use air_core::{EnumDomain, Lcl, Verdict, Verifier};
use air_domains::{
    AffineDomain, CongruenceEnv, ConstantEnv, IntervalEnv, OctagonDomain, ParityEnv, SignEnv,
};
use air_lang::{parse_bexp, parse_program, Concrete, SemCache, StateSet, Universe};
use air_lattice::{par_map, CacheStats};
use air_trace::{json, JsonlSink, MultiSink, Profiler, Sink, Summary, Tracer};

use crate::args::{Command, CorpusTask, DomainKind, StrategyKind, Task, TraceFormat};

/// The sign of a completed run (drives the exit code).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// Proved / no alarms.
    Positive,
    /// Refuted / alarms present.
    Negative,
}

fn build_universe(task: &Task) -> Result<Universe, Box<dyn Error>> {
    let decls: Vec<(&str, i64, i64)> = task
        .vars
        .iter()
        .map(|v| (v.name.as_str(), v.lo, v.hi))
        .collect();
    Ok(Universe::new(&decls)?)
}

fn build_domain(task: &Task, u: &Universe) -> EnumDomain {
    match task.domain {
        DomainKind::Int => EnumDomain::from_abstraction(u, IntervalEnv::new(u)),
        DomainKind::Oct => EnumDomain::from_abstraction(u, OctagonDomain::new(u)),
        DomainKind::Sign => EnumDomain::from_abstraction(u, SignEnv::new(u)),
        DomainKind::Parity => EnumDomain::from_abstraction(u, ParityEnv::new(u)),
        DomainKind::Const => EnumDomain::from_abstraction(u, ConstantEnv::new(u)),
        DomainKind::Cong => EnumDomain::from_abstraction(u, CongruenceEnv::new(u)),
        DomainKind::Karr => EnumDomain::from_abstraction(u, AffineDomain::new(u)),
    }
}

fn build_sets(
    task: &Task,
    u: &Universe,
) -> Result<(air_lang::Reg, StateSet, Option<StateSet>), Box<dyn Error>> {
    let prog = parse_program(&task.code)?;
    let sem = Concrete::new(u);
    let pre = sem.sat(&parse_bexp(&task.pre)?)?;
    let spec = match &task.spec {
        Some(s) => Some(sem.sat(&parse_bexp(s)?)?),
        None => None,
    };
    Ok((prog, pre, spec))
}

/// Runs a command to completion, printing a human-readable report.
///
/// # Errors
///
/// Any parse, universe or engine error, boxed.
pub fn run(command: Command) -> Result<Outcome, Box<dyn Error>> {
    match command {
        Command::Verify(task) => verify(task),
        Command::Analyze(task) => analyze(task),
        Command::Prove(task) => prove(task),
        Command::Corpus(task) => corpus(task),
        Command::TraceSummarize { file } => trace_summarize(&file),
    }
}

/// The sinks behind a `--trace`/`--profile` run, plus the tracer handle
/// engines receive. Kept until [`TraceSession::finish`] so the JSONL file
/// is flushed and the profile table printed after the workload.
struct TraceSession {
    tracer: Tracer,
    jsonl: Option<Arc<JsonlSink>>,
    profiler: Option<Arc<Profiler>>,
}

impl TraceSession {
    /// Opens the sinks a task asked for; with neither `--trace` nor
    /// `--profile` the tracer is disabled and every emit site is free.
    fn open(trace: Option<&str>, profile: bool) -> Result<TraceSession, Box<dyn Error>> {
        let mut sinks: Vec<Arc<dyn Sink>> = Vec::new();
        let jsonl = match trace {
            Some(path) => {
                let sink = Arc::new(
                    JsonlSink::create(std::path::Path::new(path))
                        .map_err(|e| format!("cannot create trace file `{path}`: {e}"))?,
                );
                sinks.push(sink.clone());
                Some(sink)
            }
            None => None,
        };
        let profiler = if profile {
            let p = Arc::new(Profiler::new());
            sinks.push(p.clone());
            Some(p)
        } else {
            None
        };
        let tracer = match sinks.len() {
            0 => Tracer::disabled(),
            1 => Tracer::new(sinks.pop().expect("one sink")),
            _ => Tracer::new(Arc::new(MultiSink::new(sinks))),
        };
        Ok(TraceSession {
            tracer,
            jsonl,
            profiler,
        })
    }

    fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }

    fn finish(&self) -> Result<(), Box<dyn Error>> {
        if let Some(jsonl) = &self.jsonl {
            jsonl.flush().map_err(|e| format!("trace flush: {e}"))?;
        }
        if let Some(profiler) = &self.profiler {
            println!("\n--- profile ---");
            print!("{}", profiler.render());
        }
        Ok(())
    }
}

/// `air trace summarize FILE` — aggregate a JSONL trace into tables.
fn trace_summarize(file: &str) -> Result<Outcome, Box<dyn Error>> {
    let text = std::fs::read_to_string(file).map_err(|e| format!("cannot read `{file}`: {e}"))?;
    let summary = Summary::from_jsonl(&text)?;
    print!("{}", summary.render());
    Ok(Outcome::Positive)
}

fn build_verifier<'u>(u: &'u Universe, uncached: bool) -> Verifier<'u> {
    if uncached {
        Verifier::uncached(u)
    } else {
        Verifier::new(u)
    }
}

fn print_stats(label: &str, cache: Option<&SemCache>, dom: &EnumDomain, elapsed: f64) {
    println!("\n--- stats: {label} ---");
    println!("wall time:      {:.3} ms", elapsed * 1e3);
    match cache {
        Some(c) => {
            println!("exec cache:     {}", c.exec_stats());
            println!("wlp cache:      {}", c.wlp_stats());
            println!("sat cache:      {}", c.sat_stats());
        }
        None => println!("semantic cache: disabled (--uncached)"),
    }
    println!("closure cache:  {}", dom.cache_stats());
    println!("interner:       {}", dom.interner_stats());
}

fn cache_stats_json(stats: &CacheStats) -> String {
    format!(
        "{{\"hits\":{},\"misses\":{},\"bypasses\":{},\"entries\":{}}}",
        stats.hits, stats.misses, stats.bypasses, stats.entries
    )
}

/// The `--stats-json` rendering: everything `print_stats` shows, as one
/// JSON object on one line (machine-consumable; the human table stays the
/// `--stats` default).
fn stats_json(label: &str, cache: Option<&SemCache>, dom: &EnumDomain, elapsed: f64) -> String {
    let mut out = String::from("{\"label\":");
    json::escape_str(label, &mut out);
    out.push_str(&format!(",\"wall_ms\":{:.3}", elapsed * 1e3));
    match cache {
        Some(c) => out.push_str(&format!(
            ",\"semantic_cache\":{{\"exec\":{},\"wlp\":{},\"sat\":{}}}",
            cache_stats_json(&c.exec_stats()),
            cache_stats_json(&c.wlp_stats()),
            cache_stats_json(&c.sat_stats()),
        )),
        None => out.push_str(",\"semantic_cache\":null"),
    }
    out.push_str(&format!(
        ",\"closure_cache\":{},\"interner\":{}}}",
        cache_stats_json(&dom.cache_stats()),
        cache_stats_json(&dom.interner_stats()),
    ));
    out
}

/// Prints the human table and/or JSON object a task asked for.
fn report_stats(
    task: &Task,
    label: &str,
    cache: Option<&SemCache>,
    dom: &EnumDomain,
    elapsed: f64,
) {
    if task.stats {
        print_stats(label, cache, dom, elapsed);
    }
    if task.stats_json {
        println!("{}", stats_json(label, cache, dom, elapsed));
    }
}

fn verify(task: Task) -> Result<Outcome, Box<dyn Error>> {
    let u = build_universe(&task)?;
    let dom = build_domain(&task, &u);
    let (prog, pre, spec) = build_sets(&task, &u)?;
    let spec = spec.expect("verify requires a spec");
    println!("program:   {prog}");
    println!("input:     {}", display_set(&u, &pre));
    println!("universe:  {} stores", u.size());
    println!("domain:    {}\n", dom.base_name());
    let session = TraceSession::open(task.trace.as_deref(), task.profile)?;
    let verifier = build_verifier(&u, task.uncached).tracer(session.tracer());
    let started = Instant::now();
    let verdict = match task.strategy {
        StrategyKind::Backward => verifier.backward(dom, &prog, &pre, &spec)?,
        StrategyKind::Forward => verifier.forward(dom, &prog, &pre, &spec)?,
    };
    let elapsed = started.elapsed().as_secs_f64();
    print!("{}", verdict.report(&u));
    if !verdict.is_proved() {
        println!(
            "valid inputs: {}",
            display_set(&u, &verdict.valid_input().intersection(&pre))
        );
    }
    report_stats(&task, "verify", verifier.cache(), verdict.domain(), elapsed);
    session.finish()?;
    Ok(match verdict {
        Verdict::Proved { .. } => Outcome::Positive,
        Verdict::Refuted { .. } => Outcome::Negative,
    })
}

fn analyze(task: Task) -> Result<Outcome, Box<dyn Error>> {
    let u = build_universe(&task)?;
    let dom = build_domain(&task, &u);
    let (prog, pre, spec) = build_sets(&task, &u)?;
    let spec = spec.expect("analyze requires a spec");
    let session = TraceSession::open(task.trace.as_deref(), task.profile)?;
    let verifier = build_verifier(&u, task.uncached).tracer(session.tracer());
    let started = Instant::now();
    let counts = verifier.alarm_counts(&dom, &prog, &pre, &spec)?;
    let elapsed = started.elapsed().as_secs_f64();
    println!("program:      {prog}");
    println!("domain:       {}", dom.base_name());
    println!("alarms:       {}", counts.total);
    println!("true alarms:  {}", counts.true_alarms);
    println!("false alarms: {}", counts.false_alarms);
    report_stats(&task, "analyze", verifier.cache(), &dom, elapsed);
    session.finish()?;
    Ok(if counts.total == 0 {
        Outcome::Positive
    } else {
        Outcome::Negative
    })
}

fn prove(task: Task) -> Result<Outcome, Box<dyn Error>> {
    let u = build_universe(&task)?;
    let dom = build_domain(&task, &u);
    let (prog, pre, spec) = build_sets(&task, &u)?;
    // With `--trace-format dot` the trace file receives the derivation
    // tree, not a JSONL event log, so the session opens without it.
    let dot_path = match (task.trace_format, &task.trace) {
        (TraceFormat::Dot, Some(path)) => Some(path.clone()),
        _ => None,
    };
    let jsonl_path = if dot_path.is_some() {
        None
    } else {
        task.trace.as_deref()
    };
    let session = TraceSession::open(jsonl_path, task.profile)?;
    let lcl = if task.uncached {
        Lcl::uncached(&u)
    } else {
        Lcl::new(&u)
    }
    .tracer(session.tracer());
    let write_dot = |derivation: &air_core::Derivation| -> Result<(), Box<dyn Error>> {
        if let Some(path) = &dot_path {
            std::fs::write(path, derivation.to_dot(&u))
                .map_err(|e| format!("cannot write `{path}`: {e}"))?;
            println!("wrote DOT derivation to {path}");
        }
        Ok(())
    };
    let started = Instant::now();
    // With a spec, decide it through the logic; otherwise just derive.
    if let Some(spec) = spec {
        let verdict = lcl.prove_spec(dom, &pre, &prog, &spec)?;
        let (derivation, repaired, outcome) = match &verdict {
            air_core::SpecVerdict::Valid { derivation, domain } => {
                println!("SPEC VALID");
                (derivation, domain, Outcome::Positive)
            }
            air_core::SpecVerdict::TrueAlarm {
                derivation,
                domain,
                witness,
            } => {
                println!(
                    "TRUE ALARM: reachable store {} violates the spec",
                    u.display_store(&u.store_at(*witness))
                );
                (derivation, domain, Outcome::Negative)
            }
        };
        println!(
            "\nLCL_A derivation ({} rule applications):\n",
            derivation.size()
        );
        print!("{}", derivation.render(&u));
        println!(
            "\nrepaired domain: {} (points added: {})",
            repaired.base_name(),
            repaired.num_points()
        );
        write_dot(derivation)?;
        report_stats(
            &task,
            "prove",
            lcl.cache(),
            repaired,
            started.elapsed().as_secs_f64(),
        );
        session.finish()?;
        return Ok(outcome);
    }
    let (derivation, repaired) = lcl.derive_with_repair(dom, &pre, &prog)?;
    println!(
        "LCL_A derivation ({} rule applications):\n",
        derivation.size()
    );
    print!("{}", derivation.render(&u));
    println!(
        "\nrepaired domain: {} (points added: {})",
        repaired.base_name(),
        repaired.num_points()
    );
    println!("post: {}", display_set(&u, &derivation.triple().post));
    write_dot(&derivation)?;
    report_stats(
        &task,
        "prove",
        lcl.cache(),
        &repaired,
        started.elapsed().as_secs_f64(),
    );
    session.finish()?;
    Ok(Outcome::Positive)
}

/// One corpus program's result row.
struct ProgramReport {
    name: String,
    proved: bool,
    points: usize,
    millis: f64,
    exec_cache: String,
    closure_cache: String,
}

/// Extracts the quoted value of `key "..."` from a corpus header line.
fn header_clause(header: &str, key: &str) -> Option<String> {
    let pat = format!("{key} \"");
    let start = header.find(&pat)? + pat.len();
    let rest = &header[start..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Reads one `*.imp` file into a verification [`Task`] using its
/// `# Verified with:` header (vars/pre/spec, optional domain override).
fn parse_corpus_file(
    path: &std::path::Path,
    task: &CorpusTask,
) -> Result<(String, Task), Box<dyn Error>> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
    let header = text
        .lines()
        .filter(|l| l.trim_start().starts_with('#'))
        .find(|l| l.contains("Verified with:"))
        .ok_or_else(|| format!("{}: missing `# Verified with:` header", path.display()))?;
    let missing = |key: &str| format!("{}: header lacks `{key} \"...\"`", path.display());
    let vars = header_clause(header, "vars").ok_or_else(|| missing("vars"))?;
    let pre = header_clause(header, "pre").ok_or_else(|| missing("pre"))?;
    let spec = header_clause(header, "spec").ok_or_else(|| missing("spec"))?;
    let domain = match header_clause(header, "domain") {
        Some(d) => DomainKind::parse(&d)?,
        None => task.domain,
    };
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    Ok((
        name,
        Task {
            vars: crate::args::parse_vars(&vars)?,
            code: text,
            pre,
            spec: Some(spec),
            domain,
            strategy: task.strategy,
            stats: task.stats,
            stats_json: false,
            uncached: task.uncached,
            // The sweep owns the trace session; per-program tasks don't.
            trace: None,
            trace_format: TraceFormat::default(),
            profile: false,
        },
    ))
}

/// Verifies one corpus program, returning a report row. Each program gets
/// its own universe and therefore its own caches — semantic caches must
/// never be shared across universes (equal-looking state sets would alias
/// different store enumerations).
fn run_corpus_program(name: &str, task: &Task, tracer: Tracer) -> Result<ProgramReport, String> {
    let err = |e: Box<dyn Error>| format!("{name}: {e}");
    let _span = tracer.span(|| format!("corpus.{name}"));
    let u = build_universe(task).map_err(err)?;
    let dom = build_domain(task, &u);
    let (prog, pre, spec) = build_sets(task, &u).map_err(err)?;
    let spec = spec.expect("corpus headers always carry a spec");
    let verifier = build_verifier(&u, task.uncached).tracer(tracer);
    let started = Instant::now();
    let verdict = match task.strategy {
        StrategyKind::Backward => verifier.backward(dom, &prog, &pre, &spec),
        StrategyKind::Forward => verifier.forward(dom, &prog, &pre, &spec),
    }
    .map_err(|e| format!("{name}: {e}"))?;
    let millis = started.elapsed().as_secs_f64() * 1e3;
    let exec_cache = match verifier.cache() {
        Some(c) => c.exec_stats().to_string(),
        None => "disabled".into(),
    };
    Ok(ProgramReport {
        name: name.to_string(),
        proved: verdict.is_proved(),
        points: verdict.added_points().len(),
        millis,
        exec_cache,
        closure_cache: verdict.domain().cache_stats().to_string(),
    })
}

/// Sweeps every `*.imp` program under `task.dir`, fanning the programs out
/// over worker threads (`--jobs`). Results are printed in file order
/// regardless of scheduling, so the output is deterministic.
fn corpus(task: CorpusTask) -> Result<Outcome, Box<dyn Error>> {
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(&task.dir)
        .map_err(|e| format!("cannot read corpus dir `{}`: {e}", task.dir))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "imp"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no *.imp programs under `{}`", task.dir).into());
    }
    let programs: Vec<(String, Task)> = files
        .iter()
        .map(|p| parse_corpus_file(p, &task))
        .collect::<Result<_, _>>()?;
    let jobs = if task.jobs == 0 {
        programs.len()
    } else {
        task.jobs
    };
    println!(
        "corpus sweep: {} programs, {} job(s), strategy {:?}{}",
        programs.len(),
        jobs,
        task.strategy,
        if task.uncached { ", uncached" } else { "" }
    );
    let session = TraceSession::open(task.trace.as_deref(), task.profile)?;
    let started = Instant::now();
    let results = par_map(jobs, &programs, |(name, t)| {
        run_corpus_program(name, t, session.tracer())
    });
    let total_ms = started.elapsed().as_secs_f64() * 1e3;
    let mut all_proved = true;
    let mut failures = Vec::new();
    for result in &results {
        match result {
            Ok(report) => {
                let verdict = if report.proved { "PROVED " } else { "REFUTED" };
                all_proved &= report.proved;
                print!(
                    "  {:<14} {} {:>2} point(s) {:>9.3} ms",
                    report.name, verdict, report.points, report.millis
                );
                if task.stats {
                    print!(
                        "  exec cache: {}; closure cache: {}",
                        report.exec_cache, report.closure_cache
                    );
                }
                println!();
            }
            Err(msg) => {
                all_proved = false;
                failures.push(msg.clone());
                println!("  error: {msg}");
            }
        }
    }
    println!("total: {total_ms:.3} ms");
    if task.stats_json {
        let mut out = format!("{{\"label\":\"corpus\",\"wall_ms\":{total_ms:.3},\"programs\":[");
        let mut first = true;
        for report in results.iter().flatten() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":");
            json::escape_str(&report.name, &mut out);
            out.push_str(&format!(
                ",\"proved\":{},\"points\":{},\"wall_ms\":{:.3}}}",
                report.proved, report.points, report.millis
            ));
        }
        out.push_str("]}");
        println!("{out}");
    }
    session.finish()?;
    if !failures.is_empty() {
        return Err(failures.join("; ").into());
    }
    Ok(if all_proved {
        Outcome::Positive
    } else {
        Outcome::Negative
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::VarDecl;

    fn task(code: &str, pre: &str, spec: Option<&str>) -> Task {
        Task {
            vars: vec![VarDecl {
                name: "x".into(),
                lo: -8,
                hi: 8,
            }],
            code: code.into(),
            pre: pre.into(),
            spec: spec.map(str::to_owned),
            domain: DomainKind::Int,
            strategy: StrategyKind::Backward,
            stats: false,
            stats_json: false,
            uncached: false,
            trace: None,
            trace_format: TraceFormat::default(),
            profile: false,
        }
    }

    fn corpus_dir() -> String {
        format!("{}/../../corpus", env!("CARGO_MANIFEST_DIR"))
    }

    #[test]
    fn header_clause_extracts_quoted_values() {
        let h = r#"# Verified with: vars "x:-8..8", pre "x != 0", spec "x >= 1"."#;
        assert_eq!(header_clause(h, "vars").as_deref(), Some("x:-8..8"));
        assert_eq!(header_clause(h, "pre").as_deref(), Some("x != 0"));
        assert_eq!(header_clause(h, "spec").as_deref(), Some("x >= 1"));
        assert_eq!(header_clause(h, "domain"), None);
    }

    #[test]
    fn corpus_sweep_proves_all_programs() {
        let out = corpus(CorpusTask {
            dir: corpus_dir(),
            jobs: 0, // one worker per program
            domain: DomainKind::Int,
            strategy: StrategyKind::Backward,
            stats: true,
            stats_json: false,
            uncached: false,
            trace: None,
            profile: false,
        })
        .unwrap();
        assert_eq!(out, Outcome::Positive);
    }

    #[test]
    fn corpus_sequential_uncached_matches() {
        let out = corpus(CorpusTask {
            dir: corpus_dir(),
            jobs: 1,
            domain: DomainKind::Int,
            strategy: StrategyKind::Backward,
            stats: false,
            stats_json: false,
            uncached: true,
            trace: None,
            profile: false,
        })
        .unwrap();
        assert_eq!(out, Outcome::Positive);
    }

    #[test]
    fn corpus_missing_dir_errors() {
        assert!(corpus(CorpusTask {
            dir: "/nonexistent-air-corpus".into(),
            jobs: 1,
            domain: DomainKind::Int,
            strategy: StrategyKind::Backward,
            stats: false,
            stats_json: false,
            uncached: false,
            trace: None,
            profile: false,
        })
        .is_err());
    }

    #[test]
    fn verify_proved_and_refuted() {
        let proved = verify(task(
            "if (x >= 1) then { skip } else { x := 1 - x }",
            "x != 0",
            Some("x >= 1"),
        ))
        .unwrap();
        assert_eq!(proved, Outcome::Positive);
        let refuted = verify(task("x := x + 1", "x >= 0 && x <= 5", Some("x <= 3"))).unwrap();
        assert_eq!(refuted, Outcome::Negative);
    }

    #[test]
    fn forward_strategy_runs() {
        let mut t = task(
            "if (x >= 1) then { skip } else { x := 1 - x }",
            "x != 0",
            Some("x >= 1"),
        );
        t.strategy = StrategyKind::Forward;
        assert_eq!(verify(t).unwrap(), Outcome::Positive);
    }

    #[test]
    fn analyze_counts_alarms() {
        // Classic AbsVal: A(x ≠ 0) = [-8,8], so the then-branch spuriously
        // lets 0 through — a false alarm against spec x ≠ 0.
        let out = analyze(task(
            "if (x >= 0) then { skip } else { x := 0 - x }",
            "x != 0",
            Some("x != 0"),
        ))
        .unwrap();
        assert_eq!(out, Outcome::Negative);
        let clean = analyze(task("skip", "x > 0", Some("x > 0"))).unwrap();
        assert_eq!(clean, Outcome::Positive);
    }

    #[test]
    fn prove_renders_derivation() {
        let out = prove(task(
            "if (x >= 1) then { skip } else { x := 1 - x }",
            "x != 0",
            None,
        ))
        .unwrap();
        assert_eq!(out, Outcome::Positive);
    }

    #[test]
    fn prove_with_spec_decides() {
        let valid = prove(task(
            "if (x >= 0) then { skip } else { x := 0 - x }",
            "x != 0",
            Some("x != 0"),
        ))
        .unwrap();
        assert_eq!(valid, Outcome::Positive);
        let alarm = prove(task(
            "if (x >= 0) then { skip } else { x := 0 - x }",
            "x != 0",
            Some("x >= 2"),
        ))
        .unwrap();
        assert_eq!(alarm, Outcome::Negative);
    }

    #[test]
    fn every_domain_kind_builds() {
        for d in [
            DomainKind::Int,
            DomainKind::Oct,
            DomainKind::Sign,
            DomainKind::Parity,
            DomainKind::Const,
            DomainKind::Cong,
            DomainKind::Karr,
        ] {
            let mut t = task("x := x + 1", "x = 0", Some("x = 1"));
            t.domain = d;
            assert_eq!(verify(t).unwrap(), Outcome::Positive, "{d:?}");
        }
    }

    #[test]
    fn stats_json_renders_valid_json() {
        let u = Universe::new(&[("x", -8, 8)]).unwrap();
        let dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
        let cache = SemCache::new();
        let line = stats_json("verify", Some(&cache), &dom, 0.001);
        let doc = json::parse(&line).unwrap();
        assert_eq!(
            doc.get("label").and_then(json::Value::as_str),
            Some("verify")
        );
        assert!(doc.get("semantic_cache").is_some());
        // Uncached runs report null for the semantic cache.
        let line = stats_json("verify", None, &dom, 0.001);
        let doc = json::parse(&line).unwrap();
        assert_eq!(doc.get("semantic_cache"), Some(&json::Value::Null));
    }

    #[test]
    fn verify_trace_file_summarizes() {
        let path = std::env::temp_dir().join("air_cli_test_verify.jsonl");
        let mut t = task(
            "if (x >= 1) then { skip } else { x := 1 - x }",
            "x != 0",
            Some("x >= 1"),
        );
        t.trace = Some(path.display().to_string());
        assert_eq!(verify(t).unwrap(), Outcome::Positive);
        let text = std::fs::read_to_string(&path).unwrap();
        let summary = Summary::from_jsonl(&text).unwrap();
        assert!(summary.events > 0);
        assert!(
            summary.phases.contains_key("verify.backward"),
            "{summary:?}"
        );
        assert_eq!(
            trace_summarize(&path.display().to_string()).unwrap(),
            Outcome::Positive
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn prove_writes_dot_derivation() {
        let path = std::env::temp_dir().join("air_cli_test_derivation.dot");
        let mut t = task("x := x + 1", "x = 0", None);
        t.trace = Some(path.display().to_string());
        t.trace_format = TraceFormat::Dot;
        assert_eq!(prove(t).unwrap(), Outcome::Positive);
        let dot = std::fs::read_to_string(&path).unwrap();
        assert!(dot.starts_with("digraph"), "{dot}");
        assert!(dot.contains("transfer"), "{dot}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(verify(task("x := (", "true", Some("true"))).is_err());
        assert!(verify(task("skip", "x <", Some("true"))).is_err());
        let mut t = task("skip", "true", Some("true"));
        t.vars = vec![VarDecl {
            name: "x".into(),
            lo: 5,
            hi: 0,
        }];
        assert!(verify(t).is_err());
    }
}
