//! Executing parsed CLI commands against the AIR engine.

use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::{Duration, Instant};

use air_core::summarize::display_set;
use air_core::{EnumDomain, Lcl, RepairError, Verdict, Verifier};
use air_domains::{
    AffineDomain, CongruenceEnv, ConstantEnv, IntervalEnv, OctagonDomain, ParityEnv, SignEnv,
};
use air_lang::{parse_bexp, parse_program, Concrete, SemCache, SemError, StateSet, Universe};
use air_lattice::{par_map_governed, Budget, CacheStats, Exhaustion, Governor};
use air_resilience::Checkpointer;
use air_trace::{json, EventKind, JsonlSink, MultiSink, Profiler, Sink, Summary, Tracer};

use crate::args::{
    Command, CorpusTask, DomainKind, EngineKind, FuzzCmd, RepairTask, ServeTask, StrategyKind,
    Task, TraceFormat,
};

/// The sign of a completed run (drives the exit code).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// Proved / no alarms.
    Positive,
    /// Refuted / alarms present.
    Negative,
}

/// The CLI's single error type; the variant decides the exit code
/// (`0` proved, `1` refuted, `2` usage, `3` budget, `4` internal).
#[derive(Clone, Debug)]
pub enum AirError {
    /// Bad input: arguments, program text, corpus headers, file I/O.
    Usage(String),
    /// A `--fuel` or `--timeout-ms` budget ran out mid-run.
    Budget {
        /// The engine phase whose loop-head check tripped.
        phase: String,
        /// Fuel ticks spent when the run stopped.
        spent: u64,
        /// `"fuel"`, `"deadline"` or `"cancelled"`.
        reason: String,
    },
    /// An engine invariant was violated (a bug, surfaced not panicked).
    Internal(String),
}

impl AirError {
    /// The process exit code for this error.
    pub fn exit_code(&self) -> u8 {
        match self {
            AirError::Usage(_) => 2,
            AirError::Budget { .. } => 3,
            AirError::Internal(_) => 4,
        }
    }
}

impl fmt::Display for AirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AirError::Usage(msg) => write!(f, "{msg}"),
            AirError::Budget {
                phase,
                spent,
                reason,
            } => write!(
                f,
                "budget exhausted in {phase} ({spent} ticks spent): {reason}"
            ),
            AirError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for AirError {}

/// Maps input-level failures (parse errors, bad bounds, I/O) to exit 2.
pub(crate) fn usage(e: impl fmt::Display) -> AirError {
    AirError::Usage(e.to_string())
}

fn budget_error(e: &Exhaustion) -> AirError {
    AirError::Budget {
        phase: e.phase.clone(),
        spent: e.spent,
        reason: e.reason.name().to_string(),
    }
}

/// Maps an engine error to the CLI error, printing the sound partial
/// result an exhausted run carries (abstract interpretation is sound in
/// any pointed refinement, so a cut-off repair still yields a valid
/// over-approximation — only precision needs the completed repair).
fn engine_error(u: &Universe, e: RepairError) -> AirError {
    match e {
        RepairError::Exhausted(partial) => {
            let ex = &partial.exhaustion;
            println!(
                "BUDGET EXHAUSTED in {} after {} tick(s): {}",
                ex.phase,
                ex.spent,
                ex.reason.name()
            );
            println!(
                "partial repair: {} point(s) added so far",
                partial.points.len()
            );
            if let Some(inv) = &partial.invariant {
                println!(
                    "partial invariant (sound over-approximation): {}",
                    display_set(u, inv)
                );
            }
            budget_error(ex)
        }
        RepairError::Sem(SemError::Exhausted(ex)) => budget_error(&ex),
        RepairError::Sem(other) => AirError::Usage(other.to_string()),
        RepairError::Internal(msg) => AirError::Internal(msg),
    }
}

fn build_budget(fuel: Option<u64>, timeout_ms: Option<u64>) -> Budget {
    Budget {
        fuel,
        timeout: timeout_ms.map(Duration::from_millis),
    }
}

pub(crate) fn build_universe(task: &Task) -> Result<Universe, AirError> {
    let decls: Vec<(&str, i64, i64)> = task
        .vars
        .iter()
        .map(|v| (v.name.as_str(), v.lo, v.hi))
        .collect();
    Universe::new(&decls).map_err(usage)
}

pub(crate) fn build_domain(task: &Task, u: &Universe) -> EnumDomain {
    match task.domain {
        DomainKind::Int => EnumDomain::from_abstraction(u, IntervalEnv::new(u)),
        DomainKind::Oct => EnumDomain::from_abstraction(u, OctagonDomain::new(u)),
        DomainKind::Sign => EnumDomain::from_abstraction(u, SignEnv::new(u)),
        DomainKind::Parity => EnumDomain::from_abstraction(u, ParityEnv::new(u)),
        DomainKind::Const => EnumDomain::from_abstraction(u, ConstantEnv::new(u)),
        DomainKind::Cong => EnumDomain::from_abstraction(u, CongruenceEnv::new(u)),
        DomainKind::Karr => EnumDomain::from_abstraction(u, AffineDomain::new(u)),
    }
}

pub(crate) fn build_sets(
    task: &Task,
    u: &Universe,
) -> Result<(air_lang::Reg, StateSet, Option<StateSet>), AirError> {
    let prog = parse_program(&task.code).map_err(usage)?;
    let sem = Concrete::new(u);
    let pre = sem
        .sat(&parse_bexp(&task.pre).map_err(usage)?)
        .map_err(usage)?;
    let spec = match &task.spec {
        Some(s) => Some(sem.sat(&parse_bexp(s).map_err(usage)?).map_err(usage)?),
        None => None,
    };
    Ok((prog, pre, spec))
}

/// Runs a command to completion, printing a human-readable report.
///
/// # Errors
///
/// [`AirError`] carrying the exit code: usage (2), budget (3) or
/// internal (4).
pub fn run(command: Command) -> Result<Outcome, AirError> {
    match command {
        Command::Verify(task) => verify(task),
        Command::Analyze(task) => analyze(task),
        Command::Prove(task) => prove(task),
        Command::Corpus(task) => corpus(task),
        Command::Repair(task) => repair(task),
        Command::TraceSummarize { file } => trace_summarize(&file),
        Command::Fuzz(cmd) => fuzz(cmd),
        Command::Chaos(task) => crate::chaos::chaos(task),
        Command::Serve(task) => serve(task),
        Command::Top(task) => crate::top::top(task),
    }
}

/// `air serve` — the repair-as-a-service daemon (see SERVING.md). Blocks
/// until a `shutdown` frame or stdio EOF drains the server.
fn serve(task: ServeTask) -> Result<Outcome, AirError> {
    let session = TraceSession::open(task.trace.as_deref(), false)?;
    let mut config = air_serve::ServeConfig {
        stdio: task.stdio,
        tcp: task.tcp.clone(),
        workers: task.workers,
        quota: task.quota,
        metrics: task.metrics,
        metrics_addr: task.metrics_addr.clone(),
        ..air_serve::ServeConfig::default()
    };
    if let Some(max_frame) = task.max_frame {
        config.max_frame = max_frame;
    }
    let server = air_serve::start(config, session.tracer()).map_err(AirError::Usage)?;
    // SIGINT/SIGTERM drain the daemon gracefully: intake stops, queued
    // jobs finish, then `join` returns the final counters.
    crate::signal::install();
    let stop_handle = server.stop_handle();
    let drained = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let watcher = std::thread::spawn({
        let drained = Arc::clone(&drained);
        move || {
            while !drained.load(std::sync::atomic::Ordering::Relaxed) {
                if crate::signal::interrupted() {
                    stop_handle.stop();
                    return;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    });
    let report = server.join();
    drained.store(true, std::sync::atomic::Ordering::Relaxed);
    let _ = watcher.join();
    if crate::signal::interrupted() {
        eprintln!("air-serve: interrupted; drained gracefully");
    }
    // Stdout belongs to the stdio transport; the drain summary goes to
    // stderr with the readiness banner.
    eprintln!(
        "air-serve drained: served={} warm_hits={} aborts={}",
        report.served, report.warm_hits, report.aborts
    );
    session.finish()?;
    Ok(if report.aborts == 0 {
        Outcome::Positive
    } else {
        Outcome::Negative
    })
}

/// Rejects an unknown `--oracle NAME` before any work happens.
fn check_oracle_name(oracle: Option<&str>) -> Result<(), AirError> {
    let Some(name) = oracle else { return Ok(()) };
    if air_fuzz::oracles::registry()
        .iter()
        .any(|(n, _)| *n == name)
    {
        return Ok(());
    }
    let known: Vec<&str> = air_fuzz::oracles::registry()
        .iter()
        .map(|(n, _)| *n)
        .collect();
    Err(AirError::Usage(format!(
        "unknown oracle `{name}` (known: {})",
        known.join(", ")
    )))
}

fn read_seed_file(file: &str) -> Result<air_fuzz::FuzzCase, AirError> {
    let text =
        std::fs::read_to_string(file).map_err(|e| usage(format!("cannot read `{file}`: {e}")))?;
    air_fuzz::seed::parse(&text).map_err(|e| usage(format!("{file}: {e}")))
}

/// Prints the campaign banner, per-oracle rows, failure seed files and
/// the optional `--stats-json` line. Shared verbatim by the
/// single-process and distributed (`--shards N`) paths — one printer is
/// what makes the byte-identical-report guarantee checkable with `diff`.
pub(crate) fn print_fuzz_report(
    report: &air_fuzz::CampaignReport,
    corpus_dir: &str,
    stats_json: bool,
) -> Result<Outcome, AirError> {
    println!(
        "fuzz campaign: seeds {}..{}, {} built, {} build skip(s), {} eval skip(s)",
        report.base_seed,
        report.base_seed.saturating_add(report.cases),
        report.built,
        report.build_skips,
        report.eval_skips
    );
    for (name, row) in &report.oracle_rows {
        let theorem = air_fuzz::oracles::theorem_of(name).unwrap_or("");
        println!(
            "  {name:<18} {theorem:<38} {:>6} run(s) {:>3} violation(s) {:>4} skip(s)",
            row.runs, row.violations, row.skips
        );
    }
    println!(
        "violations: {}, disagreements: {}",
        report.violations, report.disagreements
    );
    if !report.failures.is_empty() {
        std::fs::create_dir_all(corpus_dir)
            .map_err(|e| usage(format!("cannot create `{corpus_dir}`: {e}")))?;
        for f in &report.failures {
            let path = format!("{corpus_dir}/fuzz-{}-{}.imp", f.seed, f.oracle);
            std::fs::write(&path, f.to_seed_file())
                .map_err(|e| usage(format!("cannot write `{path}`: {e}")))?;
            println!(
                "failure: seed {} oracle {} — {} (shrunk to {} command(s), saved {path})",
                f.seed,
                f.oracle,
                f.message,
                f.shrunk.commands()
            );
        }
    }
    if stats_json {
        println!("{}", report.to_json());
    }
    Ok(if report.is_clean() {
        Outcome::Positive
    } else {
        Outcome::Negative
    })
}

/// `air fuzz ...` — theorem-oracle fuzzing (see FUZZING.md).
fn fuzz(cmd: FuzzCmd) -> Result<Outcome, AirError> {
    match cmd {
        FuzzCmd::Run {
            seed,
            cases,
            oracle,
            corpus_dir,
            shrink,
            stats_json,
            trace,
            checkpoint,
            resume,
            halt_after,
            dist,
        } => {
            check_oracle_name(oracle.as_deref())?;
            if let Some(shard) = dist.worker {
                return crate::dist::fuzz_worker(shard, oracle, checkpoint);
            }
            if dist.requested() {
                return crate::dist::fuzz_dist(crate::dist::FuzzDist {
                    seed,
                    cases,
                    oracle,
                    corpus_dir,
                    shrink,
                    stats_json,
                    trace,
                    checkpoint,
                    resume,
                    halt_after,
                    dist,
                });
            }
            // The fault-injection differential axis panics on purpose in
            // every case; keep those backtraces out of the report.
            air_resilience::install_quiet_fault_hook();
            crate::signal::install();
            let session = TraceSession::open(trace.as_deref(), false)?;
            // SIGINT/SIGTERM turn into a cooperative truncation at the
            // next case boundary; the campaign then writes its final
            // checkpoint through the normal cut-off path.
            let watch = air_fuzz::CampaignWatch::new();
            let observer = watch.clone();
            let watch = watch.with_progress(move |done| {
                if crate::signal::interrupted() {
                    observer.truncate(done);
                }
            });
            let opts = air_fuzz::FuzzOptions {
                base_seed: seed,
                cases,
                oracle,
                shrink,
                tracer: Some(session.tracer()),
                checkpoint: checkpoint.map(std::path::PathBuf::from),
                resume,
                halt_after,
                watch: Some(watch),
                ..air_fuzz::FuzzOptions::default()
            };
            let report = air_fuzz::run_campaign(&opts);
            let done = report.built + report.build_skips;
            if crate::signal::interrupted() && done < report.cases {
                eprintln!(
                    "interrupted after {done} case(s); checkpoint saved, restart with --resume"
                );
                session.finish()?;
                return Err(AirError::Budget {
                    phase: "fuzz.campaign".to_string(),
                    spent: done,
                    reason: "cancelled".to_string(),
                });
            }
            let halted = halt_after.is_some_and(|_| done < report.cases);
            if halted {
                println!("halted after {done} case(s); checkpoint saved, restart with --resume");
                session.finish()?;
                return Ok(Outcome::Positive);
            }
            let outcome = print_fuzz_report(&report, &corpus_dir, stats_json)?;
            session.finish()?;
            Ok(outcome)
        }
        FuzzCmd::Replay { file, oracle } => {
            check_oracle_name(oracle.as_deref())?;
            let case = read_seed_file(&file)?;
            let outcome = air_fuzz::replay_case(&case, oracle.as_deref());
            if let Some(reason) = &outcome.case_skip {
                println!("seed {}: unevaluable ({reason})", case.seed);
                return Ok(Outcome::Positive);
            }
            for (name, msg) in &outcome.violations {
                println!("VIOLATION {name}: {msg}");
            }
            for msg in &outcome.disagreements {
                println!("DISAGREEMENT: {msg}");
            }
            for (name, reason) in &outcome.skips {
                println!("skip {name}: {reason}");
            }
            if outcome.is_clean() {
                println!("seed {}: clean", case.seed);
                Ok(Outcome::Positive)
            } else {
                Ok(Outcome::Negative)
            }
        }
        FuzzCmd::Minimize { file } => {
            let case = read_seed_file(&file)?;
            let outcome = air_fuzz::replay_case(&case, None);
            let target = outcome
                .violations
                .first()
                .map(|(n, _)| n.clone())
                .or_else(|| {
                    (!outcome.disagreements.is_empty()).then(|| "differential".to_string())
                });
            let Some(target) = target else {
                println!("seed {}: replays clean, nothing to minimize", case.seed);
                return Ok(Outcome::Positive);
            };
            let opts = air_fuzz::FuzzOptions::default();
            let shrunk = air_fuzz::minimize(&case, &target, &opts);
            print!("{}", air_fuzz::seed::render(&shrunk, Some(&target), None));
            Ok(Outcome::Negative)
        }
    }
}

/// The sinks behind a `--trace`/`--profile` run, plus the tracer handle
/// engines receive. Kept until [`TraceSession::finish`] so the JSONL file
/// is flushed and the profile table printed after the workload.
pub(crate) struct TraceSession {
    tracer: Tracer,
    jsonl: Option<Arc<JsonlSink>>,
    profiler: Option<Arc<Profiler>>,
}

impl TraceSession {
    /// Opens the sinks a task asked for; with neither `--trace` nor
    /// `--profile` the tracer is disabled and every emit site is free.
    /// Both flags together fan events out to both sinks.
    pub(crate) fn open(trace: Option<&str>, profile: bool) -> Result<TraceSession, AirError> {
        let mut sinks: Vec<Arc<dyn Sink>> = Vec::new();
        let jsonl = match trace {
            Some(path) => {
                let sink = Arc::new(
                    JsonlSink::create(std::path::Path::new(path))
                        .map_err(|e| usage(format!("cannot create trace file `{path}`: {e}")))?,
                );
                sinks.push(sink.clone());
                Some(sink)
            }
            None => None,
        };
        let profiler = if profile {
            let p = Arc::new(Profiler::new());
            sinks.push(p.clone());
            Some(p)
        } else {
            None
        };
        let tracer = match sinks.pop() {
            None => Tracer::disabled(),
            Some(only) if sinks.is_empty() => Tracer::new(only),
            Some(last) => {
                sinks.push(last);
                Tracer::new(Arc::new(MultiSink::new(sinks)))
            }
        };
        Ok(TraceSession {
            tracer,
            jsonl,
            profiler,
        })
    }

    pub(crate) fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }

    pub(crate) fn finish(&self) -> Result<(), AirError> {
        if let Some(jsonl) = &self.jsonl {
            jsonl
                .flush()
                .map_err(|e| AirError::Internal(format!("trace flush: {e}")))?;
        }
        if let Some(profiler) = &self.profiler {
            println!("\n--- profile ---");
            print!("{}", profiler.render());
        }
        Ok(())
    }
}

/// `air trace summarize FILE` — aggregate a JSONL trace into tables.
fn trace_summarize(file: &str) -> Result<Outcome, AirError> {
    let text =
        std::fs::read_to_string(file).map_err(|e| usage(format!("cannot read `{file}`: {e}")))?;
    let summary = Summary::from_jsonl(&text).map_err(usage)?;
    print!("{}", summary.render());
    Ok(Outcome::Positive)
}

/// The semantic cache a task's `--engine` flag asks for. `--uncached`
/// returns `None` (the reference path); args parsing already rejects
/// `--uncached --engine symbolic`.
fn build_cache(engine: EngineKind, uncached: bool) -> Option<SemCache> {
    match (engine, uncached) {
        (_, true) => None,
        (EngineKind::Enumerative, false) => Some(SemCache::new()),
        (EngineKind::Symbolic, false) => Some(SemCache::symbolic()),
    }
}

fn build_verifier<'u>(u: &'u Universe, engine: EngineKind, uncached: bool) -> Verifier<'u> {
    match build_cache(engine, uncached) {
        Some(cache) => Verifier::with_cache(u, cache),
        None => Verifier::uncached(u),
    }
}

fn print_stats(label: &str, cache: Option<&SemCache>, dom: &EnumDomain, elapsed: f64) {
    println!("\n--- stats: {label} ---");
    println!("wall time:      {:.3} ms", elapsed * 1e3);
    match cache {
        Some(c) => {
            println!("exec cache:     {}", c.exec_stats());
            println!("wlp cache:      {}", c.wlp_stats());
            println!("sat cache:      {}", c.sat_stats());
        }
        None => println!("semantic cache: disabled (--uncached)"),
    }
    println!("closure cache:  {}", dom.cache_stats());
    println!("interner:       {}", dom.interner_stats());
}

fn cache_stats_json(stats: &CacheStats) -> String {
    format!(
        "{{\"hits\":{},\"misses\":{},\"bypasses\":{},\"entries\":{}}}",
        stats.hits, stats.misses, stats.bypasses, stats.entries
    )
}

/// The `--stats-json` rendering: everything `print_stats` shows, as one
/// JSON object on one line (machine-consumable; the human table stays the
/// `--stats` default).
fn stats_json(label: &str, cache: Option<&SemCache>, dom: &EnumDomain, elapsed: f64) -> String {
    let mut out = String::from("{\"label\":");
    json::escape_str(label, &mut out);
    out.push_str(&format!(",\"wall_ms\":{:.3}", elapsed * 1e3));
    match cache {
        Some(c) => out.push_str(&format!(
            ",\"semantic_cache\":{{\"exec\":{},\"wlp\":{},\"sat\":{}}}",
            cache_stats_json(&c.exec_stats()),
            cache_stats_json(&c.wlp_stats()),
            cache_stats_json(&c.sat_stats()),
        )),
        None => out.push_str(",\"semantic_cache\":null"),
    }
    out.push_str(&format!(
        ",\"closure_cache\":{},\"interner\":{}}}",
        cache_stats_json(&dom.cache_stats()),
        cache_stats_json(&dom.interner_stats()),
    ));
    out
}

/// Prints the human table and/or JSON object a task asked for.
fn report_stats(
    task: &Task,
    label: &str,
    cache: Option<&SemCache>,
    dom: &EnumDomain,
    elapsed: f64,
) {
    if task.stats {
        print_stats(label, cache, dom, elapsed);
    }
    if task.stats_json {
        println!("{}", stats_json(label, cache, dom, elapsed));
    }
}

fn verify(task: Task) -> Result<Outcome, AirError> {
    let u = build_universe(&task)?;
    let dom = build_domain(&task, &u);
    let (prog, pre, spec) = build_sets(&task, &u)?;
    let Some(spec) = spec else {
        return Err(AirError::Usage("`verify` requires --spec".into()));
    };
    println!("program:   {prog}");
    println!("input:     {}", display_set(&u, &pre));
    println!("universe:  {} stores", u.size());
    println!("domain:    {}\n", dom.base_name());
    let session = TraceSession::open(task.trace.as_deref(), task.profile)?;
    let governor = Governor::new(build_budget(task.fuel, task.timeout_ms));
    let verifier = build_verifier(&u, task.engine, task.uncached)
        .tracer(session.tracer())
        .governor(governor);
    let started = Instant::now();
    let result = match task.strategy {
        StrategyKind::Backward => verifier.backward(dom, &prog, &pre, &spec),
        StrategyKind::Forward => verifier.forward(dom, &prog, &pre, &spec),
    };
    let verdict = match result {
        Ok(v) => v,
        Err(e) => {
            let air = engine_error(&u, e);
            session.finish()?;
            return Err(air);
        }
    };
    let elapsed = started.elapsed().as_secs_f64();
    print!("{}", verdict.report(&u));
    if !verdict.is_proved() {
        println!(
            "valid inputs: {}",
            display_set(&u, &verdict.valid_input().intersection(&pre))
        );
    }
    report_stats(&task, "verify", verifier.cache(), verdict.domain(), elapsed);
    session.finish()?;
    Ok(match verdict {
        Verdict::Proved { .. } => Outcome::Positive,
        Verdict::Refuted { .. } => Outcome::Negative,
    })
}

fn analyze(task: Task) -> Result<Outcome, AirError> {
    let u = build_universe(&task)?;
    let dom = build_domain(&task, &u);
    let (prog, pre, spec) = build_sets(&task, &u)?;
    let Some(spec) = spec else {
        return Err(AirError::Usage("`analyze` requires --spec".into()));
    };
    let session = TraceSession::open(task.trace.as_deref(), task.profile)?;
    let governor = Governor::new(build_budget(task.fuel, task.timeout_ms));
    let verifier = build_verifier(&u, task.engine, task.uncached)
        .tracer(session.tracer())
        .governor(governor);
    let started = Instant::now();
    let counts = match verifier.alarm_counts(&dom, &prog, &pre, &spec) {
        Ok(c) => c,
        Err(e) => {
            let air = engine_error(&u, e);
            session.finish()?;
            return Err(air);
        }
    };
    let elapsed = started.elapsed().as_secs_f64();
    println!("program:      {prog}");
    println!("domain:       {}", dom.base_name());
    println!("alarms:       {}", counts.total);
    println!("true alarms:  {}", counts.true_alarms);
    println!("false alarms: {}", counts.false_alarms);
    report_stats(&task, "analyze", verifier.cache(), &dom, elapsed);
    session.finish()?;
    Ok(if counts.total == 0 {
        Outcome::Positive
    } else {
        Outcome::Negative
    })
}

fn prove(task: Task) -> Result<Outcome, AirError> {
    let u = build_universe(&task)?;
    let dom = build_domain(&task, &u);
    let (prog, pre, spec) = build_sets(&task, &u)?;
    // With `--trace-format dot` the trace file receives the derivation
    // tree, not a JSONL event log, so the session opens without it.
    let dot_path = match (task.trace_format, &task.trace) {
        (TraceFormat::Dot, Some(path)) => Some(path.clone()),
        _ => None,
    };
    let jsonl_path = if dot_path.is_some() {
        None
    } else {
        task.trace.as_deref()
    };
    let session = TraceSession::open(jsonl_path, task.profile)?;
    let governor = Governor::new(build_budget(task.fuel, task.timeout_ms));
    let lcl = match build_cache(task.engine, task.uncached) {
        Some(cache) => Lcl::with_cache(&u, cache),
        None => Lcl::uncached(&u),
    }
    .tracer(session.tracer())
    .governor(governor);
    let write_dot = |derivation: &air_core::Derivation| -> Result<(), AirError> {
        if let Some(path) = &dot_path {
            std::fs::write(path, derivation.to_dot(&u))
                .map_err(|e| usage(format!("cannot write `{path}`: {e}")))?;
            println!("wrote DOT derivation to {path}");
        }
        Ok(())
    };
    let started = Instant::now();
    // With a spec, decide it through the logic; otherwise just derive.
    if let Some(spec) = spec {
        let verdict = match lcl.prove_spec(dom, &pre, &prog, &spec) {
            Ok(v) => v,
            Err(e) => {
                let air = engine_error(&u, e);
                session.finish()?;
                return Err(air);
            }
        };
        let (derivation, repaired, outcome) = match &verdict {
            air_core::SpecVerdict::Valid { derivation, domain } => {
                println!("SPEC VALID");
                (derivation, domain, Outcome::Positive)
            }
            air_core::SpecVerdict::TrueAlarm {
                derivation,
                domain,
                witness,
            } => {
                println!(
                    "TRUE ALARM: reachable store {} violates the spec",
                    u.display_store(&u.store_at(*witness))
                );
                (derivation, domain, Outcome::Negative)
            }
        };
        println!(
            "\nLCL_A derivation ({} rule applications):\n",
            derivation.size()
        );
        print!("{}", derivation.render(&u));
        println!(
            "\nrepaired domain: {} (points added: {})",
            repaired.base_name(),
            repaired.num_points()
        );
        write_dot(derivation)?;
        report_stats(
            &task,
            "prove",
            lcl.cache(),
            repaired,
            started.elapsed().as_secs_f64(),
        );
        session.finish()?;
        return Ok(outcome);
    }
    let (derivation, repaired) = match lcl.derive_with_repair(dom, &pre, &prog) {
        Ok(v) => v,
        Err(e) => {
            let air = engine_error(&u, e);
            session.finish()?;
            return Err(air);
        }
    };
    println!(
        "LCL_A derivation ({} rule applications):\n",
        derivation.size()
    );
    print!("{}", derivation.render(&u));
    println!(
        "\nrepaired domain: {} (points added: {})",
        repaired.base_name(),
        repaired.num_points()
    );
    println!("post: {}", display_set(&u, &derivation.triple().post));
    write_dot(&derivation)?;
    report_stats(
        &task,
        "prove",
        lcl.cache(),
        &repaired,
        started.elapsed().as_secs_f64(),
    );
    session.finish()?;
    Ok(Outcome::Positive)
}

/// Runs one revision through the warm session, printing its verdict and
/// (for edits) the node-reuse line. Returns whether the spec was proved.
fn repair_revision(
    session: &mut air_core::RepairSession,
    u: &Universe,
    label: &str,
    prog: &air_lang::Reg,
    pre: &StateSet,
    spec: &StateSet,
    task: &RepairTask,
) -> Result<bool, AirError> {
    let started = Instant::now();
    let outcome = session
        .verify(prog, pre, spec)
        .map_err(|e| engine_error(u, e))?;
    let elapsed = started.elapsed().as_secs_f64();
    print!("{}", outcome.verdict.report(u));
    let reuse = outcome.reuse;
    if reuse.incremental {
        println!(
            "reuse: {}/{} node(s) warm ({:.0}%), {} fresh",
            reuse.reused_nodes(),
            reuse.program_nodes,
            reuse.reuse_ratio() * 100.0,
            reuse.fresh_nodes
        );
    }
    if task.stats {
        print_stats(label, Some(session.cache()), session.base(), elapsed);
    }
    if task.stats_json {
        println!(
            "{}",
            stats_json(label, Some(session.cache()), session.base(), elapsed)
        );
    }
    Ok(outcome.verdict.is_proved())
}

/// `air repair FILE --edit FILE...` — verify the base program, then
/// re-verify each edited revision incrementally in one warm
/// [`air_core::RepairSession`]. Verdicts are byte-identical to
/// from-scratch runs; only the cost shrinks.
fn repair(task: RepairTask) -> Result<Outcome, AirError> {
    // The corpus header reader wants sweep defaults; repair has none.
    let corpus_defaults = CorpusTask {
        dir: String::new(),
        jobs: 0,
        domain: task.domain,
        strategy: StrategyKind::Backward,
        engine: EngineKind::Enumerative,
        stats: false,
        stats_json: false,
        uncached: false,
        trace: None,
        profile: false,
        fuel: None,
        timeout_ms: None,
        checkpoint: None,
        resume: false,
        dist: crate::args::DistOpts::default(),
    };
    let (name, base_task) = parse_corpus_file(std::path::Path::new(&task.file), &corpus_defaults)?;
    let u = build_universe(&base_task)?;
    let dom = build_domain(&base_task, &u);
    let (prog, pre, spec) = build_sets(&base_task, &u)?;
    let Some(spec) = spec else {
        return Err(AirError::Usage(format!(
            "{name}: corpus header produced no spec"
        )));
    };
    let trace_session = TraceSession::open(task.trace.as_deref(), false)?;
    let governor = Governor::new(build_budget(task.fuel, task.timeout_ms));
    let mut session = air_core::RepairSession::new(u.clone(), dom)
        .tracer(trace_session.tracer())
        .governor(governor);
    println!("base:      {name}");
    println!("universe:  {} stores", u.size());
    println!("domain:    {}\n", session.base().base_name());
    let mut all_proved = repair_revision(&mut session, &u, &name, &prog, &pre, &spec, &task)?;
    for (i, edit) in task.edits.iter().enumerate() {
        let edit_path = std::path::Path::new(edit);
        let text = std::fs::read_to_string(edit_path)
            .map_err(|e| usage(format!("cannot read `{edit}`: {e}")))?;
        // An edited revision reuses the base header unless it carries its
        // own (over the same variables — the session owns one universe).
        let has_header = text
            .lines()
            .filter(|l| l.trim_start().starts_with('#'))
            .any(|l| l.contains("Verified with:"));
        let rev_task = if has_header {
            let (_, t) = parse_corpus_file(edit_path, &corpus_defaults)?;
            if t.vars != base_task.vars {
                return Err(AirError::Usage(format!(
                    "{edit}: --edit revisions must declare the base program's variables"
                )));
            }
            t
        } else {
            Task {
                code: text,
                ..base_task.clone()
            }
        };
        let (eprog, epre, espec) = build_sets(&rev_task, &u)?;
        let espec = espec.unwrap_or_else(|| spec.clone());
        println!("\n--- edit {}: {edit} ---", i + 1);
        let label = format!("edit-{}", i + 1);
        all_proved &= repair_revision(&mut session, &u, &label, &eprog, &epre, &espec, &task)?;
    }
    trace_session.finish()?;
    Ok(if all_proved {
        Outcome::Positive
    } else {
        Outcome::Negative
    })
}

/// How one corpus program ended. Every program gets a row — the sweep is
/// fail-soft, so panics, budget cutoffs and engine errors are recorded
/// and the remaining programs still run (or are marked skipped once a
/// shared budget cancels the sweep).
#[derive(Clone, Debug)]
pub(crate) enum ProgramStatus {
    /// Spec proved.
    Proved,
    /// Spec refuted.
    Refuted,
    /// The shared sweep budget ran out inside this program.
    Budget(Exhaustion),
    /// An engine or input error (recorded, not fatal to the sweep).
    Error(String),
    /// The program's worker panicked (caught; the sweep continues).
    Panicked(String),
    /// Not run: the shared budget was already exhausted or cancelled.
    Skipped,
}

impl ProgramStatus {
    fn label(&self) -> &'static str {
        match self {
            ProgramStatus::Proved => "proved",
            ProgramStatus::Refuted => "refuted",
            ProgramStatus::Budget(_) => "budget",
            ProgramStatus::Error(_) => "error",
            ProgramStatus::Panicked(_) => "panic",
            ProgramStatus::Skipped => "skipped",
        }
    }
}

/// One corpus program's result row.
pub(crate) struct ProgramReport {
    name: String,
    status: ProgramStatus,
    points: usize,
    millis: f64,
    exec_cache: String,
    closure_cache: String,
}

impl ProgramReport {
    pub(crate) fn bare(name: &str, status: ProgramStatus, millis: f64) -> ProgramReport {
        ProgramReport {
            name: name.to_string(),
            status,
            points: 0,
            millis,
            exec_cache: String::new(),
            closure_cache: String::new(),
        }
    }
}

/// Extracts the quoted value of `key "..."` from a corpus header line.
fn header_clause(header: &str, key: &str) -> Option<String> {
    let pat = format!("{key} \"");
    let start = header.find(&pat)? + pat.len();
    let rest = &header[start..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Reads one `*.imp` file into a verification [`Task`] using its
/// `# Verified with:` header (vars/pre/spec, optional domain override).
pub(crate) fn parse_corpus_file(
    path: &std::path::Path,
    task: &CorpusTask,
) -> Result<(String, Task), AirError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| usage(format!("cannot read `{}`: {e}", path.display())))?;
    let header = text
        .lines()
        .filter(|l| l.trim_start().starts_with('#'))
        .find(|l| l.contains("Verified with:"))
        .ok_or_else(|| {
            usage(format!(
                "{}: missing `# Verified with:` header",
                path.display()
            ))
        })?;
    let missing = |key: &str| usage(format!("{}: header lacks `{key} \"...\"`", path.display()));
    let vars = header_clause(header, "vars").ok_or_else(|| missing("vars"))?;
    let pre = header_clause(header, "pre").ok_or_else(|| missing("pre"))?;
    let spec = header_clause(header, "spec").ok_or_else(|| missing("spec"))?;
    let domain = match header_clause(header, "domain") {
        Some(d) => DomainKind::parse(&d).map_err(usage)?,
        None => task.domain,
    };
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    Ok((
        name,
        Task {
            vars: crate::args::parse_vars(&vars).map_err(usage)?,
            code: text,
            pre,
            spec: Some(spec),
            domain,
            strategy: task.strategy,
            engine: task.engine,
            stats: task.stats,
            stats_json: false,
            uncached: task.uncached,
            // The sweep owns the trace session; per-program tasks don't.
            trace: None,
            trace_format: TraceFormat::default(),
            profile: false,
            // The sweep owns one shared budget; per-program tasks don't.
            fuel: None,
            timeout_ms: None,
        },
    ))
}

/// Verifies one corpus program, returning a report row — never an error:
/// engine failures and budget cutoffs are folded into the status so the
/// sweep stays fail-soft. Each program gets its own universe and
/// therefore its own caches — semantic caches must never be shared across
/// universes (equal-looking state sets would alias different store
/// enumerations).
pub(crate) fn run_corpus_program(
    name: &str,
    task: &Task,
    tracer: Tracer,
    governor: Governor,
) -> ProgramReport {
    let started = Instant::now();
    let _span = tracer.span(|| format!("corpus.{name}"));
    let fail = |status: ProgramStatus| {
        ProgramReport::bare(name, status, started.elapsed().as_secs_f64() * 1e3)
    };
    let u = match build_universe(task) {
        Ok(u) => u,
        Err(e) => return fail(ProgramStatus::Error(e.to_string())),
    };
    let dom = build_domain(task, &u);
    let (prog, pre, spec) = match build_sets(task, &u) {
        Ok(t) => t,
        Err(e) => return fail(ProgramStatus::Error(e.to_string())),
    };
    let Some(spec) = spec else {
        return fail(ProgramStatus::Error(format!(
            "{name}: corpus header produced no spec"
        )));
    };
    let verifier = build_verifier(&u, task.engine, task.uncached)
        .tracer(tracer)
        .governor(governor);
    let verdict = match task.strategy {
        StrategyKind::Backward => verifier.backward(dom, &prog, &pre, &spec),
        StrategyKind::Forward => verifier.forward(dom, &prog, &pre, &spec),
    };
    let millis = started.elapsed().as_secs_f64() * 1e3;
    let verdict = match verdict {
        Ok(v) => v,
        Err(RepairError::Exhausted(partial)) => {
            return ProgramReport::bare(name, ProgramStatus::Budget(partial.exhaustion), millis)
        }
        Err(RepairError::Sem(SemError::Exhausted(ex))) => {
            return ProgramReport::bare(name, ProgramStatus::Budget(ex), millis)
        }
        Err(e) => return ProgramReport::bare(name, ProgramStatus::Error(e.to_string()), millis),
    };
    let exec_cache = match verifier.cache() {
        Some(c) => c.exec_stats().to_string(),
        None => "disabled".into(),
    };
    ProgramReport {
        name: name.to_string(),
        status: if verdict.is_proved() {
            ProgramStatus::Proved
        } else {
            ProgramStatus::Refuted
        },
        points: verdict.added_points().len(),
        millis,
        exec_cache,
        closure_cache: verdict.domain().cache_stats().to_string(),
    }
}

/// Renders a panic payload (the argument of `panic!`) as text.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Renders completed sweep rows as one crash-safe checkpoint line
/// (`air-corpus-checkpoint/1`). The same format doubles as the worker
/// lease payload of `corpus --shards N` (see crates/dist), which is why
/// every status — including budget and panic rows — round-trips through
/// [`parse_corpus_rows`].
pub(crate) fn render_corpus_checkpoint(dir: &str, rows: &[ProgramReport]) -> String {
    let mut out = String::from("{\"schema\":\"air-corpus-checkpoint/1\",\"dir\":");
    json::escape_str(dir, &mut out);
    out.push_str(",\"rows\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        json::escape_str(&r.name, &mut out);
        out.push_str(&format!(
            ",\"status\":\"{}\",\"points\":{},\"millis\":{:.3}",
            r.status.label(),
            r.points,
            r.millis
        ));
        match &r.status {
            ProgramStatus::Budget(ex) => {
                out.push_str(",\"phase\":");
                json::escape_str(&ex.phase, &mut out);
                out.push_str(&format!(
                    ",\"spent\":{},\"reason\":\"{}\"",
                    ex.spent,
                    ex.reason.name()
                ));
            }
            ProgramStatus::Error(msg) | ProgramStatus::Panicked(msg) => {
                out.push_str(",\"detail\":");
                json::escape_str(msg, &mut out);
            }
            _ => {}
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Restores the completed rows of a previous sweep's checkpoint. Budget
/// and skipped rows are NOT restored — a resumed sweep has a fresh
/// budget, so previously cut-off programs get another chance. Malformed
/// files or a different corpus directory restore nothing (fresh start).
fn parse_corpus_checkpoint(
    text: &str,
    dir: &str,
) -> std::collections::BTreeMap<String, ProgramReport> {
    let mut out = std::collections::BTreeMap::new();
    let Ok(doc) = json::parse(text.trim()) else {
        return out;
    };
    if doc.get("schema").and_then(json::Value::as_str) != Some("air-corpus-checkpoint/1")
        || doc.get("dir").and_then(json::Value::as_str) != Some(dir)
    {
        return out;
    }
    let Some(rows) = doc.get("rows").and_then(json::Value::as_arr) else {
        return out;
    };
    for row in rows {
        let Some(name) = row.get("name").and_then(json::Value::as_str) else {
            continue;
        };
        let detail = row
            .get("detail")
            .and_then(json::Value::as_str)
            .unwrap_or("")
            .to_string();
        let status = match row.get("status").and_then(json::Value::as_str) {
            Some("proved") => ProgramStatus::Proved,
            Some("refuted") => ProgramStatus::Refuted,
            Some("error") => ProgramStatus::Error(detail),
            Some("panic") => ProgramStatus::Panicked(detail),
            _ => continue,
        };
        out.insert(
            name.to_string(),
            ProgramReport {
                name: name.to_string(),
                status,
                points: row
                    .get("points")
                    .and_then(json::Value::as_num)
                    .unwrap_or(0.0) as usize,
                millis: 0.0,
                exec_cache: String::new(),
                closure_cache: String::new(),
            },
        );
    }
    out
}

/// Parses a worker lease payload (`air-corpus-checkpoint/1`) back into
/// ordered report rows. Unlike [`parse_corpus_checkpoint`] — which
/// deliberately drops budget/skipped rows so a resumed sweep retries
/// them — the distributed merge needs every status to round-trip, and
/// `None` on any malformed row (a worker bug must surface, not shrink
/// the corpus).
pub(crate) fn parse_corpus_rows(text: &str, dir: &str) -> Option<Vec<ProgramReport>> {
    let doc = json::parse(text.trim()).ok()?;
    if doc.get("schema")?.as_str()? != "air-corpus-checkpoint/1" || doc.get("dir")?.as_str()? != dir
    {
        return None;
    }
    let mut out = Vec::new();
    for row in doc.get("rows")?.as_arr()? {
        let name = row.get("name")?.as_str()?.to_string();
        let detail = || {
            row.get("detail")
                .and_then(json::Value::as_str)
                .unwrap_or("")
                .to_string()
        };
        let status = match row.get("status")?.as_str()? {
            "proved" => ProgramStatus::Proved,
            "refuted" => ProgramStatus::Refuted,
            "budget" => ProgramStatus::Budget(Exhaustion {
                phase: row.get("phase")?.as_str()?.to_string(),
                spent: row.get("spent")?.as_num()? as u64,
                reason: match row.get("reason")?.as_str()? {
                    "fuel" => air_lattice::ExhaustReason::Fuel,
                    "deadline" => air_lattice::ExhaustReason::Deadline,
                    "cancelled" => air_lattice::ExhaustReason::Cancelled,
                    _ => return None,
                },
            }),
            "error" => ProgramStatus::Error(detail()),
            "panic" => ProgramStatus::Panicked(detail()),
            "skipped" => ProgramStatus::Skipped,
            _ => return None,
        };
        out.push(ProgramReport {
            name,
            status,
            points: row.get("points")?.as_num()? as usize,
            millis: row.get("millis")?.as_num()?,
            exec_cache: String::new(),
            closure_cache: String::new(),
        });
    }
    Some(out)
}

/// The crash-safe sequential sweep behind `corpus --checkpoint`: after
/// every program the completed rows are atomically checkpointed, and
/// `--resume` restores them instead of re-verifying. Checkpoint I/O
/// failures degrade to "no checkpoint" — the sweep itself never stops
/// for them.
fn corpus_checkpointed(
    task: &CorpusTask,
    programs: &[(String, Task)],
    session: &TraceSession,
    governor: &Governor,
    path: &str,
) -> Vec<ProgramReport> {
    let path = std::path::PathBuf::from(path);
    let mut restored = if task.resume {
        match air_resilience::checkpoint::load(&path) {
            Ok(Some(text)) => parse_corpus_checkpoint(&text, &task.dir),
            _ => std::collections::BTreeMap::new(),
        }
    } else {
        std::collections::BTreeMap::new()
    };
    let mut cp = Checkpointer::new(path, 1, session.tracer());
    let mut rows: Vec<ProgramReport> = Vec::with_capacity(programs.len());
    for (name, t) in programs {
        if let Some(row) = restored.remove(name) {
            rows.push(row);
        } else {
            let row = match std::panic::catch_unwind(AssertUnwindSafe(|| {
                run_corpus_program(name, t, session.tracer(), governor.clone())
            })) {
                Ok(report) => report,
                Err(payload) => {
                    ProgramReport::bare(name, ProgramStatus::Panicked(panic_message(payload)), 0.0)
                }
            };
            rows.push(row);
        }
        let _ = cp.write_now(rows.len() as u64, || {
            render_corpus_checkpoint(&task.dir, &rows)
        });
    }
    // Sweep complete: the checkpoint is stale state, drop it.
    cp.remove();
    rows
}

/// Sweeps every `*.imp` program under `task.dir`, fanning the programs out
/// over worker threads (`--jobs`). Results are printed in file order
/// regardless of scheduling, so the output is deterministic. The sweep is
/// fail-soft: one shared governor budgets the whole run, and a program
/// that panics, errors or exhausts the budget is recorded in its result
/// row (and `--stats-json`) while the others continue — pending programs
/// after a budget cancellation are marked skipped.
fn corpus(task: CorpusTask) -> Result<Outcome, AirError> {
    if let Some(shard) = task.dist.worker {
        return crate::dist::corpus_worker(shard, &task);
    }
    if task.dist.requested() {
        return crate::dist::corpus_dist(&task);
    }
    let programs = load_corpus_programs(&task)?;
    let jobs = if task.jobs == 0 {
        programs.len()
    } else {
        task.jobs
    };
    println!(
        "corpus sweep: {} programs, {} job(s), strategy {:?}{}{}",
        programs.len(),
        jobs,
        task.strategy,
        if task.engine == EngineKind::Symbolic {
            ", symbolic engine"
        } else {
            ""
        },
        if task.uncached { ", uncached" } else { "" }
    );
    let session = TraceSession::open(task.trace.as_deref(), task.profile)?;
    // An ungoverned sweep still gets a cancellable governor so SIGINT
    // stops it at the next engine loop head instead of mid-program.
    let budget = build_budget(task.fuel, task.timeout_ms);
    let governor = if budget.is_unlimited() {
        Governor::cancellable()
    } else {
        Governor::new(budget)
    };
    crate::signal::install();
    let sweep_done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let watcher = std::thread::spawn({
        let sweep_done = Arc::clone(&sweep_done);
        let governor = governor.clone();
        move || {
            while !sweep_done.load(std::sync::atomic::Ordering::Relaxed) {
                if crate::signal::interrupted() {
                    governor.cancel();
                    return;
                }
                std::thread::sleep(Duration::from_millis(30));
            }
        }
    });
    let started = Instant::now();
    let reports: Vec<ProgramReport> = if let Some(path) = &task.checkpoint {
        // Crash-safe mode runs sequentially: a checkpoint after every
        // program needs a defined "done so far" prefix, which the
        // parallel fan-out does not have.
        corpus_checkpointed(&task, &programs, &session, &governor, path)
    } else {
        let results = par_map_governed(jobs, &programs, &governor, |_, (name, t)| {
            match std::panic::catch_unwind(AssertUnwindSafe(|| {
                run_corpus_program(name, t, session.tracer(), governor.clone())
            })) {
                Ok(report) => report,
                Err(payload) => {
                    ProgramReport::bare(name, ProgramStatus::Panicked(panic_message(payload)), 0.0)
                }
            }
        });
        let tracer = session.tracer();
        results
            .into_iter()
            .zip(&programs)
            .map(|(slot, (name, _))| match slot {
                Some(report) => report,
                None => {
                    tracer.emit_with(|| EventKind::Cancelled {
                        phase: format!("corpus.{name}"),
                    });
                    ProgramReport::bare(name, ProgramStatus::Skipped, 0.0)
                }
            })
            .collect()
    };
    sweep_done.store(true, std::sync::atomic::Ordering::Relaxed);
    let _ = watcher.join();
    let total_ms = started.elapsed().as_secs_f64() * 1e3;
    print_corpus_rows(&task, &reports, total_ms);
    session.finish()?;
    corpus_outcome(&reports, governor.spent())
}

/// Lists and parses every `*.imp` program under the corpus directory,
/// in sorted file order (the canonical item order of `--shards N`).
pub(crate) fn load_corpus_programs(task: &CorpusTask) -> Result<Vec<(String, Task)>, AirError> {
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(&task.dir)
        .map_err(|e| usage(format!("cannot read corpus dir `{}`: {e}", task.dir)))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "imp"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(usage(format!("no *.imp programs under `{}`", task.dir)));
    }
    files
        .iter()
        .map(|p| parse_corpus_file(p, task))
        .collect::<Result<_, _>>()
}

/// Prints the per-program rows, the wall total and the optional
/// `--stats-json` object. Shared by the in-process sweep and the
/// distributed merge.
pub(crate) fn print_corpus_rows(task: &CorpusTask, reports: &[ProgramReport], total_ms: f64) {
    for report in reports {
        print!(
            "  {:<14} {:<7} {:>2} point(s) {:>9.3} ms",
            report.name,
            report.status.label().to_uppercase(),
            report.points,
            report.millis
        );
        if task.stats && !report.exec_cache.is_empty() {
            print!(
                "  exec cache: {}; closure cache: {}",
                report.exec_cache, report.closure_cache
            );
        }
        match &report.status {
            ProgramStatus::Budget(ex) => print!("  ({ex})"),
            ProgramStatus::Error(msg) | ProgramStatus::Panicked(msg) => print!("  ({msg})"),
            _ => {}
        }
        println!();
    }
    println!("total: {total_ms:.3} ms");
    if task.stats_json {
        let mut out = format!("{{\"label\":\"corpus\",\"wall_ms\":{total_ms:.3},\"programs\":[");
        let mut first = true;
        for report in reports {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":");
            json::escape_str(&report.name, &mut out);
            out.push_str(&format!(
                ",\"status\":\"{}\",\"proved\":{},\"points\":{},\"wall_ms\":{:.3}",
                report.status.label(),
                matches!(report.status, ProgramStatus::Proved),
                report.points,
                report.millis
            ));
            match &report.status {
                ProgramStatus::Budget(ex) => {
                    out.push_str(&format!(
                        ",\"phase\":\"{}\",\"spent\":{},\"reason\":\"{}\"",
                        ex.phase,
                        ex.spent,
                        ex.reason.name()
                    ));
                }
                ProgramStatus::Error(msg) | ProgramStatus::Panicked(msg) => {
                    out.push_str(",\"detail\":");
                    json::escape_str(msg.as_str(), &mut out);
                }
                _ => {}
            }
            out.push('}');
        }
        out.push_str("]}");
        println!("{out}");
    }
}

/// Folds the sweep rows into the process outcome. Exit precedence:
/// internal (4) > budget (3) > refuted (1) > proved (0). `spent` labels
/// a budget-less cancellation (SIGINT, a dead fleet) with how much work
/// was done before the stop.
pub(crate) fn corpus_outcome(reports: &[ProgramReport], spent: u64) -> Result<Outcome, AirError> {
    let mut internal = Vec::new();
    let mut first_budget: Option<Exhaustion> = None;
    let mut any_skipped = false;
    let mut any_refuted = false;
    for report in reports {
        match &report.status {
            ProgramStatus::Proved => {}
            ProgramStatus::Refuted => any_refuted = true,
            ProgramStatus::Budget(ex) => {
                if first_budget.is_none() {
                    first_budget = Some(ex.clone());
                }
            }
            ProgramStatus::Error(msg) | ProgramStatus::Panicked(msg) => {
                internal.push(format!("{}: {msg}", report.name));
            }
            ProgramStatus::Skipped => any_skipped = true,
        }
    }
    if !internal.is_empty() {
        return Err(AirError::Internal(internal.join("; ")));
    }
    if let Some(ex) = first_budget {
        return Err(budget_error(&ex));
    }
    if any_skipped {
        // Cancellation without a recorded exhaustion row (e.g. an external
        // cancel): still a budget-class stop.
        return Err(AirError::Budget {
            phase: "corpus.sweep".to_string(),
            spent,
            reason: "cancelled".to_string(),
        });
    }
    Ok(if any_refuted {
        Outcome::Negative
    } else {
        Outcome::Positive
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::VarDecl;

    fn task(code: &str, pre: &str, spec: Option<&str>) -> Task {
        Task {
            vars: vec![VarDecl {
                name: "x".into(),
                lo: -8,
                hi: 8,
            }],
            code: code.into(),
            pre: pre.into(),
            spec: spec.map(str::to_owned),
            domain: DomainKind::Int,
            strategy: StrategyKind::Backward,
            engine: EngineKind::Enumerative,
            stats: false,
            stats_json: false,
            uncached: false,
            trace: None,
            trace_format: TraceFormat::default(),
            profile: false,
            fuel: None,
            timeout_ms: None,
        }
    }

    fn corpus_task(dir: String) -> CorpusTask {
        CorpusTask {
            dir,
            jobs: 0, // one worker per program
            domain: DomainKind::Int,
            strategy: StrategyKind::Backward,
            engine: EngineKind::Enumerative,
            stats: false,
            stats_json: false,
            uncached: false,
            trace: None,
            profile: false,
            fuel: None,
            timeout_ms: None,
            checkpoint: None,
            resume: false,
            dist: crate::args::DistOpts::default(),
        }
    }

    fn corpus_dir() -> String {
        format!("{}/../../corpus", env!("CARGO_MANIFEST_DIR"))
    }

    #[test]
    fn header_clause_extracts_quoted_values() {
        let h = r#"# Verified with: vars "x:-8..8", pre "x != 0", spec "x >= 1"."#;
        assert_eq!(header_clause(h, "vars").as_deref(), Some("x:-8..8"));
        assert_eq!(header_clause(h, "pre").as_deref(), Some("x != 0"));
        assert_eq!(header_clause(h, "spec").as_deref(), Some("x >= 1"));
        assert_eq!(header_clause(h, "domain"), None);
    }

    #[test]
    fn corpus_sweep_proves_all_programs() {
        let mut t = corpus_task(corpus_dir());
        t.stats = true;
        let out = corpus(t).unwrap();
        assert_eq!(out, Outcome::Positive);
    }

    #[test]
    fn corpus_sequential_uncached_matches() {
        let mut t = corpus_task(corpus_dir());
        t.jobs = 1;
        t.uncached = true;
        let out = corpus(t).unwrap();
        assert_eq!(out, Outcome::Positive);
    }

    #[test]
    fn corpus_missing_dir_errors() {
        let err = corpus(corpus_task("/nonexistent-air-corpus".into())).unwrap_err();
        assert!(matches!(err, AirError::Usage(_)), "{err:?}");
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn corpus_with_tiny_fuel_fails_soft() {
        let mut t = corpus_task(corpus_dir());
        t.jobs = 1;
        t.fuel = Some(1);
        let err = corpus(t).unwrap_err();
        let AirError::Budget { spent, .. } = &err else {
            panic!("expected budget exhaustion, got {err:?}");
        };
        assert!(*spent >= 1);
        assert_eq!(err.exit_code(), 3);
    }

    #[test]
    fn verify_proved_and_refuted() {
        let proved = verify(task(
            "if (x >= 1) then { skip } else { x := 1 - x }",
            "x != 0",
            Some("x >= 1"),
        ))
        .unwrap();
        assert_eq!(proved, Outcome::Positive);
        let refuted = verify(task("x := x + 1", "x >= 0 && x <= 5", Some("x <= 3"))).unwrap();
        assert_eq!(refuted, Outcome::Negative);
    }

    #[test]
    fn verify_without_spec_is_a_usage_error_not_a_panic() {
        let err = verify(task("skip", "true", None)).unwrap_err();
        assert!(matches!(err, AirError::Usage(_)), "{err:?}");
        assert_eq!(err.exit_code(), 2);
        let err = analyze(task("skip", "true", None)).unwrap_err();
        assert!(matches!(err, AirError::Usage(_)), "{err:?}");
    }

    #[test]
    fn verify_with_tiny_fuel_exhausts() {
        let mut t = task("while (x < 7) do { x := x + 1 }", "x = 0", Some("x = 7"));
        t.fuel = Some(1);
        let err = verify(t).unwrap_err();
        let AirError::Budget { reason, .. } = &err else {
            panic!("expected budget exhaustion, got {err:?}");
        };
        assert_eq!(reason, "fuel");
        assert_eq!(err.exit_code(), 3);
    }

    #[test]
    fn symbolic_engine_matches_enumerative_verdicts() {
        let mut proved = task(
            "if (x >= 1) then { skip } else { x := 1 - x }",
            "x != 0",
            Some("x >= 1"),
        );
        proved.engine = EngineKind::Symbolic;
        assert_eq!(verify(proved).unwrap(), Outcome::Positive);
        let mut refuted = task("x := x + 1", "x >= 0 && x <= 5", Some("x <= 3"));
        refuted.engine = EngineKind::Symbolic;
        assert_eq!(verify(refuted).unwrap(), Outcome::Negative);
        let mut alarms = task(
            "if (x >= 0) then { skip } else { x := 0 - x }",
            "x != 0",
            Some("x != 0"),
        );
        alarms.engine = EngineKind::Symbolic;
        assert_eq!(analyze(alarms).unwrap(), Outcome::Negative);
    }

    #[test]
    fn corpus_sweep_with_symbolic_engine_proves_all_programs() {
        let mut t = corpus_task(corpus_dir());
        t.engine = EngineKind::Symbolic;
        let out = corpus(t).unwrap();
        assert_eq!(out, Outcome::Positive);
    }

    #[test]
    fn forward_strategy_runs() {
        let mut t = task(
            "if (x >= 1) then { skip } else { x := 1 - x }",
            "x != 0",
            Some("x >= 1"),
        );
        t.strategy = StrategyKind::Forward;
        assert_eq!(verify(t).unwrap(), Outcome::Positive);
    }

    #[test]
    fn analyze_counts_alarms() {
        // Classic AbsVal: A(x ≠ 0) = [-8,8], so the then-branch spuriously
        // lets 0 through — a false alarm against spec x ≠ 0.
        let out = analyze(task(
            "if (x >= 0) then { skip } else { x := 0 - x }",
            "x != 0",
            Some("x != 0"),
        ))
        .unwrap();
        assert_eq!(out, Outcome::Negative);
        let clean = analyze(task("skip", "x > 0", Some("x > 0"))).unwrap();
        assert_eq!(clean, Outcome::Positive);
    }

    #[test]
    fn prove_renders_derivation() {
        let out = prove(task(
            "if (x >= 1) then { skip } else { x := 1 - x }",
            "x != 0",
            None,
        ))
        .unwrap();
        assert_eq!(out, Outcome::Positive);
    }

    #[test]
    fn prove_with_spec_decides() {
        let valid = prove(task(
            "if (x >= 0) then { skip } else { x := 0 - x }",
            "x != 0",
            Some("x != 0"),
        ))
        .unwrap();
        assert_eq!(valid, Outcome::Positive);
        let alarm = prove(task(
            "if (x >= 0) then { skip } else { x := 0 - x }",
            "x != 0",
            Some("x >= 2"),
        ))
        .unwrap();
        assert_eq!(alarm, Outcome::Negative);
    }

    #[test]
    fn every_domain_kind_builds() {
        for d in [
            DomainKind::Int,
            DomainKind::Oct,
            DomainKind::Sign,
            DomainKind::Parity,
            DomainKind::Const,
            DomainKind::Cong,
            DomainKind::Karr,
        ] {
            let mut t = task("x := x + 1", "x = 0", Some("x = 1"));
            t.domain = d;
            assert_eq!(verify(t).unwrap(), Outcome::Positive, "{d:?}");
        }
    }

    #[test]
    fn stats_json_renders_valid_json() {
        let u = Universe::new(&[("x", -8, 8)]).unwrap();
        let dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
        let cache = SemCache::new();
        let line = stats_json("verify", Some(&cache), &dom, 0.001);
        let doc = json::parse(&line).unwrap();
        assert_eq!(
            doc.get("label").and_then(json::Value::as_str),
            Some("verify")
        );
        assert!(doc.get("semantic_cache").is_some());
        // Uncached runs report null for the semantic cache.
        let line = stats_json("verify", None, &dom, 0.001);
        let doc = json::parse(&line).unwrap();
        assert_eq!(doc.get("semantic_cache"), Some(&json::Value::Null));
    }

    #[test]
    fn verify_trace_file_summarizes() {
        let path = std::env::temp_dir().join("air_cli_test_verify.jsonl");
        let mut t = task(
            "if (x >= 1) then { skip } else { x := 1 - x }",
            "x != 0",
            Some("x >= 1"),
        );
        t.trace = Some(path.display().to_string());
        assert_eq!(verify(t).unwrap(), Outcome::Positive);
        let text = std::fs::read_to_string(&path).unwrap();
        let summary = Summary::from_jsonl(&text).unwrap();
        assert!(summary.events > 0);
        assert!(
            summary.phases.contains_key("verify.backward"),
            "{summary:?}"
        );
        assert_eq!(
            trace_summarize(&path.display().to_string()).unwrap(),
            Outcome::Positive
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_and_profile_fan_out_to_both_sinks() {
        // Satellite regression: `--trace` + `--profile` used to funnel
        // through a single-sink `expect`; both sinks must now see events.
        let path = std::env::temp_dir().join("air_cli_test_fanout.jsonl");
        let mut t = task(
            "if (x >= 1) then { skip } else { x := 1 - x }",
            "x != 0",
            Some("x >= 1"),
        );
        t.trace = Some(path.display().to_string());
        t.profile = true;
        assert_eq!(verify(t).unwrap(), Outcome::Positive);
        let text = std::fs::read_to_string(&path).unwrap();
        let summary = Summary::from_jsonl(&text).unwrap();
        assert!(summary.events > 0, "JSONL sink must receive events");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn exhausted_trace_records_budget_event() {
        let path = std::env::temp_dir().join("air_cli_test_budget.jsonl");
        let mut t = task("while (x < 7) do { x := x + 1 }", "x = 0", Some("x = 7"));
        t.trace = Some(path.display().to_string());
        t.fuel = Some(1);
        assert!(matches!(verify(t).unwrap_err(), AirError::Budget { .. }));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.contains("\"kind\":\"budget_exhausted\""),
            "trace must record the cutoff: {text}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn prove_writes_dot_derivation() {
        let path = std::env::temp_dir().join("air_cli_test_derivation.dot");
        let mut t = task("x := x + 1", "x = 0", None);
        t.trace = Some(path.display().to_string());
        t.trace_format = TraceFormat::Dot;
        assert_eq!(prove(t).unwrap(), Outcome::Positive);
        let dot = std::fs::read_to_string(&path).unwrap();
        assert!(dot.starts_with("digraph"), "{dot}");
        assert!(dot.contains("transfer"), "{dot}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fuzz_run_small_campaign_is_clean() {
        let out = fuzz(FuzzCmd::Run {
            seed: 0,
            cases: 5,
            oracle: None,
            corpus_dir: std::env::temp_dir()
                .join("air_cli_test_fuzz_corpus")
                .display()
                .to_string(),
            shrink: true,
            stats_json: true,
            trace: None,
            checkpoint: None,
            resume: false,
            halt_after: None,
            dist: crate::args::DistOpts::default(),
        })
        .unwrap();
        assert_eq!(out, Outcome::Positive);
    }

    #[test]
    fn fuzz_rejects_unknown_oracle() {
        let err = fuzz(FuzzCmd::Run {
            seed: 0,
            cases: 1,
            oracle: Some("telepathy".into()),
            corpus_dir: "corpus/fuzz".into(),
            shrink: true,
            stats_json: false,
            trace: None,
            checkpoint: None,
            resume: false,
            halt_after: None,
            dist: crate::args::DistOpts::default(),
        })
        .unwrap_err();
        assert!(matches!(err, AirError::Usage(_)), "{err:?}");
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn fuzz_replay_of_a_rendered_seed_file_is_clean() {
        let case = air_fuzz::FuzzCase::generate(3);
        let path = std::env::temp_dir().join("air_cli_test_fuzz_seed.imp");
        std::fs::write(&path, air_fuzz::seed::render(&case, None, None)).unwrap();
        let out = fuzz(FuzzCmd::Replay {
            file: path.display().to_string(),
            oracle: None,
        })
        .unwrap();
        assert_eq!(out, Outcome::Positive);
        // A clean seed has nothing to minimize.
        let out = fuzz(FuzzCmd::Minimize {
            file: path.display().to_string(),
        })
        .unwrap();
        assert_eq!(out, Outcome::Positive);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fuzz_replay_of_a_missing_file_is_a_usage_error() {
        let err = fuzz(FuzzCmd::Replay {
            file: "/nonexistent-air-fuzz-seed.imp".into(),
            oracle: None,
        })
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(verify(task("x := (", "true", Some("true"))).is_err());
        assert!(verify(task("skip", "x <", Some("true"))).is_err());
        let mut t = task("skip", "true", Some("true"));
        t.vars = vec![VarDecl {
            name: "x".into(),
            lo: 5,
            hi: 0,
        }];
        let err = verify(t).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err:?}");
    }
}
