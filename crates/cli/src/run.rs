//! Executing parsed CLI commands against the AIR engine.

use std::error::Error;

use air_core::summarize::display_set;
use air_core::{EnumDomain, Lcl, Verdict, Verifier};
use air_domains::{
    AffineDomain, CongruenceEnv, ConstantEnv, IntervalEnv, OctagonDomain, ParityEnv, SignEnv,
};
use air_lang::{parse_bexp, parse_program, Concrete, StateSet, Universe};

use crate::args::{Command, DomainKind, StrategyKind, Task};

/// The sign of a completed run (drives the exit code).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// Proved / no alarms.
    Positive,
    /// Refuted / alarms present.
    Negative,
}

fn build_universe(task: &Task) -> Result<Universe, Box<dyn Error>> {
    let decls: Vec<(&str, i64, i64)> = task
        .vars
        .iter()
        .map(|v| (v.name.as_str(), v.lo, v.hi))
        .collect();
    Ok(Universe::new(&decls)?)
}

fn build_domain(task: &Task, u: &Universe) -> EnumDomain {
    match task.domain {
        DomainKind::Int => EnumDomain::from_abstraction(u, IntervalEnv::new(u)),
        DomainKind::Oct => EnumDomain::from_abstraction(u, OctagonDomain::new(u)),
        DomainKind::Sign => EnumDomain::from_abstraction(u, SignEnv::new(u)),
        DomainKind::Parity => EnumDomain::from_abstraction(u, ParityEnv::new(u)),
        DomainKind::Const => EnumDomain::from_abstraction(u, ConstantEnv::new(u)),
        DomainKind::Cong => EnumDomain::from_abstraction(u, CongruenceEnv::new(u)),
        DomainKind::Karr => EnumDomain::from_abstraction(u, AffineDomain::new(u)),
    }
}

fn build_sets(
    task: &Task,
    u: &Universe,
) -> Result<(air_lang::Reg, StateSet, Option<StateSet>), Box<dyn Error>> {
    let prog = parse_program(&task.code)?;
    let sem = Concrete::new(u);
    let pre = sem.sat(&parse_bexp(&task.pre)?)?;
    let spec = match &task.spec {
        Some(s) => Some(sem.sat(&parse_bexp(s)?)?),
        None => None,
    };
    Ok((prog, pre, spec))
}

/// Runs a command to completion, printing a human-readable report.
///
/// # Errors
///
/// Any parse, universe or engine error, boxed.
pub fn run(command: Command) -> Result<Outcome, Box<dyn Error>> {
    match command {
        Command::Verify(task) => verify(task),
        Command::Analyze(task) => analyze(task),
        Command::Prove(task) => prove(task),
    }
}

fn verify(task: Task) -> Result<Outcome, Box<dyn Error>> {
    let u = build_universe(&task)?;
    let dom = build_domain(&task, &u);
    let (prog, pre, spec) = build_sets(&task, &u)?;
    let spec = spec.expect("verify requires a spec");
    println!("program:   {prog}");
    println!("input:     {}", display_set(&u, &pre));
    println!("universe:  {} stores", u.size());
    println!("domain:    {}\n", dom.base_name());
    let verifier = Verifier::new(&u);
    let verdict = match task.strategy {
        StrategyKind::Backward => verifier.backward(dom, &prog, &pre, &spec)?,
        StrategyKind::Forward => verifier.forward(dom, &prog, &pre, &spec)?,
    };
    print!("{}", verdict.report(&u));
    if !verdict.is_proved() {
        println!(
            "valid inputs: {}",
            display_set(&u, &verdict.valid_input().intersection(&pre))
        );
    }
    Ok(match verdict {
        Verdict::Proved { .. } => Outcome::Positive,
        Verdict::Refuted { .. } => Outcome::Negative,
    })
}

fn analyze(task: Task) -> Result<Outcome, Box<dyn Error>> {
    let u = build_universe(&task)?;
    let dom = build_domain(&task, &u);
    let (prog, pre, spec) = build_sets(&task, &u)?;
    let spec = spec.expect("analyze requires a spec");
    let verifier = Verifier::new(&u);
    let counts = verifier.alarm_counts(&dom, &prog, &pre, &spec)?;
    println!("program:      {prog}");
    println!("domain:       {}", dom.base_name());
    println!("alarms:       {}", counts.total);
    println!("true alarms:  {}", counts.true_alarms);
    println!("false alarms: {}", counts.false_alarms);
    Ok(if counts.total == 0 {
        Outcome::Positive
    } else {
        Outcome::Negative
    })
}

fn prove(task: Task) -> Result<Outcome, Box<dyn Error>> {
    let u = build_universe(&task)?;
    let dom = build_domain(&task, &u);
    let (prog, pre, spec) = build_sets(&task, &u)?;
    let lcl = Lcl::new(&u);
    // With a spec, decide it through the logic; otherwise just derive.
    if let Some(spec) = spec {
        let verdict = lcl.prove_spec(dom, &pre, &prog, &spec)?;
        let (derivation, repaired, outcome) = match &verdict {
            air_core::SpecVerdict::Valid { derivation, domain } => {
                println!("SPEC VALID");
                (derivation, domain, Outcome::Positive)
            }
            air_core::SpecVerdict::TrueAlarm {
                derivation,
                domain,
                witness,
            } => {
                println!(
                    "TRUE ALARM: reachable store {} violates the spec",
                    u.display_store(&u.store_at(*witness))
                );
                (derivation, domain, Outcome::Negative)
            }
        };
        println!(
            "\nLCL_A derivation ({} rule applications):\n",
            derivation.size()
        );
        print!("{}", derivation.render(&u));
        println!(
            "\nrepaired domain: {} (points added: {})",
            repaired.base_name(),
            repaired.num_points()
        );
        return Ok(outcome);
    }
    let (derivation, repaired) = lcl.derive_with_repair(dom, &pre, &prog)?;
    println!(
        "LCL_A derivation ({} rule applications):\n",
        derivation.size()
    );
    print!("{}", derivation.render(&u));
    println!(
        "\nrepaired domain: {} (points added: {})",
        repaired.base_name(),
        repaired.num_points()
    );
    println!("post: {}", display_set(&u, &derivation.triple().post));
    Ok(Outcome::Positive)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::VarDecl;

    fn task(code: &str, pre: &str, spec: Option<&str>) -> Task {
        Task {
            vars: vec![VarDecl {
                name: "x".into(),
                lo: -8,
                hi: 8,
            }],
            code: code.into(),
            pre: pre.into(),
            spec: spec.map(str::to_owned),
            domain: DomainKind::Int,
            strategy: StrategyKind::Backward,
        }
    }

    #[test]
    fn verify_proved_and_refuted() {
        let proved = verify(task(
            "if (x >= 1) then { skip } else { x := 1 - x }",
            "x != 0",
            Some("x >= 1"),
        ))
        .unwrap();
        assert_eq!(proved, Outcome::Positive);
        let refuted = verify(task("x := x + 1", "x >= 0 && x <= 5", Some("x <= 3"))).unwrap();
        assert_eq!(refuted, Outcome::Negative);
    }

    #[test]
    fn forward_strategy_runs() {
        let mut t = task(
            "if (x >= 1) then { skip } else { x := 1 - x }",
            "x != 0",
            Some("x >= 1"),
        );
        t.strategy = StrategyKind::Forward;
        assert_eq!(verify(t).unwrap(), Outcome::Positive);
    }

    #[test]
    fn analyze_counts_alarms() {
        // Classic AbsVal: A(x ≠ 0) = [-8,8], so the then-branch spuriously
        // lets 0 through — a false alarm against spec x ≠ 0.
        let out = analyze(task(
            "if (x >= 0) then { skip } else { x := 0 - x }",
            "x != 0",
            Some("x != 0"),
        ))
        .unwrap();
        assert_eq!(out, Outcome::Negative);
        let clean = analyze(task("skip", "x > 0", Some("x > 0"))).unwrap();
        assert_eq!(clean, Outcome::Positive);
    }

    #[test]
    fn prove_renders_derivation() {
        let out = prove(task(
            "if (x >= 1) then { skip } else { x := 1 - x }",
            "x != 0",
            None,
        ))
        .unwrap();
        assert_eq!(out, Outcome::Positive);
    }

    #[test]
    fn prove_with_spec_decides() {
        let valid = prove(task(
            "if (x >= 0) then { skip } else { x := 0 - x }",
            "x != 0",
            Some("x != 0"),
        ))
        .unwrap();
        assert_eq!(valid, Outcome::Positive);
        let alarm = prove(task(
            "if (x >= 0) then { skip } else { x := 0 - x }",
            "x != 0",
            Some("x >= 2"),
        ))
        .unwrap();
        assert_eq!(alarm, Outcome::Negative);
    }

    #[test]
    fn every_domain_kind_builds() {
        for d in [
            DomainKind::Int,
            DomainKind::Oct,
            DomainKind::Sign,
            DomainKind::Parity,
            DomainKind::Const,
            DomainKind::Cong,
            DomainKind::Karr,
        ] {
            let mut t = task("x := x + 1", "x = 0", Some("x = 1"));
            t.domain = d;
            assert_eq!(verify(t).unwrap(), Outcome::Positive, "{d:?}");
        }
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(verify(task("x := (", "true", Some("true"))).is_err());
        assert!(verify(task("skip", "x <", Some("true"))).is_err());
        let mut t = task("skip", "true", Some("true"));
        t.vars = vec![VarDecl {
            name: "x".into(),
            lo: 5,
            hi: 0,
        }];
        assert!(verify(t).is_err());
    }
}
