//! `air` — a command-line verifier based on Abstract Interpretation
//! Repair.
//!
//! ```text
//! air verify  --vars "x:-8..8" --code "if (x >= 1) then { skip } else { x := 1 - x }" \
//!             --pre "x != 0" --spec "x >= 1" [--domain int] [--strategy backward]
//! air analyze --vars ... --code ... --pre ... --spec ...      # alarms, no repair
//! air prove   --vars ... --code ... --pre ...                 # LCL_A derivation
//! air corpus  [--dir corpus] [--jobs N] [--stats] [--uncached] # parallel sweep
//! air trace summarize run.jsonl                               # aggregate a trace
//! air serve --stdio --tcp 127.0.0.1:4777 [--workers N]        # repair-as-a-service
//! air top --connect 127.0.0.1:4777 [--interval-ms N]          # live daemon summary
//! ```
//!
//! `--stats` prints cache hit/miss counters and wall times (`--stats-json`
//! prints the same as one JSON object); `--uncached` disables the memo
//! tables (the reference path — results are bitwise identical either way).
//! `--trace FILE` writes a structured JSONL event log (`--trace-format dot`
//! on `prove` writes the LCL derivation as Graphviz DOT) and `--profile`
//! prints a per-phase wall-time table. `--fuel N` / `--timeout-ms N` bound
//! a run; an exhausted budget stops at the next engine loop head and
//! reports the sound partial result. Exit codes: 0 = proved / no alarms,
//! 1 = refuted / alarms, 2 = usage error, 3 = budget exhausted,
//! 4 = internal error. The paper↔code map behind the engine is
//! `PAPER_MAP.md` at the repository root.

use std::process::ExitCode;

mod args;
mod chaos;
mod dist;
mod run;
mod signal;
mod top;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let command = match args::parse(&argv) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", args::USAGE);
            return ExitCode::from(2);
        }
    };
    match run::run(command) {
        Ok(run::Outcome::Positive) => ExitCode::SUCCESS,
        Ok(run::Outcome::Negative) => ExitCode::from(1),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
