//! Command-line argument parsing (dependency-free).

use std::fmt;

/// Usage text shown on parse errors and `--help`.
pub const USAGE: &str = "\
usage:
  air verify  --vars SPEC --code PROG|--file PATH --pre BEXP --spec BEXP
              [--domain int|oct|sign|parity|const|cong|karr] [--strategy backward|forward]
              [--engine enumerative|symbolic] [--stats] [--stats-json] [--uncached]
              [--trace FILE] [--profile] [--fuel N] [--timeout-ms N]
  air analyze --vars SPEC --code PROG|--file PATH --pre BEXP --spec BEXP [--domain ...]
              [--engine ...] [--stats] [--stats-json] [--uncached] [--trace FILE]
              [--profile] [--fuel N] [--timeout-ms N]
  air prove   --vars SPEC --code PROG|--file PATH --pre BEXP [--spec BEXP] [--domain ...]
              [--engine ...] [--stats] [--stats-json] [--uncached] [--trace FILE]
              [--trace-format jsonl|dot] [--profile] [--fuel N] [--timeout-ms N]
  air corpus  [--dir PATH] [--jobs N] [--domain ...] [--strategy ...] [--engine ...]
              [--stats] [--stats-json] [--uncached] [--trace FILE] [--profile]
              [--fuel N] [--timeout-ms N] [--checkpoint FILE] [--resume]
              [--shards N] [--lease N] [--hang-timeout-ms N]
              [--kill-workers N] [--kill-seed N] [--dist-frame-log FILE]
  air repair  FILE [--edit FILE]... [--domain ...] [--stats] [--stats-json]
              [--trace FILE] [--fuel N] [--timeout-ms N]
  air trace summarize FILE
  air fuzz run      [--seed N] [--cases N] [--oracle NAME] [--corpus-dir PATH]
                    [--no-shrink] [--stats-json] [--trace FILE]
                    [--checkpoint FILE] [--resume]
                    [--shards N] [--lease N] [--hang-timeout-ms N]
                    [--kill-workers N] [--kill-seed N] [--dist-frame-log FILE]
  air fuzz replay   FILE [--oracle NAME]
  air fuzz minimize FILE
  air chaos   [--dir PATH] [--plans N] [--seed N] [--fuel N] [--stats-json]
              [--trace FILE] [--shards N] [--lease N] [--hang-timeout-ms N]
              [--kill-workers N] [--kill-seed N] [--dist-frame-log FILE]
  air serve   [--stdio] [--tcp ADDR] [--workers N] [--quota FUEL]
              [--max-frame BYTES] [--trace FILE] [--metrics-addr ADDR]
              [--no-metrics]
  air top     --connect ADDR [--interval-ms N] [--iterations N] [--plain]

  --vars declares bounded variables, e.g. \"x:-8..8,y:0..20\"
  PROG is the Imp-like surface syntax, e.g. \"while (x > 0) do { x := x - 1 }\"
  BEXP is a boolean expression over the variables, e.g. \"x != 0 && y <= 5\"
  corpus sweeps every *.imp under --dir (default `corpus/`), reading each
  file's `# Verified with:` header, fanning programs out over --jobs threads
  --engine selects the semantic backend: `enumerative` (explicit bitsets,
  the default) or `symbolic` (interval decision diagrams — same verdicts,
  scales to universes far beyond the enumerable bound); --engine symbolic
  is incompatible with --uncached (the symbolic backend lives behind the
  semantic cache)
  --stats prints cache hit/miss counters and timings; --stats-json prints the
  same as one JSON object; --uncached disables the memo tables (the
  reference path)
  --trace FILE writes a structured JSONL event log; --trace-format dot
  (prove only) writes the LCL derivation as Graphviz DOT instead;
  --profile prints a per-phase wall-time table after the run
  --fuel N caps engine-loop iterations; --timeout-ms N sets a wall-clock
  deadline; exhausting either stops the run with exit code 3 and the best
  partial result (corpus sweeps share one budget across all programs)
  repair verifies FILE (a corpus-style *.imp with a `# Verified with:`
  header), then re-verifies every --edit revision *incrementally* in one
  warm session: memoized wlp/exec/closure derivations carry over, so each
  re-repair costs roughly the structural distance of the edit, and every
  verdict is byte-identical to a from-scratch run; an --edit file reuses
  the base header unless it carries its own (same variables required)
  trace summarize aggregates a JSONL trace into per-phase tables
  fuzz run sweeps seeded random instances through every engine
  configuration and checks the paper's theorem oracles (see FUZZING.md);
  failures are shrunk and written as seed files under --corpus-dir
  (default `corpus/fuzz`); fuzz replay re-checks one seed file; fuzz
  minimize shrinks a failing seed file and prints the result
  --checkpoint FILE atomically saves sweep progress every few items so a
  killed run can restart with --resume and produce the identical report
  --shards N distributes a fuzz/corpus/chaos campaign over N worker OS
  processes with crash-tolerant leases and work-stealing; the merged
  report is byte-identical to the single-process run (see FUZZING.md);
  --lease sizes one lease in items (0 = auto), --hang-timeout-ms bounds
  worker silence before a restart, --kill-workers N SIGKILLs N workers
  mid-campaign as a chaos axis (--kill-seed picks the schedule), and
  --dist-frame-log FILE records every coordinator frame as JSONL
  chaos reruns the corpus under --plans seeded fault-injection plans
  (worker panics, cache poisoning, sink failures, budget cancellation)
  and checks that every run degrades cleanly: structured exit codes, no
  aborts, and any partial invariant sound against concrete semantics
  serve runs the repair-as-a-service daemon (see SERVING.md): verify/
  analyze/repair jobs arrive as length-prefixed JSON frames on stdin
  (--stdio) and/or a TCP socket (--tcp HOST:PORT, port 0 = ephemeral),
  and warm caches persist across requests; --workers sizes the job pool,
  --quota caps each tenant's lifetime fuel, --max-frame caps a request's
  size in bytes; --metrics-addr serves Prometheus text exposition on
  HOST:PORT (curl- and nc-friendly); --no-metrics disables the metrics
  plane entirely
  top polls a running daemon's `metrics` job over --connect HOST:PORT
  and renders a one-screen live summary (req/s, p50/p99 cold and warm
  latency, warm hit rate, queue depth, per-tenant fuel spend) every
  --interval-ms (default 1000); --iterations N stops after N screens
  (0 = run until interrupted), --plain skips terminal escapes for logs

exit codes: 0 proved / no alarms, 1 refuted / alarms, 2 usage error,
  3 budget exhausted, 4 internal error";

/// The base abstract domain to start from.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DomainKind {
    /// Intervals (the paper's `Int`). Default.
    #[default]
    Int,
    /// Octagons.
    Oct,
    /// Signs.
    Sign,
    /// Parity.
    Parity,
    /// Constant propagation.
    Const,
    /// Congruences.
    Cong,
    /// Karr's affine equalities.
    Karr,
}

impl DomainKind {
    pub(crate) fn parse(s: &str) -> Result<Self, ArgError> {
        Ok(match s {
            "int" => DomainKind::Int,
            "oct" => DomainKind::Oct,
            "sign" => DomainKind::Sign,
            "parity" => DomainKind::Parity,
            "const" => DomainKind::Const,
            "cong" => DomainKind::Cong,
            "karr" => DomainKind::Karr,
            other => return Err(ArgError(format!("unknown domain `{other}`"))),
        })
    }
}

/// The output format of `--trace`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TraceFormat {
    /// One JSON event per line (the wire schema of `air-trace`). Default.
    #[default]
    Jsonl,
    /// Graphviz DOT of the LCL derivation tree (`prove` only).
    Dot,
}

/// The semantic engine backend.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EngineKind {
    /// Explicit bitset enumeration. Default.
    #[default]
    Enumerative,
    /// Symbolic interval-decision-diagram evaluation.
    Symbolic,
}

impl EngineKind {
    pub(crate) fn parse(s: &str) -> Result<Self, ArgError> {
        Ok(match s {
            "enumerative" => EngineKind::Enumerative,
            "symbolic" => EngineKind::Symbolic,
            other => return Err(ArgError(format!("unknown engine `{other}`"))),
        })
    }
}

/// The repair strategy for `verify`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum StrategyKind {
    /// Backward repair (Algorithm 2). Default.
    #[default]
    Backward,
    /// Forward repair (Algorithm 1).
    Forward,
}

/// A declared variable with bounds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Lower bound.
    pub lo: i64,
    /// Upper bound.
    pub hi: i64,
}

/// A parsed CLI invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `air verify` — repair until proved or refuted.
    Verify(Task),
    /// `air analyze` — plain analysis, report alarm counts.
    Analyze(Task),
    /// `air prove` — print the LCL_A derivation (with repair).
    Prove(Task),
    /// `air corpus` — verify every program in a corpus directory.
    Corpus(CorpusTask),
    /// `air repair` — incremental re-repair of edited revisions.
    Repair(RepairTask),
    /// `air trace summarize` — aggregate a JSONL trace into tables.
    TraceSummarize {
        /// Path of the JSONL trace file.
        file: String,
    },
    /// `air fuzz ...` — theorem-oracle fuzzing (see FUZZING.md).
    Fuzz(FuzzCmd),
    /// `air chaos` — corpus sweep under seeded fault-injection plans.
    Chaos(ChaosTask),
    /// `air serve` — the repair-as-a-service daemon (see SERVING.md).
    Serve(ServeTask),
    /// `air top` — live metrics view of a running daemon.
    Top(TopTask),
}

/// The `air top` payload.
#[derive(Clone, Debug, PartialEq)]
pub struct TopTask {
    /// Address of the running daemon's wire protocol (`HOST:PORT`).
    pub connect: String,
    /// Milliseconds between polls.
    pub interval_ms: u64,
    /// Screens to render before exiting (`0` = until interrupted).
    pub iterations: u64,
    /// Plain output: no cursor-home escapes, one block per poll.
    pub plain: bool,
}

/// The `air serve` payload.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeTask {
    /// Serve length-prefixed frames on stdin/stdout.
    pub stdio: bool,
    /// TCP bind address (`HOST:PORT`, port 0 for ephemeral).
    pub tcp: Option<String>,
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Per-tenant lifetime fuel allowance.
    pub quota: Option<u64>,
    /// Maximum accepted frame payload, in bytes.
    pub max_frame: Option<usize>,
    /// Write a structured JSONL trace of the serving session to this file.
    pub trace: Option<String>,
    /// Bind address of the Prometheus text exposition listener.
    pub metrics_addr: Option<String>,
    /// Whether the metrics plane collects at all.
    pub metrics: bool,
}

/// Distributed-campaign flags shared by `fuzz run`, `corpus` and
/// `chaos` (see `crates/dist`). All default to off; `--shards N` with
/// `N >= 1` switches the command into coordinator mode.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DistOpts {
    /// Worker OS processes (`0` = single-process).
    pub shards: u64,
    /// Items per lease (`0` = auto-sized from the campaign).
    pub lease: u64,
    /// Heartbeat hang timeout in milliseconds (`0` = default 30 000).
    pub hang_ms: u64,
    /// Chaos axis: SIGKILL this many workers mid-campaign.
    pub kill_workers: u64,
    /// Seed of the deterministic kill schedule.
    pub kill_seed: u64,
    /// Record every coordinator frame as JSONL to this file.
    pub frame_log: Option<String>,
    /// Hidden (`--dist-worker N`): run as the worker for shard N,
    /// speaking the dist-frame protocol on stdin/stdout.
    pub worker: Option<u64>,
}

impl DistOpts {
    /// True when the user asked for a distributed run.
    pub fn requested(&self) -> bool {
        self.shards > 0
    }

    /// True when any dist flag besides `--shards`/`--dist-worker` was
    /// given (used to reject them without `--shards`).
    fn any_tuning(&self) -> bool {
        self.lease > 0
            || self.hang_ms > 0
            || self.kill_workers > 0
            || self.kill_seed > 0
            || self.frame_log.is_some()
    }
}

/// Consumes one distributed-campaign flag into `opts`; returns
/// `Ok(false)` when `flag` is not a dist flag.
fn dist_flag(
    opts: &mut DistOpts,
    flag: &str,
    value: &mut dyn FnMut() -> Result<String, ArgError>,
) -> Result<bool, ArgError> {
    let num = |v: String, flag: &str| -> Result<u64, ArgError> {
        v.parse()
            .map_err(|_| ArgError(format!("bad {flag} value `{v}`")))
    };
    match flag {
        "--shards" => opts.shards = num(value()?, flag)?,
        "--lease" => opts.lease = num(value()?, flag)?,
        "--hang-timeout-ms" => opts.hang_ms = num(value()?, flag)?,
        "--kill-workers" => opts.kill_workers = num(value()?, flag)?,
        "--kill-seed" => opts.kill_seed = num(value()?, flag)?,
        "--dist-frame-log" => opts.frame_log = Some(value()?),
        "--dist-worker" => opts.worker = Some(num(value()?, flag)?),
        _ => return Ok(false),
    }
    Ok(true)
}

/// Rejects dist tuning flags without `--shards`, and `--shards`
/// together with `--dist-worker` (a process is one or the other).
fn check_dist(opts: &DistOpts) -> Result<(), ArgError> {
    if opts.worker.is_some() && opts.requested() {
        return Err(ArgError(
            "--dist-worker is mutually exclusive with --shards".into(),
        ));
    }
    if !opts.requested() && opts.worker.is_none() && opts.any_tuning() {
        return Err(ArgError(
            "distributed flags (--lease, --hang-timeout-ms, --kill-workers, --kill-seed, \
             --dist-frame-log) require --shards N"
                .into(),
        ));
    }
    Ok(())
}

/// The `air chaos` payload.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosTask {
    /// Directory holding `*.imp` programs with `# Verified with:` headers.
    pub dir: String,
    /// Number of seeded fault plans to sweep.
    pub plans: u64,
    /// Base seed; plan `i` is derived from `seed + i`.
    pub seed: u64,
    /// Fuel budget per plan run (`None` = a generous default).
    pub fuel: Option<u64>,
    /// Print the deterministic campaign report as one JSON line.
    pub stats_json: bool,
    /// Write a structured JSONL trace of the whole sweep to this file.
    pub trace: Option<String>,
    /// Distributed-campaign options (`--shards N`, see crates/dist).
    pub dist: DistOpts,
}

/// The `air fuzz` actions.
#[derive(Clone, Debug, PartialEq)]
pub enum FuzzCmd {
    /// Run a fuzz campaign over `seed..seed + cases`.
    Run {
        /// First seed.
        seed: u64,
        /// Number of cases.
        cases: u64,
        /// Restrict to one oracle by name.
        oracle: Option<String>,
        /// Directory to write shrunk failing seed files into.
        corpus_dir: String,
        /// Minimize failures before persisting them.
        shrink: bool,
        /// Print the deterministic campaign report as one JSON line.
        stats_json: bool,
        /// Write `fuzz_case`/`fuzz_shrink` events to this JSONL file.
        trace: Option<String>,
        /// Crash-safe progress checkpoint file.
        checkpoint: Option<String>,
        /// Resume from `checkpoint` instead of starting over.
        resume: bool,
        /// Hidden: exit(0) after N cases, simulating a crash (CI uses
        /// this to exercise `--resume` deterministically).
        halt_after: Option<u64>,
        /// Distributed-campaign options (`--shards N`, see crates/dist).
        dist: DistOpts,
    },
    /// Re-check one seed file.
    Replay {
        /// Path of the seed file.
        file: String,
        /// Restrict to one oracle by name.
        oracle: Option<String>,
    },
    /// Shrink a failing seed file and print the minimized seed file.
    Minimize {
        /// Path of the seed file.
        file: String,
    },
}

/// The common task payload.
#[derive(Clone, Debug, PartialEq)]
pub struct Task {
    /// Declared variables.
    pub vars: Vec<VarDecl>,
    /// Program source text.
    pub code: String,
    /// Precondition source (boolean expression).
    pub pre: String,
    /// Specification source (empty for `prove`).
    pub spec: Option<String>,
    /// Base domain.
    pub domain: DomainKind,
    /// Repair strategy.
    pub strategy: StrategyKind,
    /// Semantic engine backend.
    pub engine: EngineKind,
    /// Print cache hit/miss counters and timings after the run.
    pub stats: bool,
    /// Print the same statistics as one machine-readable JSON object.
    pub stats_json: bool,
    /// Disable memoization (the reference path).
    pub uncached: bool,
    /// Write a structured trace to this file.
    pub trace: Option<String>,
    /// Format of the `--trace` output.
    pub trace_format: TraceFormat,
    /// Print a per-phase wall-time profile after the run.
    pub profile: bool,
    /// Fuel budget: maximum engine-loop iterations before exit code 3.
    pub fuel: Option<u64>,
    /// Wall-clock budget in milliseconds before exit code 3.
    pub timeout_ms: Option<u64>,
}

/// The `air repair` payload: one base program plus edited revisions,
/// re-verified incrementally in a single warm session.
#[derive(Clone, Debug, PartialEq)]
pub struct RepairTask {
    /// The base program: a corpus-style `*.imp` with a `# Verified
    /// with:` header.
    pub file: String,
    /// Edited revisions, re-verified in order against the warm session.
    pub edits: Vec<String>,
    /// Base domain (overridden by a `domain` header clause).
    pub domain: DomainKind,
    /// Print per-revision timings, reuse and cache counters.
    pub stats: bool,
    /// Print the same statistics as machine-readable JSON lines.
    pub stats_json: bool,
    /// Write a structured JSONL trace of the whole session to this file.
    pub trace: Option<String>,
    /// Fuel budget shared by the whole session.
    pub fuel: Option<u64>,
    /// Wall-clock budget in milliseconds for the whole session.
    pub timeout_ms: Option<u64>,
}

/// The corpus-sweep payload.
#[derive(Clone, Debug, PartialEq)]
pub struct CorpusTask {
    /// Directory holding `*.imp` programs with `# Verified with:` headers.
    pub dir: String,
    /// Worker threads for the program fan-out (`0` = one per program).
    pub jobs: usize,
    /// Base domain (overridden per-file by a `domain` header clause).
    pub domain: DomainKind,
    /// Repair strategy.
    pub strategy: StrategyKind,
    /// Semantic engine backend.
    pub engine: EngineKind,
    /// Print per-program timings and cache counters.
    pub stats: bool,
    /// Print aggregate statistics as one machine-readable JSON object.
    pub stats_json: bool,
    /// Disable memoization (the reference path).
    pub uncached: bool,
    /// Write a structured JSONL trace of the whole sweep to this file.
    pub trace: Option<String>,
    /// Print a per-phase wall-time profile after the sweep.
    pub profile: bool,
    /// Fuel budget shared by the whole sweep (all programs together).
    pub fuel: Option<u64>,
    /// Wall-clock budget in milliseconds for the whole sweep.
    pub timeout_ms: Option<u64>,
    /// Crash-safe progress checkpoint file.
    pub checkpoint: Option<String>,
    /// Resume from `checkpoint` instead of starting over.
    pub resume: bool,
    /// Distributed-campaign options (`--shards N`, see crates/dist).
    pub dist: DistOpts,
}

/// A parse failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

/// Parses `--vars "x:-8..8,y:0..20"`.
pub fn parse_vars(spec: &str) -> Result<Vec<VarDecl>, ArgError> {
    let mut out = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (name, range) = part
            .split_once(':')
            .ok_or_else(|| ArgError(format!("variable `{part}` lacks `:lo..hi`")))?;
        let (lo, hi) = range
            .split_once("..")
            .ok_or_else(|| ArgError(format!("range `{range}` lacks `..`")))?;
        let lo: i64 = lo
            .trim()
            .parse()
            .map_err(|_| ArgError(format!("bad lower bound `{lo}`")))?;
        let hi: i64 = hi
            .trim()
            .parse()
            .map_err(|_| ArgError(format!("bad upper bound `{hi}`")))?;
        out.push(VarDecl {
            name: name.trim().to_owned(),
            lo,
            hi,
        });
    }
    if out.is_empty() {
        return Err(ArgError("--vars declared no variables".into()));
    }
    Ok(out)
}

fn parse_fuzz(it: &mut std::slice::Iter<'_, String>) -> Result<Command, ArgError> {
    let action = it
        .next()
        .ok_or_else(|| ArgError("`fuzz` needs an action (run, replay, minimize)".into()))?;
    match action.as_str() {
        "run" => {
            let mut seed = 0u64;
            let mut cases = 1000u64;
            let mut oracle = None;
            let mut corpus_dir = String::from("corpus/fuzz");
            let mut shrink = true;
            let mut stats_json = false;
            let mut trace = None;
            let mut checkpoint = None;
            let mut resume = false;
            let mut halt_after = None;
            let mut dist = DistOpts::default();
            while let Some(flag) = it.next() {
                let mut value = || {
                    it.next()
                        .cloned()
                        .ok_or_else(|| ArgError(format!("flag `{flag}` needs a value")))
                };
                match flag.as_str() {
                    "--seed" => {
                        let v = value()?;
                        seed = v
                            .parse()
                            .map_err(|_| ArgError(format!("bad --seed value `{v}`")))?;
                    }
                    "--cases" => {
                        let v = value()?;
                        cases = v
                            .parse()
                            .map_err(|_| ArgError(format!("bad --cases value `{v}`")))?;
                    }
                    "--oracle" => oracle = Some(value()?),
                    "--corpus-dir" => corpus_dir = value()?,
                    "--no-shrink" => shrink = false,
                    "--stats-json" => stats_json = true,
                    "--trace" => trace = Some(value()?),
                    "--checkpoint" => checkpoint = Some(value()?),
                    "--resume" => resume = true,
                    "--halt-after" => {
                        let v = value()?;
                        halt_after = Some(
                            v.parse()
                                .map_err(|_| ArgError(format!("bad --halt-after value `{v}`")))?,
                        );
                    }
                    other => {
                        if !dist_flag(&mut dist, other, &mut value)? {
                            return Err(ArgError(format!("unknown fuzz flag `{other}`")));
                        }
                    }
                }
            }
            if resume && checkpoint.is_none() {
                return Err(ArgError("--resume requires --checkpoint".into()));
            }
            check_dist(&dist)?;
            Ok(Command::Fuzz(FuzzCmd::Run {
                seed,
                cases,
                oracle,
                corpus_dir,
                shrink,
                stats_json,
                trace,
                checkpoint,
                resume,
                halt_after,
                dist,
            }))
        }
        "replay" | "minimize" => {
            let file = it
                .next()
                .cloned()
                .ok_or_else(|| ArgError(format!("`fuzz {action}` needs a FILE")))?;
            if action == "minimize" {
                if let Some(extra) = it.next() {
                    return Err(ArgError(format!("unexpected argument `{extra}`")));
                }
                return Ok(Command::Fuzz(FuzzCmd::Minimize { file }));
            }
            let mut oracle = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--oracle" => {
                        oracle = Some(
                            it.next()
                                .cloned()
                                .ok_or_else(|| ArgError("flag `--oracle` needs a value".into()))?,
                        );
                    }
                    other => return Err(ArgError(format!("unknown fuzz flag `{other}`"))),
                }
            }
            Ok(Command::Fuzz(FuzzCmd::Replay { file, oracle }))
        }
        other => Err(ArgError(format!("unknown fuzz action `{other}`"))),
    }
}

fn parse_chaos(it: &mut std::slice::Iter<'_, String>) -> Result<Command, ArgError> {
    let mut dir = String::from("corpus");
    let mut plans = 64u64;
    let mut seed = 0u64;
    let mut fuel = None;
    let mut stats_json = false;
    let mut trace = None;
    let mut dist = DistOpts::default();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| ArgError(format!("flag `{flag}` needs a value")))
        };
        match flag.as_str() {
            "--dir" => dir = value()?,
            "--plans" => {
                let v = value()?;
                plans = v
                    .parse()
                    .map_err(|_| ArgError(format!("bad --plans value `{v}`")))?;
            }
            "--seed" => {
                let v = value()?;
                seed = v
                    .parse()
                    .map_err(|_| ArgError(format!("bad --seed value `{v}`")))?;
            }
            "--fuel" => {
                let v = value()?;
                fuel = Some(
                    v.parse::<u64>()
                        .map_err(|_| ArgError(format!("bad --fuel value `{v}`")))?,
                );
            }
            "--stats-json" => stats_json = true,
            "--trace" => trace = Some(value()?),
            other => {
                if !dist_flag(&mut dist, other, &mut value)? {
                    return Err(ArgError(format!("unknown chaos flag `{other}`")));
                }
            }
        }
    }
    check_dist(&dist)?;
    if dist.requested() && trace.is_some() {
        return Err(ArgError(
            "--shards is incompatible with chaos --trace (workers own their sinks)".into(),
        ));
    }
    Ok(Command::Chaos(ChaosTask {
        dir,
        plans,
        seed,
        fuel,
        stats_json,
        trace,
        dist,
    }))
}

fn parse_serve(it: &mut std::slice::Iter<'_, String>) -> Result<Command, ArgError> {
    let mut stdio = false;
    let mut tcp = None;
    let mut workers = 2usize;
    let mut quota = None;
    let mut max_frame = None;
    let mut trace = None;
    let mut metrics_addr = None;
    let mut metrics = true;
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| ArgError(format!("flag `{flag}` needs a value")))
        };
        match flag.as_str() {
            "--stdio" => stdio = true,
            "--tcp" => tcp = Some(value()?),
            "--metrics-addr" => metrics_addr = Some(value()?),
            "--no-metrics" => metrics = false,
            "--workers" => {
                let v = value()?;
                workers = v
                    .parse()
                    .map_err(|_| ArgError(format!("bad --workers value `{v}`")))?;
            }
            "--quota" => {
                let v = value()?;
                quota = Some(
                    v.parse::<u64>()
                        .map_err(|_| ArgError(format!("bad --quota value `{v}`")))?,
                );
            }
            "--max-frame" => {
                let v = value()?;
                max_frame = Some(
                    v.parse::<usize>()
                        .map_err(|_| ArgError(format!("bad --max-frame value `{v}`")))?,
                );
            }
            "--trace" => trace = Some(value()?),
            other => return Err(ArgError(format!("unknown serve flag `{other}`"))),
        }
    }
    if !stdio && tcp.is_none() {
        return Err(ArgError(
            "serve needs a transport: --stdio and/or --tcp ADDR".into(),
        ));
    }
    if !metrics && metrics_addr.is_some() {
        return Err(ArgError(
            "--metrics-addr needs the metrics plane; drop --no-metrics".into(),
        ));
    }
    Ok(Command::Serve(ServeTask {
        stdio,
        tcp,
        workers,
        quota,
        max_frame,
        trace,
        metrics_addr,
        metrics,
    }))
}

fn parse_repair(it: &mut std::slice::Iter<'_, String>) -> Result<Command, ArgError> {
    let mut file = None;
    let mut edits = Vec::new();
    let mut domain = DomainKind::default();
    let mut stats = false;
    let mut stats_json = false;
    let mut trace = None;
    let mut fuel = None;
    let mut timeout_ms = None;
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| ArgError(format!("flag `{arg}` needs a value")))
        };
        match arg.as_str() {
            "--edit" => edits.push(value()?),
            "--domain" => domain = DomainKind::parse(&value()?)?,
            "--stats" => stats = true,
            "--stats-json" => stats_json = true,
            "--trace" => trace = Some(value()?),
            "--fuel" => {
                let v = value()?;
                fuel = Some(
                    v.parse::<u64>()
                        .map_err(|_| ArgError(format!("bad --fuel value `{v}`")))?,
                );
            }
            "--timeout-ms" => {
                let v = value()?;
                timeout_ms = Some(
                    v.parse::<u64>()
                        .map_err(|_| ArgError(format!("bad --timeout-ms value `{v}`")))?,
                );
            }
            other if other.starts_with("--") => {
                return Err(ArgError(format!("unknown repair flag `{other}`")))
            }
            _ if file.is_none() => file = Some(arg.clone()),
            other => return Err(ArgError(format!("unexpected argument `{other}`"))),
        }
    }
    Ok(Command::Repair(RepairTask {
        file: file.ok_or_else(|| ArgError("`repair` needs a FILE".into()))?,
        edits,
        domain,
        stats,
        stats_json,
        trace,
        fuel,
        timeout_ms,
    }))
}

fn parse_top(it: &mut std::slice::Iter<'_, String>) -> Result<Command, ArgError> {
    let mut connect = None;
    let mut interval_ms = 1000u64;
    let mut iterations = 0u64;
    let mut plain = false;
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| ArgError(format!("flag `{flag}` needs a value")))
        };
        match flag.as_str() {
            "--connect" => connect = Some(value()?),
            "--interval-ms" => {
                let v = value()?;
                interval_ms = v
                    .parse()
                    .map_err(|_| ArgError(format!("bad --interval-ms value `{v}`")))?;
            }
            "--iterations" => {
                let v = value()?;
                iterations = v
                    .parse()
                    .map_err(|_| ArgError(format!("bad --iterations value `{v}`")))?;
            }
            "--plain" => plain = true,
            other => return Err(ArgError(format!("unknown top flag `{other}`"))),
        }
    }
    Ok(Command::Top(TopTask {
        connect: connect.ok_or_else(|| ArgError("top requires --connect HOST:PORT".into()))?,
        interval_ms: interval_ms.max(1),
        iterations,
        plain,
    }))
}

/// Parses a full argv (without the binary name).
pub fn parse(argv: &[String]) -> Result<Command, ArgError> {
    let mut it = argv.iter();
    let sub = it
        .next()
        .ok_or_else(|| ArgError("missing subcommand".into()))?;
    if sub == "--help" || sub == "-h" {
        return Err(ArgError("help requested".into()));
    }
    if sub == "trace" {
        let action = it
            .next()
            .ok_or_else(|| ArgError("`trace` needs an action (summarize)".into()))?;
        if action != "summarize" {
            return Err(ArgError(format!("unknown trace action `{action}`")));
        }
        let file = it
            .next()
            .cloned()
            .ok_or_else(|| ArgError("`trace summarize` needs a FILE".into()))?;
        if let Some(extra) = it.next() {
            return Err(ArgError(format!("unexpected argument `{extra}`")));
        }
        return Ok(Command::TraceSummarize { file });
    }
    if sub == "fuzz" {
        return parse_fuzz(&mut it);
    }
    if sub == "chaos" {
        return parse_chaos(&mut it);
    }
    if sub == "serve" {
        return parse_serve(&mut it);
    }
    if sub == "top" {
        return parse_top(&mut it);
    }
    if sub == "repair" {
        return parse_repair(&mut it);
    }
    let mut vars = None;
    let mut code = None;
    let mut file = None;
    let mut pre = None;
    let mut spec = None;
    let mut domain = DomainKind::default();
    let mut strategy = StrategyKind::default();
    let mut engine = EngineKind::default();
    let mut stats = false;
    let mut stats_json = false;
    let mut uncached = false;
    let mut dir = String::from("corpus");
    let mut jobs = 0usize;
    let mut trace = None;
    let mut trace_format = None;
    let mut profile = false;
    let mut fuel = None;
    let mut timeout_ms = None;
    let mut checkpoint = None;
    let mut resume = false;
    let mut dist = DistOpts::default();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| ArgError(format!("flag `{flag}` needs a value")))
        };
        match flag.as_str() {
            "--vars" => vars = Some(parse_vars(&value()?)?),
            "--code" => code = Some(value()?),
            "--file" => file = Some(value()?),
            "--pre" => pre = Some(value()?),
            "--spec" => spec = Some(value()?),
            "--domain" => domain = DomainKind::parse(&value()?)?,
            "--strategy" => {
                strategy = match value()?.as_str() {
                    "backward" => StrategyKind::Backward,
                    "forward" => StrategyKind::Forward,
                    other => return Err(ArgError(format!("unknown strategy `{other}`"))),
                }
            }
            "--engine" => engine = EngineKind::parse(&value()?)?,
            "--stats" => stats = true,
            "--stats-json" => stats_json = true,
            "--uncached" => uncached = true,
            "--trace" => trace = Some(value()?),
            "--trace-format" => {
                trace_format = Some(match value()?.as_str() {
                    "jsonl" => TraceFormat::Jsonl,
                    "dot" => TraceFormat::Dot,
                    other => return Err(ArgError(format!("unknown trace format `{other}`"))),
                })
            }
            "--profile" => profile = true,
            "--fuel" => {
                let v = value()?;
                fuel = Some(
                    v.parse::<u64>()
                        .map_err(|_| ArgError(format!("bad --fuel value `{v}`")))?,
                );
            }
            "--timeout-ms" => {
                let v = value()?;
                timeout_ms = Some(
                    v.parse::<u64>()
                        .map_err(|_| ArgError(format!("bad --timeout-ms value `{v}`")))?,
                );
            }
            "--dir" => dir = value()?,
            "--jobs" => {
                let v = value()?;
                jobs = v
                    .parse()
                    .map_err(|_| ArgError(format!("bad --jobs value `{v}`")))?;
            }
            "--checkpoint" => checkpoint = Some(value()?),
            "--resume" => resume = true,
            other => {
                if sub != "corpus" || !dist_flag(&mut dist, other, &mut value)? {
                    return Err(ArgError(format!("unknown flag `{other}`")));
                }
            }
        }
    }
    if (checkpoint.is_some() || resume) && sub != "corpus" {
        return Err(ArgError(
            "--checkpoint/--resume are only available for `corpus` and `fuzz run`".into(),
        ));
    }
    if resume && checkpoint.is_none() {
        return Err(ArgError("--resume requires --checkpoint".into()));
    }
    if trace_format.is_some() && trace.is_none() {
        return Err(ArgError("--trace-format requires --trace".into()));
    }
    if trace_format == Some(TraceFormat::Dot) && sub != "prove" {
        return Err(ArgError(
            "--trace-format dot is only available for `prove`".into(),
        ));
    }
    let trace_format = trace_format.unwrap_or_default();
    if engine == EngineKind::Symbolic && uncached {
        return Err(ArgError(
            "--engine symbolic is incompatible with --uncached (the symbolic \
             backend lives behind the semantic cache)"
                .into(),
        ));
    }
    if sub == "corpus" {
        check_dist(&dist)?;
        if dist.requested() || dist.worker.is_some() {
            // Sharded sweeps fork per-lease processes: a single shared
            // fuel meter, the sequential checkpoint file and the trace/
            // profile sinks have no cross-process analogue.
            let conflict = [
                (checkpoint.is_some(), "--checkpoint"),
                (fuel.is_some(), "--fuel"),
                (timeout_ms.is_some(), "--timeout-ms"),
                (trace.is_some(), "--trace"),
                (profile, "--profile"),
            ]
            .iter()
            .find_map(|(on, name)| on.then_some(*name));
            if let Some(name) = conflict {
                return Err(ArgError(format!(
                    "{name} is incompatible with corpus --shards/--dist-worker"
                )));
            }
        }
        return Ok(Command::Corpus(CorpusTask {
            dir,
            jobs,
            domain,
            strategy,
            engine,
            stats,
            stats_json,
            uncached,
            trace,
            profile,
            fuel,
            timeout_ms,
            checkpoint,
            resume,
            dist,
        }));
    }
    let code = match (code, file) {
        (Some(c), None) => c,
        (None, Some(path)) => std::fs::read_to_string(&path)
            .map_err(|e| ArgError(format!("cannot read `{path}`: {e}")))?,
        (Some(_), Some(_)) => return Err(ArgError("--code and --file are exclusive".into())),
        (None, None) => return Err(ArgError("one of --code or --file is required".into())),
    };
    let task = Task {
        vars: vars.ok_or_else(|| ArgError("--vars is required".into()))?,
        code,
        pre: pre.ok_or_else(|| ArgError("--pre is required".into()))?,
        spec: spec.clone(),
        domain,
        strategy,
        engine,
        stats,
        stats_json,
        uncached,
        trace,
        trace_format,
        profile,
        fuel,
        timeout_ms,
    };
    match sub.as_str() {
        "verify" | "analyze" => {
            if task.spec.is_none() {
                return Err(ArgError(format!("`{sub}` requires --spec")));
            }
            Ok(if sub == "verify" {
                Command::Verify(task)
            } else {
                Command::Analyze(task)
            })
        }
        "prove" => Ok(Command::Prove(task)),
        other => Err(ArgError(format!("unknown subcommand `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_vars_spec() {
        let vars = parse_vars("x:-8..8, y:0..20").unwrap();
        assert_eq!(vars.len(), 2);
        assert_eq!(
            vars[0],
            VarDecl {
                name: "x".into(),
                lo: -8,
                hi: 8
            }
        );
        assert_eq!(vars[1].name, "y");
        assert!(parse_vars("x").is_err());
        assert!(parse_vars("x:1-2").is_err());
        assert!(parse_vars("x:a..b").is_err());
        assert!(parse_vars("").is_err());
    }

    #[test]
    fn parses_full_verify() {
        let cmd = parse(&argv(&[
            "verify",
            "--vars",
            "x:-8..8",
            "--code",
            "skip",
            "--pre",
            "x > 0",
            "--spec",
            "x > 0",
            "--domain",
            "oct",
            "--strategy",
            "forward",
        ]))
        .unwrap();
        let Command::Verify(task) = cmd else {
            panic!("expected verify");
        };
        assert_eq!(task.domain, DomainKind::Oct);
        assert_eq!(task.strategy, StrategyKind::Forward);
        assert_eq!(task.code, "skip");
    }

    #[test]
    fn prove_does_not_need_spec() {
        let cmd = parse(&argv(&[
            "prove", "--vars", "x:0..3", "--code", "skip", "--pre", "true",
        ]))
        .unwrap();
        assert!(matches!(cmd, Command::Prove(_)));
        // verify without --spec is rejected.
        assert!(parse(&argv(&[
            "verify", "--vars", "x:0..3", "--code", "skip", "--pre", "true",
        ]))
        .is_err());
    }

    #[test]
    fn rejects_bad_flags_and_missing_values() {
        assert!(parse(&argv(&["verify", "--bogus"])).is_err());
        assert!(parse(&argv(&["verify", "--vars"])).is_err());
        assert!(parse(&argv(&["frobnicate"])).is_err());
        assert!(parse(&argv(&[])).is_err());
        assert!(
            parse(&argv(&[
                "verify", "--vars", "x:0..1", "--pre", "true", "--spec", "true",
            ]))
            .is_err(),
            "missing --code/--file"
        );
        assert!(
            parse(&argv(&[
                "verify", "--vars", "x:0..1", "--code", "skip", "--file", "f", "--pre", "true",
                "--spec", "true",
            ]))
            .is_err(),
            "--code and --file are exclusive"
        );
    }

    #[test]
    fn parses_corpus_subcommand() {
        let cmd = parse(&argv(&[
            "corpus",
            "--dir",
            "progs",
            "--jobs",
            "4",
            "--domain",
            "karr",
            "--stats",
            "--uncached",
        ]))
        .unwrap();
        let Command::Corpus(task) = cmd else {
            panic!("expected corpus");
        };
        assert_eq!(task.dir, "progs");
        assert_eq!(task.jobs, 4);
        assert_eq!(task.domain, DomainKind::Karr);
        assert!(task.stats && task.uncached);
        // Defaults.
        let Command::Corpus(task) = parse(&argv(&["corpus"])).unwrap() else {
            panic!("expected corpus");
        };
        assert_eq!(task.dir, "corpus");
        assert_eq!(task.jobs, 0);
        assert!(!task.stats && !task.uncached);
        assert!(parse(&argv(&["corpus", "--jobs", "x"])).is_err());
    }

    #[test]
    fn stats_flag_on_verify() {
        let cmd = parse(&argv(&[
            "verify", "--vars", "x:0..3", "--code", "skip", "--pre", "true", "--spec", "true",
            "--stats",
        ]))
        .unwrap();
        let Command::Verify(task) = cmd else {
            panic!("expected verify");
        };
        assert!(task.stats);
        assert!(!task.uncached);
    }

    #[test]
    fn parses_trace_profile_and_stats_json_flags() {
        let cmd = parse(&argv(&[
            "prove",
            "--vars",
            "x:0..3",
            "--code",
            "skip",
            "--pre",
            "true",
            "--trace",
            "out.dot",
            "--trace-format",
            "dot",
            "--profile",
            "--stats-json",
        ]))
        .unwrap();
        let Command::Prove(task) = cmd else {
            panic!("expected prove");
        };
        assert_eq!(task.trace.as_deref(), Some("out.dot"));
        assert_eq!(task.trace_format, TraceFormat::Dot);
        assert!(task.profile && task.stats_json);
        // DOT export is prove-only, and --trace-format needs --trace.
        assert!(parse(&argv(&[
            "verify",
            "--vars",
            "x:0..3",
            "--code",
            "skip",
            "--pre",
            "true",
            "--spec",
            "true",
            "--trace",
            "t.jsonl",
            "--trace-format",
            "dot",
        ]))
        .is_err());
        assert!(parse(&argv(&[
            "prove",
            "--vars",
            "x:0..3",
            "--code",
            "skip",
            "--pre",
            "true",
            "--trace-format",
            "dot",
        ]))
        .is_err());
    }

    #[test]
    fn parses_budget_flags() {
        let cmd = parse(&argv(&[
            "verify",
            "--vars",
            "x:0..3",
            "--code",
            "skip",
            "--pre",
            "true",
            "--spec",
            "true",
            "--fuel",
            "500",
            "--timeout-ms",
            "2000",
        ]))
        .unwrap();
        let Command::Verify(task) = cmd else {
            panic!("expected verify");
        };
        assert_eq!(task.fuel, Some(500));
        assert_eq!(task.timeout_ms, Some(2000));
        let Command::Corpus(task) = parse(&argv(&["corpus", "--fuel", "9"])).unwrap() else {
            panic!("expected corpus");
        };
        assert_eq!(task.fuel, Some(9));
        assert_eq!(task.timeout_ms, None);
        assert!(parse(&argv(&["corpus", "--fuel", "many"])).is_err());
        assert!(parse(&argv(&["corpus", "--timeout-ms", "-3"])).is_err());
    }

    #[test]
    fn parses_trace_summarize() {
        assert_eq!(
            parse(&argv(&["trace", "summarize", "run.jsonl"])).unwrap(),
            Command::TraceSummarize {
                file: "run.jsonl".into()
            }
        );
        assert!(parse(&argv(&["trace"])).is_err());
        assert!(parse(&argv(&["trace", "replay", "x"])).is_err());
        assert!(parse(&argv(&["trace", "summarize"])).is_err());
        assert!(parse(&argv(&["trace", "summarize", "a", "b"])).is_err());
    }

    #[test]
    fn parses_fuzz_run_defaults_and_flags() {
        assert_eq!(
            parse(&argv(&["fuzz", "run"])).unwrap(),
            Command::Fuzz(FuzzCmd::Run {
                seed: 0,
                cases: 1000,
                oracle: None,
                corpus_dir: "corpus/fuzz".into(),
                shrink: true,
                stats_json: false,
                trace: None,
                checkpoint: None,
                resume: false,
                halt_after: None,
                dist: DistOpts::default(),
            })
        );
        assert_eq!(
            parse(&argv(&[
                "fuzz",
                "run",
                "--seed",
                "42",
                "--cases",
                "200",
                "--oracle",
                "soundness",
                "--corpus-dir",
                "/tmp/c",
                "--no-shrink",
                "--stats-json",
                "--trace",
                "f.jsonl",
            ]))
            .unwrap(),
            Command::Fuzz(FuzzCmd::Run {
                seed: 42,
                cases: 200,
                oracle: Some("soundness".into()),
                corpus_dir: "/tmp/c".into(),
                shrink: false,
                stats_json: true,
                trace: Some("f.jsonl".into()),
                checkpoint: None,
                resume: false,
                halt_after: None,
                dist: DistOpts::default(),
            })
        );
        assert!(parse(&argv(&["fuzz"])).is_err());
        assert!(parse(&argv(&["fuzz", "explode"])).is_err());
        assert!(parse(&argv(&["fuzz", "run", "--seed"])).is_err());
        assert!(parse(&argv(&["fuzz", "run", "--seed", "abc"])).is_err());
        assert!(parse(&argv(&["fuzz", "run", "--bogus"])).is_err());
    }

    #[test]
    fn parses_fuzz_replay_and_minimize() {
        assert_eq!(
            parse(&argv(&["fuzz", "replay", "seed.imp"])).unwrap(),
            Command::Fuzz(FuzzCmd::Replay {
                file: "seed.imp".into(),
                oracle: None,
            })
        );
        assert_eq!(
            parse(&argv(&["fuzz", "replay", "seed.imp", "--oracle", "sup_l"])).unwrap(),
            Command::Fuzz(FuzzCmd::Replay {
                file: "seed.imp".into(),
                oracle: Some("sup_l".into()),
            })
        );
        assert_eq!(
            parse(&argv(&["fuzz", "minimize", "seed.imp"])).unwrap(),
            Command::Fuzz(FuzzCmd::Minimize {
                file: "seed.imp".into(),
            })
        );
        assert!(parse(&argv(&["fuzz", "replay"])).is_err());
        assert!(parse(&argv(&["fuzz", "replay", "a", "--bogus"])).is_err());
        assert!(parse(&argv(&["fuzz", "minimize"])).is_err());
        assert!(parse(&argv(&["fuzz", "minimize", "a", "b"])).is_err());
    }

    #[test]
    fn parses_checkpoint_resume_and_halt_after() {
        let Command::Fuzz(FuzzCmd::Run {
            checkpoint,
            resume,
            halt_after,
            ..
        }) = parse(&argv(&[
            "fuzz",
            "run",
            "--checkpoint",
            "ck.json",
            "--resume",
            "--halt-after",
            "7",
        ]))
        .unwrap()
        else {
            panic!("expected fuzz run");
        };
        assert_eq!(checkpoint.as_deref(), Some("ck.json"));
        assert!(resume);
        assert_eq!(halt_after, Some(7));
        let Command::Corpus(task) =
            parse(&argv(&["corpus", "--checkpoint", "sweep.json", "--resume"])).unwrap()
        else {
            panic!("expected corpus");
        };
        assert_eq!(task.checkpoint.as_deref(), Some("sweep.json"));
        assert!(task.resume);
        // --resume needs --checkpoint; verify does not take either.
        assert!(parse(&argv(&["fuzz", "run", "--resume"])).is_err());
        assert!(parse(&argv(&["corpus", "--resume"])).is_err());
        assert!(parse(&argv(&[
            "verify",
            "--vars",
            "x:0..1",
            "--code",
            "skip",
            "--pre",
            "true",
            "--spec",
            "true",
            "--checkpoint",
            "x.json",
        ]))
        .is_err());
    }

    #[test]
    fn parses_repair_and_edit_chain() {
        assert_eq!(
            parse(&argv(&["repair", "base.imp"])).unwrap(),
            Command::Repair(RepairTask {
                file: "base.imp".into(),
                edits: vec![],
                domain: DomainKind::Int,
                stats: false,
                stats_json: false,
                trace: None,
                fuel: None,
                timeout_ms: None,
            })
        );
        assert_eq!(
            parse(&argv(&[
                "repair",
                "base.imp",
                "--edit",
                "v2.imp",
                "--edit",
                "v3.imp",
                "--domain",
                "oct",
                "--stats",
                "--stats-json",
                "--trace",
                "r.jsonl",
                "--fuel",
                "900",
                "--timeout-ms",
                "50",
            ]))
            .unwrap(),
            Command::Repair(RepairTask {
                file: "base.imp".into(),
                edits: vec!["v2.imp".into(), "v3.imp".into()],
                domain: DomainKind::Oct,
                stats: true,
                stats_json: true,
                trace: Some("r.jsonl".into()),
                fuel: Some(900),
                timeout_ms: Some(50),
            })
        );
        assert!(parse(&argv(&["repair"])).is_err(), "needs a FILE");
        assert!(parse(&argv(&["repair", "a.imp", "b.imp"])).is_err());
        assert!(parse(&argv(&["repair", "a.imp", "--edit"])).is_err());
        assert!(parse(&argv(&["repair", "a.imp", "--bogus"])).is_err());
    }

    #[test]
    fn parses_chaos_defaults_and_flags() {
        assert_eq!(
            parse(&argv(&["chaos"])).unwrap(),
            Command::Chaos(ChaosTask {
                dir: "corpus".into(),
                plans: 64,
                seed: 0,
                fuel: None,
                stats_json: false,
                trace: None,
                dist: DistOpts::default(),
            })
        );
        assert_eq!(
            parse(&argv(&[
                "chaos",
                "--dir",
                "progs",
                "--plans",
                "8",
                "--seed",
                "3",
                "--fuel",
                "5000",
                "--stats-json",
                "--trace",
                "c.jsonl",
            ]))
            .unwrap(),
            Command::Chaos(ChaosTask {
                dir: "progs".into(),
                plans: 8,
                seed: 3,
                fuel: Some(5000),
                stats_json: true,
                trace: Some("c.jsonl".into()),
                dist: DistOpts::default(),
            })
        );
        assert!(parse(&argv(&["chaos", "--plans", "x"])).is_err());
        assert!(parse(&argv(&["chaos", "--bogus"])).is_err());
    }

    #[test]
    fn parses_serve_flags_and_requires_a_transport() {
        assert_eq!(
            parse(&argv(&["serve", "--stdio"])).unwrap(),
            Command::Serve(ServeTask {
                stdio: true,
                tcp: None,
                workers: 2,
                quota: None,
                max_frame: None,
                trace: None,
                metrics_addr: None,
                metrics: true,
            })
        );
        assert_eq!(
            parse(&argv(&[
                "serve",
                "--tcp",
                "127.0.0.1:0",
                "--workers",
                "8",
                "--quota",
                "50000",
                "--max-frame",
                "4096",
                "--trace",
                "s.jsonl",
                "--metrics-addr",
                "127.0.0.1:9100",
            ]))
            .unwrap(),
            Command::Serve(ServeTask {
                stdio: false,
                tcp: Some("127.0.0.1:0".into()),
                workers: 8,
                quota: Some(50000),
                max_frame: Some(4096),
                trace: Some("s.jsonl".into()),
                metrics_addr: Some("127.0.0.1:9100".into()),
                metrics: true,
            })
        );
        let Command::Serve(task) = parse(&argv(&["serve", "--stdio", "--no-metrics"])).unwrap()
        else {
            panic!("expected serve");
        };
        assert!(!task.metrics);
        assert!(parse(&argv(&["serve"])).is_err(), "needs a transport");
        assert!(parse(&argv(&["serve", "--stdio", "--workers", "x"])).is_err());
        assert!(parse(&argv(&["serve", "--stdio", "--bogus"])).is_err());
        assert!(
            parse(&argv(&[
                "serve",
                "--stdio",
                "--no-metrics",
                "--metrics-addr",
                "127.0.0.1:9100",
            ]))
            .is_err(),
            "exposition needs the plane on"
        );
    }

    #[test]
    fn parses_top_flags_and_requires_connect() {
        assert_eq!(
            parse(&argv(&["top", "--connect", "127.0.0.1:4777"])).unwrap(),
            Command::Top(TopTask {
                connect: "127.0.0.1:4777".into(),
                interval_ms: 1000,
                iterations: 0,
                plain: false,
            })
        );
        assert_eq!(
            parse(&argv(&[
                "top",
                "--connect",
                "h:1",
                "--interval-ms",
                "250",
                "--iterations",
                "3",
                "--plain",
            ]))
            .unwrap(),
            Command::Top(TopTask {
                connect: "h:1".into(),
                interval_ms: 250,
                iterations: 3,
                plain: true,
            })
        );
        assert!(parse(&argv(&["top"])).is_err(), "needs --connect");
        assert!(parse(&argv(&["top", "--connect", "h:1", "--bogus"])).is_err());
        // interval 0 would spin; it is clamped to 1ms.
        let Command::Top(task) =
            parse(&argv(&["top", "--connect", "h:1", "--interval-ms", "0"])).unwrap()
        else {
            panic!("expected top");
        };
        assert_eq!(task.interval_ms, 1);
    }

    #[test]
    fn parses_engine_flag() {
        let Command::Verify(task) = parse(&argv(&[
            "verify", "--vars", "x:0..3", "--code", "skip", "--pre", "true", "--spec", "true",
            "--engine", "symbolic",
        ]))
        .unwrap() else {
            panic!("expected verify");
        };
        assert_eq!(task.engine, EngineKind::Symbolic);
        // Default is enumerative.
        let Command::Corpus(task) = parse(&argv(&["corpus"])).unwrap() else {
            panic!("expected corpus");
        };
        assert_eq!(task.engine, EngineKind::Enumerative);
        let Command::Corpus(task) = parse(&argv(&["corpus", "--engine", "symbolic"])).unwrap()
        else {
            panic!("expected corpus");
        };
        assert_eq!(task.engine, EngineKind::Symbolic);
        assert!(parse(&argv(&["corpus", "--engine", "quantum"])).is_err());
        // The symbolic backend lives behind the cache: --uncached conflicts.
        assert!(parse(&argv(&["corpus", "--engine", "symbolic", "--uncached"])).is_err());
    }

    #[test]
    fn all_domains_parse() {
        for (name, kind) in [
            ("int", DomainKind::Int),
            ("oct", DomainKind::Oct),
            ("sign", DomainKind::Sign),
            ("parity", DomainKind::Parity),
            ("const", DomainKind::Const),
            ("cong", DomainKind::Cong),
            ("karr", DomainKind::Karr),
        ] {
            assert_eq!(DomainKind::parse(name).unwrap(), kind);
        }
        assert!(DomainKind::parse("poly").is_err());
    }
}
