//! Graceful SIGINT/SIGTERM handling for long-running commands.
//!
//! Installing the handler flips one process-global flag; the
//! long-running paths (`fuzz run`, `corpus`, `chaos`, `serve`, and the
//! distributed coordinator) poll it and wind down cooperatively — a
//! final checkpoint is written, the campaign report notes the cut, and
//! the process exits with the budget-class code 3 instead of being torn
//! mid-write. A *second* signal falls back to the default disposition,
//! so a wedged run can still be killed with a double Ctrl-C.
//!
//! Only commands that opt in install the handler: short commands keep
//! the default die-on-SIGINT behavior.
//!
//! The handler itself only does async-signal-safe work (one atomic
//! store and one `signal(2)` re-registration); everything interesting
//! happens on the polling side.

use std::sync::atomic::{AtomicBool, Ordering};

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// True once SIGINT or SIGTERM has been received (always false on
/// platforms without `signal(2)`).
pub(crate) fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

#[cfg(unix)]
mod imp {
    use super::INTERRUPTED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    const SIG_DFL: usize = 0;
    const SIG_ERR: usize = usize::MAX;

    // The workspace is dependency-free, so the one libc call we need is
    // declared by hand. `signal(2)` is in POSIX and the handler below
    // is async-signal-safe (one atomic store, one re-registration).
    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(signum: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
        // Restore the default disposition: the next signal kills a run
        // that ignores the cooperative flag.
        unsafe {
            signal(signum, SIG_DFL);
        }
    }

    pub(super) fn install() {
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            let prev = signal(SIGINT, handler);
            if prev == SIG_ERR {
                // Leave the default disposition in place; the command
                // simply loses graceful shutdown.
            }
            let _ = signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install() {}
}

/// Installs the SIGINT/SIGTERM handler. Idempotent; called by the
/// long-running command paths only.
pub(crate) fn install() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_install_is_idempotent() {
        install();
        install();
        // The flag may have been set by a test harness signal, but the
        // accessor itself must be callable and stable.
        let a = interrupted();
        let b = interrupted();
        assert_eq!(a, b);
    }
}
