//! `air top` — a live one-screen summary of a running daemon.
//!
//! Polls the daemon's `metrics` wire job every `--interval-ms` and
//! renders request throughput (from counter deltas between polls),
//! cold/warm latency quantiles, warm-table hit rate, queue depth,
//! worker utilization, the busiest engine phases and per-tenant fuel
//! spend. Everything is derived from the JSON metrics snapshot
//! (`schemas/metrics-snapshot.schema.json`); the renderer is pure so
//! tests can drive it with fabricated snapshots.

use crate::args::TopTask;
use crate::run::{AirError, Outcome};
use air_serve::{read_frame, write_frame, DEFAULT_MAX_FRAME};
use air_trace::json::{self, Value};
use std::io::BufReader;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// One decoded metrics snapshot, reduced to what the screen shows.
#[derive(Debug, Default, Clone)]
pub(crate) struct View {
    /// Sum of `air_serve_requests_total` across all label sets.
    pub requests: u64,
    /// `(status, count)` rows, descending by count.
    pub by_status: Vec<(String, u64)>,
    /// Merged cold latency histogram `(count, p50_ns, p99_ns)`.
    pub cold: Option<(u64, u64, u64)>,
    /// Merged warm latency histogram `(count, p50_ns, p99_ns)`.
    pub warm: Option<(u64, u64, u64)>,
    /// Warm-table lookups: `(hits, total)`.
    pub lookups: (u64, u64),
    /// `air_serve_warm_tables` gauge.
    pub tables: i64,
    /// `air_serve_queue_depth` gauge.
    pub queue: i64,
    /// `air_serve_workers_busy` / `air_serve_workers` gauges.
    pub workers: (i64, i64),
    /// `(phase, count, p50_ns, p99_ns)` rows, descending by count.
    pub phases: Vec<(String, u64, u64, u64)>,
    /// `(tenant, fuel)` rows from `air_serve_fuel_spent_total`,
    /// descending by fuel.
    pub tenants: Vec<(String, u64)>,
}

fn as_u64(v: Option<&Value>) -> u64 {
    v.and_then(Value::as_num).map_or(0, |n| n as u64)
}

fn label<'a>(row: &'a Value, key: &str) -> Option<&'a str> {
    row.get("labels")
        .and_then(|l| l.get(key))
        .and_then(Value::as_str)
}

/// Merges non-cumulative `(le, count)` buckets from several histogram
/// rows (e.g. the per-tenant cold-latency series) and estimates a
/// quantile the same way the registry does: the upper bound of the
/// first bucket whose cumulative count reaches `ceil(q * total)`.
fn merged_quantile(rows: &[&Value], q: f64) -> u64 {
    let mut buckets: Vec<(u64, u64)> = Vec::new();
    let mut total = 0u64;
    for row in rows {
        total += as_u64(row.get("count"));
        if let Some(bs) = row.get("buckets").and_then(Value::as_arr) {
            for b in bs {
                let le = as_u64(b.get("le"));
                let count = as_u64(b.get("count"));
                match buckets.iter_mut().find(|(l, _)| *l == le) {
                    Some((_, c)) => *c += count,
                    None => buckets.push((le, count)),
                }
            }
        }
    }
    if total == 0 {
        return 0;
    }
    buckets.sort_unstable();
    let rank = ((q * total as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (le, count) in &buckets {
        seen += count;
        if seen >= rank {
            return *le;
        }
    }
    buckets.last().map_or(0, |(le, _)| *le)
}

/// Reduces a parsed snapshot document to the screen's [`View`].
pub(crate) fn view_of(snap: &Value) -> View {
    let mut view = View::default();
    let empty = Vec::new();
    let counters = snap
        .get("counters")
        .and_then(Value::as_arr)
        .unwrap_or(&empty);
    let gauges = snap.get("gauges").and_then(Value::as_arr).unwrap_or(&empty);
    let histograms = snap
        .get("histograms")
        .and_then(Value::as_arr)
        .unwrap_or(&empty);

    let mut by_status: Vec<(String, u64)> = Vec::new();
    for c in counters {
        let name = c.get("name").and_then(Value::as_str).unwrap_or_default();
        let value = as_u64(c.get("value"));
        match name {
            "air_serve_requests_total" => {
                view.requests += value;
                let status = label(c, "status").unwrap_or("?").to_string();
                match by_status.iter_mut().find(|(s, _)| *s == status) {
                    Some((_, n)) => *n += value,
                    None => by_status.push((status, value)),
                }
            }
            "air_serve_warm_lookups_total" => {
                view.lookups.1 += value;
                if label(c, "result") == Some("hit") {
                    view.lookups.0 += value;
                }
            }
            "air_serve_fuel_spent_total" => {
                let tenant = label(c, "tenant").unwrap_or("?").to_string();
                view.tenants.push((tenant, value));
            }
            _ => {}
        }
    }
    by_status.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    view.by_status = by_status;
    view.tenants
        .sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    for g in gauges {
        let value = g
            .get("value")
            .and_then(Value::as_num)
            .map_or(0, |n| n as i64);
        match g.get("name").and_then(Value::as_str).unwrap_or_default() {
            "air_serve_warm_tables" => view.tables = value,
            "air_serve_queue_depth" => view.queue = value,
            "air_serve_workers" => view.workers.1 = value,
            "air_serve_workers_busy" => view.workers.0 = value,
            _ => {}
        }
    }

    for temp in ["cold", "warm"] {
        let rows: Vec<&Value> = histograms
            .iter()
            .filter(|h| {
                h.get("name").and_then(Value::as_str) == Some("air_serve_request_duration_ns")
                    && label(h, "temp") == Some(temp)
            })
            .collect();
        let count: u64 = rows.iter().map(|r| as_u64(r.get("count"))).sum();
        if count > 0 {
            let merged = (
                count,
                merged_quantile(&rows, 0.50),
                merged_quantile(&rows, 0.99),
            );
            if temp == "cold" {
                view.cold = Some(merged);
            } else {
                view.warm = Some(merged);
            }
        }
    }

    for h in histograms {
        if h.get("name").and_then(Value::as_str) != Some("air_phase_duration_ns") {
            continue;
        }
        let phase = label(h, "phase").unwrap_or("?").to_string();
        view.phases.push((
            phase,
            as_u64(h.get("count")),
            as_u64(h.get("p50")),
            as_u64(h.get("p99")),
        ));
    }
    view.phases
        .sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    view
}

fn ms(ns: u64) -> String {
    format!("{:.1}ms", ns as f64 / 1e6)
}

/// Renders one screen. `rate` is requests/second derived from the
/// previous poll (`None` on the first screen).
pub(crate) fn render(view: &View, target: &str, poll: u64, rate: Option<f64>) -> String {
    let mut out = String::new();
    out.push_str(&format!("air top — {target} — poll {poll}\n"));
    let rate = rate.map_or("--".to_string(), |r| format!("{r:.1}"));
    let statuses = if view.by_status.is_empty() {
        "none yet".to_string()
    } else {
        view.by_status
            .iter()
            .map(|(s, n)| format!("{s} {n}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&format!(
        "requests  {} total | {rate} req/s | {statuses}\n",
        view.requests
    ));
    for (name, row) in [("cold", &view.cold), ("warm", &view.warm)] {
        match row {
            Some((count, p50, p99)) => out.push_str(&format!(
                "latency   {name} p50 {} p99 {} (n={count})\n",
                ms(*p50),
                ms(*p99)
            )),
            None => out.push_str(&format!("latency   {name} (no samples)\n")),
        }
    }
    let (hits, total) = view.lookups;
    let hit_rate = if total > 0 {
        format!(
            "{:.1}% hit ({hits}/{total})",
            hits as f64 * 100.0 / total as f64
        )
    } else {
        "no lookups".to_string()
    };
    out.push_str(&format!(
        "caches    {hit_rate} | {} warm table(s)\n",
        view.tables
    ));
    out.push_str(&format!(
        "pool      queue {} | workers {}/{} busy\n",
        view.queue, view.workers.0, view.workers.1
    ));
    if !view.phases.is_empty() {
        out.push_str("phases    (top by count)\n");
        for (phase, count, p50, p99) in view.phases.iter().take(4) {
            out.push_str(&format!(
                "  {phase:<24} n={count:<7} p50 {} p99 {}\n",
                ms(*p50),
                ms(*p99)
            ));
        }
    }
    if !view.tenants.is_empty() {
        out.push_str("tenants   (fuel spent)\n");
        for (tenant, fuel) in view.tenants.iter().take(4) {
            out.push_str(&format!("  {tenant:<24} {fuel}\n"));
        }
    }
    out
}

/// One `metrics` round trip over an established connection.
fn poll_metrics(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    poll: u64,
) -> Result<Value, AirError> {
    let request = format!("{{\"id\":\"top-{poll}\",\"job\":\"metrics\"}}");
    write_frame(writer, &request)
        .map_err(|e| AirError::Internal(format!("cannot send metrics request: {e}")))?;
    let text = read_frame(reader, DEFAULT_MAX_FRAME)
        .map_err(|e| AirError::Internal(format!("bad metrics response frame: {e}")))?
        .ok_or_else(|| AirError::Internal("daemon closed the connection".into()))?;
    let doc = json::parse(&text)
        .map_err(|e| AirError::Internal(format!("metrics response is not JSON: {e}")))?;
    if doc.get("status").and_then(Value::as_str) != Some("ok") {
        return Err(AirError::Internal(format!(
            "daemon rejected the metrics job: {text}"
        )));
    }
    doc.get("stats")
        .cloned()
        .ok_or_else(|| AirError::Internal("metrics response lacks a payload".into()))
}

/// `air top` — poll and render until `--iterations` screens are done.
pub(crate) fn top(task: TopTask) -> Result<Outcome, AirError> {
    let stream = TcpStream::connect(&task.connect)
        .map_err(|e| AirError::Usage(format!("cannot connect to `{}`: {e}", task.connect)))?;
    let writer = stream
        .try_clone()
        .map_err(|e| AirError::Internal(format!("cannot clone connection: {e}")))?;
    let mut writer = writer;
    let mut reader = BufReader::new(stream);
    let mut poll = 0u64;
    let mut last: Option<(u64, Instant)> = None;
    loop {
        poll += 1;
        let snap = poll_metrics(&mut reader, &mut writer, poll)?;
        let view = view_of(&snap);
        let now = Instant::now();
        let rate = last.map(|(prev_requests, prev_t)| {
            let dt = now.duration_since(prev_t).as_secs_f64().max(1e-9);
            view.requests.saturating_sub(prev_requests) as f64 / dt
        });
        last = Some((view.requests, now));
        let screen = render(&view, &task.connect, poll, rate);
        if task.plain {
            println!("{screen}");
        } else {
            // Clear + cursor home, so the summary repaints in place.
            print!("\x1b[2J\x1b[H{screen}");
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
        if task.iterations != 0 && poll >= task.iterations {
            return Ok(Outcome::Positive);
        }
        std::thread::sleep(Duration::from_millis(task.interval_ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SNAP: &str = r#"{
      "schema":"air-metrics-snapshot/1",
      "counters":[
        {"name":"air_serve_requests_total","labels":{"tenant":"anon","job":"verify","status":"ok"},"value":9},
        {"name":"air_serve_requests_total","labels":{"tenant":"t1","job":"verify","status":"ok"},"value":2},
        {"name":"air_serve_requests_total","labels":{"tenant":"t1","job":"verify","status":"budget"},"value":1},
        {"name":"air_serve_warm_lookups_total","labels":{"vars":"x:0..1","domain":"int","result":"hit"},"value":10},
        {"name":"air_serve_warm_lookups_total","labels":{"vars":"x:0..1","domain":"int","result":"miss"},"value":2},
        {"name":"air_serve_fuel_spent_total","labels":{"tenant":"t1"},"value":700},
        {"name":"air_serve_fuel_spent_total","labels":{"tenant":"anon"},"value":40}
      ],
      "gauges":[
        {"name":"air_serve_warm_tables","labels":{},"value":2},
        {"name":"air_serve_queue_depth","labels":{},"value":3},
        {"name":"air_serve_workers","labels":{},"value":4},
        {"name":"air_serve_workers_busy","labels":{},"value":1}
      ],
      "histograms":[
        {"name":"air_serve_request_duration_ns","labels":{"tenant":"anon","temp":"cold"},
         "count":2,"sum":3000000,"p50":2097151,"p90":2097151,"p99":2097151,
         "buckets":[{"le":2097151,"count":2}]},
        {"name":"air_serve_request_duration_ns","labels":{"tenant":"t1","temp":"cold"},
         "count":1,"sum":40000000,"p50":67108863,"p90":67108863,"p99":67108863,
         "buckets":[{"le":67108863,"count":1}]},
        {"name":"air_serve_request_duration_ns","labels":{"tenant":"anon","temp":"warm"},
         "count":9,"sum":2000000,"p50":262143,"p90":262143,"p99":262143,
         "buckets":[{"le":262143,"count":9}]},
        {"name":"air_phase_duration_ns","labels":{"phase":"verify.backward"},
         "count":12,"sum":9000000,"p50":1048575,"p90":1048575,"p99":1048575,
         "buckets":[{"le":1048575,"count":12}]}
      ]
    }"#;

    #[test]
    fn view_reduces_the_snapshot() {
        let view = view_of(&json::parse(SNAP).unwrap());
        assert_eq!(view.requests, 12);
        assert_eq!(view.by_status[0], ("ok".to_string(), 11));
        assert_eq!(view.by_status[1], ("budget".to_string(), 1));
        assert_eq!(view.lookups, (10, 12));
        assert_eq!(view.tables, 2);
        assert_eq!(view.queue, 3);
        assert_eq!(view.workers, (1, 4));
        // Cold rows merge across tenants: 3 samples, p50 from the dense
        // bucket, p99 from the slow outlier.
        let (count, p50, p99) = view.cold.unwrap();
        assert_eq!(count, 3);
        assert_eq!(p50, 2097151);
        assert_eq!(p99, 67108863);
        let (warm_count, _, _) = view.warm.unwrap();
        assert_eq!(warm_count, 9);
        assert_eq!(view.phases[0].0, "verify.backward");
        // Tenants sorted by spend.
        assert_eq!(view.tenants[0], ("t1".to_string(), 700));
    }

    #[test]
    fn render_is_one_screen_with_rate() {
        let view = view_of(&json::parse(SNAP).unwrap());
        let screen = render(&view, "127.0.0.1:4777", 3, Some(12.5));
        assert!(
            screen.contains("air top — 127.0.0.1:4777 — poll 3"),
            "{screen}"
        );
        assert!(screen.contains("12 total | 12.5 req/s"), "{screen}");
        assert!(screen.contains("ok 11  budget 1"), "{screen}");
        assert!(
            screen.contains("cold p50 2.1ms p99 67.1ms (n=3)"),
            "{screen}"
        );
        assert!(screen.contains("83.3% hit (10/12)"), "{screen}");
        assert!(screen.contains("queue 3 | workers 1/4 busy"), "{screen}");
        assert!(screen.contains("verify.backward"), "{screen}");
        assert!(screen.contains("t1"), "{screen}");
        assert!(screen.lines().count() <= 16, "one screen, not a scroll");
    }

    #[test]
    fn first_poll_has_no_rate_and_empty_snapshot_renders() {
        let view = view_of(
            &json::parse(
                r#"{"schema":"air-metrics-snapshot/1","counters":[],"gauges":[],"histograms":[]}"#,
            )
            .unwrap(),
        );
        let screen = render(&view, "h:1", 1, None);
        assert!(screen.contains("-- req/s"), "{screen}");
        assert!(screen.contains("none yet"), "{screen}");
        assert!(screen.contains("no lookups"), "{screen}");
        assert!(screen.contains("cold (no samples)"), "{screen}");
    }
}
