//! `air chaos` — a seeded fault-injection sweep over the corpus.
//!
//! Each plan `i` expands `--seed + i` into a deterministic fault
//! schedule ([`FaultPlan::from_seed`]) and every corpus program is
//! verified under it with the full resilience stack engaged: a
//! [`Supervisor`] retries injected panics, poisoned cache shards are
//! quarantined on the next access, a tripped [`FailSwitch`] degrades the
//! plan's JSONL sink, and an injected cancel stops the run at the next
//! governed check with a sound partial result.
//!
//! The sweep asserts the paper's robustness story (Thm. 7.1/7.6): a run
//! that *completes* under faults must agree with the concrete semantics,
//! and a run that is *cut off* must carry a partial invariant that still
//! over-approximates the concrete reachable states. Any abort (a task
//! that out-ran its retry budget) or soundness violation fails the sweep
//! with exit code 4. The `--stats-json` report contains no wall-clock
//! data, so identical seeds produce byte-identical reports.

use std::sync::Arc;
use std::time::Duration;

use air_core::Verifier;
use air_lang::Concrete;
use air_lattice::{Budget, Governor};
use air_resilience::{
    install_quiet_fault_hook, FailSwitch, FaultInjector, FaultPlan, FlakyWriter, InjectSink,
    RetryPolicy, Supervisor,
};
use air_trace::{json, JsonlSink, MultiSink, Sink, Tracer};

use crate::args::{ChaosTask, CorpusTask, DomainKind, StrategyKind, Task};
use crate::run::{build_domain, build_sets, build_universe, parse_corpus_file, usage};
use crate::run::{AirError, Outcome};

/// Fuel per program run when `--fuel` is absent: generous enough that
/// only an injected cancel (never organic exhaustion) cuts corpus-sized
/// programs short, keeping the default sweep's outcome mix readable.
pub(crate) const DEFAULT_CHAOS_FUEL: u64 = 5_000_000;

/// One corpus program prepared once and replayed under every plan.
pub(crate) struct Prepared {
    name: String,
    task: Task,
    /// Ground truth from the concrete semantics: `⟦r⟧pre ⊆ spec`.
    truth_proved: bool,
}

/// Per-plan tallies; everything here is seed-deterministic, which is
/// what lets `--shards N` merge worker rows into a byte-identical
/// report.
#[derive(Default)]
pub(crate) struct PlanRow {
    seed: u64,
    faults: String,
    injected: u64,
    retries: u64,
    proved: u64,
    refuted: u64,
    budget: u64,
    errors: u64,
    aborts: u64,
    quarantined: u64,
    sinks_degraded: u64,
    soundness_violations: u64,
}

/// Reads every `*.imp` program under `dir` and precomputes its concrete
/// ground truth (the fault-free referee every faulted run is judged
/// against).
pub(crate) fn prepare_corpus(dir: &str) -> Result<Vec<Prepared>, AirError> {
    let corpus_task = CorpusTask {
        dir: dir.to_string(),
        jobs: 1,
        domain: DomainKind::Int,
        strategy: StrategyKind::Backward,
        engine: crate::args::EngineKind::Enumerative,
        stats: false,
        stats_json: false,
        uncached: false,
        trace: None,
        profile: false,
        fuel: None,
        timeout_ms: None,
        checkpoint: None,
        resume: false,
        dist: crate::args::DistOpts::default(),
    };
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| usage(format!("cannot read corpus dir `{dir}`: {e}")))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "imp"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(usage(format!("no *.imp programs under `{dir}`")));
    }
    let mut out = Vec::with_capacity(files.len());
    for path in &files {
        let (name, task) = parse_corpus_file(path, &corpus_task)?;
        let u = build_universe(&task)?;
        let (prog, pre, spec) = build_sets(&task, &u)?;
        let spec = spec.ok_or_else(|| usage(format!("{name}: corpus header produced no spec")))?;
        let post = Concrete::new(&u)
            .exec(&prog, &pre)
            .map_err(|e| usage(format!("{name}: concrete oracle failed: {e}")))?;
        out.push(Prepared {
            name,
            task,
            truth_proved: post.is_subset(&spec),
        });
    }
    Ok(out)
}

/// Verifies one program under one fault plan, folding the outcome into
/// `row`. The whole resilience chain is engaged per run: a fresh
/// governor (so an injected cancel cannot leak into the next program), a
/// fresh injector, and a JSONL sink behind a [`FlakyWriter`] wired to
/// the plan's [`FailSwitch`] so `SinkFail` faults exercise real sink
/// degradation.
fn run_one(
    p: &Prepared,
    plan: &FaultPlan,
    fuel: u64,
    sweep_sink: Option<&Arc<dyn Sink>>,
    row: &mut PlanRow,
) {
    let u = match build_universe(&p.task) {
        Ok(u) => u,
        Err(_) => {
            row.errors += 1;
            return;
        }
    };
    let dom = build_domain(&p.task, &u);
    let (prog, pre, spec) = match build_sets(&p.task, &u) {
        Ok((prog, pre, Some(spec))) => (prog, pre, spec),
        _ => {
            row.errors += 1;
            return;
        }
    };
    let governor = Governor::new(Budget::fuel(fuel));
    let switch = FailSwitch::new();
    let injector = FaultInjector::armed(plan, governor.clone(), switch.clone());
    let flaky: Arc<dyn Sink> = Arc::new(JsonlSink::from_writer(Box::new(FlakyWriter::new(
        std::io::sink(),
        switch.clone(),
    ))));
    let fan: Vec<Arc<dyn Sink>> = match sweep_sink {
        Some(sink) => vec![flaky, Arc::clone(sink)],
        None => vec![flaky],
    };
    let tracer = Tracer::new(Arc::new(InjectSink::new(
        Arc::new(MultiSink::new(fan)),
        injector.clone(),
    )));
    injector.set_tracer(&tracer);
    let verifier = Verifier::new(&u)
        .tracer(tracer.clone())
        .governor(governor.clone());
    // The verifier's memo tables are Arc-shared with their clones, so
    // poison faults land on the live cache mid-run.
    let cache = verifier.cache().cloned();
    if let Some(c) = cache.clone() {
        injector.on_poison(move |table, shard| c.chaos_poison_shard(table, shard));
    }
    // Plans carry up to 3 one-shot panics, so 4 attempts always converge
    // unless a *genuine* (non-injected) panic keeps recurring.
    let supervisor = Supervisor::with_tracer(
        RetryPolicy {
            max_attempts: 4,
            backoff: Duration::ZERO,
        },
        tracer.clone(),
    );
    let site = format!("chaos.{}", p.name);
    let result = supervisor.run(&site, || match p.task.strategy {
        StrategyKind::Forward => verifier.forward(dom.clone(), &prog, &pre, &spec),
        StrategyKind::Backward => verifier.backward(dom.clone(), &prog, &pre, &spec),
    });
    row.injected += injector.injected();
    row.retries += supervisor.retry_count();
    if let Some(c) = &cache {
        row.quarantined += c.quarantine_count();
    }
    if switch.is_tripped() {
        row.sinks_degraded += 1;
    }
    match result {
        Ok(Ok(verdict)) => {
            // A run that completes under faults must agree with the
            // concrete semantics — retries and quarantines may cost
            // precision-rebuilding work, never the verdict.
            if verdict.is_proved() {
                row.proved += 1;
            } else {
                row.refuted += 1;
            }
            if verdict.is_proved() != p.truth_proved {
                row.soundness_violations += 1;
            }
        }
        Ok(Err(air_core::RepairError::Exhausted(partial))) => {
            row.budget += 1;
            // Thm. 7.1/7.6 prefix-soundness: the partial invariant must
            // still over-approximate the concrete reachable states.
            if let Some(inv) = &partial.invariant {
                let sound = Concrete::new(&u)
                    .exec(&prog, &pre)
                    .map(|post| post.is_subset(inv))
                    .unwrap_or(false);
                if !sound {
                    row.soundness_violations += 1;
                }
            }
        }
        Ok(Err(_)) => row.errors += 1,
        Err(_) => row.aborts += 1,
    }
}

/// Renders the deterministic campaign report (`air-chaos-report/1`).
/// No wall-clock data: identical seeds must yield identical bytes.
fn render_report(task: &ChaosTask, fuel: u64, programs: usize, rows: &[PlanRow]) -> String {
    let total = |f: fn(&PlanRow) -> u64| rows.iter().map(f).sum::<u64>();
    let mut out = String::from("{\"schema\":\"air-chaos-report/1\",\"dir\":");
    json::escape_str(&task.dir, &mut out);
    out.push_str(&format!(
        ",\"plans\":{},\"base_seed\":{},\"fuel\":{fuel},\"programs\":{programs},\"runs\":{}",
        task.plans,
        task.seed,
        task.plans * programs as u64
    ));
    out.push_str(&format!(
        ",\"proved\":{},\"refuted\":{},\"budget\":{},\"errors\":{},\"aborts\":{}",
        total(|r| r.proved),
        total(|r| r.refuted),
        total(|r| r.budget),
        total(|r| r.errors),
        total(|r| r.aborts)
    ));
    out.push_str(&format!(
        ",\"injected\":{},\"retries\":{},\"quarantined\":{},\"sinks_degraded\":{},\"soundness_violations\":{}",
        total(|r| r.injected),
        total(|r| r.retries),
        total(|r| r.quarantined),
        total(|r| r.sinks_degraded),
        total(|r| r.soundness_violations)
    ));
    out.push_str(",\"plan_rows\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        render_plan_row(r, &mut out);
    }
    out.push_str("]}");
    out
}

/// One plan row as a JSON object (shared by the campaign report and the
/// worker lease payload).
fn render_plan_row(r: &PlanRow, out: &mut String) {
    out.push_str(&format!("{{\"seed\":{},\"faults\":", r.seed));
    json::escape_str(&r.faults, out);
    out.push_str(&format!(
        ",\"injected\":{},\"retries\":{},\"proved\":{},\"refuted\":{},\"budget\":{},\"errors\":{},\"aborts\":{},\"quarantined\":{},\"sinks_degraded\":{},\"soundness_violations\":{}}}",
        r.injected,
        r.retries,
        r.proved,
        r.refuted,
        r.budget,
        r.errors,
        r.aborts,
        r.quarantined,
        r.sinks_degraded,
        r.soundness_violations
    ));
}

/// Renders a worker's plan rows as one lease payload line
/// (`air-chaos-rows/1`). Rows carry no wall-clock data, so the
/// distributed merge is byte-deterministic.
pub(crate) fn render_rows(rows: &[PlanRow]) -> String {
    let mut out = String::from("{\"schema\":\"air-chaos-rows/1\",\"rows\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        render_plan_row(r, &mut out);
    }
    out.push_str("]}");
    out
}

/// Parses a lease payload written by [`render_rows`]. `None` on any
/// malformed row: a worker bug must surface as a coordinator error, not
/// shrink the sweep.
pub(crate) fn parse_rows(text: &str) -> Option<Vec<PlanRow>> {
    let doc = json::parse(text.trim()).ok()?;
    if doc.get("schema")?.as_str()? != "air-chaos-rows/1" {
        return None;
    }
    let mut out = Vec::new();
    for row in doc.get("rows")?.as_arr()? {
        let num = |key: &str| row.get(key).and_then(json::Value::as_num).map(|n| n as u64);
        out.push(PlanRow {
            seed: num("seed")?,
            faults: row.get("faults")?.as_str()?.to_string(),
            injected: num("injected")?,
            retries: num("retries")?,
            proved: num("proved")?,
            refuted: num("refuted")?,
            budget: num("budget")?,
            errors: num("errors")?,
            aborts: num("aborts")?,
            quarantined: num("quarantined")?,
            sinks_degraded: num("sinks_degraded")?,
            soundness_violations: num("soundness_violations")?,
        });
    }
    Some(out)
}

/// Runs every prepared program under the fault plan derived from `seed`
/// and returns the plan's tally row. The unit of work a distributed
/// lease hands out.
pub(crate) fn run_plan(
    programs: &[Prepared],
    seed: u64,
    fuel: u64,
    sweep_sink: Option<&Arc<dyn Sink>>,
) -> PlanRow {
    let plan = FaultPlan::from_seed(seed);
    let mut row = PlanRow {
        seed,
        faults: plan.describe(),
        ..PlanRow::default()
    };
    for p in programs {
        run_one(p, &plan, fuel, sweep_sink, &mut row);
    }
    row
}

/// `air chaos` — sweep the corpus under seeded fault plans and assert
/// zero aborts and zero soundness violations.
pub(crate) fn chaos(task: ChaosTask) -> Result<Outcome, AirError> {
    if let Some(shard) = task.dist.worker {
        return crate::dist::chaos_worker(shard, &task);
    }
    if task.dist.requested() {
        return crate::dist::chaos_dist(&task);
    }
    install_quiet_fault_hook();
    crate::signal::install();
    let programs = prepare_corpus(&task.dir)?;
    let fuel = task.fuel.unwrap_or(DEFAULT_CHAOS_FUEL);
    let sweep_sink: Option<Arc<dyn Sink>> = match &task.trace {
        Some(path) => Some(Arc::new(
            JsonlSink::create(std::path::Path::new(path))
                .map_err(|e| usage(format!("cannot create trace file `{path}`: {e}")))?,
        )),
        None => None,
    };
    println!(
        "chaos sweep: {} plan(s) from seed {}, {} program(s), fuel {} per run",
        task.plans,
        task.seed,
        programs.len(),
        fuel
    );
    let mut rows: Vec<PlanRow> = Vec::with_capacity(task.plans as usize);
    for i in 0..task.plans {
        if crate::signal::interrupted() {
            eprintln!("interrupted after {i} of {} plan(s)", task.plans);
            return Err(AirError::Budget {
                phase: "chaos.sweep".to_string(),
                spent: i,
                reason: "cancelled".to_string(),
            });
        }
        rows.push(run_plan(
            &programs,
            task.seed.saturating_add(i),
            fuel,
            sweep_sink.as_ref(),
        ));
    }
    finish_chaos(&task, fuel, programs.len(), &rows)
}

/// Prints the outcome/resilience/soundness summary (and `--stats-json`)
/// and folds aborts or soundness violations into the exit code. Shared
/// by the in-process sweep and the distributed merge.
pub(crate) fn finish_chaos(
    task: &ChaosTask,
    fuel: u64,
    programs: usize,
    rows: &[PlanRow],
) -> Result<Outcome, AirError> {
    let total = |f: fn(&PlanRow) -> u64| rows.iter().map(f).sum::<u64>();
    let (aborts, violations) = (total(|r| r.aborts), total(|r| r.soundness_violations));
    println!(
        "  outcomes: {} proved, {} refuted, {} budget-cut, {} error(s), {} abort(s)",
        total(|r| r.proved),
        total(|r| r.refuted),
        total(|r| r.budget),
        total(|r| r.errors),
        aborts
    );
    println!(
        "  resilience: {} fault(s) injected, {} retry(ies), {} shard(s) quarantined, {} sink(s) degraded",
        total(|r| r.injected),
        total(|r| r.retries),
        total(|r| r.quarantined),
        total(|r| r.sinks_degraded)
    );
    println!("  soundness: {violations} violation(s)");
    if task.stats_json {
        println!("{}", render_report(task, fuel, programs, rows));
    }
    if aborts > 0 || violations > 0 {
        return Err(AirError::Internal(format!(
            "chaos sweep failed: {aborts} abort(s), {violations} soundness violation(s)"
        )));
    }
    println!("chaos sweep passed: zero aborts, zero soundness violations");
    Ok(Outcome::Positive)
}
