//! Exit-code and fail-soft contract tests against the built `air` binary.
//!
//! The contract: 0 = proved / no alarms, 1 = refuted / alarms, 2 = usage
//! error, 3 = budget exhausted, 4 = internal error. Budgeted runs must
//! stop promptly, report the cutoff, and still produce machine-readable
//! `--stats-json` output in corpus sweeps.

use std::path::PathBuf;
use std::process::{Command, Output};

fn air(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_air"))
        .args(args)
        .output()
        .expect("spawn air binary")
}

fn corpus_dir(sub: &str) -> String {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push(sub);
    p.display().to_string()
}

const ABSVAL: &[&str] = &[
    "--vars",
    "x:-8..8",
    "--code",
    "if (x >= 1) then { skip } else { x := 1 - x }",
    "--pre",
    "x != 0",
];

#[test]
fn proved_run_exits_zero() {
    let out = air(&[&["verify"], ABSVAL, &["--spec", "x >= 1"]].concat());
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn refuted_run_exits_one() {
    let out = air(&[
        "verify",
        "--vars",
        "x:0..8",
        "--code",
        "x := x + 1",
        "--pre",
        "x <= 5",
        "--spec",
        "x <= 3",
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
}

#[test]
fn missing_spec_is_usage_exit_two() {
    // Regression: `verify` without `--spec` used to panic in run.rs.
    let out = air(&[&["verify"], ABSVAL].concat());
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--spec"), "{stderr}");
}

#[test]
fn bad_flags_are_usage_exit_two() {
    let out = air(&["verify", "--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = air(&[&["verify"], ABSVAL, &["--spec", "x >= 1", "--fuel", "lots"]].concat());
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn exhausted_fuel_exits_three_with_partial_report() {
    let out = air(&[
        "verify",
        "--vars",
        "x:0..120,y:0..120",
        "--code",
        "while (y >= 1) do { x := x + 1; y := y - 1 }",
        "--pre",
        "x = 0 && y = 120",
        "--spec",
        "x = 120 && y = 0",
        "--fuel",
        "5",
    ]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("BUDGET EXHAUSTED"), "{stdout}");
    assert!(stdout.contains("sound over-approximation"), "{stdout}");
}

#[test]
fn corpus_timeout_exits_three_and_stats_json_stays_valid() {
    let out = air(&[
        "corpus",
        "--dir",
        &corpus_dir("corpus/slow"),
        "--timeout-ms",
        "40",
        "--stats-json",
    ]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The fail-soft sweep still emits its JSON line, with the budget
    // status recorded per program.
    let json_line = stdout
        .lines()
        .find(|l| l.starts_with('{'))
        .expect("stats json line");
    let doc = air_trace::json::parse(json_line).expect("valid stats json");
    let programs = doc
        .get("programs")
        .and_then(air_trace::json::Value::as_arr)
        .expect("programs array");
    assert!(!programs.is_empty());
    let status = programs[0]
        .get("status")
        .and_then(air_trace::json::Value::as_str)
        .expect("status field");
    assert_eq!(status, "budget", "{json_line}");
    assert!(programs[0].get("phase").is_some(), "{json_line}");
}

#[test]
fn default_corpus_sweep_still_proves_everything() {
    let out = air(&["corpus", "--dir", &corpus_dir("corpus"), "--stats-json"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let json_line = stdout
        .lines()
        .find(|l| l.starts_with('{'))
        .expect("stats json line");
    let doc = air_trace::json::parse(json_line).expect("valid stats json");
    let programs = doc
        .get("programs")
        .and_then(air_trace::json::Value::as_arr)
        .expect("programs array");
    assert!(programs.len() >= 6);
    for p in programs {
        assert_eq!(
            p.get("status").and_then(air_trace::json::Value::as_str),
            Some("proved")
        );
    }
}

#[test]
fn trace_file_records_budget_exhaustion_event() {
    let path = std::env::temp_dir().join("air_cli_bin_budget_trace.jsonl");
    let out = air(&[
        "verify",
        "--vars",
        "x:0..40",
        "--code",
        "while (x < 40) do { x := x + 1 }",
        "--pre",
        "x = 0",
        "--spec",
        "x = 40",
        "--fuel",
        "3",
        "--trace",
        &path.display().to_string(),
    ]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("\"kind\":\"budget_exhausted\""), "{text}");
    let _ = std::fs::remove_file(&path);
}

fn json_line(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .find(|l| l.starts_with('{'))
        .expect("stats json line")
        .to_string()
}

#[test]
fn chaos_sweep_is_deterministic_and_clean() {
    let dir = corpus_dir("corpus");
    let args = [
        "chaos",
        "--dir",
        &dir,
        "--plans",
        "12",
        "--seed",
        "7",
        "--stats-json",
    ];
    let first = air(&args);
    assert_eq!(first.status.code(), Some(0), "{first:?}");
    let second = air(&args);
    assert_eq!(second.status.code(), Some(0), "{second:?}");
    let (a, b) = (json_line(&first), json_line(&second));
    // Same seeds, same fault schedules, byte-identical report.
    assert_eq!(a, b);
    assert!(a.contains("\"aborts\":0"), "{a}");
    assert!(a.contains("\"soundness_violations\":0"), "{a}");
    // The sweep is not vacuous: faults actually fired.
    let doc = air_trace::json::parse(&a).expect("valid chaos json");
    let injected = doc
        .get("injected")
        .and_then(air_trace::json::Value::as_num)
        .expect("injected field");
    assert!(injected > 0.0, "{a}");
}

#[test]
fn fuzz_checkpoint_halt_and_resume_matches_uninterrupted() {
    let tmp = std::env::temp_dir().join("air_cli_fuzz_halt_resume");
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).unwrap();
    let corpus_a = tmp.join("a").display().to_string();
    let corpus_b = tmp.join("b").display().to_string();
    let cp = tmp.join("cp.json");
    let cp_s = cp.display().to_string();
    let reference = air(&[
        "fuzz",
        "run",
        "--seed",
        "11",
        "--cases",
        "12",
        "--stats-json",
        "--corpus-dir",
        &corpus_a,
    ]);
    let want = json_line(&reference);
    // Crash simulation: stop after 5 cases with the checkpoint written.
    let halted = air(&[
        "fuzz",
        "run",
        "--seed",
        "11",
        "--cases",
        "12",
        "--corpus-dir",
        &corpus_b,
        "--checkpoint",
        &cp_s,
        "--halt-after",
        "5",
    ]);
    assert_eq!(halted.status.code(), Some(0), "{halted:?}");
    assert!(
        String::from_utf8_lossy(&halted.stdout).contains("halted after"),
        "{halted:?}"
    );
    assert!(cp.exists(), "checkpoint file missing after halt");
    let resumed = air(&[
        "fuzz",
        "run",
        "--seed",
        "11",
        "--cases",
        "12",
        "--stats-json",
        "--corpus-dir",
        &corpus_b,
        "--checkpoint",
        &cp_s,
        "--resume",
    ]);
    assert_eq!(json_line(&resumed), want);
    assert!(!cp.exists(), "checkpoint not removed after completion");
    let _ = std::fs::remove_dir_all(&tmp);
}

#[test]
fn fuzz_checkpoint_survives_sigkill() {
    let tmp = std::env::temp_dir().join("air_cli_fuzz_sigkill");
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).unwrap();
    let corpus_a = tmp.join("a").display().to_string();
    let corpus_b = tmp.join("b").display().to_string();
    let cp = tmp.join("cp.json");
    let cp_s = cp.display().to_string();
    let reference = air(&[
        "fuzz",
        "run",
        "--seed",
        "5",
        "--cases",
        "600",
        "--stats-json",
        "--corpus-dir",
        &corpus_a,
    ]);
    let want = json_line(&reference);
    let mut child = Command::new(env!("CARGO_BIN_EXE_air"))
        .args([
            "fuzz",
            "run",
            "--seed",
            "5",
            "--cases",
            "600",
            "--corpus-dir",
            &corpus_b,
            "--checkpoint",
            &cp_s,
        ])
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("spawn air binary");
    // Wait for the first periodic checkpoint, then SIGKILL mid-sweep.
    // If the campaign outruns the poll, the child already finished and
    // resume below degrades to a fresh (still equal) run.
    for _ in 0..2000 {
        if cp.exists() || child.try_wait().unwrap().is_some() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let _ = child.kill();
    let _ = child.wait();
    let resumed = air(&[
        "fuzz",
        "run",
        "--seed",
        "5",
        "--cases",
        "600",
        "--stats-json",
        "--corpus-dir",
        &corpus_b,
        "--checkpoint",
        &cp_s,
        "--resume",
    ]);
    assert_eq!(json_line(&resumed), want);
    assert!(!cp.exists(), "checkpoint not removed after completion");
    let _ = std::fs::remove_dir_all(&tmp);
}

#[test]
fn corpus_resume_restores_checkpointed_rows() {
    let dir = corpus_dir("corpus");
    let tmp = std::env::temp_dir().join("air_cli_corpus_resume");
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).unwrap();
    let cp = tmp.join("cp.json");
    // A fabricated crash leftover: absval already done, with a point
    // count no real run produces — proof that the row was restored, not
    // re-verified.
    std::fs::write(
        &cp,
        format!(
            "{{\"schema\":\"air-corpus-checkpoint/1\",\"dir\":\"{dir}\",\"rows\":[{{\"name\":\"absval\",\"status\":\"proved\",\"points\":99}}]}}\n"
        ),
    )
    .unwrap();
    let out = air(&[
        "corpus",
        "--dir",
        &dir,
        "--checkpoint",
        &cp.display().to_string(),
        "--resume",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let absval_row = stdout
        .lines()
        .find(|l| l.contains("absval"))
        .expect("absval row");
    assert!(absval_row.contains("99 point(s)"), "{absval_row}");
    assert!(!cp.exists(), "checkpoint not removed after completion");
    let _ = std::fs::remove_dir_all(&tmp);
}

#[test]
fn serve_stdio_round_trip_warm_cache_and_clean_drain() {
    use std::io::Write;
    let mut child = Command::new(env!("CARGO_BIN_EXE_air"))
        .args(["serve", "--stdio", "--workers", "1"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn air binary");
    let mut stdin = child.stdin.take().expect("stdin");
    let verify = r#"{"id":"VID","job":"verify","vars":"x:-8..8","code":"if (x >= 1) then { skip } else { x := 1 - x }","pre":"x != 0","spec":"x >= 1"}"#;
    let frames = [
        r#"{"id":"p1","job":"ping"}"#.to_string(),
        verify.replace("VID", "v1"),
        verify.replace("VID", "v2"),
        r#"{"id":"bye","job":"shutdown"}"#.to_string(),
    ];
    for payload in &frames {
        write!(stdin, "{}\n{}\n", payload.len(), payload).expect("write frame");
    }
    drop(stdin);
    let out = child.wait_with_output().expect("drain");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains(r#""detail":"pong""#), "{stdout}");
    assert!(stdout.contains(r#""status":"proved""#), "{stdout}");
    // Same (vars, domain) key: the second verify must hit the warm table.
    assert!(stdout.contains(r#""warm":true"#), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("air-serve listening stdio"), "{stderr}");
    assert!(stderr.contains("aborts=0"), "{stderr}");
}

#[test]
fn serve_without_transport_is_usage_exit_two() {
    let out = air(&["serve"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

/// Shared driver for the resume-correctness sweeps below: run an
/// uninterrupted reference campaign, then for every halt index kill
/// the campaign there (`--halt-after`), resume it, and require the
/// resumed stdout to be byte-identical to the reference. `extra` adds
/// the distribution flags for the sharded variant.
fn resume_sweep_matches(tag: &str, extra: &[&str]) {
    let tmp = std::env::temp_dir().join(format!("air_cli_resume_sweep_{tag}"));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).unwrap();
    let cases = "6";
    let base: Vec<&str> = [
        "fuzz",
        "run",
        "--seed",
        "11",
        "--cases",
        cases,
        "--stats-json",
    ]
    .into_iter()
    .chain(extra.iter().copied())
    .collect();
    let reference = air(&base);
    assert_eq!(reference.status.code(), Some(0), "{reference:?}");
    let want = String::from_utf8_lossy(&reference.stdout).to_string();
    for halt in 1..=5u64 {
        let cp = tmp.join(format!("cp{halt}.json"));
        let cp_s = cp.display().to_string();
        let halt_s = halt.to_string();
        let mut halted_args = base.clone();
        halted_args.extend(["--checkpoint", &cp_s, "--halt-after", &halt_s]);
        let halted = air(&halted_args);
        assert_eq!(halted.status.code(), Some(0), "halt {halt}: {halted:?}");
        if !cp.exists() {
            // The halt landed at campaign end (sharded leases can
            // overshoot the halt index); nothing to resume.
            assert_eq!(
                String::from_utf8_lossy(&halted.stdout),
                want,
                "halt {halt} completed but the report differs"
            );
            continue;
        }
        let mut resume_args = base.clone();
        resume_args.extend(["--checkpoint", &cp_s, "--resume"]);
        let resumed = air(&resume_args);
        assert_eq!(resumed.status.code(), Some(0), "resume {halt}: {resumed:?}");
        assert_eq!(
            String::from_utf8_lossy(&resumed.stdout),
            want,
            "resume after halt {halt} is not byte-identical"
        );
        assert!(!cp.exists(), "halt {halt}: checkpoint left behind");
    }
    let _ = std::fs::remove_dir_all(&tmp);
}

#[test]
fn fuzz_resume_sweep_every_halt_index_matches_uninterrupted() {
    resume_sweep_matches("single", &[]);
}

#[test]
fn fuzz_sharded_resume_sweep_every_halt_index_matches_uninterrupted() {
    resume_sweep_matches("sharded", &["--shards", "2", "--lease", "2"]);
}

#[test]
fn fuzz_sharded_report_is_byte_identical_to_single_process() {
    let base = [
        "fuzz",
        "run",
        "--seed",
        "3",
        "--cases",
        "24",
        "--stats-json",
    ];
    let single = air(&base);
    assert_eq!(single.status.code(), Some(0), "{single:?}");
    for shards in ["1", "4"] {
        let mut args = base.to_vec();
        args.extend(["--shards", shards]);
        let sharded = air(&args);
        assert_eq!(
            sharded.status.code(),
            Some(0),
            "shards {shards}: {sharded:?}"
        );
        assert_eq!(
            String::from_utf8_lossy(&sharded.stdout),
            String::from_utf8_lossy(&single.stdout),
            "--shards {shards} report differs from single-process"
        );
    }
}

#[test]
fn fuzz_sharded_survives_chaos_worker_kills_byte_identically() {
    let base = [
        "fuzz",
        "run",
        "--seed",
        "3",
        "--cases",
        "24",
        "--stats-json",
    ];
    let single = air(&base);
    assert_eq!(single.status.code(), Some(0), "{single:?}");
    let mut args = base.to_vec();
    args.extend([
        "--shards",
        "4",
        "--lease",
        "2",
        "--kill-workers",
        "2",
        "--kill-seed",
        "7",
    ]);
    let killed = air(&args);
    assert_eq!(killed.status.code(), Some(0), "{killed:?}");
    assert_eq!(
        String::from_utf8_lossy(&killed.stdout),
        String::from_utf8_lossy(&single.stdout),
        "report under worker SIGKILLs differs from single-process"
    );
    let stderr = String::from_utf8_lossy(&killed.stderr);
    assert!(stderr.contains("killed"), "{stderr}");
}

#[test]
fn chaos_sharded_report_is_byte_identical_to_single_process() {
    let dir = corpus_dir("corpus");
    let base = ["chaos", "--dir", &dir, "--plans", "6", "--seed", "5"];
    let single = air(&base);
    assert_eq!(single.status.code(), Some(0), "{single:?}");
    let mut args = base.to_vec();
    args.extend(["--shards", "2"]);
    let sharded = air(&args);
    assert_eq!(sharded.status.code(), Some(0), "{sharded:?}");
    assert_eq!(
        String::from_utf8_lossy(&sharded.stdout),
        String::from_utf8_lossy(&single.stdout),
        "--shards 2 chaos report differs from single-process"
    );
}
