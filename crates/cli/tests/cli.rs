//! Exit-code and fail-soft contract tests against the built `air` binary.
//!
//! The contract: 0 = proved / no alarms, 1 = refuted / alarms, 2 = usage
//! error, 3 = budget exhausted, 4 = internal error. Budgeted runs must
//! stop promptly, report the cutoff, and still produce machine-readable
//! `--stats-json` output in corpus sweeps.

use std::path::PathBuf;
use std::process::{Command, Output};

fn air(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_air"))
        .args(args)
        .output()
        .expect("spawn air binary")
}

fn corpus_dir(sub: &str) -> String {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push(sub);
    p.display().to_string()
}

const ABSVAL: &[&str] = &[
    "--vars",
    "x:-8..8",
    "--code",
    "if (x >= 1) then { skip } else { x := 1 - x }",
    "--pre",
    "x != 0",
];

#[test]
fn proved_run_exits_zero() {
    let out = air(&[&["verify"], ABSVAL, &["--spec", "x >= 1"]].concat());
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn refuted_run_exits_one() {
    let out = air(&[
        "verify",
        "--vars",
        "x:0..8",
        "--code",
        "x := x + 1",
        "--pre",
        "x <= 5",
        "--spec",
        "x <= 3",
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
}

#[test]
fn missing_spec_is_usage_exit_two() {
    // Regression: `verify` without `--spec` used to panic in run.rs.
    let out = air(&[&["verify"], ABSVAL].concat());
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--spec"), "{stderr}");
}

#[test]
fn bad_flags_are_usage_exit_two() {
    let out = air(&["verify", "--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = air(&[&["verify"], ABSVAL, &["--spec", "x >= 1", "--fuel", "lots"]].concat());
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn exhausted_fuel_exits_three_with_partial_report() {
    let out = air(&[
        "verify",
        "--vars",
        "x:0..120,y:0..120",
        "--code",
        "while (y >= 1) do { x := x + 1; y := y - 1 }",
        "--pre",
        "x = 0 && y = 120",
        "--spec",
        "x = 120 && y = 0",
        "--fuel",
        "5",
    ]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("BUDGET EXHAUSTED"), "{stdout}");
    assert!(stdout.contains("sound over-approximation"), "{stdout}");
}

#[test]
fn corpus_timeout_exits_three_and_stats_json_stays_valid() {
    let out = air(&[
        "corpus",
        "--dir",
        &corpus_dir("corpus/slow"),
        "--timeout-ms",
        "40",
        "--stats-json",
    ]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The fail-soft sweep still emits its JSON line, with the budget
    // status recorded per program.
    let json_line = stdout
        .lines()
        .find(|l| l.starts_with('{'))
        .expect("stats json line");
    let doc = air_trace::json::parse(json_line).expect("valid stats json");
    let programs = doc
        .get("programs")
        .and_then(air_trace::json::Value::as_arr)
        .expect("programs array");
    assert!(!programs.is_empty());
    let status = programs[0]
        .get("status")
        .and_then(air_trace::json::Value::as_str)
        .expect("status field");
    assert_eq!(status, "budget", "{json_line}");
    assert!(programs[0].get("phase").is_some(), "{json_line}");
}

#[test]
fn default_corpus_sweep_still_proves_everything() {
    let out = air(&["corpus", "--dir", &corpus_dir("corpus"), "--stats-json"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let json_line = stdout
        .lines()
        .find(|l| l.starts_with('{'))
        .expect("stats json line");
    let doc = air_trace::json::parse(json_line).expect("valid stats json");
    let programs = doc
        .get("programs")
        .and_then(air_trace::json::Value::as_arr)
        .expect("programs array");
    assert!(programs.len() >= 6);
    for p in programs {
        assert_eq!(
            p.get("status").and_then(air_trace::json::Value::as_str),
            Some("proved")
        );
    }
}

#[test]
fn trace_file_records_budget_exhaustion_event() {
    let path = std::env::temp_dir().join("air_cli_bin_budget_trace.jsonl");
    let out = air(&[
        "verify",
        "--vars",
        "x:0..40",
        "--code",
        "while (x < 40) do { x := x + 1 }",
        "--pre",
        "x = 0",
        "--spec",
        "x = 40",
        "--fuel",
        "3",
        "--trace",
        &path.display().to_string(),
    ]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("\"kind\":\"budget_exhausted\""), "{text}");
    let _ = std::fs::remove_file(&path);
}
