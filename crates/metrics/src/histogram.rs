//! Lock-free fixed-boundary histogram with log2 buckets.
//!
//! Bucket `i` counts observations `v` with `bucket_of(v) == i`, where
//! `bucket_of(0) = 0` and `bucket_of(v) = floor(log2 v) + 1` otherwise —
//! i.e. bucket 0 holds exactly `{0}`, bucket `i ≥ 1` holds
//! `[2^(i-1), 2^i)`, and the inclusive upper bound of bucket `i` is
//! `2^i - 1` (saturating to `u64::MAX` for the last bucket). 65 buckets
//! cover the full `u64` range, so `observe` never clamps and never
//! allocates: it is three `Relaxed` atomic adds.
//!
//! ## Snapshot ordering
//!
//! `observe` increments the bucket *before* the total count, and
//! [`Histogram::counts`]/[`Histogram::count`] readers that load `count`
//! first then the buckets therefore always see
//! `sum(buckets) >= count` — a snapshot taken mid-observation can only
//! over-report buckets, never lose one. Once writers are quiescent the
//! two are exactly equal; the thread-stress test below and the
//! `metrics_validate` bin both gate on that invariant.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets: one for zero plus one per bit of `u64`.
pub const BUCKETS: usize = 65;

/// Bucket index for an observed value (see module docs for the mapping).
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i`: the largest value it can hold.
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A lock-free histogram over `u64` observations (durations in ns,
/// fuel amounts, sizes — anything non-negative).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        // `[T; 65]` has no derived Default (std stops at 32).
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation. Three `Relaxed` RMWs, no locks, no
    /// allocation; safe to call from any number of threads.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        // Count last: readers loading `count` before `buckets` see
        // sum(buckets) >= count (never a lost observation).
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values (wrapping on overflow, like Prometheus
    /// client libraries; irrelevant below ~2^64 total ns ≈ 584 years).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts, loaded bucket-by-bucket. Load `count()` first
    /// if you need the `sum(buckets) >= count` invariant (see module
    /// docs).
    pub fn counts(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 ..= 1.0`): the
    /// inclusive upper bound of the first bucket whose cumulative count
    /// reaches `ceil(q * count)`. At most one bucket (≤ 2x) of relative
    /// error by construction; returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_from_counts(&self.counts(), q)
    }
}

impl Clone for Histogram {
    fn clone(&self) -> Self {
        let out = Histogram::new();
        // Count first so the clone satisfies sum(buckets) >= count even
        // if the source is being written concurrently.
        out.count.store(self.count(), Ordering::Relaxed);
        out.sum.store(self.sum(), Ordering::Relaxed);
        for (dst, src) in out.buckets.iter().zip(self.buckets.iter()) {
            dst.store(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        out
    }
}

impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        self.count() == other.count()
            && self.sum() == other.sum()
            && self.counts() == other.counts()
    }
}

impl Eq for Histogram {}

/// Quantile estimate over a raw bucket array (shared by [`Histogram`]
/// and snapshot rows that only kept the nonzero buckets).
pub(crate) fn quantile_from_counts(counts: &[u64; BUCKETS], q: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * total as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return bucket_upper_bound(i);
        }
    }
    bucket_upper_bound(BUCKETS - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn bucket_mapping_covers_u64() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        // Every bucket's upper bound maps back into that bucket.
        for i in 0..BUCKETS {
            assert_eq!(bucket_of(bucket_upper_bound(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn observe_accumulates_count_sum_buckets() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.counts().iter().sum::<u64>(), 6);
        assert_eq!(h.counts()[0], 1); // {0}
        assert_eq!(h.counts()[2], 2); // {2,3}
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.observe(10); // bucket 4, ub 15
        }
        h.observe(1000); // bucket 10, ub 1023
        assert_eq!(h.quantile(0.5), 15);
        assert_eq!(h.quantile(0.99), 15);
        assert_eq!(h.quantile(1.0), 1023);
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    /// Satellite 3 (part 1): thread-stress the snapshot-consistency
    /// invariant. Eight writers hammer one histogram while a reader
    /// repeatedly checks `sum(buckets) >= count` (count loaded first);
    /// after join the totals must be exact.
    #[test]
    fn concurrent_observers_never_lose_an_observation() {
        const WRITERS: usize = 8;
        const PER_WRITER: u64 = 10_000;
        let h = Arc::new(Histogram::new());
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let h = Arc::clone(&h);
                thread::spawn(move || {
                    for i in 0..PER_WRITER {
                        // Mix of buckets, deterministic per writer.
                        h.observe((w as u64).wrapping_mul(31).wrapping_add(i) % 4096);
                    }
                })
            })
            .collect();
        // Live reader: count first, buckets second => never under-counts.
        for _ in 0..1000 {
            let count = h.count();
            let bucket_sum: u64 = h.counts().iter().sum();
            assert!(
                bucket_sum >= count,
                "mid-flight snapshot lost observations: buckets {bucket_sum} < count {count}"
            );
        }
        for w in writers {
            w.join().expect("writer thread");
        }
        let expected = (WRITERS as u64) * PER_WRITER;
        assert_eq!(h.count(), expected);
        assert_eq!(h.counts().iter().sum::<u64>(), expected);
    }
}
