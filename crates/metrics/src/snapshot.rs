//! Point-in-time snapshot of a registry, with the two wire renderings.
//!
//! A [`Snapshot`] is plain owned data — sorted rows of counters, gauges
//! and histograms — so it can be captured under the registry locks in
//! microseconds and rendered (or asserted against, in tests and
//! `bench_serve`) with no further synchronization. Two renderings:
//!
//! * [`Snapshot::to_json`] — the closed document described by
//!   `schemas/metrics-snapshot.schema.json` and checked by the
//!   `metrics_validate` bin. Histogram buckets are **non-cumulative**
//!   `(le, count)` pairs with zero buckets elided, so
//!   `sum(buckets[].count) == count` is a validatable invariant.
//! * [`Snapshot::to_prometheus`] — Prometheus text exposition format
//!   0.0.4 (`# TYPE` comments, **cumulative** `_bucket{le=...}` series,
//!   `_sum`/`_count`), served on `air serve --metrics-addr`.
//!
//! One caveat inherited from the workspace JSON parser
//! (`air_trace::json` keeps numbers as `f64`): integers above 2^53 lose
//! precision on the read side. The only fields that can get there are
//! the `le` bounds of the top histogram buckets, which require single
//! observations ≥ 2^52 (52 days in ns) to materialize — ordering, which
//! is all the validator checks for `le`, survives the f64 round-trip.

use std::fmt::Write as _;

/// `schema` header value of the JSON snapshot document.
pub const SCHEMA_ID: &str = "air-metrics-snapshot/1";

/// One counter series and its value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterRow {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: u64,
}

/// One gauge series and its value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeRow {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: i64,
}

/// One non-empty histogram bucket: `count` observations with value
/// `<= le` (and above the previous row's `le`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketRow {
    pub le: u64,
    pub count: u64,
}

/// One histogram series: totals, pre-computed quantile estimates and
/// the non-zero buckets in ascending `le` order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramRow {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub count: u64,
    pub sum: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub buckets: Vec<BucketRow>,
}

/// A captured registry: see module docs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    pub counters: Vec<CounterRow>,
    pub gauges: Vec<GaugeRow>,
    pub histograms: Vec<HistogramRow>,
}

fn labels_match(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    have.len() == want.len()
        && want
            .iter()
            .all(|(k, v)| have.iter().any(|(hk, hv)| hk == k && hv == v))
}

impl Snapshot {
    /// Value of one counter series, `None` if never registered.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.counters
            .iter()
            .find(|r| r.name == name && labels_match(&r.labels, labels))
            .map(|r| r.value)
    }

    /// Sum of a counter across all label sets (0 if never registered).
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|r| r.name == name)
            .map(|r| r.value)
            .sum()
    }

    /// Sum of a counter across the label sets carrying one specific
    /// `key=value` pair — e.g. every `air_serve_warm_lookups_total` row
    /// with `result="hit"`, whatever its other labels say.
    pub fn counter_sum_where(&self, name: &str, key: &str, value: &str) -> u64 {
        self.counters
            .iter()
            .filter(|r| r.name == name && r.labels.iter().any(|(k, v)| k == key && v == value))
            .map(|r| r.value)
            .sum()
    }

    /// Value of one gauge series, `None` if never registered.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        self.gauges
            .iter()
            .find(|r| r.name == name && labels_match(&r.labels, labels))
            .map(|r| r.value)
    }

    /// One histogram series, `None` if never registered.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramRow> {
        self.histograms
            .iter()
            .find(|r| r.name == name && labels_match(&r.labels, labels))
    }

    /// Render the closed JSON document (single line, sorted series,
    /// deterministic for a given registry state).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"schema\":");
        escape_str(SCHEMA_ID, &mut out);
        out.push_str(",\"counters\":[");
        for (i, r) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            escape_str(&r.name, &mut out);
            out.push_str(",\"labels\":");
            render_labels_json(&r.labels, &mut out);
            let _ = write!(out, ",\"value\":{}}}", r.value);
        }
        out.push_str("],\"gauges\":[");
        for (i, r) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            escape_str(&r.name, &mut out);
            out.push_str(",\"labels\":");
            render_labels_json(&r.labels, &mut out);
            let _ = write!(out, ",\"value\":{}}}", r.value);
        }
        out.push_str("],\"histograms\":[");
        for (i, r) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            escape_str(&r.name, &mut out);
            out.push_str(",\"labels\":");
            render_labels_json(&r.labels, &mut out);
            let _ = write!(
                out,
                ",\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                r.count, r.sum, r.p50, r.p90, r.p99
            );
            for (j, b) in r.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{{\"le\":{},\"count\":{}}}", b.le, b.count);
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Render Prometheus text exposition format 0.0.4. Histogram
    /// buckets become cumulative `_bucket{le="..."}` series capped by
    /// the mandatory `le="+Inf"` row.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(512);
        let mut last_type: Option<(String, String)> = None;
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            if last_type.as_ref().map(|(n, k)| (n.as_str(), k.as_str())) != Some((name, kind)) {
                let _ = writeln!(out, "# TYPE {name} {kind}");
                last_type = Some((name.to_string(), kind.to_string()));
            }
        };
        for r in &self.counters {
            type_line(&mut out, &r.name, "counter");
            render_series(&mut out, &r.name, &r.labels, None);
            let _ = writeln!(out, " {}", r.value);
        }
        for r in &self.gauges {
            type_line(&mut out, &r.name, "gauge");
            render_series(&mut out, &r.name, &r.labels, None);
            let _ = writeln!(out, " {}", r.value);
        }
        for r in &self.histograms {
            type_line(&mut out, &r.name, "histogram");
            let bucket_name = format!("{}_bucket", r.name);
            let mut cumulative = 0u64;
            for b in &r.buckets {
                cumulative += b.count;
                render_series(&mut out, &bucket_name, &r.labels, Some(&b.le.to_string()));
                let _ = writeln!(out, " {cumulative}");
            }
            render_series(&mut out, &bucket_name, &r.labels, Some("+Inf"));
            let _ = writeln!(out, " {cumulative}");
            render_series(&mut out, &format!("{}_sum", r.name), &r.labels, None);
            let _ = writeln!(out, " {}", r.sum);
            render_series(&mut out, &format!("{}_count", r.name), &r.labels, None);
            let _ = writeln!(out, " {}", r.count);
        }
        out
    }
}

/// Render `{"k":"v",...}` for a sorted label set.
fn render_labels_json(labels: &[(String, String)], out: &mut String) {
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_str(k, out);
        out.push(':');
        escape_str(v, out);
    }
    out.push('}');
}

/// Render `name{k="v",...,le="..."}` (labels elided when empty).
fn render_series(out: &mut String, name: &str, labels: &[(String, String)], le: Option<&str>) {
    out.push_str(name);
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        escape_label_value(v, out);
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=\"");
        out.push_str(le);
        out.push('"');
    }
    out.push('}');
}

/// Prometheus label-value escaping: backslash, double quote, newline.
fn escape_label_value(v: &str, out: &mut String) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// JSON string-literal escaping (quotes included). `air-metrics` sits
/// below `air-trace` in the crate DAG, so it carries its own copy of
/// this ten-line helper rather than importing `air_trace::json`.
fn escape_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn sample() -> Snapshot {
        let m = MetricsRegistry::new();
        m.add("air_req_total", &[("tenant", "anon")], 3);
        m.set_gauge("air_queue_depth", &[], 2);
        for v in [5, 5, 900] {
            m.observe("air_lat_ns", &[("temp", "warm")], v);
        }
        m.snapshot()
    }

    #[test]
    fn json_document_shape_is_stable() {
        let json = sample().to_json();
        assert!(json.starts_with("{\"schema\":\"air-metrics-snapshot/1\""));
        assert!(json
            .contains("{\"name\":\"air_req_total\",\"labels\":{\"tenant\":\"anon\"},\"value\":3}"));
        assert!(json.contains("{\"name\":\"air_queue_depth\",\"labels\":{},\"value\":2}"));
        // 5 -> bucket ub 7 (x2), 900 -> bucket ub 1023 (x1).
        assert!(json.contains(
            "\"count\":3,\"sum\":910,\"p50\":7,\"p90\":1023,\"p99\":1023,\
             \"buckets\":[{\"le\":7,\"count\":2},{\"le\":1023,\"count\":1}]"
        ));
    }

    #[test]
    fn prometheus_rendering_is_cumulative_with_inf_cap() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE air_req_total counter\n"));
        assert!(text.contains("air_req_total{tenant=\"anon\"} 3\n"));
        assert!(text.contains("# TYPE air_queue_depth gauge\nair_queue_depth 2\n"));
        assert!(text.contains("# TYPE air_lat_ns histogram\n"));
        assert!(text.contains("air_lat_ns_bucket{temp=\"warm\",le=\"7\"} 2\n"));
        assert!(text.contains("air_lat_ns_bucket{temp=\"warm\",le=\"1023\"} 3\n"));
        assert!(text.contains("air_lat_ns_bucket{temp=\"warm\",le=\"+Inf\"} 3\n"));
        assert!(text.contains("air_lat_ns_sum{temp=\"warm\"} 910\n"));
        assert!(text.contains("air_lat_ns_count{temp=\"warm\"} 3\n"));
    }

    #[test]
    fn label_values_are_escaped_in_both_renderings() {
        let m = MetricsRegistry::new();
        m.inc("air_x_total", &[("tenant", "a\"b\\c\nd")]);
        let snap = m.snapshot();
        assert!(snap.to_json().contains("\"a\\\"b\\\\c\\nd\""));
        assert!(snap
            .to_prometheus()
            .contains("air_x_total{tenant=\"a\\\"b\\\\c\\nd\"} 1"));
    }

    #[test]
    fn lookup_helpers_find_series() {
        let snap = sample();
        assert_eq!(
            snap.counter("air_req_total", &[("tenant", "anon")]),
            Some(3)
        );
        assert_eq!(snap.counter("air_req_total", &[]), None);
        assert_eq!(snap.counter_sum("air_req_total"), 3);
        assert_eq!(snap.gauge("air_queue_depth", &[]), Some(2));
        let h = snap.histogram("air_lat_ns", &[("temp", "warm")]).unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.buckets.iter().map(|b| b.count).sum::<u64>(), h.count);
    }
}
