//! # air-metrics — the production metrics plane
//!
//! Aggregate service telemetry for the AIR daemon, structured as three
//! primitive instruments behind one labelled registry:
//!
//! | instrument  | update      | storage                         | exposition            |
//! |-------------|-------------|---------------------------------|-----------------------|
//! | counter     | `add`/`inc` | one `AtomicU64`                 | `*_total` counter     |
//! | gauge       | `set`       | one `AtomicI64`                 | gauge                 |
//! | [`Histogram`] | `observe` | 65 `AtomicU64` log2 buckets     | cumulative histogram  |
//!
//! Design constraints, in priority order:
//!
//! 1. **Zero dependencies**, exactly like `air-trace`. Everything here is
//!    `std` atomics, `Mutex`-guarded `BTreeMap`s for series registration,
//!    and hand-rolled JSON / Prometheus text rendering.
//! 2. **Lock-free on the hot path.** Updating an already-registered series
//!    is a handful of `Relaxed` atomic RMWs; the registry mutex is taken
//!    only to *find or create* a series. Callers that update one series in
//!    a tight loop can hoist the lookup with the `*_handle` methods and
//!    pay zero locks per update.
//! 3. **No-op when disabled.** [`MetricsRegistry::disabled`] mirrors
//!    `Tracer::disabled`: every method is an early-return on `None`, so an
//!    uninstrumented binary pays one branch per call site. The measured
//!    enabled-vs-disabled throughput cost on the serve stack is the
//!    `metrics_overhead` section of `BENCH_serve.json` (< 2% bar).
//! 4. **Fixed boundaries.** Histogram buckets are powers of two
//!    (`le = 2^i - 1`), so histograms from different processes, tenants or
//!    runs can be merged or compared without boundary negotiation, and a
//!    snapshot is a plain vector of `(le, count)` pairs. Quantiles carry
//!    at most one bucket (≤ 2x) of relative error — plenty for p50/p99
//!    dashboards, and the price of never allocating on `observe`.
//!
//! ## Consumers
//!
//! * `air-trace` bridges span exits into per-phase histograms
//!   (`air_trace::MetricsBridge`) and reuses [`Histogram`] for the
//!   p50/p90/p99 columns of `air trace summarize`.
//! * `air-serve` instruments admission, the warm-cache engine and the
//!   worker pool, answers `metrics` jobs with [`Snapshot::to_json`]
//!   (validated against `schemas/metrics-snapshot.schema.json`), and
//!   serves [`Snapshot::to_prometheus`] on `--metrics-addr`.
//! * `air top` polls the JSON snapshot and renders a live summary.
//!
//! ## Module map
//!
//! | module        | contents                                              |
//! |---------------|-------------------------------------------------------|
//! | [`histogram`] | lock-free log2-bucket [`Histogram`] + quantiles       |
//! | [`registry`]  | labelled [`MetricsRegistry`] and instrument handles   |
//! | [`snapshot`]  | [`Snapshot`] rows, JSON + Prometheus text rendering   |

#![forbid(unsafe_code)]

pub mod histogram;
pub mod registry;
pub mod snapshot;

pub use histogram::{Histogram, BUCKETS};
pub use registry::{CounterHandle, GaugeHandle, HistogramHandle, MetricsRegistry};
pub use snapshot::{BucketRow, CounterRow, GaugeRow, HistogramRow, Snapshot, SCHEMA_ID};
