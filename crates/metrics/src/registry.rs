//! The labelled metrics registry and its per-series handles.
//!
//! A *series* is a metric name plus a sorted label set, e.g.
//! `air_serve_requests_total{job="verify", tenant="anon"}`. The registry
//! interns each series once (a write-locked first use) and hands back an
//! `Arc`'d atomic; every subsequent update of that series is lock-free.
//! Label values are dynamic (tenant ids arrive over the wire), so
//! callers on per-request paths use the direct `add`/`set_gauge`/
//! `observe` methods — in the steady state those take a *shared* read
//! lock and compare the borrowed label slice in place, so concurrent
//! request threads neither serialize nor allocate. Callers updating a
//! fixed series in a loop hoist a `*_handle` once and pay no locks at
//! all.
//!
//! Like `air_trace::Tracer`, a registry is a cheap clonable handle that
//! is either enabled (`Some(Arc<Inner>)`) or disabled
//! ([`MetricsRegistry::disabled`]) — the disabled path is a single branch,
//! which is what keeps the metrics plane affordable enough to leave on
//! by default in `air serve` (measured in `BENCH_serve.json`).
//!
//! Naming follows Prometheus conventions: `snake_case` names matching
//! `[a-zA-Z_:][a-zA-Z0-9_:]*`, counters suffixed `_total`, durations in
//! `_ns`. Invalid names panic in debug builds (they would corrupt the
//! exposition format) and are accepted verbatim in release builds.

use crate::histogram::Histogram;
use crate::snapshot::{BucketRow, CounterRow, GaugeRow, HistogramRow, Snapshot};
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// One registered series: metric name, sorted label set, and the shared
/// atomic the handles update.
struct Series<T> {
    name: String,
    labels: Vec<(String, String)>,
    value: Arc<T>,
}

/// 64-bit FNV-1a over one byte string, continuing from `seed`.
fn fnv(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Hash of a series identity that is *insensitive to label order*:
/// each `(key, value)` pair hashes on its own (key and value chained,
/// so the pair binds them together) and the pair hashes combine by
/// XOR, which commutes. Call sites can therefore pass labels in any
/// order without an allocation or a sort on the hot path; real
/// equality is still verified against the stored sorted set.
fn series_hash(name: &str, labels: &[(&str, &str)]) -> u64 {
    let mut h = fnv(FNV_OFFSET, name.as_bytes());
    for (k, v) in labels {
        // The `=` separator keeps ("ab","c") distinct from ("a","bc").
        h ^= fnv(fnv(fnv(FNV_OFFSET, k.as_bytes()), b"="), v.as_bytes());
    }
    h
}

/// A read-mostly series table indexed by [`series_hash`].
///
/// The steady state of a daemon is "every series already exists", so
/// the lookup path must not allocate or serialize writers: it takes the
/// `RwLock` in *read* mode (updates on distinct connections proceed in
/// parallel), finds the hash bucket in O(1), and verifies the caller's
/// borrowed label slice against the stored set in place — no owned key
/// is built, and the cost does not grow with the number of label sets
/// under one name (per-tenant and per-program cardinality stays cheap).
/// Only a first-use miss upgrades to the write lock and interns the
/// series.
struct Table<T> {
    map: RwLock<HashMap<u64, Vec<Series<T>>>>,
}

impl<T> Default for Table<T> {
    fn default() -> Self {
        Self {
            map: RwLock::new(HashMap::new()),
        }
    }
}

/// Multiset equality between a stored sorted label set and a caller's
/// slice in whatever order the call site wrote it. Stored keys are
/// unique, so length + membership is exact (call sites never repeat a
/// label key).
fn labels_eq(stored: &[(String, String)], query: &[(&str, &str)]) -> bool {
    stored.len() == query.len()
        && query
            .iter()
            .all(|(k, v)| stored.iter().any(|(sk, sv)| sk == k && sv == v))
}

impl<T: Default> Table<T> {
    fn intern(&self, name: &str, labels: &[(&str, &str)]) -> Arc<T> {
        #[cfg(debug_assertions)]
        debug_check_name(name);
        let hash = series_hash(name, labels);
        // Fast path: the series exists; shared lock, zero allocations.
        {
            let map = self.map.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(rows) = map.get(&hash) {
                if let Some(row) = rows
                    .iter()
                    .find(|r| r.name == name && labels_eq(&r.labels, labels))
                {
                    return Arc::clone(&row.value);
                }
            }
        }
        // First use: intern under the write lock, re-checking for a
        // racing interner of the same series.
        let mut sorted: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        sorted.sort();
        let mut map = self.map.write().unwrap_or_else(PoisonError::into_inner);
        let rows = map.entry(hash).or_default();
        if let Some(row) = rows
            .iter()
            .find(|r| r.name == name && labels_eq(&r.labels, labels))
        {
            return Arc::clone(&row.value);
        }
        let value = Arc::new(T::default());
        rows.push(Series {
            name: name.to_string(),
            labels: sorted,
            value: Arc::clone(&value),
        });
        value
    }

    /// Visit every series in (name, labels) order — snapshots must be
    /// deterministic and exposition groups `# TYPE` lines by name, so
    /// the hash-ordered buckets are sorted here, on the cold path.
    fn for_each(&self, mut f: impl FnMut(&str, &[(String, String)], &T)) {
        let map = self.map.read().unwrap_or_else(PoisonError::into_inner);
        let mut all: Vec<&Series<T>> = map.values().flatten().collect();
        all.sort_by(|a, b| a.name.cmp(&b.name).then_with(|| a.labels.cmp(&b.labels)));
        for row in all {
            f(&row.name, &row.labels, &row.value);
        }
    }
}

#[derive(Default)]
struct Inner {
    counters: Table<AtomicU64>,
    gauges: Table<AtomicI64>,
    histograms: Table<Histogram>,
}

/// Cheap clonable handle to a metrics registry; see module docs.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Option<Arc<Inner>>,
}

/// Lock-free handle to one counter series (no-op when disabled).
#[derive(Clone, Default)]
pub struct CounterHandle(Option<Arc<AtomicU64>>);

/// Lock-free handle to one gauge series (no-op when disabled).
#[derive(Clone, Default)]
pub struct GaugeHandle(Option<Arc<AtomicI64>>);

/// Lock-free handle to one histogram series (no-op when disabled).
#[derive(Clone, Default)]
pub struct HistogramHandle(Option<Arc<Histogram>>);

impl CounterHandle {
    /// Add `delta` to the counter (1 for plain increments).
    #[inline]
    pub fn add(&self, delta: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn value(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

impl GaugeHandle {
    /// Set the gauge to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Add `delta` (possibly negative) to the gauge.
    #[inline]
    pub fn add(&self, delta: i64) {
        if let Some(g) = &self.0 {
            g.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn value(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

impl HistogramHandle {
    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.observe(v);
        }
    }
}

#[cfg(debug_assertions)]
fn debug_check_name(name: &str) {
    let mut chars = name.chars();
    let head_ok = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
    let tail_ok = chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':');
    debug_assert!(
        head_ok && tail_ok,
        "metric name {name:?} is not a valid Prometheus identifier"
    );
}

impl MetricsRegistry {
    /// An enabled, empty registry.
    pub fn new() -> Self {
        Self {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// A registry on which every operation is a no-op and every
    /// snapshot is empty. Handles vended by a disabled registry are
    /// themselves no-ops.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `delta` to a counter series, creating it at 0 on first use.
    #[inline]
    pub fn add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        if self.inner.is_some() {
            self.counter_handle(name, labels).add(delta);
        }
    }

    /// Increment a counter series by 1.
    #[inline]
    pub fn inc(&self, name: &str, labels: &[(&str, &str)]) {
        self.add(name, labels, 1);
    }

    /// Set a gauge series to an absolute value, creating it on first use.
    #[inline]
    pub fn set_gauge(&self, name: &str, labels: &[(&str, &str)], v: i64) {
        if self.inner.is_some() {
            self.gauge_handle(name, labels).set(v);
        }
    }

    /// Record one observation into a histogram series, creating it on
    /// first use.
    #[inline]
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        if self.inner.is_some() {
            self.histogram_handle(name, labels).observe(v);
        }
    }

    /// Intern a counter series and return its lock-free handle.
    pub fn counter_handle(&self, name: &str, labels: &[(&str, &str)]) -> CounterHandle {
        CounterHandle(
            self.inner
                .as_ref()
                .map(|inner| inner.counters.intern(name, labels)),
        )
    }

    /// Intern a gauge series and return its lock-free handle.
    pub fn gauge_handle(&self, name: &str, labels: &[(&str, &str)]) -> GaugeHandle {
        GaugeHandle(
            self.inner
                .as_ref()
                .map(|inner| inner.gauges.intern(name, labels)),
        )
    }

    /// Intern a histogram series and return its lock-free handle.
    pub fn histogram_handle(&self, name: &str, labels: &[(&str, &str)]) -> HistogramHandle {
        HistogramHandle(
            self.inner
                .as_ref()
                .map(|inner| inner.histograms.intern(name, labels)),
        )
    }

    /// Capture every registered series into a sorted, self-contained
    /// [`Snapshot`]. Concurrent updates during the capture can only
    /// *add* to what the snapshot sees (histograms keep
    /// `sum(buckets) >= count`, see `histogram` module docs); a disabled
    /// registry snapshots empty.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        let mut counters = Vec::new();
        inner.counters.for_each(|name, labels, v| {
            counters.push(CounterRow {
                name: name.to_string(),
                labels: labels.to_vec(),
                value: v.load(Ordering::Relaxed),
            });
        });
        let mut gauges = Vec::new();
        inner.gauges.for_each(|name, labels, v| {
            gauges.push(GaugeRow {
                name: name.to_string(),
                labels: labels.to_vec(),
                value: v.load(Ordering::Relaxed),
            });
        });
        let mut histograms = Vec::new();
        inner.histograms.for_each(|name, labels, h| {
            // Count before buckets: mid-flight observers may bump a
            // bucket we then see, never the other way round.
            let count = h.count();
            let sum = h.sum();
            let counts = h.counts();
            histograms.push(HistogramRow {
                name: name.to_string(),
                labels: labels.to_vec(),
                count,
                sum,
                p50: h.quantile(0.50),
                p90: h.quantile(0.90),
                p99: h.quantile(0.99),
                buckets: counts
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(i, &c)| BucketRow {
                        le: crate::histogram::bucket_upper_bound(i),
                        count: c,
                    })
                    .collect(),
            });
        });
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn disabled_registry_is_a_no_op() {
        let m = MetricsRegistry::disabled();
        m.inc("air_x_total", &[]);
        m.set_gauge("air_g", &[("k", "v")], 7);
        m.observe("air_h_ns", &[], 1234);
        let snap = m.snapshot();
        assert!(!m.is_enabled());
        assert!(snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty());
        // Handles from a disabled registry are no-ops too.
        let c = m.counter_handle("air_x_total", &[]);
        c.add(5);
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn labels_are_order_insensitive() {
        let m = MetricsRegistry::new();
        m.inc("air_req_total", &[("tenant", "a"), ("job", "verify")]);
        m.inc("air_req_total", &[("job", "verify"), ("tenant", "a")]);
        let snap = m.snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counters[0].value, 2);
    }

    #[test]
    fn distinct_label_values_are_distinct_series() {
        let m = MetricsRegistry::new();
        m.add("air_fuel_total", &[("tenant", "a")], 10);
        m.add("air_fuel_total", &[("tenant", "b")], 20);
        let snap = m.snapshot();
        assert_eq!(snap.counter("air_fuel_total", &[("tenant", "a")]), Some(10));
        assert_eq!(snap.counter("air_fuel_total", &[("tenant", "b")]), Some(20));
        assert_eq!(snap.counter_sum("air_fuel_total"), 30);
    }

    #[test]
    fn gauges_hold_last_set_value() {
        let m = MetricsRegistry::new();
        let g = m.gauge_handle("air_queue_depth", &[]);
        g.set(5);
        g.add(-2);
        m.set_gauge("air_queue_depth", &[], 9);
        assert_eq!(m.snapshot().gauge("air_queue_depth", &[]), Some(9));
    }

    /// Satellite 3 (part 1, registry flavor): many threads hammer
    /// overlapping series through the locked lookup path; nothing is
    /// lost and every histogram snapshot satisfies the bucket-sum
    /// invariant.
    #[test]
    fn concurrent_registry_updates_are_exact() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 2_000;
        let m = MetricsRegistry::new();
        thread::scope(|s| {
            for t in 0..THREADS {
                let m = m.clone();
                s.spawn(move || {
                    let tenant = if t % 2 == 0 { "even" } else { "odd" };
                    for i in 0..PER_THREAD {
                        m.inc("air_req_total", &[("tenant", tenant)]);
                        m.observe("air_lat_ns", &[("tenant", tenant)], i);
                    }
                });
            }
            // Concurrent snapshots must each be internally consistent.
            for _ in 0..50 {
                for row in &m.snapshot().histograms {
                    let bucket_sum: u64 = row.buckets.iter().map(|b| b.count).sum();
                    assert!(bucket_sum >= row.count, "snapshot lost observations");
                }
            }
        });
        let snap = m.snapshot();
        let total = (THREADS as u64 / 2) * PER_THREAD;
        assert_eq!(
            snap.counter("air_req_total", &[("tenant", "even")]),
            Some(total)
        );
        assert_eq!(
            snap.counter("air_req_total", &[("tenant", "odd")]),
            Some(total)
        );
        for row in &snap.histograms {
            assert_eq!(row.count, total);
            assert_eq!(row.buckets.iter().map(|b| b.count).sum::<u64>(), total);
        }
    }
}
