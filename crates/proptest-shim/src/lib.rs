//! A self-contained, offline subset of the [proptest](https://docs.rs/proptest)
//! API, used by this workspace so that property tests build without any
//! network access. Only the surface actually exercised by the AIR test
//! suites is provided:
//!
//! - [`strategy::Strategy`] with implementations for integer ranges,
//! - [`collection::vec`] for vectors of strategy-generated elements,
//! - the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! - [`prop_assert!`] / [`prop_assert_eq!`],
//! - [`test_runner::ProptestConfig`].
//!
//! Generation is deterministic: each test function derives its RNG seed
//! from its own name, so failures are reproducible run over run.
//!
//! The `AIR_PROPTEST_CASES` environment variable overrides every test's
//! configured case count at run time (like upstream's `PROPTEST_CASES`):
//! set it low for a quick smoke pass or high for an overnight soak, with
//! no code change. A value that is not a positive integer is ignored.

pub mod test_runner {
    //! Test configuration and the deterministic RNG driving generation.

    use std::fmt;

    /// Per-test configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// The case count a [`proptest!`](crate::proptest) loop actually
    /// runs: the `AIR_PROPTEST_CASES` environment variable when set to a
    /// positive integer, the test's configured `cases` otherwise.
    pub fn effective_cases(config: &ProptestConfig) -> u32 {
        match std::env::var("AIR_PROPTEST_CASES") {
            Ok(v) => match v.trim().parse::<u32>() {
                Ok(n) if n > 0 => n,
                _ => config.cases,
            },
            Err(_) => config.cases,
        }
    }

    /// A failed property check, carrying its rendered message.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(pub String);

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// xorshift64* generator seeded from the test name (FNV-1a hash), so
    /// every run of a given test sees the same case sequence.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the RNG from an arbitrary string (normally the test name).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng {
                state: h | 1, // xorshift state must be non-zero
            }
        }

        /// The next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }

        /// A value uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait: a deterministic value generator.

    use crate::test_runner::TestRng;

    /// A generator of values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value from the strategy.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.abs_diff(self.start) as u64;
                    let off = rng.below(span);
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi.abs_diff(lo) as u64;
                    let off = if span == u64::MAX { rng.next_u64() } else { rng.below(span + 1) };
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

    /// A strategy always returning a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a boolean property, failing the current case with an optional
/// formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Asserts that two expressions are equal (by `PartialEq` on references).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l, r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts that two expressions are *not* equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
}

/// Declares deterministic property tests. Supports the subset
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(N))]   // optional
///     /// docs and attributes are preserved
///     #[test]
///     fn name(arg in strategy, ...) { body }
///     ...
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{
            (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = $crate::test_runner::effective_cases(&config);
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for case in 0..cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed on case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("alpha");
        let mut b = TestRng::from_name("alpha");
        let mut c = TestRng::from_name("beta");
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = (3usize..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let w = (-5i64..=5).sample(&mut rng);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::from_name("vec");
        for _ in 0..200 {
            let v = crate::collection::vec(0usize..10, 0..24).sample(&mut rng);
            assert!(v.len() < 24);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn macro_round_trips(a in 0u64..100, b in 0u64..100) {
            prop_assert!(a < 100 && b < 100);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, a + b + 1);
        }
    }

    #[test]
    fn env_var_overrides_the_configured_case_count() {
        use crate::test_runner::effective_cases;
        let config = ProptestConfig::with_cases(64);
        // The override only reads its own variable, so the test isolates
        // itself by saving and restoring it.
        let saved = std::env::var("AIR_PROPTEST_CASES").ok();
        std::env::set_var("AIR_PROPTEST_CASES", "7");
        assert_eq!(effective_cases(&config), 7);
        // Malformed and non-positive values fall back to the config.
        std::env::set_var("AIR_PROPTEST_CASES", "many");
        assert_eq!(effective_cases(&config), 64);
        std::env::set_var("AIR_PROPTEST_CASES", "0");
        assert_eq!(effective_cases(&config), 64);
        match saved {
            Some(v) => std::env::set_var("AIR_PROPTEST_CASES", v),
            None => std::env::remove_var("AIR_PROPTEST_CASES"),
        }
    }
}
