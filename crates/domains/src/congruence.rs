//! Granger's congruence domain `{⊥} ∪ {aℤ + b}`.
//!
//! An element `(m, r)` with `m > 0` denotes `{x | x ≡ r (mod m)}`; `(0, c)`
//! denotes the constant `{c}`; `(1, 0)` is `⊤`. The domain generalizes
//! [`Parity`](crate::parity::Parity) (`m = 2`) and, like it, can express
//! the paper's odd-input property exactly.

use std::fmt;

use air_lang::ast::CmpOp;

use crate::value::AbstractValue;

/// A congruence abstraction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Congruence {
    /// `⊥`.
    Bot,
    /// `mℤ + r`; invariant: `m ≥ 0`, and `0 ≤ r < m` when `m > 0`.
    Class {
        /// The modulus (`0` encodes a single constant).
        modulus: i64,
        /// The remainder (the constant itself when `modulus = 0`).
        rem: i64,
    },
}

impl Congruence {
    /// The class `mℤ + r`, normalized.
    pub fn class(modulus: i64, rem: i64) -> Congruence {
        let modulus = modulus.abs();
        if modulus == 0 {
            Congruence::Class { modulus: 0, rem }
        } else {
            Congruence::Class {
                modulus,
                rem: rem.rem_euclid(modulus),
            }
        }
    }

    fn parts(&self) -> Option<(i64, i64)> {
        match self {
            Congruence::Bot => None,
            Congruence::Class { modulus, rem } => Some((*modulus, *rem)),
        }
    }
}

impl fmt::Display for Congruence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Congruence::Bot => write!(f, "⊥"),
            Congruence::Class { modulus: 0, rem } => write!(f, "{rem}"),
            Congruence::Class { modulus: 1, .. } => write!(f, "⊤"),
            Congruence::Class { modulus, rem } => write!(f, "{modulus}ℤ+{rem}"),
        }
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl AbstractValue for Congruence {
    const NAME: &'static str = "Cong";

    fn top() -> Self {
        Congruence::class(1, 0)
    }

    fn bottom() -> Self {
        Congruence::Bot
    }

    fn leq(&self, other: &Self) -> bool {
        match (self.parts(), other.parts()) {
            (None, _) => true,
            (_, None) => false,
            (Some((m1, r1)), Some((m2, r2))) => {
                if m2 == 0 {
                    m1 == 0 && r1 == r2
                } else {
                    // m2ℤ+r2 ⊇ m1ℤ+r1 iff m2 | m1 (with 0 ≡ "infinitely
                    // precise") and r1 ≡ r2 (mod m2).
                    (m1 == 0 || m1 % m2 == 0) && (r1 - r2).rem_euclid(m2) == 0
                }
            }
        }
    }

    fn join(&self, other: &Self) -> Self {
        match (self.parts(), other.parts()) {
            (None, _) => *other,
            (_, None) => *self,
            (Some((m1, r1)), Some((m2, r2))) => {
                let m = gcd(gcd(m1, m2), (r1 - r2).abs());
                Congruence::class(m, r1)
            }
        }
    }

    fn meet(&self, other: &Self) -> Self {
        match (self.parts(), other.parts()) {
            (None, _) | (_, None) => Congruence::Bot,
            (Some((0, c)), Some(_)) => {
                if other.contains(c) {
                    *self
                } else {
                    Congruence::Bot
                }
            }
            (Some(_), Some((0, c))) => {
                if self.contains(c) {
                    *other
                } else {
                    Congruence::Bot
                }
            }
            (Some((m1, r1)), Some((m2, r2))) => {
                // Chinese remainder: solvable iff gcd(m1, m2) | r1 − r2.
                let g = gcd(m1, m2);
                if (r1 - r2) % g != 0 {
                    return Congruence::Bot;
                }
                let Some(lcm) = (m1 / g).checked_mul(m2) else {
                    return *self; // overflow: sound over-approximation
                };
                // Find x ≡ r1 (mod m1), x ≡ r2 (mod m2) by stepping r1 by m1.
                // Cheap because moduli in this workspace are tiny.
                let mut x = r1;
                for _ in 0..(m2 / g) {
                    if (x - r2).rem_euclid(m2) == 0 {
                        return Congruence::class(lcm, x);
                    }
                    x += m1;
                }
                Congruence::Bot
            }
        }
    }

    fn from_const(v: i64) -> Self {
        Congruence::class(0, v)
    }

    fn add(&self, other: &Self) -> Self {
        match (self.parts(), other.parts()) {
            (None, _) | (_, None) => Congruence::Bot,
            (Some((m1, r1)), Some((m2, r2))) => match r1.checked_add(r2) {
                Some(r) => Congruence::class(gcd(m1, m2), r),
                None => Congruence::top(),
            },
        }
    }

    fn sub(&self, other: &Self) -> Self {
        match (self.parts(), other.parts()) {
            (None, _) | (_, None) => Congruence::Bot,
            (Some((m1, r1)), Some((m2, r2))) => match r1.checked_sub(r2) {
                Some(r) => Congruence::class(gcd(m1, m2), r),
                None => Congruence::top(),
            },
        }
    }

    fn mul(&self, other: &Self) -> Self {
        match (self.parts(), other.parts()) {
            (None, _) | (_, None) => Congruence::Bot,
            (Some((m1, r1)), Some((m2, r2))) => {
                let products = [
                    m1.checked_mul(m2),
                    m1.checked_mul(r2.abs()),
                    m2.checked_mul(r1.abs()),
                ];
                let r = r1.checked_mul(r2);
                match (products, r) {
                    ([Some(a), Some(b), Some(c)], Some(r)) => {
                        Congruence::class(gcd(gcd(a, b), c), r)
                    }
                    _ => Congruence::top(),
                }
            }
        }
    }

    fn contains(&self, v: i64) -> bool {
        match self.parts() {
            None => false,
            Some((0, c)) => v == c,
            Some((m, r)) => (v - r).rem_euclid(m) == 0,
        }
    }

    fn refine_cmp(op: CmpOp, l: &Self, r: &Self) -> (Self, Self) {
        if l.is_bottom() || r.is_bottom() {
            return (Congruence::Bot, Congruence::Bot);
        }
        match op {
            CmpOp::Eq => {
                let m = l.meet(r);
                (m, m)
            }
            _ => match (l.parts(), r.parts()) {
                // Two constants decide order comparisons outright.
                (Some((0, x)), Some((0, y))) if !op.eval(x, y) => {
                    (Congruence::Bot, Congruence::Bot)
                }
                _ => (*l, *r),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::laws;

    fn sample() -> Vec<Congruence> {
        vec![
            Congruence::Bot,
            Congruence::top(),
            Congruence::class(2, 0),
            Congruence::class(2, 1),
            Congruence::class(3, 2),
            Congruence::class(4, 1),
            Congruence::class(6, 5),
            Congruence::from_const(0),
            Congruence::from_const(5),
            Congruence::from_const(-3),
        ]
    }

    fn values() -> Vec<i64> {
        (-12..=12).collect()
    }

    #[test]
    fn value_domain_laws() {
        laws::check_value_domain(&sample(), &values()).unwrap();
    }

    #[test]
    fn arithmetic_soundness() {
        laws::check_arith_sound(&sample(), &values()).unwrap();
    }

    #[test]
    fn refine_cmp_soundness() {
        laws::check_refine_cmp_sound(&sample(), &values()).unwrap();
    }

    #[test]
    fn backward_soundness() {
        laws::check_backward_sound(&sample(), &values()).unwrap();
    }

    #[test]
    fn normalization() {
        assert_eq!(Congruence::class(-4, 7), Congruence::class(4, 3));
        assert_eq!(Congruence::class(3, -1), Congruence::class(3, 2));
        assert_eq!(Congruence::class(0, -5), Congruence::from_const(-5));
    }

    #[test]
    fn join_computes_gcd_class() {
        // {4} ∨ {10} = 6ℤ+4 (both ≡ 4 mod 6).
        let j = Congruence::from_const(4).join(&Congruence::from_const(10));
        assert_eq!(j, Congruence::class(6, 4));
        // even ∨ odd = ⊤
        let j2 = Congruence::class(2, 0).join(&Congruence::class(2, 1));
        assert_eq!(j2, Congruence::top());
    }

    #[test]
    fn meet_is_crt() {
        // x ≡ 1 (mod 2) ∧ x ≡ 2 (mod 3) = x ≡ 5 (mod 6).
        let m = Congruence::class(2, 1).meet(&Congruence::class(3, 2));
        assert_eq!(m, Congruence::class(6, 5));
        // Incompatible: x ≡ 0 (mod 2) ∧ x ≡ 1 (mod 2) = ⊥.
        let m2 = Congruence::class(2, 0).meet(&Congruence::class(2, 1));
        assert_eq!(m2, Congruence::Bot);
        // Constant against class.
        let m3 = Congruence::from_const(7).meet(&Congruence::class(2, 1));
        assert_eq!(m3, Congruence::from_const(7));
        let m4 = Congruence::from_const(6).meet(&Congruence::class(2, 1));
        assert_eq!(m4, Congruence::Bot);
    }

    #[test]
    fn parity_style_arithmetic() {
        let odd = Congruence::class(2, 1);
        let even = Congruence::class(2, 0);
        assert_eq!(odd.add(&odd), even);
        assert_eq!(odd.mul(&odd), odd);
        assert_eq!(odd.sub(&even), odd);
    }

    #[test]
    fn display() {
        assert_eq!(Congruence::class(2, 1).to_string(), "2ℤ+1");
        assert_eq!(Congruence::from_const(3).to_string(), "3");
        assert_eq!(Congruence::top().to_string(), "⊤");
    }
}
