//! The nonrelational environment domain `Var → V`.
//!
//! [`EnvDomain<V>`] lifts any value domain pointwise to program stores and
//! implements both [`Abstraction`] and [`Transfer`]. Guards are refined by
//! an HC4-style forward/backward constraint pass over the expression tree,
//! using the value domain's `refine_cmp`/`back_*` operators.
//!
//! The classic instantiations have aliases: [`IntervalEnv`] is the paper's
//! `Int`, [`SignEnv`], [`ParityEnv`], [`ConstantEnv`], [`CongruenceEnv`].

use std::marker::PhantomData;
use std::sync::Arc;

use air_lang::ast::{AExp, BExp};
use air_lang::Universe;

use crate::congruence::Congruence;
use crate::constant::Constant;
use crate::interval::Interval;
use crate::parity::Parity;
use crate::sign::Sign;
use crate::traits::{Abstraction, Transfer};
use crate::value::AbstractValue;

/// The paper's interval abstraction `Int`, lifted to stores.
pub type IntervalEnv = EnvDomain<Interval>;
/// Sign analysis over stores.
pub type SignEnv = EnvDomain<Sign>;
/// Parity analysis over stores.
pub type ParityEnv = EnvDomain<Parity>;
/// Constant propagation over stores.
pub type ConstantEnv = EnvDomain<Constant>;
/// Congruence analysis over stores.
pub type CongruenceEnv = EnvDomain<Congruence>;

/// An abstract environment: one value-domain element per variable, or `⊥`.
///
/// The `Bot` case is kept explicit (rather than "any component bottom") so
/// equality and ordering are canonical: any environment with a bottom
/// component is normalized to `Bot` internally.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EnvElem<V> {
    /// The empty set of stores.
    Bot,
    /// Pointwise constraints, indexed like universe stores.
    Vals(Vec<V>),
}

impl<V: AbstractValue> EnvElem<V> {
    fn normalize(self) -> Self {
        match self {
            EnvElem::Vals(vs) if vs.iter().any(V::is_bottom) => EnvElem::Bot,
            other => other,
        }
    }

    /// The constraint on variable `i`, or `None` for `⊥`.
    pub fn get(&self, i: usize) -> Option<&V> {
        match self {
            EnvElem::Bot => None,
            EnvElem::Vals(vs) => vs.get(i),
        }
    }
}

/// The nonrelational lifting of a value domain `V` over a fixed variable
/// set.
///
/// # Example
///
/// ```
/// use air_domains::{Abstraction, IntervalEnv, Transfer};
/// use air_lang::{parse_bexp, Universe};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let u = Universe::new(&[("x", -10, 10)])?;
/// let dom = IntervalEnv::new(&u);
/// let top = dom.top();
/// let pos = dom.assume(&top, &parse_bexp("x > 0")?);
/// assert!(!dom.gamma_contains(&pos, &[0]));
/// assert!(dom.gamma_contains(&pos, &[7]));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct EnvDomain<V> {
    vars: Vec<Arc<str>>,
    _marker: PhantomData<V>,
}

impl<V: AbstractValue> EnvDomain<V> {
    /// Creates the domain over the universe's variables (store order).
    pub fn new(universe: &Universe) -> Self {
        EnvDomain {
            vars: universe.var_names().map(Arc::from).collect(),
            _marker: PhantomData,
        }
    }

    /// Creates the domain over an explicit variable list.
    pub fn with_vars<I: IntoIterator<Item = S>, S: AsRef<str>>(vars: I) -> Self {
        EnvDomain {
            vars: vars.into_iter().map(|s| Arc::from(s.as_ref())).collect(),
            _marker: PhantomData,
        }
    }

    /// The variable names in store order.
    pub fn vars(&self) -> &[Arc<str>] {
        &self.vars
    }

    fn var_index(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|v| &**v == name)
    }

    /// Builds an environment from per-variable constraints.
    ///
    /// # Panics
    ///
    /// Panics if the number of constraints differs from the variable count.
    pub fn env<I: IntoIterator<Item = V>>(&self, vals: I) -> EnvElem<V> {
        let vs: Vec<V> = vals.into_iter().collect();
        assert_eq!(vs.len(), self.vars.len(), "constraint arity mismatch");
        EnvElem::Vals(vs).normalize()
    }

    /// Forward abstract evaluation of an arithmetic expression.
    pub fn eval_aexp(&self, env: &EnvElem<V>, a: &AExp) -> V {
        let EnvElem::Vals(vs) = env else {
            return V::bottom();
        };
        self.eval_in(vs, a)
    }

    fn eval_in(&self, vs: &[V], a: &AExp) -> V {
        match a {
            AExp::Num(n) => V::from_const(*n),
            AExp::Var(x) => self
                .var_index(x)
                .map(|i| vs[i].clone())
                .unwrap_or_else(V::top),
            AExp::Add(l, r) => self.eval_in(vs, l).add(&self.eval_in(vs, r)),
            AExp::Sub(l, r) => self.eval_in(vs, l).sub(&self.eval_in(vs, r)),
            AExp::Mul(l, r) => self.eval_in(vs, l).mul(&self.eval_in(vs, r)),
        }
    }

    /// HC4-revise: refine `vs` under the constraint that `a` evaluates into
    /// `target`. Returns `false` if the constraint is unsatisfiable.
    fn backward_aexp(&self, vs: &mut Vec<V>, a: &AExp, target: &V) -> bool {
        if target.is_bottom() {
            return false;
        }
        match a {
            AExp::Num(n) => !target.meet(&V::from_const(*n)).is_bottom(),
            AExp::Var(x) => match self.var_index(x) {
                Some(i) => {
                    let m = vs[i].meet(target);
                    let ok = !m.is_bottom();
                    vs[i] = m;
                    ok
                }
                None => true,
            },
            AExp::Add(l, r) => {
                let lv = self.eval_in(vs, l);
                let rv = self.eval_in(vs, r);
                let (l2, r2) = V::back_add(target, &lv, &rv);
                self.backward_aexp(vs, l, &l2) && self.backward_aexp(vs, r, &r2)
            }
            AExp::Sub(l, r) => {
                let lv = self.eval_in(vs, l);
                let rv = self.eval_in(vs, r);
                let (l2, r2) = V::back_sub(target, &lv, &rv);
                self.backward_aexp(vs, l, &l2) && self.backward_aexp(vs, r, &r2)
            }
            AExp::Mul(l, r) => {
                let lv = self.eval_in(vs, l);
                let rv = self.eval_in(vs, r);
                let (l2, r2) = V::back_mul(target, &lv, &rv);
                self.backward_aexp(vs, l, &l2) && self.backward_aexp(vs, r, &r2)
            }
        }
    }

    /// Refines an environment under a Boolean condition (`polarity = false`
    /// refines under its negation). Iterated twice for extra propagation.
    fn refine_bexp(&self, env: EnvElem<V>, b: &BExp, polarity: bool) -> EnvElem<V> {
        let EnvElem::Vals(vs) = env else {
            return EnvElem::Bot;
        };
        match (b, polarity) {
            (BExp::Tt, true) | (BExp::Ff, false) => EnvElem::Vals(vs),
            (BExp::Tt, false) | (BExp::Ff, true) => EnvElem::Bot,
            (BExp::Not(inner), _) => self.refine_bexp(EnvElem::Vals(vs), inner, !polarity),
            (BExp::And(l, r), true) | (BExp::Or(l, r), false) => {
                let e1 = self.refine_bexp(EnvElem::Vals(vs), l, polarity);
                self.refine_bexp(e1, r, polarity)
            }
            (BExp::And(l, r), false) | (BExp::Or(l, r), true) => {
                let e1 = self.refine_bexp(EnvElem::Vals(vs.clone()), l, polarity);
                let e2 = self.refine_bexp(EnvElem::Vals(vs), r, polarity);
                self.join_elem(&e1, &e2)
            }
            (BExp::Cmp(op, l, r), _) => {
                let op = if polarity { *op } else { op.negate() };
                let mut vs = vs;
                let lv = self.eval_in(&vs, l);
                let rv = self.eval_in(&vs, r);
                if lv.is_bottom() || rv.is_bottom() {
                    return EnvElem::Bot;
                }
                let (l2, r2) = V::refine_cmp(op, &lv, &rv);
                if !self.backward_aexp(&mut vs, l, &l2) || !self.backward_aexp(&mut vs, r, &r2) {
                    return EnvElem::Bot;
                }
                EnvElem::Vals(vs).normalize()
            }
        }
    }

    fn join_elem(&self, a: &EnvElem<V>, b: &EnvElem<V>) -> EnvElem<V> {
        match (a, b) {
            (EnvElem::Bot, x) | (x, EnvElem::Bot) => x.clone(),
            (EnvElem::Vals(xs), EnvElem::Vals(ys)) => {
                EnvElem::Vals(xs.iter().zip(ys).map(|(x, y)| x.join(y)).collect())
            }
        }
    }
}

impl<V: AbstractValue> Abstraction for EnvDomain<V> {
    type Elem = EnvElem<V>;

    fn name(&self) -> &str {
        V::NAME
    }

    fn top(&self) -> EnvElem<V> {
        EnvElem::Vals(vec![V::top(); self.vars.len()])
    }

    fn bottom(&self) -> EnvElem<V> {
        EnvElem::Bot
    }

    fn is_bottom(&self, e: &EnvElem<V>) -> bool {
        matches!(e, EnvElem::Bot)
    }

    fn leq(&self, a: &EnvElem<V>, b: &EnvElem<V>) -> bool {
        match (a, b) {
            (EnvElem::Bot, _) => true,
            (_, EnvElem::Bot) => false,
            (EnvElem::Vals(xs), EnvElem::Vals(ys)) => xs.iter().zip(ys).all(|(x, y)| x.leq(y)),
        }
    }

    fn join(&self, a: &EnvElem<V>, b: &EnvElem<V>) -> EnvElem<V> {
        self.join_elem(a, b)
    }

    fn meet(&self, a: &EnvElem<V>, b: &EnvElem<V>) -> EnvElem<V> {
        match (a, b) {
            (EnvElem::Bot, _) | (_, EnvElem::Bot) => EnvElem::Bot,
            (EnvElem::Vals(xs), EnvElem::Vals(ys)) => {
                EnvElem::Vals(xs.iter().zip(ys).map(|(x, y)| x.meet(y)).collect()).normalize()
            }
        }
    }

    fn widen(&self, a: &EnvElem<V>, b: &EnvElem<V>) -> EnvElem<V> {
        match (a, b) {
            (EnvElem::Bot, x) | (x, EnvElem::Bot) => x.clone(),
            (EnvElem::Vals(xs), EnvElem::Vals(ys)) => {
                EnvElem::Vals(xs.iter().zip(ys).map(|(x, y)| x.widen(y)).collect())
            }
        }
    }

    fn narrow(&self, a: &EnvElem<V>, b: &EnvElem<V>) -> EnvElem<V> {
        match (a, b) {
            (EnvElem::Bot, _) | (_, EnvElem::Bot) => EnvElem::Bot,
            (EnvElem::Vals(xs), EnvElem::Vals(ys)) => {
                EnvElem::Vals(xs.iter().zip(ys).map(|(x, y)| x.narrow(y)).collect()).normalize()
            }
        }
    }

    fn alpha_store(&self, store: &[i64]) -> EnvElem<V> {
        EnvElem::Vals(store.iter().map(|&v| V::from_const(v)).collect())
    }

    fn gamma_contains(&self, e: &EnvElem<V>, store: &[i64]) -> bool {
        match e {
            EnvElem::Bot => false,
            EnvElem::Vals(vs) => vs.iter().zip(store).all(|(v, &x)| v.contains(x)),
        }
    }
}

impl<V: AbstractValue> Transfer for EnvDomain<V> {
    fn assign(&self, e: &EnvElem<V>, var: &str, a: &AExp) -> EnvElem<V> {
        let EnvElem::Vals(vs) = e else {
            return EnvElem::Bot;
        };
        let val = self.eval_in(vs, a);
        match self.var_index(var) {
            Some(i) => {
                let mut out = vs.clone();
                out[i] = val;
                EnvElem::Vals(out).normalize()
            }
            None => e.clone(),
        }
    }

    fn assume(&self, e: &EnvElem<V>, b: &BExp) -> EnvElem<V> {
        // Two HC4 passes propagate refinements across repeated variables.
        let once = self.refine_bexp(e.clone(), b, true);
        self.refine_bexp(once, b, true)
    }

    fn havoc(&self, e: &EnvElem<V>, var: &str) -> EnvElem<V> {
        let EnvElem::Vals(vs) = e else {
            return EnvElem::Bot;
        };
        match self.var_index(var) {
            Some(i) => {
                let mut out = vs.clone();
                out[i] = V::top();
                EnvElem::Vals(out)
            }
            None => e.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::laws;
    use air_lang::{parse_bexp, Concrete, Universe};

    fn universe() -> Universe {
        Universe::new(&[("x", -6, 6), ("y", -6, 6)]).unwrap()
    }

    fn some_sets(u: &Universe) -> Vec<air_lang::StateSet> {
        vec![
            u.empty(),
            u.full(),
            u.filter(|s| s[0] > 0),
            u.filter(|s| s[0] % 2 != 0),
            u.filter(|s| s[0] == s[1]),
            u.filter(|s| s[0] == 2 && s[1] == -3),
            u.filter(|s| s[0] + s[1] > 4),
        ]
    }

    #[test]
    fn interval_env_closure_and_insertion_laws() {
        let u = universe();
        let dom = IntervalEnv::new(&u);
        laws::check_closure_laws(&dom, &u, &some_sets(&u)).unwrap();
        laws::check_insertion(&dom, &u, &some_sets(&u)).unwrap();
    }

    #[test]
    fn sign_and_parity_env_laws() {
        let u = universe();
        laws::check_closure_laws(&SignEnv::new(&u), &u, &some_sets(&u)).unwrap();
        laws::check_insertion(&SignEnv::new(&u), &u, &some_sets(&u)).unwrap();
        laws::check_closure_laws(&ParityEnv::new(&u), &u, &some_sets(&u)).unwrap();
        laws::check_insertion(&ParityEnv::new(&u), &u, &some_sets(&u)).unwrap();
        laws::check_closure_laws(&CongruenceEnv::new(&u), &u, &some_sets(&u)).unwrap();
        laws::check_closure_laws(&ConstantEnv::new(&u), &u, &some_sets(&u)).unwrap();
    }

    #[test]
    fn alpha_set_computes_hull() {
        let u = universe();
        let dom = IntervalEnv::new(&u);
        let s = u.filter(|st| (st[0] == -2 || st[0] == 5) && st[1] == 0);
        let a = dom.alpha_set(&u, &s);
        assert_eq!(a.get(0), Some(&Interval::of(-2, 5)));
        assert_eq!(a.get(1), Some(&Interval::of(0, 0)));
    }

    #[test]
    fn assume_refines_with_hc4() {
        let u = universe();
        let dom = IntervalEnv::new(&u);
        // x + y <= 2 with x ≥ 1 pins y ≤ 1.
        let e = dom.assume(&dom.top(), &parse_bexp("x >= 1 && x + y <= 2").unwrap());
        assert_eq!(e.get(0), Some(&Interval::at_least(1)));
        assert_eq!(e.get(1), Some(&Interval::at_most(1)));
    }

    #[test]
    fn assume_disjunction_joins() {
        let u = universe();
        let dom = IntervalEnv::new(&u);
        let e = dom.assume(&dom.top(), &parse_bexp("x < -2 || x > 2").unwrap());
        // Interval join loses the hole but must keep both sides.
        assert!(dom.gamma_contains(&e, &[-5, 0]));
        assert!(dom.gamma_contains(&e, &[5, 0]));
    }

    #[test]
    fn assume_unsatisfiable_is_bottom() {
        let u = universe();
        let dom = IntervalEnv::new(&u);
        let e = dom.assume(&dom.top(), &parse_bexp("x < 0 && x > 0").unwrap());
        assert!(dom.is_bottom(&e));
        let e2 = dom.assume(&dom.top(), &parse_bexp("false").unwrap());
        assert!(dom.is_bottom(&e2));
    }

    #[test]
    fn assign_evaluates_forward() {
        let u = universe();
        let dom = IntervalEnv::new(&u);
        let e = dom.env([Interval::of(1, 2), Interval::of(3, 4)]);
        let a = air_lang::ast::AExp::var("x").add(air_lang::ast::AExp::var("y"));
        let e2 = dom.assign(&e, "x", &a);
        assert_eq!(e2.get(0), Some(&Interval::of(4, 6)));
        assert_eq!(e2.get(1), Some(&Interval::of(3, 4)));
    }

    #[test]
    fn transfer_soundness_against_concrete() {
        let u = universe();
        let dom = IntervalEnv::new(&u);
        let sem = Concrete::new(&u);
        let sets = some_sets(&u);
        let b = parse_bexp("x * x <= y + 3").unwrap();
        laws::check_transfer_sound(
            &dom,
            &u,
            &sets,
            |s| sem.exec_exp(&air_lang::ast::Exp::Assume(b.clone()), s).ok(),
            |e| dom.assume(e, &b),
        )
        .unwrap();
        let a = air_lang::ast::AExp::var("x").mul(air_lang::ast::AExp::Num(2));
        // Assignments may escape the small universe; soundness is checked
        // only where concrete execution is defined.
        laws::check_transfer_sound(
            &dom,
            &u,
            &sets,
            |s| {
                sem.exec_exp(&air_lang::ast::Exp::assign("y", a.clone()), s)
                    .ok()
            },
            |e| dom.assign(e, "y", &a),
        )
        .unwrap();
    }

    #[test]
    fn paper_intro_interval_facts() {
        // Int({x odd}) = [-5, 5] over x ∈ [-6, 6]... the paper's unbounded
        // [-∞,+∞] becomes the finite hull here; the incompleteness shape is
        // identical: the hull contains 0 although no odd value is 0.
        let u = Universe::new(&[("x", -6, 6)]).unwrap();
        let dom = IntervalEnv::new(&u);
        let odd = u.filter(|s| s[0] % 2 != 0);
        let a = dom.alpha_set(&u, &odd);
        assert_eq!(a.get(0), Some(&Interval::of(-5, 5)));
        assert!(dom.gamma_contains(&a, &[0]));
    }

    #[test]
    fn env_constructor_arity_check() {
        let u = universe();
        let dom = IntervalEnv::new(&u);
        let e = dom.env([Interval::of(0, 1), Interval::Empty]);
        assert!(dom.is_bottom(&e));
    }
}
