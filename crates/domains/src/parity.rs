//! The parity domain `{⊥, even, odd, ⊤}`.
//!
//! Parity abstracts the paper's introductory input property
//! `I = {x | x is odd}` exactly — one of the few textbook domains that can
//! express it — and is used in tests contrasting expressible and
//! inexpressible inputs.

use std::fmt;

use air_lang::ast::CmpOp;

use crate::value::AbstractValue;

const EVEN: u8 = 0b01;
const ODD: u8 = 0b10;

/// A parity abstraction: any union of the even and odd classes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Parity(u8);

impl Parity {
    /// `⊥`.
    pub const BOT: Parity = Parity(0);
    /// Even integers.
    pub const EVEN: Parity = Parity(EVEN);
    /// Odd integers.
    pub const ODD: Parity = Parity(ODD);
    /// `⊤`.
    pub const TOP: Parity = Parity(EVEN | ODD);

    fn classes(self) -> impl Iterator<Item = u8> {
        [EVEN, ODD].into_iter().filter(move |c| self.0 & c != 0)
    }
}

impl fmt::Display for Parity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self.0 {
            0 => "⊥",
            EVEN => "even",
            ODD => "odd",
            _ => "⊤",
        };
        write!(f, "{s}")
    }
}

impl AbstractValue for Parity {
    const NAME: &'static str = "Par";

    fn top() -> Self {
        Parity::TOP
    }

    fn bottom() -> Self {
        Parity::BOT
    }

    fn leq(&self, other: &Self) -> bool {
        self.0 & !other.0 == 0
    }

    fn join(&self, other: &Self) -> Self {
        Parity(self.0 | other.0)
    }

    fn meet(&self, other: &Self) -> Self {
        Parity(self.0 & other.0)
    }

    fn from_const(v: i64) -> Self {
        if v % 2 == 0 {
            Parity::EVEN
        } else {
            Parity::ODD
        }
    }

    fn add(&self, other: &Self) -> Self {
        let mut out = 0;
        for a in self.classes() {
            for b in other.classes() {
                out |= if a == b { EVEN } else { ODD };
            }
        }
        Parity(out)
    }

    fn sub(&self, other: &Self) -> Self {
        // Subtraction preserves parity exactly like addition.
        self.add(other)
    }

    fn mul(&self, other: &Self) -> Self {
        let mut out = 0;
        for a in self.classes() {
            for b in other.classes() {
                out |= if a == ODD && b == ODD { ODD } else { EVEN };
            }
        }
        Parity(out)
    }

    fn contains(&self, v: i64) -> bool {
        self.0 & (if v % 2 == 0 { EVEN } else { ODD }) != 0
    }

    fn refine_cmp(op: CmpOp, l: &Self, r: &Self) -> (Self, Self) {
        if l.is_bottom() || r.is_bottom() {
            return (Parity::BOT, Parity::BOT);
        }
        match op {
            CmpOp::Eq => {
                let m = l.meet(r);
                (m, m)
            }
            // Order comparisons carry no parity information; ≠ only rules
            // out pairs, never a whole class.
            _ => (*l, *r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::laws;

    fn sample() -> Vec<Parity> {
        vec![Parity::BOT, Parity::EVEN, Parity::ODD, Parity::TOP]
    }

    fn values() -> Vec<i64> {
        vec![-5, -2, -1, 0, 1, 2, 7, 8]
    }

    #[test]
    fn value_domain_laws() {
        laws::check_value_domain(&sample(), &values()).unwrap();
    }

    #[test]
    fn arithmetic_soundness() {
        laws::check_arith_sound(&sample(), &values()).unwrap();
    }

    #[test]
    fn refine_cmp_soundness() {
        laws::check_refine_cmp_sound(&sample(), &values()).unwrap();
    }

    #[test]
    fn backward_soundness() {
        laws::check_backward_sound(&sample(), &values()).unwrap();
    }

    #[test]
    fn exact_parity_arithmetic() {
        assert_eq!(Parity::ODD.add(&Parity::ODD), Parity::EVEN);
        assert_eq!(Parity::ODD.add(&Parity::EVEN), Parity::ODD);
        assert_eq!(Parity::ODD.mul(&Parity::ODD), Parity::ODD);
        assert_eq!(Parity::ODD.mul(&Parity::EVEN), Parity::EVEN);
        assert_eq!(Parity::ODD.sub(&Parity::ODD), Parity::EVEN);
        assert_eq!(Parity::TOP.mul(&Parity::EVEN), Parity::EVEN);
    }

    #[test]
    fn negative_values_classified() {
        assert!(Parity::ODD.contains(-3));
        assert!(Parity::EVEN.contains(-4));
        assert_eq!(Parity::from_const(-3), Parity::ODD);
    }

    #[test]
    fn display() {
        assert_eq!(Parity::EVEN.to_string(), "even");
        assert_eq!(Parity::TOP.to_string(), "⊤");
    }
}
