//! Karr's domain of affine equalities.
//!
//! Elements are affine subspaces `{x ∈ ℚⁿ | A·x = b}` represented by a
//! reduced row-echelon constraint system over exact rationals. Karr's
//! domain expresses relational invariants like the countdown loop's
//! `y = x` (Example 7.8) *natively*, making it an instructive base domain
//! for the repair engine: analyses that need those invariants start
//! complete where intervals must be repaired.
//!
//! Operations (Karr 1976):
//! - `meet`: concatenate constraint rows and re-reduce;
//! - `join`: affine hull — convert to generator form (a support point
//!   plus direction vectors), union the generators, convert back;
//! - assignments of affine expressions: exact by substitution
//!   (invertible case) or projection + new equation;
//! - affine equality guards refine exactly; other guards are identity
//!   (sound).

use std::fmt;

use air_lang::ast::{AExp, BExp, CmpOp};
use air_lang::Universe;

use crate::traits::{Abstraction, Transfer};

/// An exact rational with `i128` parts (plenty for bounded universes).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Ratio {
    num: i128,
    den: i128, // > 0
}

impl Ratio {
    /// The zero rational.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// The unit rational.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// `n/1`.
    pub fn int(n: i64) -> Ratio {
        Ratio {
            num: n as i128,
            den: 1,
        }
    }

    fn normalize(num: i128, den: i128) -> Ratio {
        assert!(den != 0, "zero denominator");
        let g = gcd128(num, den).max(1);
        let (num, den) = (num / g, den / g);
        if den < 0 {
            Ratio {
                num: -num,
                den: -den,
            }
        } else {
            Ratio { num, den }
        }
    }

    fn add(self, o: Ratio) -> Ratio {
        Ratio::normalize(self.num * o.den + o.num * self.den, self.den * o.den)
    }

    fn sub(self, o: Ratio) -> Ratio {
        Ratio::normalize(self.num * o.den - o.num * self.den, self.den * o.den)
    }

    fn mul(self, o: Ratio) -> Ratio {
        Ratio::normalize(self.num * o.num, self.den * o.den)
    }

    fn div(self, o: Ratio) -> Ratio {
        assert!(o.num != 0, "division by zero rational");
        Ratio::normalize(self.num * o.den, self.den * o.num)
    }

    fn is_zero(self) -> bool {
        self.num == 0
    }

    /// The integer value if integral.
    pub fn as_int(self) -> Option<i128> {
        (self.den == 1).then_some(self.num)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

fn gcd128(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// One affine constraint `Σ coeffs[i]·xᵢ = rhs`, and the rows of an
/// element's reduced system.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AffineRow {
    /// Coefficients per variable (universe order).
    pub coeffs: Vec<Ratio>,
    /// Right-hand side.
    pub rhs: Ratio,
}

impl AffineRow {
    fn is_trivial(&self) -> bool {
        self.coeffs.iter().all(|c| c.is_zero()) && self.rhs.is_zero()
    }

    fn is_inconsistent(&self) -> bool {
        self.coeffs.iter().all(|c| c.is_zero()) && !self.rhs.is_zero()
    }
}

/// An element of the affine domain: `Bot`, or a consistent reduced system
/// (empty system = ⊤).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Aff {
    /// The empty subspace.
    Bot,
    /// Reduced row-echelon rows, pivot columns strictly increasing.
    Rows(Vec<AffineRow>),
}

/// Gaussian reduction of a system; `None` means inconsistent.
fn reduce(mut rows: Vec<AffineRow>, n: usize) -> Option<Vec<AffineRow>> {
    let mut out: Vec<AffineRow> = Vec::new();
    for col in 0..n {
        // Find a row with a nonzero entry at `col`.
        let Some(pos) = rows.iter().position(|r| !r.coeffs[col].is_zero()) else {
            continue;
        };
        let mut pivot = rows.swap_remove(pos);
        // Scale pivot to 1.
        let p = pivot.coeffs[col];
        for c in &mut pivot.coeffs {
            *c = c.div(p);
        }
        pivot.rhs = pivot.rhs.div(p);
        // Eliminate from the remaining and the already-output rows.
        for r in rows.iter_mut().chain(out.iter_mut()) {
            let f = r.coeffs[col];
            if !f.is_zero() {
                for (rc, pc) in r.coeffs.iter_mut().zip(&pivot.coeffs) {
                    *rc = rc.sub(f.mul(*pc));
                }
                r.rhs = r.rhs.sub(f.mul(pivot.rhs));
            }
        }
        out.push(pivot);
    }
    // Any residual row is all-zero coefficients: check consistency.
    for r in &rows {
        if r.is_inconsistent() {
            return None;
        }
    }
    out.retain(|r| !r.is_trivial());
    // Sort by pivot column for canonical form.
    out.sort_by_key(|r| {
        r.coeffs
            .iter()
            .position(|c| !c.is_zero())
            .unwrap_or(usize::MAX)
    });
    Some(out)
}

/// Generator form: a support point plus direction-space basis.
struct Generators {
    point: Vec<Ratio>,
    directions: Vec<Vec<Ratio>>,
}

/// Karr's affine-equalities domain over a universe's variables.
///
/// # Example
///
/// ```
/// use air_domains::affine::AffineDomain;
/// use air_domains::Abstraction;
/// use air_lang::Universe;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let u = Universe::new(&[("x", -6, 6), ("y", -6, 6)])?;
/// let dom = AffineDomain::new(&u);
/// // α of diagonal points keeps the equality y = x exactly.
/// let diag = u.filter(|s| s[0] == s[1]);
/// let a = dom.alpha_set(&u, &diag);
/// assert!(dom.gamma_contains(&a, &[4, 4]));
/// assert!(!dom.gamma_contains(&a, &[4, 3]));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct AffineDomain {
    vars: Vec<String>,
}

impl AffineDomain {
    /// Creates the domain over the universe's variables.
    pub fn new(universe: &Universe) -> Self {
        AffineDomain {
            vars: universe.var_names().map(str::to_owned).collect(),
        }
    }

    fn n(&self) -> usize {
        self.vars.len()
    }

    fn var_index(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == name)
    }

    /// Linearizes an expression into `coeffs·x + constant` when affine.
    fn linearize(&self, a: &AExp) -> Option<(Vec<Ratio>, Ratio)> {
        match a {
            AExp::Num(v) => Some((vec![Ratio::ZERO; self.n()], Ratio::int(*v))),
            AExp::Var(x) => {
                let i = self.var_index(x)?;
                let mut c = vec![Ratio::ZERO; self.n()];
                c[i] = Ratio::ONE;
                Some((c, Ratio::ZERO))
            }
            AExp::Add(l, r) => {
                let (lc, lk) = self.linearize(l)?;
                let (rc, rk) = self.linearize(r)?;
                Some((
                    lc.iter().zip(&rc).map(|(a, b)| a.add(*b)).collect(),
                    lk.add(rk),
                ))
            }
            AExp::Sub(l, r) => {
                let (lc, lk) = self.linearize(l)?;
                let (rc, rk) = self.linearize(r)?;
                Some((
                    lc.iter().zip(&rc).map(|(a, b)| a.sub(*b)).collect(),
                    lk.sub(rk),
                ))
            }
            AExp::Mul(l, r) => {
                let (lc, lk) = self.linearize(l)?;
                let (rc, rk) = self.linearize(r)?;
                if lc.iter().all(|c| c.is_zero()) {
                    Some((rc.iter().map(|c| c.mul(lk)).collect(), rk.mul(lk)))
                } else if rc.iter().all(|c| c.is_zero()) {
                    Some((lc.iter().map(|c| c.mul(rk)).collect(), lk.mul(rk)))
                } else {
                    None
                }
            }
        }
    }

    /// Converts a reduced constraint system to generator form; `None` for
    /// callers that passed `Bot` (never happens internally).
    fn to_generators(&self, rows: &[AffineRow]) -> Generators {
        let n = self.n();
        // Reduced rows always have a pivot; a trivial (all-zero) row would
        // constrain nothing, so skipping one is sound rather than a panic.
        let pivot_rows: Vec<(&AffineRow, usize)> = rows
            .iter()
            .filter_map(|r| r.coeffs.iter().position(|c| !c.is_zero()).map(|p| (r, p)))
            .collect();
        let free: Vec<usize> = (0..n)
            .filter(|i| !pivot_rows.iter().any(|&(_, p)| p == *i))
            .collect();
        // Support point: free vars = 0, pivots = rhs.
        let mut point = vec![Ratio::ZERO; n];
        for &(r, p) in &pivot_rows {
            point[p] = r.rhs;
        }
        // Directions: one per free var f — set x_f = 1, pivots adjust.
        let mut directions = Vec::with_capacity(free.len());
        for &f in &free {
            let mut d = vec![Ratio::ZERO; n];
            d[f] = Ratio::ONE;
            for &(r, p) in &pivot_rows {
                d[p] = Ratio::ZERO.sub(r.coeffs[f]);
            }
            directions.push(d);
        }
        Generators { point, directions }
    }

    /// Converts generator form back to a reduced constraint system by
    /// finding the null space of the direction matrix.
    fn constraints_of(&self, g: &Generators) -> Vec<AffineRow> {
        let n = self.n();
        // Solve for row vectors a with a·d = 0 for all directions d; then
        // rhs = a·point. Build the direction matrix and compute its null
        // space by Gaussian elimination on the transpose system.
        // Represent candidate `a` via elimination: treat each direction as
        // a linear constraint on (a_0..a_{n-1}).
        let mut sys: Vec<Vec<Ratio>> = g.directions.to_vec();
        // Reduce `sys` (rows are constraints over a-space).
        let mut pivots: Vec<(usize, usize)> = Vec::new(); // (row, col)
        let mut row = 0;
        for col in 0..n {
            let Some(pr) = (row..sys.len()).find(|&r| !sys[r][col].is_zero()) else {
                continue;
            };
            sys.swap(row, pr);
            let p = sys[row][col];
            for c in sys[row].iter_mut() {
                *c = c.div(p);
            }
            for r2 in 0..sys.len() {
                if r2 != row && !sys[r2][col].is_zero() {
                    let f = sys[r2][col];
                    let pivot_row = sys[row].clone();
                    for (rc, pc) in sys[r2].iter_mut().zip(&pivot_row) {
                        *rc = rc.sub(f.mul(*pc));
                    }
                }
            }
            pivots.push((row, col));
            row += 1;
            if row == sys.len() {
                break;
            }
        }
        let pivot_cols: Vec<usize> = pivots.iter().map(|&(_, c)| c).collect();
        let free_cols: Vec<usize> = (0..n).filter(|c| !pivot_cols.contains(c)).collect();
        // Null-space basis: one vector per free column.
        let mut rows_out = Vec::new();
        for &f in &free_cols {
            let mut a = vec![Ratio::ZERO; n];
            a[f] = Ratio::ONE;
            for &(r, c) in &pivots {
                a[c] = Ratio::ZERO.sub(sys[r][f]);
            }
            let rhs = a
                .iter()
                .zip(&g.point)
                .fold(Ratio::ZERO, |acc, (ai, pi)| acc.add(ai.mul(*pi)));
            rows_out.push(AffineRow { coeffs: a, rhs });
        }
        // The null-space system is homogeneous in `a`, so it is always
        // consistent; degrade to "no constraints" (⊤) instead of panicking.
        reduce(rows_out, n).unwrap_or_default()
    }
}

impl Abstraction for AffineDomain {
    type Elem = Aff;

    fn name(&self) -> &str {
        "Karr"
    }

    fn top(&self) -> Aff {
        Aff::Rows(Vec::new())
    }

    fn bottom(&self) -> Aff {
        Aff::Bot
    }

    fn is_bottom(&self, e: &Aff) -> bool {
        matches!(e, Aff::Bot)
    }

    fn leq(&self, a: &Aff, b: &Aff) -> bool {
        match (a, b) {
            (Aff::Bot, _) => true,
            (_, Aff::Bot) => false,
            (Aff::Rows(ra), Aff::Rows(rb)) => {
                // a ≤ b iff adding b's constraints to a changes nothing.
                let mut all = ra.clone();
                all.extend(rb.iter().cloned());
                match reduce(all, self.n()) {
                    Some(rows) => rows == *ra,
                    None => false,
                }
            }
        }
    }

    fn join(&self, a: &Aff, b: &Aff) -> Aff {
        match (a, b) {
            (Aff::Bot, x) | (x, Aff::Bot) => x.clone(),
            (Aff::Rows(ra), Aff::Rows(rb)) => {
                let ga = self.to_generators(ra);
                let gb = self.to_generators(rb);
                let mut directions = ga.directions;
                directions.extend(gb.directions);
                let diff: Vec<Ratio> = gb
                    .point
                    .iter()
                    .zip(&ga.point)
                    .map(|(x, y)| x.sub(*y))
                    .collect();
                if diff.iter().any(|c| !c.is_zero()) {
                    directions.push(diff);
                }
                Aff::Rows(self.constraints_of(&Generators {
                    point: ga.point,
                    directions,
                }))
            }
        }
    }

    fn meet(&self, a: &Aff, b: &Aff) -> Aff {
        match (a, b) {
            (Aff::Bot, _) | (_, Aff::Bot) => Aff::Bot,
            (Aff::Rows(ra), Aff::Rows(rb)) => {
                let mut all = ra.clone();
                all.extend(rb.iter().cloned());
                match reduce(all, self.n()) {
                    Some(rows) => Aff::Rows(rows),
                    None => Aff::Bot,
                }
            }
        }
    }

    fn alpha_store(&self, store: &[i64]) -> Aff {
        let n = self.n();
        let rows = (0..n)
            .map(|i| {
                let mut coeffs = vec![Ratio::ZERO; n];
                coeffs[i] = Ratio::ONE;
                AffineRow {
                    coeffs,
                    rhs: Ratio::int(store[i]),
                }
            })
            .collect();
        Aff::Rows(rows)
    }

    fn gamma_contains(&self, e: &Aff, store: &[i64]) -> bool {
        match e {
            Aff::Bot => false,
            Aff::Rows(rows) => rows.iter().all(|r| {
                let lhs = r
                    .coeffs
                    .iter()
                    .zip(store)
                    .fold(Ratio::ZERO, |acc, (c, &v)| acc.add(c.mul(Ratio::int(v))));
                lhs == r.rhs
            }),
        }
    }
}

impl Transfer for AffineDomain {
    fn assign(&self, e: &Aff, var: &str, a: &AExp) -> Aff {
        let Aff::Rows(rows) = e else {
            return Aff::Bot;
        };
        let Some(xi) = self.var_index(var) else {
            return e.clone();
        };
        let n = self.n();
        match self.linearize(a) {
            Some((coeffs, k)) => {
                // Exact Karr assignment via a fresh-variable encoding:
                // introduce x' with x' = coeffs·x + k, project out x,
                // rename x' to x. Implemented by extending to n+1 dims.
                let mut ext: Vec<AffineRow> = rows
                    .iter()
                    .map(|r| {
                        let mut c = r.coeffs.clone();
                        c.push(Ratio::ZERO);
                        AffineRow {
                            coeffs: c,
                            rhs: r.rhs,
                        }
                    })
                    .collect();
                let mut c = coeffs;
                c.push(Ratio::int(-1)); // coeffs·x − x' = −k
                ext.push(AffineRow {
                    coeffs: c,
                    rhs: Ratio::ZERO.sub(k),
                });
                // Project out dimension xi: eliminate it, then drop the
                // column and move x' (last column) into position xi.
                let Some(reduced) = reduce(ext, n + 1) else {
                    return Aff::Bot;
                };
                // Rows whose pivot is xi are dropped (they only constrain
                // the old value); others have zero in column xi after
                // eliminating with such a row — reduce already did that
                // when xi had a pivot row; rows still mentioning xi with
                // no pivot row for xi must be dropped... after full
                // reduction at most one row has pivot xi; all other rows
                // have zero at xi.
                let mut out = Vec::new();
                for r in reduced {
                    // A trivial row constrains nothing; drop it (sound).
                    let Some(pivot) = r.coeffs.iter().position(|c| !c.is_zero()) else {
                        continue;
                    };
                    if pivot == xi {
                        continue; // constrains the projected-out old x
                    }
                    if !r.coeffs[xi].is_zero() {
                        // xi appears but is not the pivot: cannot happen
                        // in reduced echelon form when a pivot row for xi
                        // exists; if none exists, drop the row (sound).
                        continue;
                    }
                    let mut c = r.coeffs;
                    let Some(xprime) = c.pop() else {
                        continue; // extended column is always present
                    };
                    c[xi] = xprime;
                    out.push(AffineRow {
                        coeffs: c,
                        rhs: r.rhs,
                    });
                }
                match reduce(out, n) {
                    Some(rows) => Aff::Rows(rows),
                    None => Aff::Bot,
                }
            }
            None => {
                // Non-affine: forget x (project it out).
                let Some(reduced) = reduce(rows.clone(), n) else {
                    return Aff::Bot;
                };
                let out: Vec<AffineRow> = reduced
                    .into_iter()
                    .filter(|r| r.coeffs[xi].is_zero())
                    .collect();
                Aff::Rows(out)
            }
        }
    }

    fn havoc(&self, e: &Aff, var: &str) -> Aff {
        let Aff::Rows(rows) = e else {
            return Aff::Bot;
        };
        let Some(xi) = self.var_index(var) else {
            return e.clone();
        };
        // Project out xi: in reduced echelon form, dropping every row that
        // mentions xi is the exact projection.
        let Some(reduced) = reduce(rows.clone(), self.n()) else {
            return Aff::Bot;
        };
        Aff::Rows(
            reduced
                .into_iter()
                .filter(|r| r.coeffs[xi].is_zero())
                .collect(),
        )
    }

    fn assume(&self, e: &Aff, b: &BExp) -> Aff {
        let Aff::Rows(_) = e else {
            return Aff::Bot;
        };
        match b {
            BExp::Tt => e.clone(),
            BExp::Ff => Aff::Bot,
            BExp::And(l, r) => self.assume(&self.assume(e, l), r),
            BExp::Not(inner) => match &**inner {
                // ¬(a ≠ b) is an equality.
                BExp::Cmp(CmpOp::Ne, l, r) => {
                    self.assume(e, &BExp::Cmp(CmpOp::Eq, l.clone(), r.clone()))
                }
                _ => e.clone(),
            },
            BExp::Cmp(CmpOp::Eq, l, r) => {
                let (Some((lc, lk)), Some((rc, rk))) = (self.linearize(l), self.linearize(r))
                else {
                    return e.clone();
                };
                let coeffs: Vec<Ratio> = lc.iter().zip(&rc).map(|(a, b)| a.sub(*b)).collect();
                let rhs = rk.sub(lk);
                let Aff::Rows(rows) = e else {
                    return Aff::Bot;
                };
                let mut all = rows.clone();
                all.push(AffineRow { coeffs, rhs });
                match reduce(all, self.n()) {
                    Some(rows) => Aff::Rows(rows),
                    None => Aff::Bot,
                }
            }
            // Inequalities and disjunctions carry no affine-equality
            // information: identity is sound.
            _ => e.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::laws;
    use air_lang::{parse_bexp, parse_program, Concrete};

    fn universe() -> Universe {
        Universe::new(&[("x", -6, 6), ("y", -6, 6)]).unwrap()
    }

    fn sets(u: &Universe) -> Vec<air_lang::StateSet> {
        vec![
            u.empty(),
            u.full(),
            u.filter(|s| s[0] == s[1]),
            u.filter(|s| s[0] + s[1] == 3),
            u.filter(|s| s[0] == 2 && s[1] == -1),
            u.filter(|s| s[0] == 2),
            u.filter(|s| s[0] == s[1] || s[0] == s[1] + 1),
        ]
    }

    #[test]
    fn rational_arithmetic() {
        let half = Ratio::normalize(1, 2);
        assert_eq!(half.add(half), Ratio::ONE);
        assert_eq!(Ratio::int(3).div(Ratio::int(6)), half);
        assert_eq!(Ratio::normalize(-2, -4), half);
        assert_eq!(Ratio::normalize(2, -4), Ratio::ZERO.sub(half));
        assert_eq!(Ratio::int(5).as_int(), Some(5));
        assert_eq!(half.as_int(), None);
        assert_eq!(half.to_string(), "1/2");
    }

    #[test]
    fn closure_and_insertion_laws() {
        let u = universe();
        let dom = AffineDomain::new(&u);
        laws::check_closure_laws(&dom, &u, &sets(&u)).unwrap();
        laws::check_insertion(&dom, &u, &sets(&u)).unwrap();
    }

    #[test]
    fn alpha_of_line_is_exact() {
        let u = universe();
        let dom = AffineDomain::new(&u);
        let diag = u.filter(|s| s[0] == s[1]);
        let a = dom.alpha_set(&u, &diag);
        assert_eq!(dom.gamma_set(&u, &a), diag);
        let shifted = u.filter(|s| s[1] == s[0] + 2);
        let b = dom.alpha_set(&u, &shifted);
        assert_eq!(dom.gamma_set(&u, &b), shifted);
    }

    #[test]
    fn join_is_affine_hull() {
        let u = universe();
        let dom = AffineDomain::new(&u);
        // Two points span a line.
        let p1 = dom.alpha_store(&[0, 0]);
        let p2 = dom.alpha_store(&[2, 2]);
        let line = dom.join(&p1, &p2);
        assert!(dom.gamma_contains(&line, &[5, 5]));
        assert!(!dom.gamma_contains(&line, &[1, 2]));
        // Two parallel lines span the plane.
        let l1 = dom.alpha_set(&u, &u.filter(|s| s[0] == s[1]));
        let l2 = dom.alpha_set(&u, &u.filter(|s| s[0] == s[1] + 1));
        assert_eq!(dom.join(&l1, &l2), dom.top());
    }

    #[test]
    fn meet_intersects_subspaces() {
        let u = universe();
        let dom = AffineDomain::new(&u);
        let diag = dom.alpha_set(&u, &u.filter(|s| s[0] == s[1]));
        let anti = dom.alpha_set(&u, &u.filter(|s| s[0] + s[1] == 4));
        let m = dom.meet(&diag, &anti);
        assert_eq!(dom.gamma_set(&u, &m), u.filter(|s| s[0] == 2 && s[1] == 2));
        // Parallel disjoint lines meet at ⊥.
        let shifted = dom.alpha_set(&u, &u.filter(|s| s[0] == s[1] + 1));
        assert!(dom.is_bottom(&dom.meet(&diag, &shifted)));
    }

    #[test]
    fn leq_is_subspace_inclusion() {
        let u = universe();
        let dom = AffineDomain::new(&u);
        let point = dom.alpha_store(&[1, 1]);
        let diag = dom.alpha_set(&u, &u.filter(|s| s[0] == s[1]));
        assert!(dom.leq(&point, &diag));
        assert!(!dom.leq(&diag, &point));
        assert!(dom.leq(&diag, &dom.top()));
        assert!(dom.leq(&dom.bottom(), &point));
    }

    #[test]
    fn affine_assignments_are_exact() {
        let u = universe();
        let dom = AffineDomain::new(&u);
        let diag = dom.alpha_set(&u, &u.filter(|s| s[0] == s[1]));
        // y := y + 1 turns y = x into y = x + 1.
        let e = dom.assign(&diag, "y", &AExp::var("y").add(AExp::Num(1)));
        assert!(dom.gamma_contains(&e, &[2, 3]));
        assert!(!dom.gamma_contains(&e, &[2, 2]));
        // x := x - y zeroes x on the diagonal... x' = x − y = 0 with the
        // *old* y = old x: new state (0, y).
        let e2 = dom.assign(&diag, "x", &AExp::var("x").sub(AExp::var("y")));
        assert!(dom.gamma_contains(&e2, &[0, 5]));
        assert!(!dom.gamma_contains(&e2, &[1, 5]));
        // Self-referential swap-style chain keeps exactness:
        // from y = x: x := 2*x; now x = 2y.
        let e3 = dom.assign(&diag, "x", &AExp::Num(2).mul(AExp::var("x")));
        assert!(dom.gamma_contains(&e3, &[4, 2]));
        assert!(!dom.gamma_contains(&e3, &[4, 4]));
    }

    #[test]
    fn nonaffine_assignment_forgets() {
        let u = universe();
        let dom = AffineDomain::new(&u);
        let diag = dom.alpha_set(&u, &u.filter(|s| s[0] == s[1]));
        let e = dom.assign(&diag, "y", &AExp::var("x").mul(AExp::var("x")));
        // y unconstrained, x unconstrained too (the x = y row is dropped
        // because it mentioned y).
        assert_eq!(e, dom.top());
    }

    #[test]
    fn equality_guards_refine() {
        let u = universe();
        let dom = AffineDomain::new(&u);
        let e = dom.assume(&dom.top(), &parse_bexp("x = y + 1").unwrap());
        assert!(dom.gamma_contains(&e, &[3, 2]));
        assert!(!dom.gamma_contains(&e, &[3, 3]));
        // Contradiction detected.
        let bot = dom.assume(&e, &parse_bexp("x = y").unwrap());
        assert!(dom.is_bottom(&bot));
        // Double negation of ≠ is =.
        let e2 = dom.assume(&dom.top(), &parse_bexp("!(x != y)").unwrap());
        assert!(dom.gamma_contains(&e2, &[2, 2]));
        assert!(!dom.gamma_contains(&e2, &[2, 1]));
    }

    #[test]
    fn transfer_soundness_against_concrete() {
        let u = universe();
        let dom = AffineDomain::new(&u);
        let sem = Concrete::new(&u);
        let b = parse_bexp("x = y && x >= 0").unwrap();
        laws::check_transfer_sound(
            &dom,
            &u,
            &sets(&u),
            |s| sem.exec_exp(&air_lang::ast::Exp::Assume(b.clone()), s).ok(),
            |e| dom.assume(e, &b),
        )
        .unwrap();
        let a = AExp::var("x").add(AExp::var("y")).sub(AExp::Num(1));
        laws::check_transfer_sound(
            &dom,
            &u,
            &sets(&u),
            |s| {
                sem.exec_exp(&air_lang::ast::Exp::assign("y", a.clone()), s)
                    .ok()
            },
            |e| dom.assign(e, "y", &a),
        )
        .unwrap();
    }

    #[test]
    fn countdown_invariant_is_native() {
        // The Example 7.8 loop preserves y − x; Karr's analyzer keeps it.
        let u = Universe::new(&[("x", -2, 6), ("y", -8, 6)]).unwrap();
        let dom = AffineDomain::new(&u);
        let prog = parse_program("x := x - 1; y := y - 1").unwrap();
        let start = dom.assume(&dom.top(), &parse_bexp("x = y").unwrap());
        let out = crate::analyzer::Analyzer::new(&dom)
            .exec(&prog, &start)
            .unwrap();
        assert!(dom.gamma_contains(&out, &[2, 2]));
        assert!(!dom.gamma_contains(&out, &[2, 3]));
    }
}
