//! Bounded disjunctive completion.
//!
//! The disjunctive completion of a base domain tracks finite *sets* of
//! base elements (disjuncts), recovering precision that convex domains
//! lose at joins — e.g. the paper's `V̄` element `(i ∈ [1,5]) ∨ (i = 6 ∧
//! j ≤ 15)` lives in the disjunctive completion of intervals. To stay
//! finite-height the width is bounded: joins that would exceed the bound
//! collapse the two closest disjuncts (by joined-γ growth on a sample, or
//! simply the base join of the first pair).

use air_lang::ast::{AExp, BExp};

use crate::traits::{Abstraction, Transfer};

/// The bounded disjunctive completion `℘≤k(A)` of a base domain.
///
/// # Example
///
/// ```
/// use air_domains::disjunctive::Disjunctive;
/// use air_domains::{Abstraction, IntervalEnv};
/// use air_lang::Universe;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let u = Universe::new(&[("x", -8, 8)])?;
/// let dom = Disjunctive::new(IntervalEnv::new(&u), 4);
/// // {−3, 3} keeps the hole at 0 that plain intervals lose.
/// let a = dom.alpha_set(&u, &u.of_values([-3, 3]));
/// assert!(!dom.gamma_contains(&a, &[0]));
/// assert!(dom.gamma_contains(&a, &[3]));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Disjunctive<A> {
    base: A,
    width: usize,
    name: String,
}

impl<A: Abstraction> Disjunctive<A> {
    /// Wraps `base` with a maximum of `width` disjuncts.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(base: A, width: usize) -> Self {
        assert!(width > 0, "width must be positive");
        let name = format!("∨{}({})", width, base.name());
        Disjunctive { base, width, name }
    }

    /// The base domain.
    pub fn base(&self) -> &A {
        &self.base
    }

    /// The width bound.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Removes disjuncts subsumed by others and collapses down to the
    /// width bound.
    fn normalize(&self, mut ds: Vec<A::Elem>) -> Vec<A::Elem> {
        ds.retain(|d| !self.base.is_bottom(d));
        // Drop subsumed disjuncts.
        let mut kept: Vec<A::Elem> = Vec::with_capacity(ds.len());
        for d in ds {
            if kept.iter().any(|k| self.base.leq(&d, k)) {
                continue;
            }
            kept.retain(|k| !self.base.leq(k, &d));
            kept.push(d);
        }
        // Enforce the width bound by folding the tail into the last slot.
        while kept.len() > self.width {
            // len > width ≥ 1 guarantees both pops; break defensively
            // rather than panic if the invariant is ever violated.
            let (Some(last), Some(prev)) = (kept.pop(), kept.pop()) else {
                break;
            };
            let merged = self.base.join(&prev, &last);
            // Re-insert with subsumption (the merge may swallow others).
            kept.retain(|k| !self.base.leq(k, &merged));
            kept.push(merged);
        }
        kept
    }
}

impl<A: Abstraction> Abstraction for Disjunctive<A> {
    /// The disjuncts; empty means `⊥`.
    type Elem = Vec<A::Elem>;

    fn name(&self) -> &str {
        &self.name
    }

    fn top(&self) -> Self::Elem {
        vec![self.base.top()]
    }

    fn bottom(&self) -> Self::Elem {
        Vec::new()
    }

    fn is_bottom(&self, e: &Self::Elem) -> bool {
        e.is_empty()
    }

    /// Sufficient (not complete) inclusion: every disjunct of `a` is below
    /// some disjunct of `b`. A `false` answer may still denote inclusion
    /// of concretizations; this only costs extra fixpoint iterations.
    fn leq(&self, a: &Self::Elem, b: &Self::Elem) -> bool {
        a.iter().all(|da| b.iter().any(|db| self.base.leq(da, db)))
    }

    fn join(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        let mut ds = a.clone();
        ds.extend(b.iter().cloned());
        self.normalize(ds)
    }

    fn meet(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        let mut ds = Vec::new();
        for da in a {
            for db in b {
                ds.push(self.base.meet(da, db));
            }
        }
        self.normalize(ds)
    }

    fn widen(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        // Pair disjuncts of `b` with the first covering-or-joinable
        // disjunct of `a` and widen pointwise; leftovers join in. Collapse
        // to a single base widening when the structure keeps changing.
        if a.len() == b.len() {
            let widened: Vec<A::Elem> = a
                .iter()
                .zip(b)
                .map(|(x, y)| self.base.widen(x, &self.base.join(x, y)))
                .collect();
            return self.normalize(widened);
        }
        let fold = |ds: &Self::Elem| {
            ds.iter()
                .fold(self.base.bottom(), |acc, d| self.base.join(&acc, d))
        };
        vec![self.base.widen(&fold(a), &fold(b))]
    }

    fn alpha_store(&self, store: &[i64]) -> Self::Elem {
        vec![self.base.alpha_store(store)]
    }

    fn gamma_contains(&self, e: &Self::Elem, store: &[i64]) -> bool {
        e.iter().any(|d| self.base.gamma_contains(d, store))
    }
}

impl<A: Transfer> Transfer for Disjunctive<A> {
    fn assign(&self, e: &Self::Elem, var: &str, a: &AExp) -> Self::Elem {
        self.normalize(e.iter().map(|d| self.base.assign(d, var, a)).collect())
    }

    fn assume(&self, e: &Self::Elem, b: &BExp) -> Self::Elem {
        self.normalize(e.iter().map(|d| self.base.assume(d, b)).collect())
    }

    fn havoc(&self, e: &Self::Elem, var: &str) -> Self::Elem {
        self.normalize(e.iter().map(|d| self.base.havoc(d, var)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::IntervalEnv;
    use crate::traits::laws;
    use air_lang::{parse_bexp, Universe};

    fn universe() -> Universe {
        Universe::new(&[("x", -8, 8)]).unwrap()
    }

    fn sets(u: &Universe) -> Vec<air_lang::StateSet> {
        vec![
            u.empty(),
            u.full(),
            u.of_values([-3, 3]),
            u.of_values([1, 2, 7]),
            u.filter(|s| s[0] != 0),
            u.of_values([0]),
        ]
    }

    #[test]
    fn closure_laws_hold() {
        let u = universe();
        let dom = Disjunctive::new(IntervalEnv::new(&u), 8);
        laws::check_closure_laws(&dom, &u, &sets(&u)).unwrap();
        laws::check_insertion(&dom, &u, &sets(&u)).unwrap();
    }

    #[test]
    fn keeps_holes_that_intervals_lose() {
        let u = universe();
        let dom = Disjunctive::new(IntervalEnv::new(&u), 4);
        let a = dom.alpha_set(&u, &u.of_values([-3, 3]));
        assert_eq!(a.len(), 2);
        assert!(!dom.gamma_contains(&a, &[0]));
        // The plain interval hull would contain 0.
        let base = IntervalEnv::new(&u);
        let hull = base.alpha_set(&u, &u.of_values([-3, 3]));
        assert!(base.gamma_contains(&hull, &[0]));
    }

    #[test]
    fn width_bound_collapses() {
        let u = universe();
        let dom = Disjunctive::new(IntervalEnv::new(&u), 2);
        let a = dom.alpha_set(&u, &u.of_values([-6, -2, 2, 6]));
        assert!(a.len() <= 2);
        // Still sound: every value is covered.
        for v in [-6, -2, 2, 6] {
            assert!(dom.gamma_contains(&a, &[v]));
        }
    }

    #[test]
    fn subsumed_disjuncts_pruned() {
        let u = universe();
        let base = IntervalEnv::new(&u);
        let dom = Disjunctive::new(IntervalEnv::new(&u), 8);
        let wide = base.alpha_set(&u, &u.filter(|s| s[0] >= 0));
        let narrow = base.alpha_set(&u, &u.of_values([2, 3]));
        let joined = dom.join(&vec![wide.clone()], &vec![narrow]);
        assert_eq!(joined, vec![wide]);
    }

    #[test]
    fn transfer_functions_distribute() {
        let u = universe();
        let dom = Disjunctive::new(IntervalEnv::new(&u), 4);
        let a = dom.alpha_set(&u, &u.of_values([-3, 3]));
        let pos = dom.assume(&a, &parse_bexp("x > 0").unwrap());
        assert!(dom.gamma_contains(&pos, &[3]));
        assert!(!dom.gamma_contains(&pos, &[-3]));
        let shifted = dom.assign(&a, "x", &air_lang::ast::AExp::var("x").add(1.into()));
        assert!(dom.gamma_contains(&shifted, &[4]));
        assert!(dom.gamma_contains(&shifted, &[-2]));
        assert!(!dom.gamma_contains(&shifted, &[1]));
    }

    #[test]
    fn meet_distributes_over_disjuncts() {
        let u = universe();
        let base = IntervalEnv::new(&u);
        let dom = Disjunctive::new(IntervalEnv::new(&u), 4);
        // Two explicit disjuncts around the hole at 0 (alpha_set with a
        // small width bound may merge across the hole, which is sound but
        // not what this test exercises).
        let a = vec![
            base.alpha_set(&u, &u.filter(|s| s[0] < 0)),
            base.alpha_set(&u, &u.filter(|s| s[0] > 0)),
        ];
        let b = vec![base.alpha_set(&u, &u.filter(|s| s[0].abs() <= 2))];
        let m = dom.meet(&a, &b);
        assert!(dom.gamma_contains(&m, &[-1]));
        assert!(dom.gamma_contains(&m, &[2]));
        assert!(!dom.gamma_contains(&m, &[0]));
        assert!(!dom.gamma_contains(&m, &[3]));
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        let u = universe();
        Disjunctive::new(IntervalEnv::new(&u), 0);
    }
}
