//! Predicate abstraction domains (Example 7.9 of the paper).
//!
//! [`PredicateDomain`] is the *Cartesian* predicate abstraction: each
//! predicate is tracked independently with a three-valued status, so the
//! domain cannot represent correlations like `p ↔ q`. Its *reduced
//! disjunctive (Boolean) completion* [`BooleanPredicateDomain`] tracks the
//! set of satisfiable minterms and can.
//!
//! Both implement only [`Abstraction`]; symbolic transfer functions for
//! predicate abstraction require a decision procedure, which is out of
//! scope (the paper's Example 7.9 itself is driven by the enumerative
//! engine, which needs only `α`/`γ`).

use std::fmt;

use air_lang::ast::BExp;
use air_lang::{Concrete, Universe};

use crate::traits::Abstraction;

/// Three-valued status of one predicate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Tri {
    /// The predicate holds on every store.
    True,
    /// The predicate fails on every store.
    False,
    /// Unknown.
    Unknown,
}

impl Tri {
    fn join(self, other: Tri) -> Tri {
        if self == other {
            self
        } else {
            Tri::Unknown
        }
    }

    fn meet(self, other: Tri) -> Option<Tri> {
        match (self, other) {
            (Tri::Unknown, x) | (x, Tri::Unknown) => Some(x),
            (x, y) if x == y => Some(x),
            _ => None, // True ∧ False: empty
        }
    }

    fn leq(self, other: Tri) -> bool {
        self == other || other == Tri::Unknown
    }
}

/// An element of the Cartesian predicate domain.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PredElem {
    /// `⊥`.
    Bot,
    /// One status per predicate.
    Vals(Vec<Tri>),
}

impl fmt::Display for PredElem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredElem::Bot => write!(f, "⊥"),
            PredElem::Vals(vs) => {
                let parts: Vec<String> = vs
                    .iter()
                    .enumerate()
                    .filter_map(|(i, t)| match t {
                        Tri::True => Some(format!("p{i}")),
                        Tri::False => Some(format!("¬p{i}")),
                        Tri::Unknown => None,
                    })
                    .collect();
                if parts.is_empty() {
                    write!(f, "⊤")
                } else {
                    write!(f, "{}", parts.join(" ∧ "))
                }
            }
        }
    }
}

/// The Cartesian predicate abstraction over a fixed predicate list.
///
/// # Example
///
/// ```
/// use air_domains::{Abstraction, PredicateDomain};
/// use air_lang::{parse_bexp, Universe};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let u = Universe::new(&[("z", 0, 1), ("x", 0, 3), ("y", 0, 3)])?;
/// let dom = PredicateDomain::new(&u, vec![
///     ("p", parse_bexp("z = 0")?),
///     ("q", parse_bexp("x = y")?),
/// ]);
/// let s = u.filter(|st| st[0] == 0 && st[1] == st[2]);
/// let a = dom.alpha_set(&u, &s);
/// assert_eq!(a.to_string(), "p0 ∧ p1");
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct PredicateDomain {
    universe: Universe,
    names: Vec<String>,
    preds: Vec<BExp>,
}

impl PredicateDomain {
    /// Creates the domain from `(name, predicate)` pairs.
    pub fn new<S: Into<String>>(universe: &Universe, preds: Vec<(S, BExp)>) -> Self {
        let (names, preds) = preds.into_iter().map(|(n, p)| (n.into(), p)).unzip();
        PredicateDomain {
            universe: universe.clone(),
            names,
            preds,
        }
    }

    /// The predicate names.
    pub fn pred_names(&self) -> &[String] {
        &self.names
    }

    fn eval_pred(&self, i: usize, store: &[i64]) -> bool {
        Concrete::new(&self.universe)
            .eval_bexp(&self.preds[i], store)
            .unwrap_or(false)
    }

    /// Builds an element from explicit statuses.
    pub fn elem(&self, statuses: Vec<Tri>) -> PredElem {
        assert_eq!(statuses.len(), self.preds.len(), "status arity mismatch");
        PredElem::Vals(statuses)
    }
}

impl Abstraction for PredicateDomain {
    type Elem = PredElem;

    fn name(&self) -> &str {
        "Pred"
    }

    fn top(&self) -> PredElem {
        PredElem::Vals(vec![Tri::Unknown; self.preds.len()])
    }

    fn bottom(&self) -> PredElem {
        PredElem::Bot
    }

    fn is_bottom(&self, e: &PredElem) -> bool {
        matches!(e, PredElem::Bot)
    }

    fn leq(&self, a: &PredElem, b: &PredElem) -> bool {
        match (a, b) {
            (PredElem::Bot, _) => true,
            (_, PredElem::Bot) => false,
            (PredElem::Vals(xs), PredElem::Vals(ys)) => xs.iter().zip(ys).all(|(x, y)| x.leq(*y)),
        }
    }

    fn join(&self, a: &PredElem, b: &PredElem) -> PredElem {
        match (a, b) {
            (PredElem::Bot, x) | (x, PredElem::Bot) => x.clone(),
            (PredElem::Vals(xs), PredElem::Vals(ys)) => {
                PredElem::Vals(xs.iter().zip(ys).map(|(x, y)| x.join(*y)).collect())
            }
        }
    }

    fn meet(&self, a: &PredElem, b: &PredElem) -> PredElem {
        match (a, b) {
            (PredElem::Bot, _) | (_, PredElem::Bot) => PredElem::Bot,
            (PredElem::Vals(xs), PredElem::Vals(ys)) => {
                let mut out = Vec::with_capacity(xs.len());
                for (x, y) in xs.iter().zip(ys) {
                    match x.meet(*y) {
                        Some(t) => out.push(t),
                        None => return PredElem::Bot,
                    }
                }
                PredElem::Vals(out)
            }
        }
    }

    fn alpha_store(&self, store: &[i64]) -> PredElem {
        PredElem::Vals(
            (0..self.preds.len())
                .map(|i| {
                    if self.eval_pred(i, store) {
                        Tri::True
                    } else {
                        Tri::False
                    }
                })
                .collect(),
        )
    }

    fn gamma_contains(&self, e: &PredElem, store: &[i64]) -> bool {
        match e {
            PredElem::Bot => false,
            PredElem::Vals(vs) => vs.iter().enumerate().all(|(i, t)| match t {
                Tri::Unknown => true,
                Tri::True => self.eval_pred(i, store),
                Tri::False => !self.eval_pred(i, store),
            }),
        }
    }
}

/// The Boolean (reduced disjunctive) completion of a predicate set: the
/// powerset of minterms over `n ≤ 16` predicates, encoded as a bitmask of
/// satisfiable minterm indices.
///
/// This is the refinement `B` used (and found too concrete) in the paper's
/// Example 7.9.
#[derive(Clone, Debug)]
pub struct BooleanPredicateDomain {
    universe: Universe,
    preds: Vec<BExp>,
}

/// An element of the Boolean predicate domain: the set of allowed minterms.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MintermSet(pub u32);

impl BooleanPredicateDomain {
    /// Creates the domain from a predicate list.
    ///
    /// # Panics
    ///
    /// Panics if more than 5 predicates are supplied (minterm masks are
    /// `u32`).
    pub fn new(universe: &Universe, preds: Vec<BExp>) -> Self {
        assert!(preds.len() <= 5, "too many predicates for minterm masks");
        BooleanPredicateDomain {
            universe: universe.clone(),
            preds,
        }
    }

    fn minterm(&self, store: &[i64]) -> u32 {
        let sem = Concrete::new(&self.universe);
        let mut m = 0;
        for (i, p) in self.preds.iter().enumerate() {
            if sem.eval_bexp(p, store).unwrap_or(false) {
                m |= 1 << i;
            }
        }
        m
    }

    fn all_minterms(&self) -> u32 {
        (1u32 << (1 << self.preds.len())) - 1
    }
}

impl Abstraction for BooleanPredicateDomain {
    type Elem = MintermSet;

    fn name(&self) -> &str {
        "BoolPred"
    }

    fn top(&self) -> MintermSet {
        MintermSet(self.all_minterms())
    }

    fn bottom(&self) -> MintermSet {
        MintermSet(0)
    }

    fn is_bottom(&self, e: &MintermSet) -> bool {
        e.0 == 0
    }

    fn leq(&self, a: &MintermSet, b: &MintermSet) -> bool {
        a.0 & !b.0 == 0
    }

    fn join(&self, a: &MintermSet, b: &MintermSet) -> MintermSet {
        MintermSet(a.0 | b.0)
    }

    fn meet(&self, a: &MintermSet, b: &MintermSet) -> MintermSet {
        MintermSet(a.0 & b.0)
    }

    fn alpha_store(&self, store: &[i64]) -> MintermSet {
        MintermSet(1 << self.minterm(store))
    }

    fn gamma_contains(&self, e: &MintermSet, store: &[i64]) -> bool {
        e.0 & (1 << self.minterm(store)) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::laws;
    use air_lang::parse_bexp;

    fn setup() -> (Universe, PredicateDomain) {
        let u = Universe::new(&[("z", 0, 1), ("x", 0, 2), ("y", 0, 2)]).unwrap();
        let dom = PredicateDomain::new(
            &u,
            vec![
                ("p", parse_bexp("z = 0").unwrap()),
                ("q", parse_bexp("x = y").unwrap()),
            ],
        );
        (u, dom)
    }

    fn some_sets(u: &Universe) -> Vec<air_lang::StateSet> {
        vec![
            u.empty(),
            u.full(),
            u.filter(|s| s[0] == 0),
            u.filter(|s| s[1] == s[2]),
            u.filter(|s| s[0] == 0 && s[1] == s[2]),
            u.filter(|s| (s[0] == 0) == (s[1] == s[2])), // p ↔ q
        ]
    }

    #[test]
    fn cartesian_laws() {
        let (u, dom) = setup();
        laws::check_closure_laws(&dom, &u, &some_sets(&u)).unwrap();
        laws::check_insertion(&dom, &u, &some_sets(&u)).unwrap();
    }

    #[test]
    fn boolean_laws() {
        let (u, _) = setup();
        let dom = BooleanPredicateDomain::new(
            &u,
            vec![parse_bexp("z = 0").unwrap(), parse_bexp("x = y").unwrap()],
        );
        laws::check_closure_laws(&dom, &u, &some_sets(&u)).unwrap();
        laws::check_insertion(&dom, &u, &some_sets(&u)).unwrap();
    }

    #[test]
    fn cartesian_cannot_express_iff_but_boolean_can() {
        let (u, cart) = setup();
        let bool_dom = BooleanPredicateDomain::new(
            &u,
            vec![parse_bexp("z = 0").unwrap(), parse_bexp("x = y").unwrap()],
        );
        let iff = u.filter(|s| (s[0] == 0) == (s[1] == s[2]));
        // Cartesian: closure blows up to ⊤.
        let cart_closure = cart.closure_set(&u, &iff);
        assert_eq!(cart_closure, u.full());
        // Boolean completion is exact on p ↔ q.
        let bool_closure = bool_dom.closure_set(&u, &iff);
        assert_eq!(bool_closure, iff);
    }

    #[test]
    fn alpha_classifies_minterms() {
        let (_, dom) = setup();
        assert_eq!(dom.alpha_store(&[0, 1, 1]).to_string(), "p0 ∧ p1");
        assert_eq!(dom.alpha_store(&[1, 0, 2]).to_string(), "¬p0 ∧ ¬p1");
    }

    #[test]
    fn join_loses_correlation() {
        let (_, dom) = setup();
        let a = dom.alpha_store(&[0, 1, 1]); // p ∧ q
        let b = dom.alpha_store(&[1, 0, 2]); // ¬p ∧ ¬q
        let j = dom.join(&a, &b);
        assert_eq!(j, dom.top());
    }

    #[test]
    fn meet_detects_contradiction() {
        let (_, dom) = setup();
        let a = dom.elem(vec![Tri::True, Tri::Unknown]);
        let b = dom.elem(vec![Tri::False, Tri::Unknown]);
        assert_eq!(dom.meet(&a, &b), PredElem::Bot);
        let c = dom.meet(&a, &dom.elem(vec![Tri::Unknown, Tri::False]));
        assert_eq!(c, dom.elem(vec![Tri::True, Tri::False]));
    }

    #[test]
    fn display_forms() {
        let (_, dom) = setup();
        assert_eq!(dom.top().to_string(), "⊤");
        assert_eq!(dom.bottom().to_string(), "⊥");
        assert_eq!(
            dom.elem(vec![Tri::True, Tri::False]).to_string(),
            "p0 ∧ ¬p1"
        );
    }
}
