//! Reduced products of abstract domains.
//!
//! The (direct) product of two abstractions tracks both components; the
//! *reduced* product additionally propagates information between them
//! (Granger's mutual reduction), e.g. `Int × Parity` tightens interval
//! endpoints to the parity and collapses singleton intervals into constant
//! parities. Reduction is what makes the induced closure `γ∘α` idempotent
//! on the product, so reduced products can serve as base domains of the
//! enumerative repair engine.

use air_lang::ast::{AExp, BExp};

use crate::env::{EnvDomain, EnvElem};
use crate::interval::Interval;
use crate::traits::{Abstraction, Transfer};
use crate::value::AbstractValue;

/// A mutual-reduction operator between two domains' elements.
pub trait Reduce<A: Abstraction, B: Abstraction> {
    /// Refines the pair without changing `γ(a) ∩ γ(b)`.
    fn reduce(&self, da: &A, db: &B, a: A::Elem, b: B::Elem) -> (A::Elem, B::Elem);
}

/// The trivial reduction (direct product).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoReduce;

impl<A: Abstraction, B: Abstraction> Reduce<A, B> for NoReduce {
    fn reduce(&self, _da: &A, _db: &B, a: A::Elem, b: B::Elem) -> (A::Elem, B::Elem) {
        (a, b)
    }
}

/// The product domain `A × B` with a pluggable reduction.
///
/// # Example
///
/// ```
/// use air_domains::product::{IntervalValueReduce, Product};
/// use air_domains::{Abstraction, IntervalEnv, ParityEnv};
/// use air_lang::Universe;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let u = Universe::new(&[("x", -8, 8)])?;
/// let dom = Product::reduced_interval(IntervalEnv::new(&u), ParityEnv::new(&u));
/// // α({1, 5}) = ([1,5], odd): the reduced product keeps the parity and
/// // excludes the even values the plain interval would admit.
/// let a = dom.alpha_set(&u, &u.of_values([1, 5]));
/// assert!(dom.gamma_contains(&a, &[3]));
/// assert!(!dom.gamma_contains(&a, &[4]));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Product<A, B, R = NoReduce> {
    left: A,
    right: B,
    reduce: R,
    name: String,
}

impl<A: Abstraction, B: Abstraction> Product<A, B, NoReduce> {
    /// The direct product (no reduction).
    pub fn direct(left: A, right: B) -> Self {
        let name = format!("{}×{}", left.name(), right.name());
        Product {
            left,
            right,
            reduce: NoReduce,
            name,
        }
    }
}

impl<V: AbstractValue> Product<EnvDomain<Interval>, EnvDomain<V>, IntervalValueReduce> {
    /// The reduced product of intervals with any value domain, using
    /// endpoint tightening (Granger-style).
    pub fn reduced_interval(left: EnvDomain<Interval>, right: EnvDomain<V>) -> Self {
        let name = format!("{}⊗{}", left.name(), right.name());
        Product {
            left,
            right,
            reduce: IntervalValueReduce,
            name,
        }
    }
}

impl<A, B, R> Product<A, B, R>
where
    A: Abstraction,
    B: Abstraction,
    R: Reduce<A, B>,
{
    /// Applies the reduction and normalizes bottoms.
    fn normalize(&self, a: A::Elem, b: B::Elem) -> (A::Elem, B::Elem) {
        if self.left.is_bottom(&a) || self.right.is_bottom(&b) {
            return (self.left.bottom(), self.right.bottom());
        }
        let (a, b) = self.reduce.reduce(&self.left, &self.right, a, b);
        if self.left.is_bottom(&a) || self.right.is_bottom(&b) {
            (self.left.bottom(), self.right.bottom())
        } else {
            (a, b)
        }
    }

    /// The left component domain.
    pub fn left(&self) -> &A {
        &self.left
    }

    /// The right component domain.
    pub fn right(&self) -> &B {
        &self.right
    }
}

impl<A, B, R> Abstraction for Product<A, B, R>
where
    A: Abstraction,
    B: Abstraction,
    R: Reduce<A, B>,
{
    type Elem = (A::Elem, B::Elem);

    fn name(&self) -> &str {
        &self.name
    }

    fn top(&self) -> Self::Elem {
        (self.left.top(), self.right.top())
    }

    fn bottom(&self) -> Self::Elem {
        (self.left.bottom(), self.right.bottom())
    }

    fn is_bottom(&self, e: &Self::Elem) -> bool {
        self.left.is_bottom(&e.0) || self.right.is_bottom(&e.1)
    }

    fn leq(&self, a: &Self::Elem, b: &Self::Elem) -> bool {
        if self.is_bottom(a) {
            return true;
        }
        self.left.leq(&a.0, &b.0) && self.right.leq(&a.1, &b.1)
    }

    fn join(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        if self.is_bottom(a) {
            return b.clone();
        }
        if self.is_bottom(b) {
            return a.clone();
        }
        self.normalize(self.left.join(&a.0, &b.0), self.right.join(&a.1, &b.1))
    }

    fn meet(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        self.normalize(self.left.meet(&a.0, &b.0), self.right.meet(&a.1, &b.1))
    }

    fn widen(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        // No reduction after widening (it could undo the extrapolation).
        (self.left.widen(&a.0, &b.0), self.right.widen(&a.1, &b.1))
    }

    fn alpha_store(&self, store: &[i64]) -> Self::Elem {
        self.normalize(self.left.alpha_store(store), self.right.alpha_store(store))
    }

    fn gamma_contains(&self, e: &Self::Elem, store: &[i64]) -> bool {
        self.left.gamma_contains(&e.0, store) && self.right.gamma_contains(&e.1, store)
    }
}

impl<A, B, R> Transfer for Product<A, B, R>
where
    A: Transfer,
    B: Transfer,
    R: Reduce<A, B>,
{
    fn assign(&self, e: &Self::Elem, var: &str, a: &AExp) -> Self::Elem {
        self.normalize(
            self.left.assign(&e.0, var, a),
            self.right.assign(&e.1, var, a),
        )
    }

    fn assume(&self, e: &Self::Elem, b: &BExp) -> Self::Elem {
        self.normalize(self.left.assume(&e.0, b), self.right.assume(&e.1, b))
    }

    fn havoc(&self, e: &Self::Elem, var: &str) -> Self::Elem {
        self.normalize(self.left.havoc(&e.0, var), self.right.havoc(&e.1, var))
    }
}

/// Granger reduction between per-variable intervals and any value domain:
/// interval endpoints are tightened until they belong to the companion
/// value, and singleton intervals constrain the companion to a constant.
#[derive(Clone, Copy, Debug, Default)]
pub struct IntervalValueReduce;

/// How far an endpoint is scanned during tightening; beyond this the
/// (sound) untightened bound is kept.
const TIGHTEN_FUEL: i64 = 256;

fn reduce_value<V: AbstractValue>(iv: Interval, v: V) -> (Interval, V) {
    if iv.is_bottom() || v.is_bottom() {
        return (Interval::bottom(), V::bottom());
    }
    let mut iv = iv;
    // Tighten finite endpoints into γ(v).
    loop {
        match iv {
            Interval::Range(crate::interval::IntervalBound::Fin(lo), hi) if !v.contains(lo) => {
                let stop = match hi {
                    crate::interval::IntervalBound::Fin(h) => h,
                    _ => lo.saturating_add(TIGHTEN_FUEL),
                };
                if lo >= stop || stop - lo > TIGHTEN_FUEL {
                    break;
                }
                iv = Interval::from_bounds(crate::interval::IntervalBound::Fin(lo + 1), hi);
                if iv.is_bottom() {
                    return (Interval::bottom(), V::bottom());
                }
            }
            _ => break,
        }
    }
    loop {
        match iv {
            Interval::Range(lo, crate::interval::IntervalBound::Fin(hi)) if !v.contains(hi) => {
                let stop = match lo {
                    crate::interval::IntervalBound::Fin(l) => l,
                    _ => hi.saturating_sub(TIGHTEN_FUEL),
                };
                if hi <= stop || hi - stop > TIGHTEN_FUEL {
                    break;
                }
                iv = Interval::from_bounds(lo, crate::interval::IntervalBound::Fin(hi - 1));
                if iv.is_bottom() {
                    return (Interval::bottom(), V::bottom());
                }
            }
            _ => break,
        }
    }
    // A singleton interval pins the companion value.
    let v = match iv.as_const() {
        Some(c) => v.meet(&V::from_const(c)),
        None => v,
    };
    if v.is_bottom() {
        (Interval::bottom(), V::bottom())
    } else {
        (iv, v)
    }
}

impl<V: AbstractValue> Reduce<EnvDomain<Interval>, EnvDomain<V>> for IntervalValueReduce {
    fn reduce(
        &self,
        _da: &EnvDomain<Interval>,
        _db: &EnvDomain<V>,
        a: EnvElem<Interval>,
        b: EnvElem<V>,
    ) -> (EnvElem<Interval>, EnvElem<V>) {
        let (EnvElem::Vals(ivs), EnvElem::Vals(vs)) = (&a, &b) else {
            return (EnvElem::Bot, EnvElem::Bot);
        };
        let mut out_iv = Vec::with_capacity(ivs.len());
        let mut out_v = Vec::with_capacity(vs.len());
        for (iv, v) in ivs.iter().zip(vs) {
            let (iv2, v2) = reduce_value(*iv, v.clone());
            if iv2.is_bottom() || v2.is_bottom() {
                return (EnvElem::Bot, EnvElem::Bot);
            }
            out_iv.push(iv2);
            out_v.push(v2);
        }
        (EnvElem::Vals(out_iv), EnvElem::Vals(out_v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::congruence::Congruence;
    use crate::env::{CongruenceEnv, IntervalEnv, ParityEnv, SignEnv};
    use crate::parity::Parity;
    use crate::traits::laws;
    use air_lang::{parse_bexp, Universe};

    fn universe() -> Universe {
        Universe::new(&[("x", -8, 8)]).unwrap()
    }

    fn sets(u: &Universe) -> Vec<air_lang::StateSet> {
        vec![
            u.empty(),
            u.full(),
            u.of_values([1, 5]),
            u.of_values([0, 2, 4]),
            u.of_values([-3]),
            u.filter(|s| s[0] > 0),
            u.of_values([-6, -2, 2, 6]),
        ]
    }

    #[test]
    fn reduced_int_parity_laws() {
        let u = universe();
        let dom = Product::reduced_interval(IntervalEnv::new(&u), ParityEnv::new(&u));
        laws::check_closure_laws(&dom, &u, &sets(&u)).unwrap();
        laws::check_insertion(&dom, &u, &sets(&u)).unwrap();
    }

    #[test]
    fn reduced_int_congruence_laws() {
        let u = universe();
        let dom = Product::reduced_interval(IntervalEnv::new(&u), CongruenceEnv::new(&u));
        laws::check_closure_laws(&dom, &u, &sets(&u)).unwrap();
        laws::check_insertion(&dom, &u, &sets(&u)).unwrap();
    }

    #[test]
    fn direct_product_is_coarser_than_reduced() {
        let u = universe();
        let direct = Product::direct(IntervalEnv::new(&u), ParityEnv::new(&u));
        let reduced = Product::reduced_interval(IntervalEnv::new(&u), ParityEnv::new(&u));
        let s = u.of_values([1, 5]);
        let gd = direct.gamma_set(&u, &direct.alpha_set(&u, &s));
        let gr = reduced.gamma_set(&u, &reduced.alpha_set(&u, &s));
        assert!(gr.is_subset(&gd));
        assert_eq!(gr, u.of_values([1, 3, 5]));
    }

    #[test]
    fn reduction_tightens_endpoints() {
        let (iv, p) = reduce_value(Interval::of(0, 6), Parity::ODD);
        assert_eq!(iv, Interval::of(1, 5));
        assert_eq!(p, Parity::ODD);
        // Singleton pins the companion.
        let (iv2, p2) = reduce_value(Interval::of(4, 4), Parity::TOP);
        assert_eq!(iv2, Interval::of(4, 4));
        assert_eq!(p2, Parity::EVEN);
        // Contradiction collapses to bottom.
        let (iv3, p3) = reduce_value(Interval::of(4, 4), Parity::ODD);
        assert!(iv3.is_bottom() && p3.is_bottom());
    }

    #[test]
    fn reduction_with_congruence() {
        let (iv, c) = reduce_value(Interval::of(1, 10), Congruence::class(4, 3));
        assert_eq!(iv, Interval::of(3, 7)); // 3 and 7 are ≡ 3 (mod 4)
        assert_eq!(c, Congruence::class(4, 3));
    }

    #[test]
    fn product_transfer_is_sound() {
        let u = universe();
        let dom = Product::reduced_interval(IntervalEnv::new(&u), ParityEnv::new(&u));
        let sem = air_lang::Concrete::new(&u);
        let b = parse_bexp("x > 0").unwrap();
        laws::check_transfer_sound(
            &dom,
            &u,
            &sets(&u),
            |s| sem.exec_exp(&air_lang::ast::Exp::Assume(b.clone()), s).ok(),
            |e| dom.assume(e, &b),
        )
        .unwrap();
        let a = air_lang::ast::AExp::var("x").mul(air_lang::ast::AExp::Num(2));
        laws::check_transfer_sound(
            &dom,
            &u,
            &sets(&u),
            |s| {
                sem.exec_exp(&air_lang::ast::Exp::assign("x", a.clone()), s)
                    .ok()
            },
            |e| dom.assign(e, "x", &a),
        )
        .unwrap();
    }

    #[test]
    fn product_with_sign_prunes_absval_alarm() {
        // Int⊗Sign expresses "nonzero" as the sign component ≠0 — the
        // paper's AbsVal repair point exists natively in this product.
        let u = universe();
        let dom = Product::reduced_interval(IntervalEnv::new(&u), SignEnv::new(&u));
        let odd = u.filter(|s| s[0] % 2 != 0);
        let a = dom.alpha_set(&u, &odd);
        assert!(!dom.gamma_contains(&a, &[0]));
    }

    #[test]
    fn names_reflect_structure() {
        let u = universe();
        let direct = Product::direct(IntervalEnv::new(&u), ParityEnv::new(&u));
        assert_eq!(direct.name(), "Int×Par");
        let reduced = Product::reduced_interval(IntervalEnv::new(&u), ParityEnv::new(&u));
        assert_eq!(reduced.name(), "Int⊗Par");
    }
}
