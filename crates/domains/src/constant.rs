//! The flat constant-propagation domain `⊥ < … -1, 0, 1 … < ⊤`.

use std::fmt;

use air_lang::ast::CmpOp;

use crate::value::AbstractValue;

/// A constant abstraction (Kildall's lattice).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Constant {
    /// `⊥` — no value.
    Bot,
    /// Exactly one value.
    Const(i64),
    /// `⊤` — any value.
    Top,
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Bot => write!(f, "⊥"),
            Constant::Const(v) => write!(f, "{v}"),
            Constant::Top => write!(f, "⊤"),
        }
    }
}

impl Constant {
    fn lift(a: &Constant, b: &Constant, f: impl Fn(i64, i64) -> Option<i64>) -> Constant {
        match (a, b) {
            (Constant::Bot, _) | (_, Constant::Bot) => Constant::Bot,
            (Constant::Const(x), Constant::Const(y)) => {
                f(*x, *y).map_or(Constant::Top, Constant::Const)
            }
            _ => Constant::Top,
        }
    }
}

impl AbstractValue for Constant {
    const NAME: &'static str = "Const";

    fn top() -> Self {
        Constant::Top
    }

    fn bottom() -> Self {
        Constant::Bot
    }

    fn leq(&self, other: &Self) -> bool {
        matches!((self, other), (Constant::Bot, _) | (_, Constant::Top)) || self == other
    }

    fn join(&self, other: &Self) -> Self {
        match (self, other) {
            (Constant::Bot, x) | (x, Constant::Bot) => *x,
            (x, y) if x == y => *x,
            _ => Constant::Top,
        }
    }

    fn meet(&self, other: &Self) -> Self {
        match (self, other) {
            (Constant::Top, x) | (x, Constant::Top) => *x,
            (x, y) if x == y => *x,
            _ => Constant::Bot,
        }
    }

    fn from_const(v: i64) -> Self {
        Constant::Const(v)
    }

    fn add(&self, other: &Self) -> Self {
        Constant::lift(self, other, i64::checked_add)
    }

    fn sub(&self, other: &Self) -> Self {
        Constant::lift(self, other, i64::checked_sub)
    }

    fn mul(&self, other: &Self) -> Self {
        // 0 annihilates even against ⊤.
        match (self, other) {
            (Constant::Const(0), x) | (x, Constant::Const(0)) if *x != Constant::Bot => {
                Constant::Const(0)
            }
            _ => Constant::lift(self, other, i64::checked_mul),
        }
    }

    fn contains(&self, v: i64) -> bool {
        match self {
            Constant::Bot => false,
            Constant::Const(c) => *c == v,
            Constant::Top => true,
        }
    }

    fn refine_cmp(op: CmpOp, l: &Self, r: &Self) -> (Self, Self) {
        if l.is_bottom() || r.is_bottom() {
            return (Constant::Bot, Constant::Bot);
        }
        match (op, l, r) {
            (CmpOp::Eq, _, _) => {
                let m = l.meet(r);
                (m, m)
            }
            // Two known constants decide every comparison outright.
            (_, Constant::Const(x), Constant::Const(y)) => {
                if op.eval(*x, *y) {
                    (*l, *r)
                } else {
                    (Constant::Bot, Constant::Bot)
                }
            }
            _ => (*l, *r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::laws;

    fn sample() -> Vec<Constant> {
        vec![
            Constant::Bot,
            Constant::Top,
            Constant::Const(-2),
            Constant::Const(0),
            Constant::Const(3),
        ]
    }

    fn values() -> Vec<i64> {
        vec![-2, -1, 0, 1, 3, 4]
    }

    #[test]
    fn value_domain_laws() {
        laws::check_value_domain(&sample(), &values()).unwrap();
    }

    #[test]
    fn arithmetic_soundness() {
        laws::check_arith_sound(&sample(), &values()).unwrap();
    }

    #[test]
    fn refine_cmp_soundness() {
        laws::check_refine_cmp_sound(&sample(), &values()).unwrap();
    }

    #[test]
    fn backward_soundness() {
        laws::check_backward_sound(&sample(), &values()).unwrap();
    }

    #[test]
    fn constant_folding() {
        let a = Constant::Const(3);
        let b = Constant::Const(4);
        assert_eq!(a.add(&b), Constant::Const(7));
        assert_eq!(a.mul(&b), Constant::Const(12));
        assert_eq!(a.sub(&b), Constant::Const(-1));
        assert_eq!(a.add(&Constant::Top), Constant::Top);
        assert_eq!(Constant::Const(0).mul(&Constant::Top), Constant::Const(0));
    }

    #[test]
    fn overflow_goes_to_top() {
        let big = Constant::Const(i64::MAX);
        assert_eq!(big.add(&Constant::Const(1)), Constant::Top);
    }

    #[test]
    fn refinement_decides_constant_comparisons() {
        let (l, r) = Constant::refine_cmp(CmpOp::Lt, &Constant::Const(5), &Constant::Const(3));
        assert_eq!((l, r), (Constant::Bot, Constant::Bot));
        let (l, r) = Constant::refine_cmp(CmpOp::Lt, &Constant::Const(2), &Constant::Const(3));
        assert_eq!((l, r), (Constant::Const(2), Constant::Const(3)));
        let (l, r) = Constant::refine_cmp(CmpOp::Eq, &Constant::Top, &Constant::Const(3));
        assert_eq!((l, r), (Constant::Const(3), Constant::Const(3)));
    }
}
