//! Store-abstraction traits.
//!
//! [`Abstraction`] is the Galois-insertion view of an abstract domain over
//! program stores: it provides `α` on single stores (extended additively to
//! state sets by [`Abstraction::alpha_set`]) and a membership test for `γ`.
//! The enumerative AIR engine in `air-core` needs nothing more — it
//! enumerates `γ` over a finite universe exactly like the paper's pilot
//! implementation.
//!
//! [`Transfer`] adds the abstract transfer functions of basic commands and
//! enables the generic abstract interpreter
//! [`Analyzer`](crate::analyzer::Analyzer).

use std::fmt;

use air_lang::ast::{AExp, BExp};
use air_lang::{StateSet, Universe};

/// An abstract domain of program-store properties, presented by `α`/`γ`.
///
/// Implementations must form a Galois insertion with `℘(Σ)`:
/// `alpha_set` must be additive over stores, `gamma_contains` must be
/// monotone in the element, and `α(γ(a)) = a` for elements reachable from
/// `alpha_set`. These laws are exercised by shared tests via finite
/// universes.
pub trait Abstraction {
    /// Abstract elements.
    type Elem: Clone + PartialEq + fmt::Debug;

    /// Short human-readable domain name (e.g. `"Int"`, `"Oct"`).
    fn name(&self) -> &str;

    /// The greatest element `⊤` (all stores).
    fn top(&self) -> Self::Elem;

    /// The least element `⊥` (no store).
    fn bottom(&self) -> Self::Elem;

    /// Returns `true` if `e` denotes the empty set of stores.
    fn is_bottom(&self, e: &Self::Elem) -> bool;

    /// Abstract order.
    fn leq(&self, a: &Self::Elem, b: &Self::Elem) -> bool;

    /// Abstract join (least upper bound).
    fn join(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;

    /// Abstract meet (greatest lower bound).
    fn meet(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;

    /// Widening; defaults to join (correct for finite-height domains).
    fn widen(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        self.join(a, b)
    }

    /// Narrowing `a Δ b` for the decreasing iteration after widening; the
    /// default accepts the refined iterate `b`, which is sound when `b` is
    /// a decreasing iterate from a post-fixpoint.
    fn narrow(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        let _ = a;
        b.clone()
    }

    /// Abstraction of a single store.
    fn alpha_store(&self, store: &[i64]) -> Self::Elem;

    /// Membership test for the concretization: `store ∈ γ(e)`.
    fn gamma_contains(&self, e: &Self::Elem, store: &[i64]) -> bool;

    /// Additive abstraction of a state set: `α(S) = ∨{α({σ}) | σ ∈ S}`.
    fn alpha_set(&self, universe: &Universe, set: &StateSet) -> Self::Elem {
        let mut acc = self.bottom();
        for i in set.iter() {
            let store = universe.store_at(i);
            acc = self.join(&acc, &self.alpha_store(&store));
        }
        acc
    }

    /// Enumerated concretization over a universe: `γ(e)` as a state set.
    fn gamma_set(&self, universe: &Universe, e: &Self::Elem) -> StateSet {
        universe.filter(|s| self.gamma_contains(e, s))
    }

    /// The induced closure on state sets: `A(S) = γ(α(S))`, enumerated.
    fn closure_set(&self, universe: &Universe, set: &StateSet) -> StateSet {
        self.gamma_set(universe, &self.alpha_set(universe, set))
    }
}

/// Abstract transfer functions of basic commands, enabling a standard
/// abstract interpretation (the best correct approximation is *not*
/// required — soundness is; incompleteness is exactly what AIR repairs).
pub trait Transfer: Abstraction {
    /// Abstract semantics of the assignment `var := a`.
    fn assign(&self, e: &Self::Elem, var: &str, a: &AExp) -> Self::Elem;

    /// Abstract semantics of the guard `b?`.
    fn assume(&self, e: &Self::Elem, b: &BExp) -> Self::Elem;

    /// Abstract semantics of the nondeterministic assignment `x := ?`.
    /// The default returns `⊤` (always sound); domains should override
    /// with "forget `var`".
    fn havoc(&self, e: &Self::Elem, var: &str) -> Self::Elem {
        let _ = (e, var);
        self.top()
    }
}

/// Finite-sample law checks shared by domain test suites.
pub mod laws {
    use super::*;

    /// Checks `S ⊆ γ(α(S))` (extensivity of the induced closure) and
    /// idempotency on a list of state sets.
    pub fn check_closure_laws<A: Abstraction>(
        dom: &A,
        universe: &Universe,
        sets: &[StateSet],
    ) -> Result<(), String> {
        for s in sets {
            let c = dom.closure_set(universe, s);
            if !s.is_subset(&c) {
                return Err(format!(
                    "γ∘α not extensive on {s:?} (domain {})",
                    dom.name()
                ));
            }
            let cc = dom.closure_set(universe, &c);
            if cc != c {
                return Err(format!(
                    "γ∘α not idempotent on {s:?} (domain {})",
                    dom.name()
                ));
            }
        }
        // Monotonicity on pairs.
        for a in sets {
            for b in sets {
                if a.is_subset(b) {
                    let ca = dom.closure_set(universe, a);
                    let cb = dom.closure_set(universe, b);
                    if !ca.is_subset(&cb) {
                        return Err(format!(
                            "γ∘α not monotone on {a:?} ⊆ {b:?} (domain {})",
                            dom.name()
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Checks `α(γ(α(S))) = α(S)` — the insertion property along reachable
    /// elements.
    pub fn check_insertion<A: Abstraction>(
        dom: &A,
        universe: &Universe,
        sets: &[StateSet],
    ) -> Result<(), String> {
        for s in sets {
            let a = dom.alpha_set(universe, s);
            let back = dom.alpha_set(universe, &dom.gamma_set(universe, &a));
            if back != a {
                return Err(format!(
                    "α∘γ∘α ≠ α on {s:?}: {back:?} vs {a:?} (domain {})",
                    dom.name()
                ));
            }
        }
        Ok(())
    }

    /// Checks soundness of the abstract transfer of a basic command `f♯`
    /// against the concrete collecting semantics `f`:
    /// `f(γ(α(S))) ⊆ γ(f♯(α(S)))`.
    pub fn check_transfer_sound<A: Transfer>(
        dom: &A,
        universe: &Universe,
        sets: &[StateSet],
        concrete: impl Fn(&StateSet) -> Option<StateSet>,
        abstract_f: impl Fn(&A::Elem) -> A::Elem,
    ) -> Result<(), String> {
        for s in sets {
            let a = dom.alpha_set(universe, s);
            let gamma_a = dom.gamma_set(universe, &a);
            let Some(post) = concrete(&gamma_a) else {
                continue; // universe escape: nothing to check
            };
            let abs_post = abstract_f(&a);
            let gamma_post = dom.gamma_set(universe, &abs_post);
            if !post.is_subset(&gamma_post) {
                return Err(format!(
                    "unsound transfer on {s:?}: {post:?} ⊄ {gamma_post:?} (domain {})",
                    dom.name()
                ));
            }
        }
        Ok(())
    }
}
