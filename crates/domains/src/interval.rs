//! The interval domain `Int` over `ℤ ∪ {−∞, +∞}` (paper, Section 1).
//!
//! `Int(S)` is the least interval `[a, b]` containing `S`. The domain has
//! infinite ascending chains, so a standard widening (and narrowing) is
//! provided; it is the domain the paper's running examples start from.

use std::fmt;

use air_lang::ast::CmpOp;

use crate::value::AbstractValue;

/// An interval endpoint.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum IntervalBound {
    /// `−∞`.
    NegInf,
    /// A finite endpoint.
    Fin(i64),
    /// `+∞`.
    PosInf,
}

use IntervalBound::{Fin, NegInf, PosInf};

impl IntervalBound {
    fn le(self, other: IntervalBound) -> bool {
        match (self, other) {
            (NegInf, _) | (_, PosInf) => true,
            (Fin(a), Fin(b)) => a <= b,
            (PosInf, _) | (_, NegInf) => false,
        }
    }

    fn min(self, other: IntervalBound) -> IntervalBound {
        if self.le(other) {
            self
        } else {
            other
        }
    }

    fn max(self, other: IntervalBound) -> IntervalBound {
        if self.le(other) {
            other
        } else {
            self
        }
    }

    /// Saturating addition; `−∞ + +∞` cannot arise from well-formed
    /// interval arithmetic (lo+lo / hi+hi only) but is defined conservatively.
    fn add(self, other: IntervalBound) -> IntervalBound {
        match (self, other) {
            (NegInf, PosInf) | (PosInf, NegInf) => {
                unreachable!("mixed infinities in bound addition")
            }
            (NegInf, _) | (_, NegInf) => NegInf,
            (PosInf, _) | (_, PosInf) => PosInf,
            (Fin(a), Fin(b)) => match a.checked_add(b) {
                Some(c) => Fin(c),
                None if a > 0 => PosInf,
                None => NegInf,
            },
        }
    }

    fn neg(self) -> IntervalBound {
        match self {
            NegInf => PosInf,
            PosInf => NegInf,
            Fin(a) => a.checked_neg().map(Fin).unwrap_or(PosInf),
        }
    }

    /// Multiplication with the convention `0 · ±∞ = 0` (sound because the
    /// concretization only contains finite integers).
    fn mul(self, other: IntervalBound) -> IntervalBound {
        let sign = |b: IntervalBound| match b {
            NegInf => -1,
            PosInf => 1,
            Fin(v) => v.signum() as i32,
        };
        match (self, other) {
            (Fin(0), _) | (_, Fin(0)) => Fin(0),
            (Fin(a), Fin(b)) => match a.checked_mul(b) {
                Some(c) => Fin(c),
                None if (a > 0) == (b > 0) => PosInf,
                None => NegInf,
            },
            _ => {
                if sign(self) * sign(other) >= 0 {
                    PosInf
                } else {
                    NegInf
                }
            }
        }
    }

    fn pred(self) -> IntervalBound {
        match self {
            Fin(a) => Fin(a.saturating_sub(1)),
            inf => inf,
        }
    }

    fn succ(self) -> IntervalBound {
        match self {
            Fin(a) => Fin(a.saturating_add(1)),
            inf => inf,
        }
    }
}

impl fmt::Display for IntervalBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NegInf => write!(f, "-inf"),
            PosInf => write!(f, "+inf"),
            Fin(v) => write!(f, "{v}"),
        }
    }
}

/// An integer interval, possibly empty or unbounded.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Interval {
    /// The empty interval `⊥`.
    Empty,
    /// `[lo, hi]` with `lo ≤ hi`; invariant: `lo ≠ +∞`, `hi ≠ −∞`.
    Range(IntervalBound, IntervalBound),
}

impl Interval {
    /// The finite interval `[lo, hi]`; empty if `lo > hi`.
    pub fn of(lo: i64, hi: i64) -> Interval {
        if lo > hi {
            Interval::Empty
        } else {
            Interval::Range(Fin(lo), Fin(hi))
        }
    }

    /// `[lo, +∞]`.
    pub fn at_least(lo: i64) -> Interval {
        Interval::Range(Fin(lo), PosInf)
    }

    /// `[−∞, hi]`.
    pub fn at_most(hi: i64) -> Interval {
        Interval::Range(NegInf, Fin(hi))
    }

    /// General constructor; normalizes empty ranges to `⊥`.
    pub fn from_bounds(lo: IntervalBound, hi: IntervalBound) -> Interval {
        if lo.le(hi) && lo != PosInf && hi != NegInf {
            Interval::Range(lo, hi)
        } else {
            Interval::Empty
        }
    }

    /// The lower bound, if the interval is non-empty.
    pub fn lo(&self) -> Option<IntervalBound> {
        match self {
            Interval::Empty => None,
            Interval::Range(lo, _) => Some(*lo),
        }
    }

    /// The upper bound, if the interval is non-empty.
    pub fn hi(&self) -> Option<IntervalBound> {
        match self {
            Interval::Empty => None,
            Interval::Range(_, hi) => Some(*hi),
        }
    }

    /// Returns `true` if the interval is a singleton, yielding its value.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            Interval::Range(Fin(a), Fin(b)) if a == b => Some(*a),
            _ => None,
        }
    }

    /// Unary negation `[-hi, -lo]`.
    pub fn negate(&self) -> Interval {
        match self {
            Interval::Empty => Interval::Empty,
            Interval::Range(lo, hi) => Interval::from_bounds(hi.neg(), lo.neg()),
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interval::Empty => write!(f, "⊥"),
            Interval::Range(lo, hi) => write!(f, "[{lo}, {hi}]"),
        }
    }
}

impl AbstractValue for Interval {
    const NAME: &'static str = "Int";

    fn top() -> Self {
        Interval::Range(NegInf, PosInf)
    }

    fn bottom() -> Self {
        Interval::Empty
    }

    fn leq(&self, other: &Self) -> bool {
        match (self, other) {
            (Interval::Empty, _) => true,
            (_, Interval::Empty) => false,
            (Interval::Range(a, b), Interval::Range(c, d)) => c.le(*a) && b.le(*d),
        }
    }

    fn join(&self, other: &Self) -> Self {
        match (self, other) {
            (Interval::Empty, x) | (x, Interval::Empty) => *x,
            (Interval::Range(a, b), Interval::Range(c, d)) => Interval::Range(a.min(*c), b.max(*d)),
        }
    }

    fn meet(&self, other: &Self) -> Self {
        match (self, other) {
            (Interval::Empty, _) | (_, Interval::Empty) => Interval::Empty,
            (Interval::Range(a, b), Interval::Range(c, d)) => {
                Interval::from_bounds(a.max(*c), b.min(*d))
            }
        }
    }

    /// Standard interval widening: unstable bounds jump to infinity.
    fn widen(&self, other: &Self) -> Self {
        match (self, other) {
            (Interval::Empty, x) | (x, Interval::Empty) => *x,
            (Interval::Range(a, b), Interval::Range(c, d)) => {
                let lo = if a.le(*c) { *a } else { NegInf };
                let hi = if d.le(*b) { *b } else { PosInf };
                Interval::Range(lo, hi)
            }
        }
    }

    /// Standard interval narrowing: only infinite bounds are refined.
    fn narrow(&self, other: &Self) -> Self {
        match (self, other) {
            (Interval::Empty, _) | (_, Interval::Empty) => Interval::Empty,
            (Interval::Range(a, b), Interval::Range(c, d)) => {
                let lo = if *a == NegInf { *c } else { *a };
                let hi = if *b == PosInf { *d } else { *b };
                Interval::from_bounds(lo, hi)
            }
        }
    }

    fn from_const(v: i64) -> Self {
        Interval::of(v, v)
    }

    fn add(&self, other: &Self) -> Self {
        match (self, other) {
            (Interval::Empty, _) | (_, Interval::Empty) => Interval::Empty,
            (Interval::Range(a, b), Interval::Range(c, d)) => {
                Interval::from_bounds(a.add(*c), b.add(*d))
            }
        }
    }

    fn sub(&self, other: &Self) -> Self {
        self.add(&other.negate())
    }

    fn mul(&self, other: &Self) -> Self {
        match (self, other) {
            (Interval::Empty, _) | (_, Interval::Empty) => Interval::Empty,
            (Interval::Range(a, b), Interval::Range(c, d)) => {
                let products = [a.mul(*c), a.mul(*d), b.mul(*c), b.mul(*d)];
                let lo = products.iter().copied().fold(PosInf, IntervalBound::min);
                let hi = products.iter().copied().fold(NegInf, IntervalBound::max);
                Interval::from_bounds(lo, hi)
            }
        }
    }

    fn contains(&self, v: i64) -> bool {
        match self {
            Interval::Empty => false,
            Interval::Range(lo, hi) => lo.le(Fin(v)) && Fin(v).le(*hi),
        }
    }

    fn refine_cmp(op: CmpOp, l: &Self, r: &Self) -> (Self, Self) {
        let (Interval::Range(l_lo, _), Interval::Range(_, r_hi)) = (l, r) else {
            return (Interval::Empty, Interval::Empty);
        };
        match op {
            CmpOp::Le => {
                let l2 = l.meet(&Interval::from_bounds(NegInf, *r_hi));
                let r2 = r.meet(&Interval::from_bounds(*l_lo, PosInf));
                (l2, r2)
            }
            CmpOp::Lt => {
                let l2 = l.meet(&Interval::from_bounds(NegInf, r_hi.pred()));
                let r2 = r.meet(&Interval::from_bounds(l_lo.succ(), PosInf));
                (l2, r2)
            }
            CmpOp::Ge => {
                let (r2, l2) = Interval::refine_cmp(CmpOp::Le, r, l);
                (l2, r2)
            }
            CmpOp::Gt => {
                let (r2, l2) = Interval::refine_cmp(CmpOp::Lt, r, l);
                (l2, r2)
            }
            CmpOp::Eq => {
                let m = l.meet(r);
                (m, m)
            }
            CmpOp::Ne => {
                let l2 = match r.as_const() {
                    Some(c) => remove_endpoint(*l, c),
                    None => *l,
                };
                let r2 = match l.as_const() {
                    Some(c) => remove_endpoint(*r, c),
                    None => *r,
                };
                (l2, r2)
            }
        }
    }

    fn back_mul(out: &Self, l: &Self, r: &Self) -> (Self, Self) {
        // Only the constant-factor case is refined: x·c ∈ out ⇒ x ∈ out/c.
        let l2 = match r.as_const() {
            Some(c) if c != 0 => l.meet(&div_const(out, c)),
            _ => *l,
        };
        let r2 = match l.as_const() {
            Some(c) if c != 0 => r.meet(&div_const(out, c)),
            _ => *r,
        };
        (l2, r2)
    }
}

/// Removes `c` from an interval when it is an endpoint (the only exact
/// interval refinement of `≠`).
fn remove_endpoint(iv: Interval, c: i64) -> Interval {
    match iv {
        Interval::Range(Fin(lo), hi) if lo == c => Interval::from_bounds(Fin(lo + 1), hi),
        Interval::Range(lo, Fin(hi)) if hi == c => Interval::from_bounds(lo, Fin(hi - 1)),
        other => other,
    }
}

/// The outward-rounded quotient `{x | x·c ∈ out}` for a nonzero constant
/// `c`.
fn div_const(out: &Interval, c: i64) -> Interval {
    fn floor_div(v: i64, c: i64) -> i64 {
        let (q, r) = (v / c, v % c);
        if r != 0 && ((r < 0) != (c < 0)) {
            q - 1
        } else {
            q
        }
    }
    fn ceil_div(v: i64, c: i64) -> i64 {
        let (q, r) = (v / c, v % c);
        if r != 0 && ((r < 0) == (c < 0)) {
            q + 1
        } else {
            q
        }
    }
    let Interval::Range(lo, hi) = out else {
        return Interval::Empty;
    };
    let map = |b: IntervalBound, f: fn(i64, i64) -> i64| match b {
        Fin(v) => Fin(f(v, c)),
        inf => {
            if c > 0 {
                inf
            } else {
                inf.neg()
            }
        }
    };
    // x·c ∈ [lo, hi]: for c > 0, x ∈ [ceil(lo/c), floor(hi/c)];
    // for c < 0, x ∈ [ceil(hi/c), floor(lo/c)].
    if c > 0 {
        Interval::from_bounds(map(*lo, ceil_div), map(*hi, floor_div))
    } else {
        Interval::from_bounds(map(*hi, ceil_div), map(*lo, floor_div))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::laws;

    fn sample() -> Vec<Interval> {
        vec![
            Interval::Empty,
            Interval::top(),
            Interval::of(0, 0),
            Interval::of(-3, 5),
            Interval::of(2, 2),
            Interval::of(-7, -1),
            Interval::at_least(1),
            Interval::at_most(0),
            Interval::of(1, 10),
        ]
    }

    fn values() -> Vec<i64> {
        vec![-8, -7, -3, -1, 0, 1, 2, 3, 5, 7, 10, 11]
    }

    #[test]
    fn value_domain_laws() {
        laws::check_value_domain(&sample(), &values()).unwrap();
    }

    #[test]
    fn arithmetic_soundness() {
        laws::check_arith_sound(&sample(), &values()).unwrap();
    }

    #[test]
    fn refine_cmp_soundness() {
        laws::check_refine_cmp_sound(&sample(), &values()).unwrap();
    }

    #[test]
    fn backward_soundness() {
        laws::check_backward_sound(&sample(), &values()).unwrap();
    }

    #[test]
    fn construction_and_accessors() {
        assert_eq!(Interval::of(3, 2), Interval::Empty);
        assert_eq!(Interval::of(2, 2).as_const(), Some(2));
        assert_eq!(Interval::of(1, 2).as_const(), None);
        assert_eq!(Interval::at_least(0).lo(), Some(Fin(0)));
        assert_eq!(Interval::at_least(0).hi(), Some(PosInf));
        assert_eq!(Interval::Empty.lo(), None);
        assert_eq!(Interval::of(-2, 5).to_string(), "[-2, 5]");
        assert_eq!(Interval::top().to_string(), "[-inf, +inf]");
    }

    #[test]
    fn precise_arithmetic() {
        let a = Interval::of(1, 3);
        let b = Interval::of(-2, 4);
        assert_eq!(a.add(&b), Interval::of(-1, 7));
        assert_eq!(a.sub(&b), Interval::of(-3, 5));
        assert_eq!(a.mul(&b), Interval::of(-6, 12));
        assert_eq!(
            Interval::of(-2, 3).mul(&Interval::of(-5, -1)),
            Interval::of(-15, 10)
        );
        assert_eq!(a.negate(), Interval::of(-3, -1));
    }

    #[test]
    fn arithmetic_with_infinities() {
        let pos = Interval::at_least(1);
        assert_eq!(pos.add(&pos), Interval::at_least(2));
        assert_eq!(pos.mul(&pos), Interval::at_least(1));
        assert_eq!(
            pos.mul(&Interval::of(-1, -1)),
            Interval::Range(NegInf, Fin(-1))
        );
        // 0·∞ = 0 convention keeps [0,0]·⊤ exact.
        assert_eq!(Interval::of(0, 0).mul(&Interval::top()), Interval::of(0, 0));
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        // A partially overflowing bound saturates to +∞ soundly.
        let wide = Interval::of(0, i64::MAX - 1);
        let two = Interval::of(0, 2);
        assert_eq!(wide.add(&two), Interval::Range(Fin(0), PosInf));
        // When *both* bounds overflow upward, no i64 remains in the result;
        // the concrete semantics errors on overflow, so ⊥ is the honest
        // normalization of the pseudo-interval [+∞, +∞].
        let big = Interval::of(i64::MAX - 1, i64::MAX - 1);
        assert_eq!(big.add(&Interval::of(2, 2)), Interval::Empty);
    }

    #[test]
    fn widening_jumps_to_infinity() {
        let a = Interval::of(0, 1);
        let b = Interval::of(0, 2);
        assert_eq!(a.widen(&b), Interval::Range(Fin(0), PosInf));
        let c = Interval::of(-1, 1);
        assert_eq!(a.widen(&c), Interval::Range(NegInf, Fin(1)));
        // Stable bounds are kept.
        assert_eq!(a.widen(&a), a);
        // Widening chain terminates.
        let mut x = Interval::of(0, 0);
        for k in 1..100 {
            let next = x.widen(&x.join(&Interval::of(0, k)));
            if next == x {
                break;
            }
            x = next;
        }
        assert_eq!(x, Interval::Range(Fin(0), PosInf));
    }

    #[test]
    fn narrowing_refines_infinite_bounds_only() {
        let wide = Interval::Range(Fin(0), PosInf);
        let better = Interval::of(0, 10);
        assert_eq!(wide.narrow(&better), Interval::of(0, 10));
        let finite = Interval::of(0, 20);
        assert_eq!(finite.narrow(&better), finite);
    }

    #[test]
    fn refine_le_lt() {
        let l = Interval::of(0, 10);
        let r = Interval::of(3, 5);
        let (l2, r2) = Interval::refine_cmp(CmpOp::Le, &l, &r);
        assert_eq!(l2, Interval::of(0, 5));
        assert_eq!(r2, Interval::of(3, 5));
        let (l3, r3) = Interval::refine_cmp(CmpOp::Lt, &l, &r);
        assert_eq!(l3, Interval::of(0, 4));
        assert_eq!(r3, Interval::of(3, 5));
        let (l4, _) = Interval::refine_cmp(CmpOp::Gt, &l, &r);
        assert_eq!(l4, Interval::of(4, 10));
    }

    #[test]
    fn refine_eq_ne() {
        let l = Interval::of(0, 10);
        let r = Interval::of(5, 15);
        let (l2, r2) = Interval::refine_cmp(CmpOp::Eq, &l, &r);
        assert_eq!(l2, Interval::of(5, 10));
        assert_eq!(r2, Interval::of(5, 10));
        let (l3, _) = Interval::refine_cmp(CmpOp::Ne, &Interval::of(0, 10), &Interval::of(0, 0));
        assert_eq!(l3, Interval::of(1, 10));
        let (l4, _) = Interval::refine_cmp(CmpOp::Ne, &Interval::of(0, 10), &Interval::of(10, 10));
        assert_eq!(l4, Interval::of(0, 9));
        // Interior holes are not representable: no refinement.
        let (l5, _) = Interval::refine_cmp(CmpOp::Ne, &Interval::of(0, 10), &Interval::of(5, 5));
        assert_eq!(l5, Interval::of(0, 10));
    }

    #[test]
    fn backward_add_sub() {
        let out = Interval::of(5, 6);
        let l = Interval::of(0, 10);
        let r = Interval::of(2, 3);
        let (l2, r2) = Interval::back_add(&out, &l, &r);
        assert_eq!(l2, Interval::of(2, 4)); // 5-3 .. 6-2
        assert_eq!(r2, Interval::of(2, 3));
        let (l3, r3) = Interval::back_sub(&out, &l, &r);
        assert_eq!(l3, Interval::of(7, 9)); // 5+2 .. 6+3
        assert_eq!(r3, Interval::of(2, 3));
    }

    #[test]
    fn backward_mul_constant() {
        let out = Interval::of(4, 10);
        let l = Interval::of(-10, 10);
        let c2 = Interval::from_const(2);
        let (l2, _) = Interval::back_mul(&out, &l, &c2);
        assert_eq!(l2, Interval::of(2, 5));
        let cm2 = Interval::from_const(-2);
        let (l3, _) = Interval::back_mul(&out, &l, &cm2);
        assert_eq!(l3, Interval::of(-5, -2));
        // Odd bounds round inward (x·2 ∈ [5,9] ⇒ x ∈ [3,4]).
        let (l4, _) = Interval::back_mul(&Interval::of(5, 9), &l, &c2);
        assert_eq!(l4, Interval::of(3, 4));
    }

    #[test]
    fn meet_and_join() {
        let a = Interval::of(0, 5);
        let b = Interval::of(3, 9);
        assert_eq!(a.meet(&b), Interval::of(3, 5));
        assert_eq!(a.join(&b), Interval::of(0, 9));
        let disjoint = Interval::of(7, 9);
        assert_eq!(a.meet(&disjoint), Interval::Empty);
        assert_eq!(a.join(&disjoint), Interval::of(0, 9)); // convex hull includes the gap
    }
}
