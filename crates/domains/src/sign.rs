//! The eight-element sign domain.
//!
//! Elements are unions of the three basic sign classes `<0`, `=0`, `>0`,
//! encoded as a 3-bit mask, which makes the lattice structure (subset
//! order) and precision arguments immediate:
//!
//! ```text
//!            ⊤ = {<0,=0,>0}
//!      ≤0        ≠0        ≥0
//!        <0      =0      >0
//!              ⊥ = {}
//! ```

use std::fmt;

use air_lang::ast::CmpOp;

use crate::value::AbstractValue;

const NEG: u8 = 0b001;
const ZERO: u8 = 0b010;
const POS: u8 = 0b100;
const ALL: u8 = 0b111;

/// A sign abstraction: any union of `<0`, `=0`, `>0`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Sign(u8);

impl Sign {
    /// `⊥` (no integers).
    pub const BOT: Sign = Sign(0);
    /// Strictly negative.
    pub const NEG: Sign = Sign(NEG);
    /// Exactly zero.
    pub const ZERO: Sign = Sign(ZERO);
    /// Strictly positive.
    pub const POS: Sign = Sign(POS);
    /// `≤ 0`.
    pub const NON_POS: Sign = Sign(NEG | ZERO);
    /// `≠ 0`.
    pub const NON_ZERO: Sign = Sign(NEG | POS);
    /// `≥ 0`.
    pub const NON_NEG: Sign = Sign(ZERO | POS);
    /// `⊤` (all integers).
    pub const TOP: Sign = Sign(ALL);

    fn classes(self) -> impl Iterator<Item = u8> {
        [NEG, ZERO, POS]
            .into_iter()
            .filter(move |c| self.0 & c != 0)
    }

    fn has(self, class: u8) -> bool {
        self.0 & class != 0
    }
}

impl fmt::Display for Sign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self.0 {
            0 => "⊥",
            x if x == NEG => "<0",
            x if x == ZERO => "=0",
            x if x == POS => ">0",
            x if x == (NEG | ZERO) => "<=0",
            x if x == (NEG | POS) => "!=0",
            x if x == (ZERO | POS) => ">=0",
            _ => "⊤",
        };
        write!(f, "{s}")
    }
}

/// Sign of the sum of two basic classes.
fn add_classes(a: u8, b: u8) -> u8 {
    match (a, b) {
        (ZERO, x) | (x, ZERO) => x,
        (NEG, NEG) => NEG,
        (POS, POS) => POS,
        _ => ALL, // NEG + POS: any sign
    }
}

/// Sign of the product of two basic classes (exact).
fn mul_classes(a: u8, b: u8) -> u8 {
    match (a, b) {
        (ZERO, _) | (_, ZERO) => ZERO,
        (NEG, NEG) | (POS, POS) => POS,
        _ => NEG,
    }
}

impl AbstractValue for Sign {
    const NAME: &'static str = "Sign";

    fn top() -> Self {
        Sign::TOP
    }

    fn bottom() -> Self {
        Sign::BOT
    }

    fn leq(&self, other: &Self) -> bool {
        self.0 & !other.0 == 0
    }

    fn join(&self, other: &Self) -> Self {
        Sign(self.0 | other.0)
    }

    fn meet(&self, other: &Self) -> Self {
        Sign(self.0 & other.0)
    }

    fn from_const(v: i64) -> Self {
        match v.signum() {
            -1 => Sign::NEG,
            0 => Sign::ZERO,
            _ => Sign::POS,
        }
    }

    fn add(&self, other: &Self) -> Self {
        let mut out = 0;
        for a in self.classes() {
            for b in other.classes() {
                out |= add_classes(a, b);
            }
        }
        Sign(out)
    }

    fn sub(&self, other: &Self) -> Self {
        // x − y has the sign of x + (−y); negation swaps NEG and POS.
        let negated = Sign(
            (if other.has(NEG) { POS } else { 0 })
                | (other.0 & ZERO)
                | (if other.has(POS) { NEG } else { 0 }),
        );
        self.add(&negated)
    }

    fn mul(&self, other: &Self) -> Self {
        let mut out = 0;
        for a in self.classes() {
            for b in other.classes() {
                out |= mul_classes(a, b);
            }
        }
        Sign(out)
    }

    fn contains(&self, v: i64) -> bool {
        self.has(match v.signum() {
            -1 => NEG,
            0 => ZERO,
            _ => POS,
        })
    }

    fn refine_cmp(op: CmpOp, l: &Self, r: &Self) -> (Self, Self) {
        if l.is_bottom() || r.is_bottom() {
            return (Sign::BOT, Sign::BOT);
        }
        match op {
            CmpOp::Eq => {
                let m = l.meet(r);
                (m, m)
            }
            CmpOp::Ne => {
                let l2 = if *r == Sign::ZERO {
                    l.meet(&Sign::NON_ZERO)
                } else {
                    *l
                };
                let r2 = if *l == Sign::ZERO {
                    r.meet(&Sign::NON_ZERO)
                } else {
                    *r
                };
                (l2, r2)
            }
            CmpOp::Lt => {
                // x < y: if y can be positive, x is unconstrained (y may be
                // arbitrarily large); otherwise y ≤ 0 forces x < 0.
                let l2 = if r.has(POS) { *l } else { l.meet(&Sign::NEG) };
                let r2 = if l.has(NEG) { *r } else { r.meet(&Sign::POS) };
                (l2, r2)
            }
            CmpOp::Le => {
                let l2 = if r.has(POS) {
                    *l
                } else if r.has(ZERO) {
                    l.meet(&Sign::NON_POS)
                } else {
                    l.meet(&Sign::NEG)
                };
                let r2 = if l.has(NEG) {
                    *r
                } else if l.has(ZERO) {
                    r.meet(&Sign::NON_NEG)
                } else {
                    r.meet(&Sign::POS)
                };
                (l2, r2)
            }
            CmpOp::Gt => {
                let (r2, l2) = Sign::refine_cmp(CmpOp::Lt, r, l);
                (l2, r2)
            }
            CmpOp::Ge => {
                let (r2, l2) = Sign::refine_cmp(CmpOp::Le, r, l);
                (l2, r2)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::laws;

    fn sample() -> Vec<Sign> {
        (0..=ALL).map(Sign).collect()
    }

    fn values() -> Vec<i64> {
        vec![-100, -2, -1, 0, 1, 2, 100]
    }

    #[test]
    fn value_domain_laws() {
        laws::check_value_domain(&sample(), &values()).unwrap();
    }

    #[test]
    fn arithmetic_soundness() {
        laws::check_arith_sound(&sample(), &values()).unwrap();
    }

    #[test]
    fn refine_cmp_soundness() {
        laws::check_refine_cmp_sound(&sample(), &values()).unwrap();
    }

    #[test]
    fn backward_soundness() {
        laws::check_backward_sound(&sample(), &values()).unwrap();
    }

    #[test]
    fn exact_sign_products() {
        assert_eq!(Sign::NEG.mul(&Sign::NEG), Sign::POS);
        assert_eq!(Sign::NEG.mul(&Sign::POS), Sign::NEG);
        assert_eq!(Sign::ZERO.mul(&Sign::TOP), Sign::ZERO);
        assert_eq!(Sign::POS.add(&Sign::POS), Sign::POS);
        assert_eq!(Sign::POS.add(&Sign::NEG), Sign::TOP);
        assert_eq!(Sign::POS.sub(&Sign::NEG), Sign::POS);
        assert_eq!(Sign::ZERO.sub(&Sign::POS), Sign::NEG);
    }

    #[test]
    fn refine_lt_tightens() {
        // x < y with y ≤ 0 forces x < 0.
        let (l, _) = Sign::refine_cmp(CmpOp::Lt, &Sign::TOP, &Sign::NON_POS);
        assert_eq!(l, Sign::NEG);
        // x < y with y possibly positive cannot constrain x.
        let (l, _) = Sign::refine_cmp(CmpOp::Lt, &Sign::TOP, &Sign::TOP);
        assert_eq!(l, Sign::TOP);
        // x ≥ 0 and x < y forces y > 0.
        let (_, r) = Sign::refine_cmp(CmpOp::Lt, &Sign::NON_NEG, &Sign::TOP);
        assert_eq!(r, Sign::POS);
    }

    #[test]
    fn refine_ne_zero() {
        let (l, _) = Sign::refine_cmp(CmpOp::Ne, &Sign::TOP, &Sign::ZERO);
        assert_eq!(l, Sign::NON_ZERO);
    }

    #[test]
    fn display_names() {
        assert_eq!(Sign::NON_ZERO.to_string(), "!=0");
        assert_eq!(Sign::BOT.to_string(), "⊥");
        assert_eq!(Sign::TOP.to_string(), "⊤");
    }
}
