//! The octagon domain `Oct` (Miné), built on difference-bound matrices.
//!
//! Octagons represent conjunctions of constraints `±x ± y ≤ c` between any
//! two variables. The paper uses `Oct` as the weakly relational refinement
//! of `Int` in Section 2 and Example 7.8.
//!
//! # Representation
//!
//! For `n` variables the DBM has dimension `2n`: index `2k` stands for
//! `+x_k` and `2k+1` for `−x_k`. Entry `m[i][j]` bounds `V_i − V_j ≤
//! m[i][j]` (with `V_{2k} = x_k`, `V_{2k+1} = −x_k`); `INF` means
//! unconstrained. All stored octagons are kept *strongly closed* (shortest
//! paths + unary strengthening with integer tightening), so equality and
//! inclusion are canonical.

use std::fmt;

use air_lang::ast::{AExp, BExp, CmpOp};
use air_lang::Universe;

use crate::interval::Interval;
use crate::traits::{Abstraction, Transfer};
use crate::value::AbstractValue;

/// "Unconstrained" sentinel weight.
const INF: i64 = i64::MAX;

fn wadd(a: i64, b: i64) -> i64 {
    if a == INF || b == INF {
        INF
    } else {
        a.saturating_add(b)
    }
}

/// An octagon over `n` program variables, or `⊥`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Oct {
    n: usize,
    /// Row-major `2n × 2n` bound matrix; `None` is `⊥`.
    m: Option<Vec<i64>>,
}

impl Oct {
    fn dim(&self) -> usize {
        2 * self.n
    }

    fn at(&self, i: usize, j: usize) -> i64 {
        // ⊥ carries no matrix; every caller filters ⊥ first, but an
        // unconstrained bound (`INF`) keeps this total and sound if one
        // slips through on a user-driven path.
        match &self.m {
            Some(m) => m[i * self.dim() + j],
            None => INF,
        }
    }

    fn set_min(m: &mut [i64], dim: usize, i: usize, j: usize, c: i64) {
        let idx = i * dim + j;
        if c < m[idx] {
            m[idx] = c;
        }
        // Coherence: V_i − V_j and V_{j̄} − V_{ī} are the same constraint.
        let idx2 = (j ^ 1) * dim + (i ^ 1);
        if c < m[idx2] {
            m[idx2] = c;
        }
    }

    /// The bound on `x_k` as an interval (derived from unary constraints).
    pub fn var_interval(&self, k: usize) -> Interval {
        match &self.m {
            None => Interval::Empty,
            Some(_) => {
                let hi = self.at(2 * k, 2 * k + 1); // 2·x_k ≤ hi
                let lo = self.at(2 * k + 1, 2 * k); // −2·x_k ≤ lo
                let hi_b = if hi == INF {
                    crate::interval::IntervalBound::PosInf
                } else {
                    crate::interval::IntervalBound::Fin(hi.div_euclid(2))
                };
                let lo_b = if lo == INF {
                    crate::interval::IntervalBound::NegInf
                } else {
                    crate::interval::IntervalBound::Fin(-(lo.div_euclid(2)))
                };
                Interval::from_bounds(lo_b, hi_b)
            }
        }
    }
}

impl fmt::Display for Oct {
    /// Prints per-variable boxes plus any *informative* binary constraint:
    /// a finite bound on `±vᵢ ± vⱼ` strictly tighter than what the boxes
    /// already imply.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let Some(_) = &self.m else {
            return write!(f, "⊥");
        };
        let mut first = true;
        let mut emit = |f: &mut fmt::Formatter<'_>, s: String| -> fmt::Result {
            if !first {
                write!(f, " ∧ ")?;
            }
            first = false;
            write!(f, "{s}")
        };
        let boxes: Vec<Interval> = (0..self.n).map(|k| self.var_interval(k)).collect();
        for (k, iv) in boxes.iter().enumerate() {
            if *iv != Interval::top() {
                emit(f, format!("v{k} ∈ {iv}"))?;
            }
        }
        use crate::interval::IntervalBound::Fin;
        let hi_of = |iv: &Interval| {
            iv.hi().and_then(|b| match b {
                Fin(v) => Some(v),
                _ => None,
            })
        };
        let lo_of = |iv: &Interval| {
            iv.lo().and_then(|b| match b {
                Fin(v) => Some(v),
                _ => None,
            })
        };
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                // vᵢ − vⱼ ≤ c and vⱼ − vᵢ ≤ c.
                let diff_hi = self.at(2 * i, 2 * j);
                let implied = hi_of(&boxes[i]).zip(lo_of(&boxes[j])).map(|(a, b)| a - b);
                if diff_hi != INF && implied.is_none_or(|imp| diff_hi < imp) {
                    emit(f, format!("v{i} - v{j} <= {diff_hi}"))?;
                }
                let diff_lo = self.at(2 * j, 2 * i);
                let implied = hi_of(&boxes[j]).zip(lo_of(&boxes[i])).map(|(a, b)| a - b);
                if diff_lo != INF && implied.is_none_or(|imp| diff_lo < imp) {
                    emit(f, format!("v{j} - v{i} <= {diff_lo}"))?;
                }
                // vᵢ + vⱼ ≤ c and −vᵢ − vⱼ ≤ c.
                let sum_hi = self.at(2 * i, 2 * j + 1);
                let implied = hi_of(&boxes[i]).zip(hi_of(&boxes[j])).map(|(a, b)| a + b);
                if sum_hi != INF && implied.is_none_or(|imp| sum_hi < imp) {
                    emit(f, format!("v{i} + v{j} <= {sum_hi}"))?;
                }
                let sum_lo = self.at(2 * i + 1, 2 * j);
                let implied = lo_of(&boxes[i])
                    .zip(lo_of(&boxes[j]))
                    .map(|(a, b)| -(a + b));
                if sum_lo != INF && implied.is_none_or(|imp| sum_lo < imp) {
                    emit(f, format!("v{i} + v{j} >= {}", -sum_lo))?;
                }
            }
        }
        if first {
            write!(f, "⊤")?;
        }
        Ok(())
    }
}

/// A linear expression `Σ coeffᵢ·xᵢ + k` extracted from an [`AExp`].
#[derive(Clone, Debug, PartialEq)]
struct LinExpr {
    /// Sparse `(var_index, coeff)` terms with nonzero coefficients.
    terms: Vec<(usize, i64)>,
    constant: i64,
}

impl LinExpr {
    fn constant(c: i64) -> LinExpr {
        LinExpr {
            terms: vec![],
            constant: c,
        }
    }

    fn add_term(&mut self, var: usize, coeff: i64) {
        if let Some(t) = self.terms.iter_mut().find(|(v, _)| *v == var) {
            t.1 += coeff;
        } else {
            self.terms.push((var, coeff));
        }
        self.terms.retain(|(_, c)| *c != 0);
    }

    fn scale(&mut self, k: i64) -> Option<()> {
        for t in &mut self.terms {
            t.1 = t.1.checked_mul(k)?;
        }
        self.constant = self.constant.checked_mul(k)?;
        self.terms.retain(|(_, c)| *c != 0);
        Some(())
    }

    fn combine(mut self, other: LinExpr, sign: i64) -> Option<LinExpr> {
        for (v, c) in other.terms {
            self.add_term(v, c.checked_mul(sign)?);
        }
        self.constant = self
            .constant
            .checked_add(other.constant.checked_mul(sign)?)?;
        Some(self)
    }
}

/// The octagon abstract domain over a universe's variables.
///
/// # Example
///
/// ```
/// use air_domains::{Abstraction, OctagonDomain, Transfer};
/// use air_lang::{parse_bexp, Universe};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let u = Universe::new(&[("x", -10, 10), ("y", -10, 10)])?;
/// let dom = OctagonDomain::new(&u);
/// let e = dom.assume(&dom.top(), &parse_bexp("x - y <= 1 && y <= 0")?);
/// assert!(dom.gamma_contains(&e, &[1, 0]));
/// assert!(!dom.gamma_contains(&e, &[2, 0]));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct OctagonDomain {
    vars: Vec<String>,
}

impl OctagonDomain {
    /// Creates the domain over the universe's variables (store order).
    pub fn new(universe: &Universe) -> Self {
        OctagonDomain {
            vars: universe.var_names().map(str::to_owned).collect(),
        }
    }

    /// Creates the domain over an explicit variable list.
    pub fn with_vars<I: IntoIterator<Item = S>, S: AsRef<str>>(vars: I) -> Self {
        OctagonDomain {
            vars: vars.into_iter().map(|s| s.as_ref().to_owned()).collect(),
        }
    }

    fn n(&self) -> usize {
        self.vars.len()
    }

    fn var_index(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == name)
    }

    fn raw_top(&self) -> Vec<i64> {
        let dim = 2 * self.n();
        let mut m = vec![INF; dim * dim];
        for i in 0..dim {
            m[i * dim + i] = 0;
        }
        m
    }

    /// Strong closure with integer tightening; returns `None` on an
    /// inconsistent (empty) system.
    fn close(&self, mut m: Vec<i64>) -> Option<Vec<i64>> {
        let dim = 2 * self.n();
        // Floyd–Warshall shortest paths.
        for k in 0..dim {
            for i in 0..dim {
                let mik = m[i * dim + k];
                if mik == INF {
                    continue;
                }
                for j in 0..dim {
                    let v = wadd(mik, m[k * dim + j]);
                    if v < m[i * dim + j] {
                        m[i * dim + j] = v;
                    }
                }
            }
        }
        // Integer tightening of unary bounds: 2x ≤ c ⇒ 2x ≤ 2⌊c/2⌋.
        for i in 0..dim {
            let idx = i * dim + (i ^ 1);
            if m[idx] != INF {
                m[idx] = 2 * m[idx].div_euclid(2);
            }
        }
        // Strengthening: V_i − V_j ≤ (bound(2V_i) + bound(−2V_j)) / 2.
        for i in 0..dim {
            let di = m[i * dim + (i ^ 1)];
            if di == INF {
                continue;
            }
            for j in 0..dim {
                let dj = m[(j ^ 1) * dim + j];
                if dj == INF {
                    continue;
                }
                let v = wadd(di, dj) / 2;
                if v < m[i * dim + j] {
                    m[i * dim + j] = v;
                }
            }
        }
        // Consistency.
        for i in 0..dim {
            if m[i * dim + i] < 0 {
                return None;
            }
            m[i * dim + i] = 0;
        }
        Some(m)
    }

    fn mk(&self, m: Vec<i64>) -> Oct {
        Oct {
            n: self.n(),
            m: self.close(m),
        }
    }

    /// Removes every constraint mentioning variable `x` (rows/columns of
    /// `+x` and `−x`), keeping the rest — sound because the matrix is
    /// closed, so transitive consequences are already explicit.
    fn forget(&self, m: &mut [i64], x: usize) {
        let dim = 2 * self.n();
        for &v in &[2 * x, 2 * x + 1] {
            for j in 0..dim {
                if j != v {
                    m[v * dim + j] = INF;
                    m[j * dim + v] = INF;
                }
            }
        }
    }

    fn linearize(&self, a: &AExp) -> Option<LinExpr> {
        match a {
            AExp::Num(n) => Some(LinExpr::constant(*n)),
            AExp::Var(x) => {
                let i = self.var_index(x)?;
                let mut e = LinExpr::constant(0);
                e.add_term(i, 1);
                Some(e)
            }
            AExp::Add(l, r) => self.linearize(l)?.combine(self.linearize(r)?, 1),
            AExp::Sub(l, r) => self.linearize(l)?.combine(self.linearize(r)?, -1),
            AExp::Mul(l, r) => {
                let le = self.linearize(l)?;
                let re = self.linearize(r)?;
                if le.terms.is_empty() {
                    let mut out = re;
                    out.scale(le.constant)?;
                    Some(out)
                } else if re.terms.is_empty() {
                    let mut out = le;
                    out.scale(re.constant)?;
                    Some(out)
                } else {
                    None
                }
            }
        }
    }

    /// Interval of an arbitrary expression, via per-variable bounds.
    fn eval_interval(&self, oct: &Oct, a: &AExp) -> Interval {
        if oct.m.is_none() {
            return Interval::Empty;
        }
        match a {
            AExp::Num(n) => Interval::from_const(*n),
            AExp::Var(x) => match self.var_index(x) {
                Some(i) => oct.var_interval(i),
                None => Interval::top(),
            },
            AExp::Add(l, r) => self.eval_interval(oct, l).add(&self.eval_interval(oct, r)),
            AExp::Sub(l, r) => self.eval_interval(oct, l).sub(&self.eval_interval(oct, r)),
            AExp::Mul(l, r) => self.eval_interval(oct, l).mul(&self.eval_interval(oct, r)),
        }
    }

    /// Adds the octagonal constraints for `lin ≤ 0` to `m` when `lin` is
    /// octagonal; returns `false` if the shape is not representable (the
    /// caller must then leave the element unrefined).
    fn constrain(&self, m: &mut [i64], lin: &LinExpr) -> bool {
        let dim = 2 * self.n();
        let c = match lin.constant.checked_neg() {
            Some(c) => c,
            None => return false,
        };
        match lin.terms.as_slice() {
            [] => {
                if lin.constant > 0 {
                    if m.is_empty() {
                        return false;
                    }
                    // Unsatisfiable "k ≤ 0": poison the diagonal so closure
                    // detects the inconsistency and yields ⊥.
                    m[0] = -1;
                }
                true
            }
            &[(x, 1)] => {
                // x ≤ c  ⇒  V_{2x} − V_{2x+1} ≤ 2c
                Oct::set_min(m, dim, 2 * x, 2 * x + 1, c.saturating_mul(2));
                true
            }
            &[(x, -1)] => {
                Oct::set_min(m, dim, 2 * x + 1, 2 * x, c.saturating_mul(2));
                true
            }
            &[(x, 2)] => {
                Oct::set_min(m, dim, 2 * x, 2 * x + 1, c);
                true
            }
            &[(x, -2)] => {
                Oct::set_min(m, dim, 2 * x + 1, 2 * x, c);
                true
            }
            &[(x, cx), (y, cy)] if cx.abs() == 1 && cy.abs() == 1 => {
                // cx·x + cy·y ≤ c
                let (i, j) = match (cx, cy) {
                    (1, -1) => (2 * x, 2 * y),      // x − y ≤ c
                    (-1, 1) => (2 * y, 2 * x),      // y − x ≤ c
                    (1, 1) => (2 * x, 2 * y + 1),   // x + y ≤ c
                    (-1, -1) => (2 * x + 1, 2 * y), // −x − y ≤ c
                    _ => unreachable!("abs-1 coefficients"),
                };
                Oct::set_min(m, dim, i, j, c);
                true
            }
            _ => false,
        }
    }

    /// Refines under `b` (or `¬b` when `polarity` is false); identity on
    /// non-octagonal atoms (sound).
    fn refine(&self, oct: &Oct, b: &BExp, polarity: bool) -> Oct {
        let Some(data) = &oct.m else {
            return oct.clone();
        };
        match (b, polarity) {
            (BExp::Tt, true) | (BExp::Ff, false) => oct.clone(),
            (BExp::Tt, false) | (BExp::Ff, true) => self.bottom(),
            (BExp::Not(inner), _) => self.refine(oct, inner, !polarity),
            (BExp::And(l, r), true) | (BExp::Or(l, r), false) => {
                let e1 = self.refine(oct, l, polarity);
                self.refine(&e1, r, polarity)
            }
            (BExp::And(l, r), false) | (BExp::Or(l, r), true) => {
                let e1 = self.refine(oct, l, polarity);
                let e2 = self.refine(oct, r, polarity);
                self.join(&e1, &e2)
            }
            (BExp::Cmp(op, l, r), _) => {
                let op = if polarity { *op } else { op.negate() };
                let (Some(ll), Some(rl)) = (self.linearize(l), self.linearize(r)) else {
                    return oct.clone();
                };
                // l − r op 0
                let Some(diff) = ll.combine(rl, -1) else {
                    return oct.clone();
                };
                let mut m = data.clone();
                let ok = match op {
                    CmpOp::Le => self.constrain(&mut m, &diff),
                    CmpOp::Lt => {
                        let mut d = diff.clone();
                        d.constant = d.constant.saturating_add(1);
                        self.constrain(&mut m, &d)
                    }
                    CmpOp::Ge => {
                        let mut d = diff.clone();
                        if d.scale(-1).is_none() {
                            return oct.clone();
                        }
                        self.constrain(&mut m, &d)
                    }
                    CmpOp::Gt => {
                        let mut d = diff.clone();
                        if d.scale(-1).is_none() {
                            return oct.clone();
                        }
                        d.constant = d.constant.saturating_add(1);
                        self.constrain(&mut m, &d)
                    }
                    CmpOp::Eq => {
                        let mut d2 = diff.clone();
                        let ok1 = self.constrain(&mut m, &diff);
                        let ok2 = d2.scale(-1).is_some() && self.constrain(&mut m, &d2);
                        ok1 && ok2
                    }
                    // ≠ has no octagonal refinement.
                    CmpOp::Ne => return oct.clone(),
                };
                if !ok {
                    return oct.clone();
                }
                self.mk(m)
            }
        }
    }
}

impl Abstraction for OctagonDomain {
    type Elem = Oct;

    fn name(&self) -> &str {
        "Oct"
    }

    fn top(&self) -> Oct {
        Oct {
            n: self.n(),
            m: Some(self.raw_top()),
        }
    }

    fn bottom(&self) -> Oct {
        Oct {
            n: self.n(),
            m: None,
        }
    }

    fn is_bottom(&self, e: &Oct) -> bool {
        e.m.is_none()
    }

    fn leq(&self, a: &Oct, b: &Oct) -> bool {
        match (&a.m, &b.m) {
            (None, _) => true,
            (_, None) => false,
            (Some(x), Some(y)) => x.iter().zip(y).all(|(p, q)| p <= q),
        }
    }

    fn join(&self, a: &Oct, b: &Oct) -> Oct {
        match (&a.m, &b.m) {
            (None, _) => b.clone(),
            (_, None) => a.clone(),
            (Some(x), Some(y)) => Oct {
                n: self.n(),
                // Pointwise max of two closed DBMs is closed.
                m: Some(x.iter().zip(y).map(|(p, q)| *p.max(q)).collect()),
            },
        }
    }

    fn meet(&self, a: &Oct, b: &Oct) -> Oct {
        match (&a.m, &b.m) {
            (None, _) | (_, None) => self.bottom(),
            (Some(x), Some(y)) => self.mk(x.iter().zip(y).map(|(p, q)| *p.min(q)).collect()),
        }
    }

    fn widen(&self, a: &Oct, b: &Oct) -> Oct {
        match (&a.m, &b.m) {
            (None, _) => b.clone(),
            (_, None) => a.clone(),
            (Some(x), Some(y)) => Oct {
                n: self.n(),
                // Unstable bounds jump to INF. The result is deliberately
                // left unclosed: re-closing could undo the widening and
                // break termination (standard octagon caveat).
                m: Some(
                    x.iter()
                        .zip(y)
                        .map(|(p, q)| if q <= p { *p } else { INF })
                        .collect(),
                ),
            },
        }
    }

    fn alpha_store(&self, store: &[i64]) -> Oct {
        let dim = 2 * self.n();
        let val = |i: usize| {
            let v = store[i / 2];
            if i.is_multiple_of(2) {
                v
            } else {
                -v
            }
        };
        let mut m = vec![0; dim * dim];
        for i in 0..dim {
            for j in 0..dim {
                m[i * dim + j] = val(i) - val(j);
            }
        }
        Oct {
            n: self.n(),
            m: Some(m),
        }
    }

    fn gamma_contains(&self, e: &Oct, store: &[i64]) -> bool {
        let Some(m) = &e.m else {
            return false;
        };
        let dim = 2 * self.n();
        let val = |i: usize| {
            let v = store[i / 2];
            if i.is_multiple_of(2) {
                v
            } else {
                -v
            }
        };
        for i in 0..dim {
            for j in 0..dim {
                let bound = m[i * dim + j];
                if bound != INF && val(i) - val(j) > bound {
                    return false;
                }
            }
        }
        true
    }
}

impl Transfer for OctagonDomain {
    fn assign(&self, e: &Oct, var: &str, a: &AExp) -> Oct {
        let Some(data) = &e.m else {
            return self.bottom();
        };
        let Some(x) = self.var_index(var) else {
            return e.clone();
        };
        let dim = 2 * self.n();
        match self.linearize(a) {
            // x := k·self ± c with k = ±1, or affine in one other variable.
            Some(lin) => match lin.terms.as_slice() {
                [] => {
                    let mut m = data.clone();
                    self.forget(&mut m, x);
                    let c = lin.constant;
                    Oct::set_min(&mut m, dim, 2 * x, 2 * x + 1, 2 * c);
                    Oct::set_min(&mut m, dim, 2 * x + 1, 2 * x, -2 * c);
                    self.mk(m)
                }
                &[(y, 1)] if y == x => {
                    // x := x + c: translate all bounds involving x.
                    let c = lin.constant;
                    let mut m = data.clone();
                    for j in 0..dim {
                        for &(v, s) in &[(2 * x, 1i64), (2 * x + 1, -1i64)] {
                            if j != v && j != (v ^ 1) {
                                let row = v * dim + j;
                                if m[row] != INF {
                                    m[row] = m[row].saturating_add(s * c);
                                }
                                let col = j * dim + v;
                                if m[col] != INF {
                                    m[col] = m[col].saturating_sub(s * c);
                                }
                            }
                        }
                    }
                    // Unary bounds shift by 2c.
                    let up = 2 * x * dim + (2 * x + 1);
                    if m[up] != INF {
                        m[up] = m[up].saturating_add(2 * c);
                    }
                    let lo = (2 * x + 1) * dim + 2 * x;
                    if m[lo] != INF {
                        m[lo] = m[lo].saturating_sub(2 * c);
                    }
                    self.mk(m)
                }
                &[(y, -1)] if y == x => {
                    // x := −x + c: swap the +x/−x roles, then translate.
                    let mut m = data.clone();
                    let (p, q) = (2 * x, 2 * x + 1);
                    for j in 0..dim {
                        if j != p && j != q {
                            m.swap(p * dim + j, q * dim + j);
                            m.swap(j * dim + p, j * dim + q);
                        }
                    }
                    m.swap(p * dim + q, q * dim + p);
                    let translated = self.mk(m);
                    if lin.constant == 0 {
                        translated
                    } else {
                        self.assign(
                            &translated,
                            var,
                            &AExp::var(var).add(AExp::Num(lin.constant)),
                        )
                    }
                }
                &[(y, 1)] => {
                    // x := y + c (y ≠ x).
                    let c = lin.constant;
                    let mut m = data.clone();
                    self.forget(&mut m, x);
                    // x − y ≤ c and y − x ≤ −c.
                    Oct::set_min(&mut m, dim, 2 * x, 2 * y, c);
                    Oct::set_min(&mut m, dim, 2 * y, 2 * x, -c);
                    self.mk(m)
                }
                &[(y, -1)] => {
                    // x := −y + c (y ≠ x): x + y ≤ c and −x − y ≤ −c.
                    let c = lin.constant;
                    let mut m = data.clone();
                    self.forget(&mut m, x);
                    Oct::set_min(&mut m, dim, 2 * x, 2 * y + 1, c);
                    Oct::set_min(&mut m, dim, 2 * x + 1, 2 * y, -c);
                    self.mk(m)
                }
                _ => self.assign_interval(e, x, a),
            },
            None => self.assign_interval(e, x, a),
        }
    }

    fn assume(&self, e: &Oct, b: &BExp) -> Oct {
        self.refine(e, b, true)
    }

    fn havoc(&self, e: &Oct, var: &str) -> Oct {
        let Some(data) = &e.m else {
            return self.bottom();
        };
        let Some(x) = self.var_index(var) else {
            return e.clone();
        };
        let mut m = data.clone();
        self.forget(&mut m, x);
        self.mk(m)
    }
}

impl OctagonDomain {
    /// Fallback assignment: evaluate the expression as an interval, forget
    /// the target, set its bounds.
    fn assign_interval(&self, e: &Oct, x: usize, a: &AExp) -> Oct {
        let Some(data) = &e.m else {
            return self.bottom();
        };
        let iv = self.eval_interval(e, a);
        let dim = 2 * self.n();
        let mut m = data.clone();
        self.forget(&mut m, x);
        match iv {
            Interval::Empty => return self.bottom(),
            Interval::Range(lo, hi) => {
                if let crate::interval::IntervalBound::Fin(h) = hi {
                    Oct::set_min(&mut m, dim, 2 * x, 2 * x + 1, h.saturating_mul(2));
                }
                if let crate::interval::IntervalBound::Fin(l) = lo {
                    Oct::set_min(&mut m, dim, 2 * x + 1, 2 * x, (-l).saturating_mul(2));
                }
            }
        }
        self.mk(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::laws;
    use air_lang::{parse_bexp, Concrete, Universe};

    fn universe() -> Universe {
        Universe::new(&[("x", -6, 6), ("y", -6, 6)]).unwrap()
    }

    fn some_sets(u: &Universe) -> Vec<air_lang::StateSet> {
        vec![
            u.empty(),
            u.full(),
            u.filter(|s| s[0] > 0),
            u.filter(|s| s[0] == s[1]),
            u.filter(|s| s[0] + s[1] <= 1),
            u.filter(|s| s[0] == 2 && s[1] == -3),
            u.filter(|s| s[0] - s[1] >= 2 && s[0] <= 4),
        ]
    }

    #[test]
    fn closure_and_insertion_laws() {
        let u = universe();
        let dom = OctagonDomain::new(&u);
        laws::check_closure_laws(&dom, &u, &some_sets(&u)).unwrap();
        laws::check_insertion(&dom, &u, &some_sets(&u)).unwrap();
    }

    #[test]
    fn octagons_are_relational() {
        let u = universe();
        let dom = OctagonDomain::new(&u);
        // α({(0,0), (3,3)}) keeps x = y; the interval hull would not.
        let s = u.filter(|st| (st[0] == 0 || st[0] == 3) && st[1] == st[0]);
        let a = dom.alpha_set(&u, &s);
        assert!(dom.gamma_contains(&a, &[2, 2]));
        assert!(!dom.gamma_contains(&a, &[2, 1]));
    }

    #[test]
    fn assume_octagonal_guards() {
        let u = universe();
        let dom = OctagonDomain::new(&u);
        let e = dom.assume(&dom.top(), &parse_bexp("x - y <= 1").unwrap());
        assert!(dom.gamma_contains(&e, &[1, 0]));
        assert!(!dom.gamma_contains(&e, &[3, 0]));
        let e2 = dom.assume(&dom.top(), &parse_bexp("x + y = 2").unwrap());
        assert!(dom.gamma_contains(&e2, &[5, -3]));
        assert!(!dom.gamma_contains(&e2, &[1, 2]));
    }

    #[test]
    fn assume_strict_inequalities_tighten_by_one() {
        let u = universe();
        let dom = OctagonDomain::new(&u);
        let e = dom.assume(&dom.top(), &parse_bexp("x < 3").unwrap());
        assert!(dom.gamma_contains(&e, &[2, 0]));
        assert!(!dom.gamma_contains(&e, &[3, 0]));
        let e2 = dom.assume(&dom.top(), &parse_bexp("x > y").unwrap());
        assert!(dom.gamma_contains(&e2, &[1, 0]));
        assert!(!dom.gamma_contains(&e2, &[0, 0]));
    }

    #[test]
    fn contradiction_is_bottom() {
        let u = universe();
        let dom = OctagonDomain::new(&u);
        let e = dom.assume(&dom.top(), &parse_bexp("x <= 0 && x >= 1").unwrap());
        assert!(dom.is_bottom(&e));
    }

    #[test]
    fn assignments_exact_forms() {
        let u = universe();
        let dom = OctagonDomain::new(&u);
        let start = dom.assume(&dom.top(), &parse_bexp("x = 2 && y = 5").unwrap());
        // x := x + 1
        let e = dom.assign(&start, "x", &AExp::var("x").add(AExp::Num(1)));
        assert_eq!(dom.gamma_set(&u, &e), u.filter(|s| s[0] == 3 && s[1] == 5));
        // x := y
        let e2 = dom.assign(&start, "x", &AExp::var("y"));
        assert_eq!(dom.gamma_set(&u, &e2), u.filter(|s| s[0] == 5 && s[1] == 5));
        // x := -x
        let e3 = dom.assign(&start, "x", &AExp::var("x").neg());
        assert_eq!(
            dom.gamma_set(&u, &e3),
            u.filter(|s| s[0] == -2 && s[1] == 5)
        );
        // x := 4
        let e4 = dom.assign(&start, "x", &AExp::Num(4));
        assert_eq!(dom.gamma_set(&u, &e4), u.filter(|s| s[0] == 4 && s[1] == 5));
        // x := -y + 1
        let e5 = dom.assign(&start, "x", &AExp::Num(1).sub(AExp::var("y")));
        assert_eq!(
            dom.gamma_set(&u, &e5),
            u.filter(|s| s[0] == -4 && s[1] == 5)
        );
    }

    #[test]
    fn assignment_preserves_relations_under_translation() {
        let u = universe();
        let dom = OctagonDomain::new(&u);
        let eq = dom.assume(&dom.top(), &parse_bexp("x = y && x >= 0").unwrap());
        let e = dom.assign(&eq, "x", &AExp::var("x").add(AExp::Num(1)));
        // Now x = y + 1.
        assert!(dom.gamma_contains(&e, &[3, 2]));
        assert!(!dom.gamma_contains(&e, &[3, 3]));
    }

    #[test]
    fn nonlinear_assignment_falls_back_to_intervals() {
        let u = universe();
        let dom = OctagonDomain::new(&u);
        let start = dom.assume(
            &dom.top(),
            &parse_bexp("x >= 1 && x <= 2 && y = 1").unwrap(),
        );
        let e = dom.assign(&start, "y", &AExp::var("x").mul(AExp::var("x")));
        // y ∈ [1, 4], relation with x lost.
        assert!(dom.gamma_contains(&e, &[1, 4]));
        assert!(!dom.gamma_contains(&e, &[1, 5]));
        assert!(!dom.gamma_contains(&e, &[1, 0]));
    }

    #[test]
    fn transfer_soundness_against_concrete() {
        let u = universe();
        let dom = OctagonDomain::new(&u);
        let sem = Concrete::new(&u);
        let sets = some_sets(&u);
        let b = parse_bexp("x - y < 2 && x + y >= -1").unwrap();
        laws::check_transfer_sound(
            &dom,
            &u,
            &sets,
            |s| sem.exec_exp(&air_lang::ast::Exp::Assume(b.clone()), s).ok(),
            |e| dom.assume(e, &b),
        )
        .unwrap();
        let a = AExp::var("y").sub(AExp::Num(1));
        laws::check_transfer_sound(
            &dom,
            &u,
            &sets,
            |s| {
                sem.exec_exp(&air_lang::ast::Exp::assign("x", a.clone()), s)
                    .ok()
            },
            |e| dom.assign(e, "x", &a),
        )
        .unwrap();
    }

    #[test]
    fn widening_makes_chains_stabilize() {
        let u = universe();
        let dom = OctagonDomain::new(&u);
        let mut x = dom.assume(&dom.top(), &parse_bexp("x = 0 && y = 0").unwrap());
        for k in 1..20 {
            let next = dom.assume(
                &dom.top(),
                &parse_bexp(&format!("x >= 0 && x <= {k} && y = 0")).unwrap(),
            );
            let joined = dom.join(&x, &next);
            let widened = dom.widen(&x, &joined);
            if dom.leq(&joined, &x) {
                break;
            }
            x = widened;
        }
        // Upper bound of x must have been widened away.
        assert!(dom.gamma_contains(&x, &[6, 0]));
    }

    #[test]
    fn three_variable_relations_compose() {
        let u3 = Universe::new(&[("x", -5, 5), ("y", -5, 5), ("z", -5, 5)]).unwrap();
        let dom = OctagonDomain::new(&u3);
        // x ≤ y and y ≤ z: transitivity through closure gives x ≤ z.
        let e = dom.assume(&dom.top(), &parse_bexp("x <= y && y <= z").unwrap());
        assert!(dom.gamma_contains(&e, &[0, 1, 2]));
        assert!(!dom.gamma_contains(&e, &[3, 4, 2])); // x ≤ z violated
                                                      // var_interval reads derived bounds after closure.
        let e2 = dom.assume(&e, &parse_bexp("z <= 1 && x >= 0").unwrap());
        assert_eq!(e2.var_interval(1), crate::interval::Interval::of(0, 1));
    }

    #[test]
    fn eval_interval_fallback_bounds() {
        let u = universe();
        let dom = OctagonDomain::new(&u);
        let e = dom.assume(
            &dom.top(),
            &parse_bexp("x >= 1 && x <= 2 && y = 3").unwrap(),
        );
        let iv = dom.eval_interval(&e, &AExp::var("x").mul(AExp::var("y")));
        assert_eq!(iv, crate::interval::Interval::of(3, 6));
    }

    #[test]
    fn havoc_drops_only_the_target() {
        let u = universe();
        let dom = OctagonDomain::new(&u);
        let e = dom.assume(
            &dom.top(),
            &parse_bexp("x = y && y >= 1 && y <= 3").unwrap(),
        );
        let h = dom.havoc(&e, "x");
        assert!(dom.gamma_contains(&h, &[-6, 2]));
        assert!(!dom.gamma_contains(&h, &[0, 4])); // y's bound survives
        assert!(dom.is_bottom(&dom.havoc(&dom.bottom(), "x")));
    }

    #[test]
    fn display_renders_boxes() {
        let u = universe();
        let dom = OctagonDomain::new(&u);
        let e = dom.assume(&dom.top(), &parse_bexp("x >= 0 && x <= 3").unwrap());
        assert!(e.to_string().contains("[0, 3]"));
        assert_eq!(dom.bottom().to_string(), "⊥");
        assert_eq!(dom.top().to_string(), "⊤");
    }

    #[test]
    fn display_shows_informative_relations() {
        let u = universe();
        let dom = OctagonDomain::new(&u);
        // A pure relation with no finite boxes.
        let rel = dom.assume(&dom.top(), &parse_bexp("x - y <= 1").unwrap());
        assert_eq!(rel.to_string(), "v0 - v1 <= 1");
        // A relation fully implied by the boxes is elided.
        let boxed = dom.assume(
            &dom.top(),
            &parse_bexp("x >= 0 && x <= 2 && y >= 0 && y <= 2").unwrap(),
        );
        assert_eq!(boxed.to_string(), "v0 ∈ [0, 2] ∧ v1 ∈ [0, 2]");
        // Sum constraints appear when informative.
        let sum = dom.assume(&boxed, &parse_bexp("x + y <= 3").unwrap());
        assert!(sum.to_string().contains("v0 + v1 <= 3"), "{sum}");
    }
}
