//! The generic abstract interpreter `⟦·⟧♯_A` over regular commands.
//!
//! This is the *standard analyzer* of the paper (Section 3.2):
//!
//! ```text
//! ⟦e⟧♯a       = e♯(a)                 (the domain's transfer function)
//! ⟦r1; r2⟧♯a  = ⟦r2⟧♯(⟦r1⟧♯a)
//! ⟦r1 ⊕ r2⟧♯a = ⟦r1⟧♯a ∨ ⟦r2⟧♯a
//! ⟦r*⟧♯a      = lfp(λX. X ∇ (a ∨ ⟦r⟧♯X))   (with widening, Section 7)
//! ```
//!
//! It is sound but in general *locally incomplete* — exactly the analyses
//! that `air-core` repairs.

use std::fmt;

use air_lang::ast::{Exp, Reg};

use crate::traits::Transfer;

/// Errors from abstract interpretation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnalysisError {
    /// The star iteration exceeded the configured bound (the supplied
    /// widening does not enforce convergence).
    Divergence {
        /// The bound that was exhausted.
        max_iters: usize,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Divergence { max_iters } => {
                write!(f, "abstract star iteration exceeded {max_iters} steps")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

/// A configurable abstract interpreter over a [`Transfer`] domain.
///
/// # Example
///
/// ```
/// use air_domains::{Abstraction, Analyzer, IntervalEnv};
/// use air_lang::{parse_program, Universe};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let u = Universe::new(&[("i", 0, 10), ("j", 0, 31)])?;
/// let dom = IntervalEnv::new(&u);
/// let prog = parse_program(
///     "i := 1; j := 0; while (i <= 5) do { j := j + i; i := i + 1 }",
/// )?;
/// let out = Analyzer::new(&dom).exec(&prog, &dom.top())?;
/// // The interval analysis proves i = 6 on exit but loses j's bound
/// // (the widening pushes it to +∞): j ∈ [0, +∞] as in the paper §2.
/// assert!(dom.gamma_contains(&out, &[6, 31]));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Analyzer<'d, D> {
    domain: &'d D,
    /// Number of plain-join iterations before widening kicks in.
    widening_delay: usize,
    /// Hard bound on star iterations.
    max_iters: usize,
    /// Decreasing (narrowing) iterations after a star stabilizes.
    narrowing_iters: usize,
}

impl<'d, D: Transfer> Analyzer<'d, D> {
    /// Creates an analyzer with a small widening delay (2) and a generous
    /// iteration bound.
    pub fn new(domain: &'d D) -> Self {
        Analyzer {
            domain,
            widening_delay: 2,
            max_iters: 1_000,
            narrowing_iters: 2,
        }
    }

    /// Sets the number of join-only iterations before widening.
    pub fn widening_delay(mut self, delay: usize) -> Self {
        self.widening_delay = delay;
        self
    }

    /// Sets the hard iteration bound for stars.
    pub fn max_iters(mut self, max: usize) -> Self {
        self.max_iters = max;
        self
    }

    /// Sets the number of narrowing iterations after a star stabilizes
    /// (0 disables narrowing).
    pub fn narrowing_iters(mut self, iters: usize) -> Self {
        self.narrowing_iters = iters;
        self
    }

    /// The abstract semantics of a basic command.
    pub fn exec_exp(&self, e: &Exp, a: &D::Elem) -> D::Elem {
        match e {
            Exp::Skip => a.clone(),
            Exp::Assign(x, expr) => self.domain.assign(a, x, expr),
            Exp::Havoc(x) => self.domain.havoc(a, x),
            Exp::Assume(b) => self.domain.assume(a, b),
        }
    }

    /// The abstract semantics `⟦r⟧♯a`.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::Divergence`] if a star fails to stabilize within
    /// the iteration bound.
    pub fn exec(&self, r: &Reg, a: &D::Elem) -> Result<D::Elem, AnalysisError> {
        match r {
            Reg::Basic(e) => Ok(self.exec_exp(e, a)),
            Reg::Seq(r1, r2) => {
                let mid = self.exec(r1, a)?;
                self.exec(r2, &mid)
            }
            Reg::Choice(r1, r2) => {
                let l = self.exec(r1, a)?;
                let rr = self.exec(r2, a)?;
                Ok(self.domain.join(&l, &rr))
            }
            Reg::Star(body) => {
                let mut x = a.clone();
                let mut stabilized = false;
                for k in 0..self.max_iters {
                    let step = self.exec(body, &x)?;
                    let grown = self.domain.join(&x, &self.domain.join(a, &step));
                    if self.domain.leq(&grown, &x) {
                        stabilized = true;
                        break;
                    }
                    x = if k < self.widening_delay {
                        grown
                    } else {
                        self.domain.widen(&x, &grown)
                    };
                }
                if !stabilized {
                    return Err(AnalysisError::Divergence {
                        max_iters: self.max_iters,
                    });
                }
                // Decreasing iteration from the post-fixpoint recovers
                // bounds lost to widening (e.g. the paper's loop invariant
                // i ∈ [1, 6] in Section 2).
                for _ in 0..self.narrowing_iters {
                    let step = self.exec(body, &x)?;
                    let refined = self.domain.join(a, &step);
                    let next = self.domain.narrow(&x, &refined);
                    if next == x {
                        break;
                    }
                    x = next;
                }
                Ok(x)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{IntervalEnv, SignEnv};
    use crate::interval::Interval;
    use crate::octagon::OctagonDomain;
    use crate::traits::Abstraction;
    use air_lang::{parse_program, Concrete, Universe};

    #[test]
    fn straight_line_interval_analysis() {
        let u = Universe::new(&[("x", -10, 10)]).unwrap();
        let dom = IntervalEnv::new(&u);
        let prog = parse_program("x := 1; x := x + 2").unwrap();
        let out = Analyzer::new(&dom).exec(&prog, &dom.top()).unwrap();
        assert_eq!(out.get(0), Some(&Interval::of(3, 3)));
    }

    #[test]
    fn choice_joins() {
        let u = Universe::new(&[("x", -10, 10)]).unwrap();
        let dom = IntervalEnv::new(&u);
        let prog = parse_program("either { x := 1 } or { x := 5 }").unwrap();
        let out = Analyzer::new(&dom).exec(&prog, &dom.top()).unwrap();
        assert_eq!(out.get(0), Some(&Interval::of(1, 5)));
    }

    #[test]
    fn loop_with_widening_stabilizes_and_is_sound() {
        let u = Universe::new(&[("i", 0, 10), ("j", 0, 31)]).unwrap();
        let dom = IntervalEnv::new(&u);
        let prog =
            parse_program("i := 1; j := 0; while (i <= 5) do { j := j + i; i := i + 1 }").unwrap();
        let out = Analyzer::new(&dom).exec(&prog, &dom.top()).unwrap();
        // Paper §2: Int infers i ∈ [6,6] and j ∈ [0,∞] (widened away).
        assert_eq!(out.get(0), Some(&Interval::of(6, 6)));
        assert_eq!(
            out.get(1).and_then(|iv| iv.hi()),
            Some(crate::interval::IntervalBound::PosInf)
        );
        // Soundness against the concrete semantics.
        let sem = Concrete::new(&u);
        let conc = sem.exec(&prog, &u.full()).unwrap();
        let gamma = dom.gamma_set(&u, &out);
        assert!(conc.is_subset(&gamma));
    }

    #[test]
    fn absval_on_intervals_raises_false_alarm() {
        // The paper's introduction: Int(AbsVal(Int(odd))) = [0, +hull].
        let u = Universe::new(&[("x", -8, 8)]).unwrap();
        let dom = IntervalEnv::new(&u);
        let prog = parse_program("if (x >= 0) then { skip } else { x := 0 - x }").unwrap();
        let odd = u.filter(|s| s[0] % 2 != 0);
        let input = dom.alpha_set(&u, &odd);
        let out = Analyzer::new(&dom).exec(&prog, &input).unwrap();
        // 0 is spuriously included: the division-by-zero false alarm.
        assert!(dom.gamma_contains(&out, &[0]));
        // Concretely, 0 is not reachable.
        let sem = Concrete::new(&u);
        let conc = sem.exec(&prog, &odd).unwrap();
        assert!(!conc.contains(u.store_index(&[0]).unwrap()));
    }

    #[test]
    fn sign_analysis_of_absval() {
        let u = Universe::new(&[("x", -8, 8)]).unwrap();
        let dom = SignEnv::new(&u);
        let prog = parse_program("if (x >= 0) then { skip } else { x := 0 - x }").unwrap();
        let out = Analyzer::new(&dom).exec(&prog, &dom.top()).unwrap();
        // Sign proves x ≥ 0 afterwards (0 - x of a negative is positive).
        assert!(!dom.gamma_contains(&out, &[-1]));
        assert!(dom.gamma_contains(&out, &[0]));
    }

    #[test]
    fn octagon_keeps_loop_relation() {
        // Example 7.8's program shape: x and y decrease together.
        let u = Universe::new(&[("x", -2, 8), ("y", -2, 8)]).unwrap();
        let dom = OctagonDomain::new(&u);
        let prog = parse_program("while (x > 0) do { x := x - 1; y := y - 1 }").unwrap();
        let start = dom.assume(
            &dom.top(),
            &air_lang::parse_bexp("x = y && x >= 0 && x <= 5").unwrap(),
        );
        let out = Analyzer::new(&dom).exec(&prog, &start).unwrap();
        // Octagons track x − y = 0 through the loop; on exit x ≤ 0.
        assert!(dom.gamma_contains(&out, &[0, 0]));
        assert!(!dom.gamma_contains(&out, &[0, 3]));
    }

    #[test]
    fn havoc_forgets_in_every_domain() {
        let u = Universe::new(&[("x", -5, 5), ("y", -5, 5)]).unwrap();
        let prog = parse_program("x := 2; y := x; x := ?").unwrap();
        // Interval env: x back to ⊤, y stays 2.
        let env = IntervalEnv::new(&u);
        let out = Analyzer::new(&env).exec(&prog, &env.top()).unwrap();
        assert!(env.gamma_contains(&out, &[-5, 2]));
        assert!(!env.gamma_contains(&out, &[0, 3]));
        // Octagon: the x−y relation is dropped, y's bound kept.
        let oct = OctagonDomain::new(&u);
        let out2 = Analyzer::new(&oct).exec(&prog, &oct.top()).unwrap();
        assert!(oct.gamma_contains(&out2, &[5, 2]));
        assert!(!oct.gamma_contains(&out2, &[5, 1]));
        // Affine: projection keeps y = 2 as an equation.
        let aff = crate::affine::AffineDomain::new(&u);
        let out3 = Analyzer::new(&aff).exec(&prog, &aff.top()).unwrap();
        assert!(aff.gamma_contains(&out3, &[-3, 2]));
        assert!(!aff.gamma_contains(&out3, &[-3, 0]));
    }

    #[test]
    fn divergence_reported_with_degenerate_widening() {
        // A widening that never widens on an infinite-height chain would
        // diverge; the bound catches it.
        let u = Universe::new(&[("x", 0, 5)]).unwrap();
        let dom = IntervalEnv::new(&u);
        let prog = parse_program("star { x := x + 1 }").unwrap();
        let res = Analyzer::new(&dom)
            .widening_delay(usize::MAX)
            .max_iters(3)
            .exec(&prog, &dom.alpha_store(&[0]));
        assert_eq!(res, Err(AnalysisError::Divergence { max_iters: 3 }));
    }

    #[test]
    fn star_without_widening_on_finite_chain() {
        let u = Universe::new(&[("x", 0, 5)]).unwrap();
        let dom = SignEnv::new(&u);
        let prog = parse_program("star { x := x + 1 }").unwrap();
        let out = Analyzer::new(&dom)
            .exec(&prog, &dom.alpha_store(&[1]))
            .unwrap();
        // From >0, adding 1 stays >0.
        assert!(dom.gamma_contains(&out, &[3]));
        assert!(!dom.gamma_contains(&out, &[0]));
    }
}
