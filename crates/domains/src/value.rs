//! The value-domain trait: abstractions of single integers.
//!
//! A value domain abstracts `℘(ℤ)`; the nonrelational
//! [`EnvDomain`](crate::env::EnvDomain) lifts it pointwise to stores.
//! Besides the lattice structure and sound forward arithmetic, value
//! domains may provide *backward* (refutation) operators used by the
//! HC4-style guard refinement in the environment domain; the defaults are
//! sound no-ops.

use std::fmt;

use air_lang::ast::CmpOp;

/// An abstraction of sets of integers.
pub trait AbstractValue: Clone + PartialEq + fmt::Debug + 'static {
    /// Short domain name.
    const NAME: &'static str;

    /// The abstraction of `ℤ`.
    fn top() -> Self;

    /// The abstraction of `∅`.
    fn bottom() -> Self;

    /// Returns `true` if this is the abstraction of `∅`.
    fn is_bottom(&self) -> bool {
        *self == Self::bottom()
    }

    /// Abstract order.
    fn leq(&self, other: &Self) -> bool;

    /// Least upper bound.
    fn join(&self, other: &Self) -> Self;

    /// Greatest lower bound.
    fn meet(&self, other: &Self) -> Self;

    /// Widening; join is the correct default for finite-height domains.
    fn widen(&self, other: &Self) -> Self {
        self.join(other)
    }

    /// Narrowing; returning the refined iterate is the simplest sound
    /// choice.
    fn narrow(&self, other: &Self) -> Self {
        other.clone()
    }

    /// Abstraction of the singleton `{v}`.
    fn from_const(v: i64) -> Self;

    /// Sound abstract addition.
    fn add(&self, other: &Self) -> Self;

    /// Sound abstract subtraction.
    fn sub(&self, other: &Self) -> Self;

    /// Sound abstract multiplication.
    fn mul(&self, other: &Self) -> Self;

    /// Membership: `v ∈ γ(self)`.
    fn contains(&self, v: i64) -> bool;

    /// Refines `(l, r)` under the assumption `l op r` holds for some pair
    /// of concrete values. Must be a sound *reduction*: the returned pair
    /// over-approximates `{(x, y) ∈ γ(l)×γ(r) | x op y}` componentwise.
    fn refine_cmp(op: CmpOp, l: &Self, r: &Self) -> (Self, Self) {
        let _ = op;
        (l.clone(), r.clone())
    }

    /// Backward addition: given that `x + y ∈ γ(out)`, tighten `l` and `r`.
    /// The default inverts through subtraction — sound whenever `sub` is:
    /// `x = (x+y) − y ∈ γ(out −♯ r)`.
    fn back_add(out: &Self, l: &Self, r: &Self) -> (Self, Self) {
        (l.meet(&out.sub(r)), r.meet(&out.sub(l)))
    }

    /// Backward subtraction: `x − y ∈ γ(out)` gives `x ∈ γ(out +♯ r)` and
    /// `y ∈ γ(l −♯ out)`.
    fn back_sub(out: &Self, l: &Self, r: &Self) -> (Self, Self) {
        (l.meet(&out.add(r)), r.meet(&l.sub(out)))
    }

    /// Backward multiplication.
    fn back_mul(out: &Self, l: &Self, r: &Self) -> (Self, Self) {
        let _ = out;
        (l.clone(), r.clone())
    }
}

/// Finite-sample law checks for value domains, shared by their test suites.
pub mod laws {
    use super::*;

    /// Checks lattice laws and `from_const`/`contains` coherence over a
    /// sample of elements and test values.
    pub fn check_value_domain<V: AbstractValue>(
        sample: &[V],
        values: &[i64],
    ) -> Result<(), String> {
        for a in sample {
            if !a.leq(&V::top()) {
                return Err(format!("{a:?} ≰ ⊤"));
            }
            if !V::bottom().leq(a) {
                return Err(format!("⊥ ≰ {a:?}"));
            }
            if !a.leq(&a.join(&V::bottom())) || !a.join(&V::bottom()).leq(a) {
                return Err(format!("⊥ not a join unit at {a:?}"));
            }
            for b in sample {
                let j = a.join(b);
                let m = a.meet(b);
                if !a.leq(&j) || !b.leq(&j) {
                    return Err(format!("join not upper bound: {a:?}, {b:?}"));
                }
                if !m.leq(a) || !m.leq(b) {
                    return Err(format!("meet not lower bound: {a:?}, {b:?}"));
                }
                if !a.leq(&a.widen(b)) || !b.leq(&a.widen(b)) {
                    return Err(format!("widening not an upper bound: {a:?}, {b:?}"));
                }
                // γ-coherence of the order: a ≤ b ⇒ γ(a) ⊆ γ(b) on samples.
                if a.leq(b) {
                    for &v in values {
                        if a.contains(v) && !b.contains(v) {
                            return Err(format!(
                                "order not γ-monotone: {a:?} ≤ {b:?} but {v} only in γ(a)"
                            ));
                        }
                    }
                }
                // γ(join) ⊇ γ(a) ∪ γ(b); γ(meet) ⊆ γ(a) ∩ γ(b).
                for &v in values {
                    if (a.contains(v) || b.contains(v)) && !j.contains(v) {
                        return Err(format!("γ(join) misses {v}: {a:?} ∨ {b:?}"));
                    }
                    if m.contains(v) && !(a.contains(v) && b.contains(v)) {
                        return Err(format!("γ(meet) too big at {v}: {a:?} ∧ {b:?}"));
                    }
                }
            }
        }
        for &v in values {
            if !V::from_const(v).contains(v) {
                return Err(format!("from_const({v}) does not contain {v}"));
            }
            if V::bottom().contains(v) {
                return Err(format!("⊥ contains {v}"));
            }
            if !V::top().contains(v) {
                return Err(format!("⊤ misses {v}"));
            }
        }
        Ok(())
    }

    /// Checks soundness of forward arithmetic on constants:
    /// `x ∈ γ(a), y ∈ γ(b) ⇒ x∘y ∈ γ(a ∘♯ b)`.
    pub fn check_arith_sound<V: AbstractValue>(sample: &[V], values: &[i64]) -> Result<(), String> {
        for a in sample {
            for b in sample {
                for &x in values {
                    for &y in values {
                        if !a.contains(x) || !b.contains(y) {
                            continue;
                        }
                        let cases: [(&str, Option<i64>, V); 3] = [
                            ("add", x.checked_add(y), a.add(b)),
                            ("sub", x.checked_sub(y), a.sub(b)),
                            ("mul", x.checked_mul(y), a.mul(b)),
                        ];
                        for (op, conc, abs) in cases {
                            if let Some(c) = conc {
                                if !abs.contains(c) {
                                    return Err(format!(
                                        "unsound {op}: {x} ∈ {a:?}, {y} ∈ {b:?}, {c} ∉ {abs:?}"
                                    ));
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Checks soundness of comparison refinement: any concrete pair
    /// satisfying `op` survives `refine_cmp`.
    pub fn check_refine_cmp_sound<V: AbstractValue>(
        sample: &[V],
        values: &[i64],
    ) -> Result<(), String> {
        let ops = [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ];
        for a in sample {
            for b in sample {
                for op in ops {
                    let (ra, rb) = V::refine_cmp(op, a, b);
                    for &x in values {
                        for &y in values {
                            if a.contains(x)
                                && b.contains(y)
                                && op.eval(x, y)
                                && (!ra.contains(x) || !rb.contains(y))
                            {
                                return Err(format!(
                                    "unsound refine {op:?}: ({x},{y}) lost from {a:?},{b:?}"
                                ));
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Checks soundness of backward arithmetic: if `x ∈ γ(l)`, `y ∈ γ(r)`
    /// and `x∘y ∈ γ(out)`, the pair survives the backward operator.
    pub fn check_backward_sound<V: AbstractValue>(
        sample: &[V],
        values: &[i64],
    ) -> Result<(), String> {
        for out in sample {
            for l in sample {
                for r in sample {
                    for &x in values {
                        for &y in values {
                            if !l.contains(x) || !r.contains(y) {
                                continue;
                            }
                            let checks: [(&str, Option<i64>, (V, V)); 3] = [
                                ("back_add", x.checked_add(y), V::back_add(out, l, r)),
                                ("back_sub", x.checked_sub(y), V::back_sub(out, l, r)),
                                ("back_mul", x.checked_mul(y), V::back_mul(out, l, r)),
                            ];
                            for (name, conc, (rl, rr)) in checks {
                                if let Some(c) = conc {
                                    if out.contains(c) && (!rl.contains(x) || !rr.contains(y)) {
                                        return Err(format!(
                                            "unsound {name}: ({x},{y}) lost, out={out:?}, l={l:?}, r={r:?}"
                                        ));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}
