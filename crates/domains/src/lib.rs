//! Abstract domains for the AIR workspace, built from scratch.
//!
//! Two layers are provided:
//!
//! 1. **Value domains** ([`AbstractValue`]) abstract single integers:
//!    [`Interval`], [`Sign`], [`Parity`], [`Constant`], [`Congruence`].
//!    They are lifted pointwise to program stores by the nonrelational
//!    environment domain [`EnvDomain`].
//! 2. **Store domains** ([`Abstraction`]) abstract sets of stores: every
//!    `EnvDomain<V>`, the relational [`OctagonDomain`], the Cartesian
//!    [`PredicateDomain`] and its Boolean (disjunctive) completion
//!    [`BooleanPredicateDomain`]. Domains that additionally implement
//!    [`Transfer`] can drive the generic abstract interpreter
//!    [`Analyzer`] — the standard, possibly *locally incomplete*, analysis
//!    that Abstract Interpretation Repair fixes.
//!
//! How these domains plug into the paper's constructions is catalogued in
//! `PAPER_MAP.md` at the repository root.
//!
//! # Example: the paper's introductory false alarm
//!
//! ```
//! use air_domains::{Analyzer, IntervalEnv, Abstraction};
//! use air_lang::{parse_program, Universe};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let u = Universe::new(&[("x", -8, 8)])?;
//! let dom = IntervalEnv::new(&u);
//! let absval = parse_program("if (x >= 0) then { skip } else { x := 0 - x }")?;
//!
//! // α({odd x}) = [-7, 7]; the interval analysis of AbsVal yields [0, 7],
//! // which wrongly includes 0 — the paper's division-by-zero false alarm.
//! let odd = u.filter(|s| s[0] % 2 != 0);
//! let input = dom.alpha_set(&u, &odd);
//! let out = Analyzer::new(&dom).exec(&absval, &input)?;
//! assert!(dom.gamma_contains(&out, &[0]));
//! # Ok(())
//! # }
//! ```

// Transfer functions run on user-influenced programs: a reachable
// `unwrap()` is an abort, not an error. Tests may still use it freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod affine;
pub mod analyzer;
pub mod congruence;
pub mod constant;
pub mod disjunctive;
pub mod env;
pub mod interval;
pub mod octagon;
pub mod parity;
pub mod predicate;
pub mod product;
pub mod sign;
pub mod traits;
pub mod value;

pub use affine::AffineDomain;
pub use analyzer::{AnalysisError, Analyzer};
pub use congruence::Congruence;
pub use constant::Constant;
pub use disjunctive::Disjunctive;
pub use env::{CongruenceEnv, ConstantEnv, EnvDomain, EnvElem, IntervalEnv, ParityEnv, SignEnv};
pub use interval::{Interval, IntervalBound};
pub use octagon::{Oct, OctagonDomain};
pub use parity::Parity;
pub use predicate::{BooleanPredicateDomain, PredicateDomain};
pub use product::Product;
pub use sign::Sign;
pub use traits::{Abstraction, Transfer};
pub use value::AbstractValue;
