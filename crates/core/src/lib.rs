//! Abstract Interpretation Repair (AIR) — the PLDI 2022 paper's core.
//!
//! Whenever an abstract interpretation raises a false alarm, the abstract
//! domain is *locally incomplete* for some transfer function on some input.
//! AIR repairs the domain by adding the fewest, most abstract new elements
//! — *pointed shells* — that restore local completeness, either forward
//! along the concrete computation or backward along the abstract one.
//!
//! The engine is *enumerative*: it works on the powerset of a finite
//! [`Universe`](air_lang::Universe) of stores, exactly like the paper's
//! pilot implementation (Section 8). Abstract domains are presented as
//! closures over state sets ([`EnumDomain`]), starting from any symbolic
//! domain of `air-domains` (intervals, octagons, signs, predicates, …) and
//! growing by *pointed refinements* `A ⊞ N`.
//!
//! Module map (paper section in parentheses):
//!
//! - [`domain`] — `A ⊞ N` pointed refinements of enumerated domains (§3.1).
//! - [`absint`] — the abstract semantics `⟦·⟧♯_{A⊞N}` with best correct
//!   approximations of basic commands, plus pointed widening (§3.2, §7).
//! - [`local`] — local completeness, the set `L^A_{c,f}`, pointed shells
//!   and the Boolean-guard shell (§4).
//! - [`forward`] — Algorithm 1, `fRepair` (§7.1).
//! - [`backward`] — Algorithm 2, `bRepair` and `inv` (§7.2).
//! - [`verify`] — the user-facing verifier built on Corollary 7.7.
//! - [`session`] — incremental re-repair: warm [`RepairSession`]s whose
//!   re-verification cost tracks the structural distance of an edit.
//! - [`summarize`](mod@summarize) — renders repaired abstract elements as unions of boxes
//!   so they print like the paper's `P̄`, `R₁…R₃`, `V̄`.
//!
//! Every definition, theorem and algorithm this crate implements
//! (Definitions 4.1/4.3, Theorems 4.4/4.9/4.11, Algorithms 1–2,
//! Definition 7.11, Corollary 7.7) is mapped to its function in
//! `PAPER_MAP.md` at the repository root. All engines memoize through
//! [`air_lang::SemCache`] by default; `uncached()` constructors give the
//! bitwise-identical reference path.
//!
//! # Quickstart (the paper's introduction, mechanized)
//!
//! ```
//! use air_core::{EnumDomain, Verifier};
//! use air_domains::IntervalEnv;
//! use air_lang::{parse_program, Universe};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // AbsVal: |x| of an odd input is never 0, but Int cannot prove it.
//! let prog = parse_program("if (x >= 0) then { skip } else { x := 0 - x }")?;
//! let u = Universe::new(&[("x", -8, 8)])?;
//! let odd = u.filter(|s| s[0] % 2 != 0);
//! let spec = u.filter(|s| s[0] != 0);
//!
//! let dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
//! let verifier = Verifier::new(&u);
//! let verdict = verifier.backward(dom, &prog, &odd, &spec)?;
//! assert!(verdict.is_proved());
//! # Ok(())
//! # }
//! ```

// Repair engines run on user-influenced programs: a reachable
// `unwrap()` is an abort, not an error. Tests may still use it freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
// The hot path lives here: a clone of a `StateSet` or an `EnumDomain`
// copies whole bitsets, so a redundant one is a real regression.
#![deny(clippy::redundant_clone)]

pub mod absint;
pub mod backward;
pub mod domain;
pub mod forward;
pub mod global;
pub mod lcl;
pub mod local;
pub mod oracles;
pub mod session;
pub mod summarize;
pub mod symbolic;
pub mod verify;

pub use absint::{AbstractSemantics, StarStrategy};
pub use backward::{BackwardOutcome, BackwardRepair, UnrollStrategy};
pub use domain::EnumDomain;
pub use forward::{ForwardRepair, PartialRepair, RepairError, RepairOutcome, RepairRule};
pub use lcl::{Derivation, Lcl, LclError, SpecVerdict, Triple};
pub use local::{LocalCompleteness, ShellResult};
pub use oracles::{run_oracle, OracleInstance, OracleOutcome, ORACLES};
pub use session::{RepairSession, ReuseStats, SessionOutcome};
pub use summarize::{summarize, BoxSummary};
pub use symbolic::{SymDomain, SymbolicAbsint, SymbolicBackward};
pub use verify::{Verdict, Verifier};
