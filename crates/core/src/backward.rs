//! Backward repair — Algorithm 2 of the paper (`bRepair` and `inv`).
//!
//! Backward repair works on *abstract* inputs and weakest liberal
//! preconditions: it never needs the concrete trajectory, and after a
//! repair it continues along the existing abstract computation instead of
//! restarting (the key advantage over forward repair, Section 5 (iv)).
//!
//! The implementation follows the paper's pseudocode line by line; the
//! Kleene-star unroll can use either the abstract join (the printed
//! algorithm) or the pointed widening `∇_N` of Definition 7.11 (the
//! widened variant of Section 7.2, Example 7.13).

use std::collections::HashMap;

use air_lang::ast::Reg;
use air_lang::{SemCache, StateSet, TermId, TermNode, Universe, Wlp};
use air_lattice::{ExhaustReason, Exhaustion, Governor};
use air_trace::{EventKind, Tracer};

use crate::absint::AbstractSemantics;
use crate::domain::EnumDomain;
use crate::forward::RepairError;

/// Arena id of a discovered refinement point within one repair run.
type PointId = u32;

/// How the star case grows its unrolled input (line 20 of Algorithm 2).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum UnrollStrategy {
    /// `P ∨_{A⊞N} R` — the printed algorithm; exact on finite universes.
    #[default]
    Join,
    /// `P ∇_N (P ∨_{A⊞N} R)` — the pointed-widening variant
    /// (Definition 7.11), guaranteeing termination on non-ACC domains.
    PointedWidening,
}

/// The outcome of a backward repair (Theorem 7.6).
#[derive(Clone, Debug)]
pub struct BackwardOutcome {
    /// The greatest valid input `V = V⟨P, r, S⟩`, expressible in `A ⊞ N'`.
    pub valid_input: StateSet,
    /// The added points `N'` (in discovery order, deduplicated).
    pub points: Vec<StateSet>,
    /// Number of recursive `bRepair` calls.
    pub calls: usize,
    /// Number of `inv` fixpoint iterations across all loops.
    pub inv_iterations: usize,
}

impl BackwardOutcome {
    /// The repaired domain `A ⊞ N'`.
    pub fn domain(&self, base: &EnumDomain) -> EnumDomain {
        base.with_points(self.points.iter().cloned())
    }
}

/// The backward repair strategy (Algorithm 2).
///
/// # Example
///
/// ```
/// use air_core::{BackwardRepair, EnumDomain};
/// use air_domains::IntervalEnv;
/// use air_lang::{parse_program, Universe};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Example 7.8: while (x > 0) { x := x - 1; y := y - 1 } with
/// // Spec = (y = 0). Backward repair discovers the relational invariant
/// // y = x that intervals cannot express.
/// let u = Universe::new(&[("x", -1, 8), ("y", -1, 8)])?;
/// let dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
/// let prog = parse_program("while (x > 0) do { x := x - 1; y := y - 1 }")?;
/// let pre = u.filter(|s| s[0] > 0 && s[0] <= 5);
/// let spec = u.filter(|s| s[0] <= 0 || s[1] != 0 || s[1] == 0); // ⊤ here; see tests
/// let out = BackwardRepair::new(&u).repair(&dom, &u.full(), &prog, &spec)?;
/// assert!(out.valid_input.is_subset(&u.full()));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct BackwardRepair<'u> {
    universe: &'u Universe,
    wlp: Wlp<'u>,
    strategy: UnrollStrategy,
    cache: Option<SemCache>,
    max_calls: usize,
    trace: Tracer,
    governor: Governor,
}

/// Per-repair mutable state. The recursion used to clone whole
/// `Vec<StateSet>` point lists at every `bRepair` split; the arena keeps
/// each distinct point once (`points`, in discovery order) and the
/// in-flight `N` travels as a small `Vec<PointId>` — splitting copies a
/// handful of `u32`s.
struct Ctx<'u> {
    calls: usize,
    inv_iterations: usize,
    max_calls: usize,
    /// Hoisted abstract interpreter: one engine for the whole run instead
    /// of one per `abs_exec` call.
    sem: AbstractSemantics<'u>,
    /// The strategy's cache (arena and memo tables), when caching is on.
    cache: Option<SemCache>,
    /// Whether `wlp` goes through the cache's memo table. Decided once
    /// per run by [`SemCache::demote_for`]: small universes run with the
    /// tables demoted and zero per-call probes in the hot loop.
    use_tables: bool,
    /// The point arena: every distinct point discovered, in order.
    points: Vec<StateSet>,
    /// Reverse index of `points` for O(1) dedup on push.
    ids: HashMap<StateSet, PointId>,
    /// The longest point set seen on any `bRepair` path — the best
    /// partial refinement to report if the budget runs out (the error
    /// path of Algorithm 2 discards the in-flight `N`).
    best_points: Vec<PointId>,
    /// Refinement domains `A ⊞ N` by point-id list: `with_points` re-runs
    /// expressibility closures per point, so recursion siblings sharing
    /// an `N` must share the built domain instead of rebuilding it.
    dom_cache: HashMap<Vec<PointId>, EnumDomain>,
}

impl<'u> Ctx<'u> {
    /// Arena id for `p`, interning it on first sight.
    fn point_id(&mut self, p: &StateSet) -> PointId {
        if let Some(&id) = self.ids.get(p) {
            return id;
        }
        let id = PointId::try_from(self.points.len()).expect("point arena overflow");
        self.points.push(p.clone());
        self.ids.insert(p.clone(), id);
        id
    }

    /// Pushes `p` onto `n` unless already present; reports whether it was
    /// new (so call sites only trace points that actually refine).
    fn push(&mut self, n: &mut Vec<PointId>, p: &StateSet) -> bool {
        let id = self.point_id(p);
        if n.contains(&id) {
            false
        } else {
            n.push(id);
            true
        }
    }

    fn union_ids(a: Vec<PointId>, b: Vec<PointId>) -> Vec<PointId> {
        let mut out = a;
        for id in b {
            if !out.contains(&id) {
                out.push(id);
            }
        }
        out
    }

    /// The state sets behind an id list (outcome boundaries only).
    fn materialize(&self, n: &[PointId]) -> Vec<StateSet> {
        n.iter()
            .map(|&id| self.points[id as usize].clone())
            .collect()
    }

    /// The arena children of `rid`, aligned with the structural children
    /// of the matched [`Reg`] node (`None`s when the run is uncached).
    /// Interning is structural, so a `Seq` reg always resolves to a `Seq`
    /// node, and so on.
    fn child_ids(&self, rid: Option<TermId>) -> (Option<TermId>, Option<TermId>) {
        match (rid, &self.cache) {
            (Some(id), Some(cache)) => match cache.arena().node(id) {
                TermNode::Seq(a, b) | TermNode::Choice(a, b) => (Some(a), Some(b)),
                TermNode::Star(body) => (Some(body), None),
                TermNode::Basic(_) => (None, None),
            },
            _ => (None, None),
        }
    }

    /// The refinement `base ⊞ N` for an id list, built once per distinct
    /// `N` and shared by every recursive call that reaches it.
    fn domain<'a>(
        dom_cache: &'a mut HashMap<Vec<PointId>, EnumDomain>,
        points: &[StateSet],
        base: &EnumDomain,
        n: &[PointId],
    ) -> &'a EnumDomain {
        dom_cache
            .entry(n.to_vec())
            .or_insert_with(|| base.with_points(n.iter().map(|&id| points[id as usize].clone())))
    }
}

impl<'u> BackwardRepair<'u> {
    /// Creates the strategy with exact joins, a generous call budget and a
    /// fresh shared cache (the recursive `bRepair` calls re-derive the
    /// same `wlp` and transfer images constantly).
    pub fn new(universe: &'u Universe) -> Self {
        Self::with_cache(universe, SemCache::new())
    }

    /// Creates the strategy memoizing into `cache`.
    pub fn with_cache(universe: &'u Universe, cache: SemCache) -> Self {
        BackwardRepair {
            universe,
            wlp: Wlp::new(universe),
            strategy: UnrollStrategy::Join,
            cache: Some(cache),
            max_calls: 1_000_000,
            trace: Tracer::disabled(),
            governor: Governor::unlimited(),
        }
    }

    /// Creates the strategy without memoization (the reference path).
    pub fn uncached(universe: &'u Universe) -> Self {
        BackwardRepair {
            universe,
            wlp: Wlp::new(universe),
            strategy: UnrollStrategy::Join,
            cache: None,
            max_calls: 1_000_000,
            trace: Tracer::disabled(),
            governor: Governor::unlimited(),
        }
    }

    /// The shared semantic cache, if caching is enabled.
    pub fn cache(&self) -> Option<&SemCache> {
        self.cache.as_ref()
    }

    /// Emits `incompleteness`/`shell_point`/`widening` events (and the
    /// cache's hit/miss/bypass telemetry) through `tracer`.
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        if let Some(cache) = &self.cache {
            cache.set_tracer(&tracer);
        }
        self.trace = tracer;
        self
    }

    /// Selects the star unroll strategy.
    pub fn unroll_strategy(mut self, strategy: UnrollStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the recursion budget.
    pub fn max_calls(mut self, max: usize) -> Self {
        self.max_calls = max;
        self
    }

    /// Enforces `governor` at every `bRepair` entry, `inv` iteration and
    /// (through the shared handle) the abstract fixpoint it runs:
    /// exhaustion surfaces as [`RepairError::Exhausted`] carrying the
    /// best partial refinement and a sound partial invariant.
    pub fn governor(mut self, governor: Governor) -> Self {
        self.governor = governor;
        self
    }

    /// Algorithm 2 entry point: `bRepair_A(∅, A(P), r, S)`.
    ///
    /// `p` is closed in the base domain first (Lemma 7.5 suggests starting
    /// from an expressible input; passing any `p` analyzes `A(p)`).
    ///
    /// # Errors
    ///
    /// [`RepairError::Sem`] on evaluation failures;
    /// [`RepairError::Exhausted`] if the call budget or the configured
    /// [`Governor`] runs out — the error then carries the deepest point
    /// set reached and a sound partial invariant in that refinement.
    pub fn repair(
        &self,
        base: &EnumDomain,
        p: &StateSet,
        r: &Reg,
        spec: &StateSet,
    ) -> Result<BackwardOutcome, RepairError> {
        let _span = self.trace.span(|| "repair.backward".to_string());
        // One engine-level bypass decision for the whole run (counted and
        // traced once): at or under the threshold the wlp/exec memo
        // tables are demoted — they cannot amortize on sets this small —
        // so the hot loops carry no per-call probes either way.
        let use_tables = self
            .cache
            .as_ref()
            .is_some_and(|c| !c.demote_for(self.universe.size()));
        // Intern the program once; the recursion then travels in id space
        // and every abstract image lookup keys on a `u32`. On a demoted
        // (small) universe the image memo only pays off when warm, so the
        // first sight of a program — `fresh_nodes > 0`, nothing memoized
        // under these ids yet — runs the pure reference path instead of
        // funding memo writes it will never read; re-repairs of a known
        // program take the id path and reap them.
        let interned = self.cache.as_ref().map(|c| c.intern(r));
        let use_ids = match &interned {
            Some(outcome) => use_tables || outcome.fresh_nodes == 0,
            None => false,
        };
        let cache = self.cache.clone().filter(|_| use_ids);
        let sem = match &cache {
            Some(cache) => AbstractSemantics::with_cache(self.universe, cache.clone()),
            None => AbstractSemantics::uncached(self.universe),
        }
        .governor(self.governor.clone());
        let root = interned.filter(|_| use_ids).map(|o| o.root);
        let mut ctx = Ctx {
            calls: 0,
            inv_iterations: 0,
            max_calls: self.max_calls,
            sem,
            cache,
            use_tables,
            points: Vec::new(),
            ids: HashMap::new(),
            best_points: Vec::new(),
            dom_cache: HashMap::new(),
        };
        let p_hat = base.close(p);
        let (valid_input, points) =
            match self.brepair(base, Vec::new(), p_hat, r, root, spec, &mut ctx) {
                Ok((v, n)) => (v, ctx.materialize(&n)),
                Err(e) => return Err(self.exhausted(e, base, &ctx, r, p)),
            };
        self.trace.emit_detail_with(|| EventKind::Counter {
            name: "backward.calls".to_string(),
            delta: ctx.calls as u64,
        });
        self.trace.emit_detail_with(|| EventKind::Counter {
            name: "backward.inv_iterations".to_string(),
            delta: ctx.inv_iterations as u64,
        });
        Ok(BackwardOutcome {
            valid_input,
            points,
            calls: ctx.calls,
            inv_iterations: ctx.inv_iterations,
        })
    }

    /// Enriches a budget cutoff with the best partial result: the deepest
    /// point set any `bRepair` path reached, plus the abstract invariant
    /// in that partial refinement — sound by construction (abstract
    /// interpretation over-approximates in *any* pointed refinement;
    /// only the precision of Thm. 7.6 needs the completed repair).
    fn exhausted(
        &self,
        err: RepairError,
        base: &EnumDomain,
        ctx: &Ctx,
        r: &Reg,
        p: &StateSet,
    ) -> RepairError {
        let RepairError::Exhausted(mut partial) = err else {
            return err;
        };
        if partial.points.is_empty() {
            partial.points = ctx.materialize(&ctx.best_points);
        }
        if partial.invariant.is_none() {
            // Ungoverned pass: the absint fixpoint is bounded by the
            // universe size, so this terminates despite the spent budget.
            let dom = base.with_points(partial.points.iter().cloned());
            let sem = match &self.cache {
                Some(cache) => AbstractSemantics::with_cache(self.universe, cache.clone()),
                None => AbstractSemantics::uncached(self.universe),
            };
            partial.invariant = sem.exec(&dom, r, &dom.close(p)).ok();
        }
        self.trace.emit_with(|| EventKind::BudgetExhausted {
            phase: partial.exhaustion.phase.clone(),
            spent: partial.exhaustion.spent,
            reason: partial.exhaustion.reason.name().to_string(),
        });
        RepairError::Exhausted(partial)
    }

    /// `⟦r⟧♯_{A⊞N} P` in the current refinement (domain and interpreter
    /// both come from the per-run context caches).
    fn abs_exec(
        &self,
        base: &EnumDomain,
        ctx: &mut Ctx<'_>,
        n: &[PointId],
        r: &Reg,
        rid: Option<TermId>,
        p: &StateSet,
    ) -> Result<StateSet, RepairError> {
        let Ctx {
            sem,
            points,
            dom_cache,
            ..
        } = ctx;
        let dom = Ctx::domain(dom_cache, points, base, n);
        let a = dom.close(p);
        Ok(match rid {
            Some(id) => sem.exec_id(dom, id, &a)?,
            None => sem.exec(dom, r, &a)?,
        })
    }

    /// `V⟨P, r, S⟩ = P ∩ wlp(r, S)`, through the run's effective cache
    /// when enabled.
    fn valid_input(
        &self,
        ctx: &Ctx<'_>,
        p: &StateSet,
        r: &Reg,
        rid: Option<TermId>,
        s: &StateSet,
    ) -> Result<StateSet, RepairError> {
        let w = match (&ctx.cache, rid) {
            (Some(cache), Some(id)) if ctx.use_tables => cache.wlp_id(&self.wlp, id, s)?,
            (Some(cache), None) if ctx.use_tables => cache.wlp_reg(&self.wlp, r, s)?,
            _ => self.wlp.reg(r, s)?,
        };
        Ok(p.intersection(&w))
    }

    fn trace_point(&self, rule: &str, exp: &impl std::fmt::Display, point: &StateSet) {
        self.trace.emit_detail_with(|| EventKind::ShellPoint {
            rule: rule.to_string(),
            exp: exp.to_string(),
            point_size: point.len(),
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn brepair(
        &self,
        base: &EnumDomain,
        mut n: Vec<PointId>,
        p: StateSet,
        r: &Reg,
        rid: Option<TermId>,
        s: &StateSet,
        ctx: &mut Ctx<'_>,
    ) -> Result<(StateSet, Vec<PointId>), RepairError> {
        ctx.calls += 1;
        self.governor.check_with(|| "repair.backward".to_string())?;
        if ctx.calls > ctx.max_calls {
            return Err(Exhaustion {
                phase: "repair.backward.max_calls".to_string(),
                spent: ctx.calls as u64,
                reason: ExhaustReason::Fuel,
            }
            .into());
        }
        if n.len() > ctx.best_points.len() {
            ctx.best_points = n.clone();
        }
        // Line 2: if ⟦r⟧♯_{A⊞N} P ≤ S then return ⟨P, N⟩.
        if self.abs_exec(base, ctx, &n, r, rid, &p)?.is_subset(s) {
            return Ok((p, n));
        }
        match r {
            // Lines 4–6: basic expression.
            Reg::Basic(e) => {
                // Reaching this case means line 2 failed: the abstract
                // image of `e` escapes `S`, a local incompleteness
                // witness in the sense of Def. 4.1.
                self.trace.emit_detail_with(|| EventKind::Incompleteness {
                    exp: e.to_string(),
                    input_size: p.len(),
                });
                let v = self.valid_input(ctx, &p, r, rid, s)?;
                let q = s.intersection(&self.abs_exec(base, ctx, &n, r, rid, &p)?);
                if ctx.push(&mut n, &v) {
                    self.trace_point("bRepair basic: V⟨P,e,S⟩ (Alg 2 l.5)", e, &v);
                }
                if ctx.push(&mut n, &q) {
                    self.trace_point("bRepair basic: S ∧ ⟦e⟧♯P (Alg 2 l.5)", e, &q);
                }
                Ok((v, n))
            }
            // Lines 7–10: sequential composition.
            Reg::Seq(r0, r1) => {
                let (id0, id1) = ctx.child_ids(rid);
                let mid = self.abs_exec(base, ctx, &n, r0, id0, &p)?;
                let (v1, n1) = self.brepair(base, n.clone(), mid, r1, id1, s, ctx)?;
                let (v0, n0) = self.brepair(base, n, p, r0, id0, &v1, ctx)?;
                Ok((v0, Ctx::union_ids(n0, n1)))
            }
            // Lines 11–15: choice.
            Reg::Choice(r0, r1) => {
                let (id0, id1) = ctx.child_ids(rid);
                let (v0, n0) = self.brepair(base, n.clone(), p.clone(), r0, id0, s, ctx)?;
                let (v1, n1) = self.brepair(base, n.clone(), p.clone(), r1, id1, s, ctx)?;
                let q = s.intersection(&self.abs_exec(base, ctx, &n, r, rid, &p)?);
                let mut out = Ctx::union_ids(n0, n1);
                if ctx.push(&mut out, &q) {
                    self.trace_point("bRepair choice: S ∧ ⟦r⟧♯P (Alg 2 l.14)", r, &q);
                }
                Ok((v0.intersection(&v1), out))
            }
            // Lines 16–21: Kleene star.
            Reg::Star(r0) => {
                let (body_id, _) = ctx.child_ids(rid);
                let r_step = self.abs_exec(base, ctx, &n, r0, body_id, &p)?;
                if r_step.is_subset(&p) {
                    self.inv(base, n, p, r0, body_id, s.clone(), ctx)
                } else {
                    let Ctx {
                        points, dom_cache, ..
                    } = &mut *ctx;
                    let dom = Ctx::domain(dom_cache, points, base, &n);
                    let grown = dom.join(&p, &r_step);
                    let unrolled = match self.strategy {
                        UnrollStrategy::Join => grown,
                        UnrollStrategy::PointedWidening => {
                            self.trace.emit_detail_with(|| EventKind::Widening {
                                site: "backward.star".to_string(),
                            });
                            dom.pointed_widen(&p, &grown)
                        }
                    };
                    let (v1, n1) = self.brepair(base, n, unrolled, r, rid, s, ctx)?;
                    Ok((p.intersection(&v1), n1))
                }
            }
        }
    }

    /// Lines 22–27: the loop-invariant fixpoint `inv_A`.
    #[allow(clippy::too_many_arguments)]
    fn inv(
        &self,
        base: &EnumDomain,
        n: Vec<PointId>,
        p: StateSet,
        r: &Reg,
        rid: Option<TermId>,
        mut v1: StateSet,
        ctx: &mut Ctx<'_>,
    ) -> Result<(StateSet, Vec<PointId>), RepairError> {
        loop {
            ctx.inv_iterations += 1;
            self.governor
                .check_with(|| "repair.backward.inv".to_string())?;
            let v0 = p.intersection(&v1);
            let mut n0 = n.clone();
            if ctx.push(&mut n0, &v0) {
                self.trace_point("bRepair inv: P ∧ V₁ (Alg 2 l.24)", r, &v0);
            }
            let (next_v1, n1) = self.brepair(base, n0, v0.clone(), r, rid, &v0, ctx)?;
            if next_v1 == v0 {
                return Ok((next_v1, n1));
            }
            v1 = next_v1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalCompleteness;
    use air_domains::{IntervalEnv, OctagonDomain};
    use air_lang::{parse_program, Concrete};

    /// Example 7.8: the countdown loop. Backward repair on Int discovers
    /// the relational invariant x ∈ [0, K] ∧ y = x and its companions.
    #[test]
    fn example_7_8_countdown() {
        // Scaled-down bounds (the paper uses 0 < x ≤ 100). The universe
        // gives y enough headroom below (−10 ≤ −2 − K) that no run from
        // A(pre) is truncated by the universe restriction.
        let k = 8;
        let u = Universe::new(&[("x", -2, 10), ("y", -10, 10)]).unwrap();
        let dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
        let prog = parse_program("while (x > 0) do { x := x - 1; y := y - 1 }").unwrap();
        // P = 0 < x ≤ K ∧ y ≥ −2, Spec = y = 0.
        let pre = u.filter(|s| s[0] > 0 && s[0] <= k && s[1] >= -2);
        let spec = u.filter(|s| s[1] == 0);
        let out = BackwardRepair::new(&u)
            .repair(&dom, &pre, &prog, &spec)
            .unwrap();
        // The expected greatest valid input within A(pre):
        // A(pre) = x ∈ [1, K] × y ∈ [-2, 10]; valid iff y = x.
        let expected = u.filter(|s| s[0] >= 1 && s[0] <= k && s[1] == s[0]);
        assert_eq!(out.valid_input, expected, "R1 = x ∈ [1,K] ∧ y = x");
        // The relational invariant P̄ = x ∈ [0, K] ∧ y = x is among the
        // added points, up to the universe-restriction fringe (stores whose
        // run would fall below y = −10 have no behaviour and are vacuously
        // valid, so wlp-derived points include them).
        let escape_fringe = u.filter(|s| s[0] > 0 && s[1] - s[0] < -10);
        let p_bar = u.filter(|s| (0..=k).contains(&s[0]) && s[1] == s[0]);
        assert!(
            out.points
                .iter()
                .any(|p| p.difference(&escape_fringe) == p_bar),
            "P̄ missing among {} points",
            out.points.len()
        );
        // Theorem 7.6(b): ⟦r⟧♯_{A⊞N'} V ≤ S.
        let repaired = out.domain(&dom);
        let asem = AbstractSemantics::new(&u);
        let abs_out = asem
            .exec(&repaired, &prog, &repaired.close(&out.valid_input))
            .unwrap();
        assert!(abs_out.is_subset(&spec));
        // Theorem 7.6(a): V is expressible in A ⊞ N'.
        assert!(repaired.is_expressible(&out.valid_input));
        // Theorem 7.6(c): V = V⟨P̂, r, S⟩ — checked against brute force.
        let wlp = Wlp::new(&u);
        let brute = wlp.valid_input(&dom.close(&pre), &prog, &spec).unwrap();
        assert_eq!(out.valid_input, brute);
    }

    /// Corollary 7.7: for any P' ≤ P̂, ⟦r⟧P' ≤ Spec ⇔ P' ≤ V.
    #[test]
    fn corollary_7_7_decides_all_subinputs() {
        let u = Universe::new(&[("x", -2, 6), ("y", -2, 6)]).unwrap();
        let dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
        let prog = parse_program("while (x > 0) do { x := x - 1; y := y - 1 }").unwrap();
        let pre = u.filter(|s| s[0] > 0 && s[0] <= 3);
        let spec = u.filter(|s| s[1] == 0);
        let out = BackwardRepair::new(&u)
            .repair(&dom, &pre, &prog, &spec)
            .unwrap();
        let sem = Concrete::new(&u);
        // Sample sub-inputs of A(pre).
        let p_hat = dom.close(&pre);
        let samples = [
            u.filter(|s| s[0] == 2 && s[1] == 2),
            u.filter(|s| s[0] == 2 && s[1] == 3),
            u.filter(|s| s[0] >= 1 && s[0] <= 3 && s[1] == s[0]),
            u.filter(|s| s[0] == 1 && s[1] <= 1),
        ];
        for p_prime in samples {
            let p_prime = p_prime.intersection(&p_hat);
            let concrete_ok = sem.exec(&prog, &p_prime).unwrap().is_subset(&spec);
            let decided_ok = p_prime.is_subset(&out.valid_input);
            assert_eq!(concrete_ok, decided_ok);
        }
    }

    /// The AbsVal introduction by backward repair: proves x ≠ 0 on odds.
    #[test]
    fn absval_backward() {
        let u = Universe::new(&[("x", -8, 8)]).unwrap();
        let dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
        let prog = parse_program("if (x >= 0) then { skip } else { x := 0 - x }").unwrap();
        let odd = u.filter(|s| s[0] % 2 != 0);
        let spec = u.filter(|s| s[0] != 0);
        let out = BackwardRepair::new(&u)
            .repair(&dom, &odd, &prog, &spec)
            .unwrap();
        // A(odd) = [-7,7]; the valid inputs are exactly the nonzero ones.
        assert_eq!(out.valid_input, u.filter(|s| s[0] != 0 && s[0].abs() <= 7));
        // odd ⊆ V ⇒ the spec holds on the original input (Cor. 7.7).
        assert!(odd.is_subset(&out.valid_input));
    }

    /// An invalid spec is refuted: V < P and a violating sub-input exists.
    #[test]
    fn refutation_produces_strict_valid_input() {
        let u = Universe::new(&[("x", -8, 8)]).unwrap();
        let dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
        let prog = parse_program("x := x + 1").unwrap();
        let pre = u.filter(|s| (0..=5).contains(&s[0]));
        let spec = u.filter(|s| s[0] <= 3);
        let out = BackwardRepair::new(&u)
            .repair(&dom, &pre, &prog, &spec)
            .unwrap();
        assert_eq!(out.valid_input, u.filter(|s| (0..=2).contains(&s[0])));
        assert!(!pre.is_subset(&out.valid_input)); // refuted
    }

    /// The strategy repairs locally: every added point makes some proof
    /// obligation complete; the final domain is locally complete for the
    /// program on the valid input.
    #[test]
    fn final_domain_locally_complete_on_valid_input() {
        let u = Universe::new(&[("x", -2, 6), ("y", -2, 6)]).unwrap();
        let dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
        let prog = parse_program("while (x > 0) do { x := x - 1; y := y - 1 }").unwrap();
        let pre = u.filter(|s| s[0] > 0 && s[0] <= 3);
        let spec = u.filter(|s| s[1] == 0);
        let out = BackwardRepair::new(&u)
            .repair(&dom, &pre, &prog, &spec)
            .unwrap();
        let repaired = out.domain(&dom);
        let lc = LocalCompleteness::new(&u);
        assert!(lc.check(&repaired, &prog, &out.valid_input).unwrap());
    }

    /// Pointed widening (Definition 7.11 / Example 7.13) yields the same
    /// verdicts, possibly with different intermediate points.
    #[test]
    fn widened_unroll_agrees_on_verdict() {
        let u = Universe::new(&[("i", 0, 8), ("j", 0, 20)]).unwrap();
        let dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
        let prog =
            parse_program("i := 1; j := 0; while (i <= 5) do { j := j + i; i := i + 1 }").unwrap();
        let spec = u.filter(|s| s[1] <= 15);
        let exact = BackwardRepair::new(&u)
            .repair(&dom, &u.full(), &prog, &spec)
            .unwrap();
        let widened = BackwardRepair::new(&u)
            .unroll_strategy(UnrollStrategy::PointedWidening)
            .repair(&dom, &u.full(), &prog, &spec)
            .unwrap();
        assert_eq!(exact.valid_input, u.full());
        assert_eq!(widened.valid_input, u.full());
    }

    /// Octagons start closer to complete: fewer points are needed for the
    /// countdown loop than with intervals.
    #[test]
    fn octagon_base_needs_fewer_points() {
        let u = Universe::new(&[("x", -2, 6), ("y", -2, 6)]).unwrap();
        let int_dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
        let oct_dom = EnumDomain::from_abstraction(&u, OctagonDomain::new(&u));
        let prog = parse_program("while (x > 0) do { x := x - 1; y := y - 1 }").unwrap();
        let pre = u.filter(|s| s[0] > 0 && s[0] <= 3);
        let spec = u.filter(|s| s[1] == 0);
        let br = BackwardRepair::new(&u);
        let int_out = br.repair(&int_dom, &pre, &prog, &spec).unwrap();
        let oct_out = br.repair(&oct_dom, &pre, &prog, &spec).unwrap();
        assert_eq!(int_out.valid_input, oct_out.valid_input);
        assert!(
            oct_out.points.len() <= int_out.points.len(),
            "Oct should need no more points than Int ({} vs {})",
            oct_out.points.len(),
            int_out.points.len()
        );
    }

    #[test]
    fn budget_exhaustion_reports() {
        let u = Universe::new(&[("x", 0, 4)]).unwrap();
        let dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
        let prog = parse_program("while (x < 4) do { x := x + 1 }").unwrap();
        let err = BackwardRepair::new(&u)
            .max_calls(1)
            .repair(&dom, &u.of_values([0]), &prog, &u.empty())
            .unwrap_err();
        let Some(exhaustion) = err.exhaustion() else {
            panic!("expected exhaustion, got {err:?}");
        };
        assert_eq!(exhaustion.phase, "repair.backward.max_calls");
        assert_eq!(exhaustion.reason, ExhaustReason::Fuel);
    }

    #[test]
    fn governed_exhaustion_carries_sound_partial_invariant() {
        let u = Universe::new(&[("x", -2, 6), ("y", -2, 6)]).unwrap();
        let dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
        let prog = parse_program("while (x > 0) do { x := x - 1; y := y - 1 }").unwrap();
        let pre = u.filter(|s| s[0] > 0 && s[0] <= 3);
        let spec = u.filter(|s| s[1] == 0);
        // Generous enough to make some progress, tight enough to trip
        // before Algorithm 2 converges.
        let g = Governor::new(air_lattice::Budget::fuel(8));
        let err = BackwardRepair::new(&u)
            .governor(g)
            .repair(&dom, &pre, &prog, &spec)
            .unwrap_err();
        let RepairError::Exhausted(partial) = err else {
            panic!("expected exhaustion, got {err:?}");
        };
        // The partial invariant over-approximates the concrete reachable
        // states from A(pre) — soundness survives the cutoff.
        let p_hat = dom.close(&pre);
        let conc = Concrete::new(&u).exec(&prog, &p_hat).unwrap();
        let inv = partial.invariant.expect("partial invariant computed");
        assert!(conc.is_subset(&inv), "partial invariant must stay sound");
    }
}
