//! Native symbolic backward repair — Algorithm 2 on decision diagrams.
//!
//! The generic engines in this crate run on explicit [`StateSet`] bitsets
//! and [`EnumDomain`] closures; routing their *semantic* queries through a
//! symbolic [`SemCache`](air_lang::SemCache) (the Level-A backend switch)
//! accelerates `exec`/`wlp`/`sat` but still pays `O(|Σ|)` per abstract
//! closure, because `EnumDomain` wraps an enumerated `γ∘α`. On universes
//! with 10⁶+ states that closure cost dominates and the bitset pipeline
//! cannot finish within any reasonable budget.
//!
//! This module is the Level-B replacement for the one base domain whose
//! closure has a cheap symbolic form: intervals. [`SymDomain`] represents
//! the pointed refinement `Int ⊞ N` directly on [`SymState`] diagrams —
//! the base closure is the bounding box of the diagram (exactly
//! `γ(α(c))` of `IntervalEnv` on a finite universe), and added points are
//! themselves diagrams, so the refined closure
//! `A_N(c) = A(c) ∩ ⋂{p ∈ N | c ⊆ p}` never enumerates a store.
//! [`SymbolicAbsint`] and [`SymbolicBackward`] are line-by-line ports of
//! [`AbstractSemantics`](crate::AbstractSemantics) and
//! [`BackwardRepair`](crate::BackwardRepair) over that representation;
//! every intermediate set they compute equals the bitset engines'
//! (the symbolic concrete semantics is exact, the closures coincide, and
//! the fixpoint loops mirror each other bound for bound), so verdicts are
//! byte-identical — the property the differential fuzz axis 9 and the
//! backend-agreement suites check on enumerable universes.

use std::collections::HashMap;

use air_lang::ast::Reg;
use air_lang::{StateSet, SymEngine, Universe};
use air_lattice::{ExhaustReason, Exhaustion, Governor, SymShape, SymState};
use air_trace::{EventKind, Tracer};

use crate::absint::StarStrategy;
use crate::backward::{BackwardOutcome, UnrollStrategy};
use crate::forward::RepairError;

/// Arena id of a discovered refinement point within one repair run.
type PointId = u32;

/// The pointed refinement `Int ⊞ N` over decision diagrams.
///
/// The base closure is the bounding box `γ(α(c))` of the interval
/// abstraction: on a finite universe `IntervalEnv`'s `α` is the per-variable
/// hull and `γ` clamps to the variable ranges, which is exactly
/// [`SymState::hull`] re-materialized with [`SymState::from_box`]. Points
/// refine it by meets, as in Section 3.1 of the paper.
#[derive(Clone, Debug)]
pub struct SymDomain {
    shape: SymShape,
    var_ranges: Vec<(i64, i64)>,
    points: Vec<SymState>,
}

impl SymDomain {
    /// The interval base domain (no added points) over `universe`.
    pub fn interval(universe: &Universe) -> Self {
        let var_ranges: Vec<(i64, i64)> = (0..universe.num_vars())
            .map(|i| universe.var_range(i))
            .collect();
        SymDomain {
            shape: SymShape::new(&var_ranges),
            var_ranges,
            points: Vec::new(),
        }
    }

    /// The added points `N`, in insertion order.
    pub fn points(&self) -> &[SymState] {
        &self.points
    }

    /// The base closure `Int(c)`: the bounding box of `c`.
    pub fn base_close(&self, c: &SymState) -> SymState {
        match c.hull() {
            Some(bx) => SymState::from_box(&self.shape, &bx),
            None => SymState::empty(&self.shape),
        }
    }

    /// The refined closure `A_N(c) = Int(c) ∩ ⋂{p ∈ N | c ⊆ p}`.
    pub fn close(&self, c: &SymState) -> SymState {
        let mut acc = self.base_close(c);
        for p in &self.points {
            if c.is_subset(p) {
                acc = acc.intersect(p);
            }
        }
        acc
    }

    /// Returns `true` if `c` is expressible: `A_N(c) = c`.
    pub fn is_expressible(&self, c: &SymState) -> bool {
        self.close(c) == *c
    }

    /// Adds a point (the pointed refinement `A ⊞ {p}`). Returns `false`
    /// if `p` was already expressible (no-op), mirroring
    /// [`EnumDomain::add_point`](crate::EnumDomain::add_point).
    pub fn add_point(&mut self, p: SymState) -> bool {
        if self.is_expressible(&p) {
            return false;
        }
        self.points.push(p);
        true
    }

    /// A fresh domain with the given extra points (`self` unchanged).
    pub fn with_points<I: IntoIterator<Item = SymState>>(&self, ps: I) -> SymDomain {
        let mut d = self.clone();
        for p in ps {
            d.add_point(p);
        }
        d
    }

    /// Abstract join `x ∨_{A_N} y = A_N(x ∪ y)`.
    pub fn join(&self, x: &SymState, y: &SymState) -> SymState {
        self.close(&x.union(y))
    }

    /// The base widening `γ(α(x) ∇_Int α(y))`: per variable, an unstable
    /// lower bound drops to `-∞` and an unstable upper bound to `+∞`
    /// (clamped by `γ` to the variable's universe range), exactly the
    /// interval widening `EnumDomain` enumerates. Empty sides pass
    /// through (the env widening forwards `⊥` unchanged).
    pub fn base_widen(&self, x: &SymState, y: &SymState) -> SymState {
        let Some(xh) = x.hull() else {
            return self.base_close(y);
        };
        let Some(yh) = y.hull() else {
            return self.base_close(x);
        };
        let bx: Vec<(i64, i64)> = self
            .var_ranges
            .iter()
            .enumerate()
            .map(|(i, &(vlo, vhi))| {
                let lo = if xh[i].0 <= yh[i].0 { xh[i].0 } else { vlo };
                let hi = if yh[i].1 <= xh[i].1 { xh[i].1 } else { vhi };
                (lo, hi)
            })
            .collect();
        SymState::from_box(&self.shape, &bx)
    }

    /// The pointed widening `∇_N` of Definition 7.11.
    pub fn pointed_widen(&self, x: &SymState, y: &SymState) -> SymState {
        let mut acc = self.base_widen(x, y);
        for p in &self.points {
            if x.is_subset(p) && y.is_subset(p) {
                acc = acc.intersect(p);
            }
        }
        acc
    }
}

/// The abstract semantics `⟦·⟧♯_{Int⊞N}` over decision diagrams — the
/// symbolic counterpart of [`AbstractSemantics`](crate::AbstractSemantics),
/// mirroring its star fixpoint loop bound for bound (including the
/// `absint.star` governor check at every loop head).
#[derive(Clone, Debug)]
pub struct SymbolicAbsint<'u> {
    engine: SymEngine<'u>,
    strategy: StarStrategy,
    trace: Tracer,
    governor: Governor,
}

impl<'u> SymbolicAbsint<'u> {
    /// Creates the symbolic abstract interpreter with exact star
    /// fixpoints.
    pub fn new(universe: &'u Universe) -> Self {
        SymbolicAbsint {
            engine: SymEngine::new(universe),
            strategy: StarStrategy::Lfp,
            trace: Tracer::disabled(),
            governor: Governor::unlimited(),
        }
    }

    /// Selects the star acceleration strategy.
    pub fn star_strategy(mut self, strategy: StarStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Emits `widening` events through `tracer`.
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.trace = tracer;
        self
    }

    /// Enforces `governor` at the star fixpoint's loop head, exactly like
    /// the enumerative interpreter.
    pub fn governor(mut self, governor: Governor) -> Self {
        self.governor = governor;
        self
    }

    /// The underlying symbolic engine.
    pub fn engine(&self) -> &SymEngine<'u> {
        &self.engine
    }

    /// `⟦r⟧♯_{Int⊞N} a` (callers pass `dom.close`d inputs; basic-command
    /// outputs are closed here, as in the enumerative interpreter).
    ///
    /// # Errors
    ///
    /// Propagates [`SemError`](air_lang::SemError) from the symbolic
    /// transfer functions — the same universe escapes and overflows the
    /// enumerative path reports, because [`SymEngine`] is exact.
    pub fn exec(
        &self,
        dom: &SymDomain,
        r: &Reg,
        a: &SymState,
    ) -> Result<SymState, air_lang::SemError> {
        match r {
            Reg::Basic(e) => Ok(dom.close(&self.engine.exec_exp(false, e, a)?)),
            Reg::Seq(r1, r2) => {
                let mid = self.exec(dom, r1, a)?;
                self.exec(dom, r2, &mid)
            }
            Reg::Choice(r1, r2) => {
                let l = self.exec(dom, r1, a)?;
                let rr = self.exec(dom, r2, a)?;
                Ok(dom.close(&l.union(&rr)))
            }
            Reg::Star(body) => {
                let mut x = dom.close(a);
                // Strictly increasing on a finite lattice, same bound as
                // the enumerative loop.
                for _ in 0..=self.engine.universe().size() {
                    self.governor.check_with(|| "absint.star".to_string())?;
                    let step = self.exec(dom, body, &x)?;
                    let grown = dom.close(&x.union(&step));
                    if grown.is_subset(&x) {
                        return Ok(x);
                    }
                    x = match self.strategy {
                        StarStrategy::Lfp => grown,
                        StarStrategy::PointedWidening => {
                            self.trace.emit_detail_with(|| EventKind::Widening {
                                site: "absint.star".to_string(),
                            });
                            dom.pointed_widen(&x, &grown)
                        }
                    };
                }
                Err(air_lang::SemError::Divergence)
            }
        }
    }
}

/// Per-repair mutable state (the symbolic mirror of the bitset engine's
/// context): a point arena plus the in-flight `N` as id lists.
struct Ctx {
    calls: usize,
    inv_iterations: usize,
    max_calls: usize,
    points: Vec<SymState>,
    ids: HashMap<SymState, PointId>,
    best_points: Vec<PointId>,
}

impl Ctx {
    fn point_id(&mut self, p: &SymState) -> PointId {
        if let Some(&id) = self.ids.get(p) {
            return id;
        }
        let id = PointId::try_from(self.points.len()).expect("point arena overflow");
        self.points.push(p.clone());
        self.ids.insert(p.clone(), id);
        id
    }

    fn push(&mut self, n: &mut Vec<PointId>, p: &SymState) -> bool {
        let id = self.point_id(p);
        if n.contains(&id) {
            false
        } else {
            n.push(id);
            true
        }
    }

    fn union_ids(a: Vec<PointId>, b: Vec<PointId>) -> Vec<PointId> {
        let mut out = a;
        for id in b {
            if !out.contains(&id) {
                out.push(id);
            }
        }
        out
    }

    fn materialize(&self, n: &[PointId]) -> Vec<SymState> {
        n.iter()
            .map(|&id| self.points[id as usize].clone())
            .collect()
    }

    fn domain(&self, base: &SymDomain, n: &[PointId]) -> SymDomain {
        base.with_points(n.iter().map(|&id| self.points[id as usize].clone()))
    }
}

/// Backward repair (Algorithm 2) running natively on decision diagrams.
///
/// A line-by-line port of [`BackwardRepair`](crate::BackwardRepair) with
/// [`SymState`] for state sets and [`SymDomain`] for the refinement — the
/// entry point the [`Verifier`](crate::Verifier) dispatches to when its
/// semantic cache runs the symbolic backend and the base domain is `Int`.
/// Outcomes are materialized back to bitsets so verdict assembly (and
/// every downstream consumer) is backend-agnostic.
#[derive(Clone, Debug)]
pub struct SymbolicBackward<'u> {
    universe: &'u Universe,
    engine: SymEngine<'u>,
    strategy: UnrollStrategy,
    max_calls: usize,
    trace: Tracer,
    governor: Governor,
}

impl<'u> SymbolicBackward<'u> {
    /// Creates the strategy with exact joins and the same generous call
    /// budget as the bitset engine.
    pub fn new(universe: &'u Universe) -> Self {
        SymbolicBackward {
            universe,
            engine: SymEngine::new(universe),
            strategy: UnrollStrategy::Join,
            max_calls: 1_000_000,
            trace: Tracer::disabled(),
            governor: Governor::unlimited(),
        }
    }

    /// Emits `incompleteness`/`shell_point`/`widening` events through
    /// `tracer`.
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.trace = tracer;
        self
    }

    /// Selects the star unroll strategy.
    pub fn unroll_strategy(mut self, strategy: UnrollStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the recursion budget.
    pub fn max_calls(mut self, max: usize) -> Self {
        self.max_calls = max;
        self
    }

    /// Enforces `governor` at every `bRepair` entry, `inv` iteration and
    /// star fixpoint round: exhaustion surfaces as
    /// [`RepairError::Exhausted`] carrying the best partial refinement
    /// and a sound partial invariant, exactly like the bitset engine.
    pub fn governor(mut self, governor: Governor) -> Self {
        self.governor = governor;
        self
    }

    /// Algorithm 2 entry point over diagrams: `bRepair_A(∅, A(P), r, S)`
    /// for `A = Int ⊞ base_points`.
    ///
    /// `base_points` carries the pre-existing refinement of the caller's
    /// domain (usually empty); `p` and `spec` are explicit sets converted
    /// at this boundary — the recursion itself never enumerates a store.
    ///
    /// # Errors
    ///
    /// [`RepairError::Sem`] on evaluation failures;
    /// [`RepairError::Exhausted`] on budget cutoffs, carrying the deepest
    /// point set reached and a sound partial invariant in that refinement.
    pub fn repair(
        &self,
        base_points: &[StateSet],
        p: &StateSet,
        r: &Reg,
        spec: &StateSet,
    ) -> Result<BackwardOutcome, RepairError> {
        let _span = self.trace.span(|| "repair.backward".to_string());
        let base = SymDomain::interval(self.universe)
            .with_points(base_points.iter().map(|b| self.engine.from_set(b)));
        let p_sym = self.engine.from_set(p);
        let spec_sym = self.engine.from_set(spec);
        let mut ctx = Ctx {
            calls: 0,
            inv_iterations: 0,
            max_calls: self.max_calls,
            points: Vec::new(),
            ids: HashMap::new(),
            best_points: Vec::new(),
        };
        let p_hat = base.close(&p_sym);
        let (valid_input, points) =
            match self.brepair(&base, Vec::new(), p_hat, r, &spec_sym, &mut ctx) {
                Ok((v, n)) => (v, ctx.materialize(&n)),
                Err(e) => return Err(self.exhausted(e, &base, &ctx, r, &p_sym)),
            };
        self.trace.emit_detail_with(|| EventKind::Counter {
            name: "backward.calls".to_string(),
            delta: ctx.calls as u64,
        });
        self.trace.emit_detail_with(|| EventKind::Counter {
            name: "backward.inv_iterations".to_string(),
            delta: ctx.inv_iterations as u64,
        });
        Ok(BackwardOutcome {
            valid_input: self.engine.to_set(&valid_input),
            points: points.iter().map(|p| self.engine.to_set(p)).collect(),
            calls: ctx.calls,
            inv_iterations: ctx.inv_iterations,
        })
    }

    /// Enriches a budget cutoff with the best partial result, mirroring
    /// the bitset engine: the deepest point set reached plus a sound
    /// partial invariant (an ungoverned symbolic analysis in the partial
    /// refinement — over-approximating in *any* pointed refinement).
    fn exhausted(
        &self,
        err: RepairError,
        base: &SymDomain,
        ctx: &Ctx,
        r: &Reg,
        p: &SymState,
    ) -> RepairError {
        let RepairError::Exhausted(mut partial) = err else {
            return err;
        };
        if partial.points.is_empty() {
            partial.points = ctx
                .materialize(&ctx.best_points)
                .iter()
                .map(|p| self.engine.to_set(p))
                .collect();
        }
        if partial.invariant.is_none() {
            let dom = ctx.domain(base, &ctx.best_points);
            let sem = SymbolicAbsint::new(self.universe);
            partial.invariant = sem
                .exec(&dom, r, &dom.close(p))
                .ok()
                .map(|inv| self.engine.to_set(&inv));
        }
        self.trace.emit_with(|| EventKind::BudgetExhausted {
            phase: partial.exhaustion.phase.clone(),
            spent: partial.exhaustion.spent,
            reason: partial.exhaustion.reason.name().to_string(),
        });
        RepairError::Exhausted(partial)
    }

    /// `⟦r⟧♯_{A⊞N} P` in the current refinement (closing `p` first, as
    /// the bitset engine does).
    fn abs_exec(
        &self,
        base: &SymDomain,
        ctx: &Ctx,
        n: &[PointId],
        r: &Reg,
        p: &SymState,
    ) -> Result<SymState, RepairError> {
        let dom = ctx.domain(base, n);
        let a = dom.close(p);
        Ok(SymbolicAbsint::new(self.universe)
            .governor(self.governor.clone())
            .exec(&dom, r, &a)?)
    }

    /// `V⟨P, r, S⟩ = P ∩ wlp(r, S)`, fully symbolic.
    fn valid_input(&self, p: &SymState, r: &Reg, s: &SymState) -> Result<SymState, RepairError> {
        let w = self.engine.wlp_reg(r, s).map_err(RepairError::from)?;
        Ok(p.intersect(&w))
    }

    fn trace_point(&self, rule: &str, exp: &impl std::fmt::Display, point: &SymState) {
        self.trace.emit_detail_with(|| EventKind::ShellPoint {
            rule: rule.to_string(),
            exp: exp.to_string(),
            point_size: point.count() as usize,
        });
    }

    fn brepair(
        &self,
        base: &SymDomain,
        mut n: Vec<PointId>,
        p: SymState,
        r: &Reg,
        s: &SymState,
        ctx: &mut Ctx,
    ) -> Result<(SymState, Vec<PointId>), RepairError> {
        ctx.calls += 1;
        self.governor.check_with(|| "repair.backward".to_string())?;
        if ctx.calls > ctx.max_calls {
            return Err(Exhaustion {
                phase: "repair.backward.max_calls".to_string(),
                spent: ctx.calls as u64,
                reason: ExhaustReason::Fuel,
            }
            .into());
        }
        if n.len() > ctx.best_points.len() {
            ctx.best_points = n.clone();
        }
        // Line 2: if ⟦r⟧♯_{A⊞N} P ≤ S then return ⟨P, N⟩.
        if self.abs_exec(base, ctx, &n, r, &p)?.is_subset(s) {
            return Ok((p, n));
        }
        match r {
            // Lines 4–6: basic expression.
            Reg::Basic(e) => {
                self.trace.emit_detail_with(|| EventKind::Incompleteness {
                    exp: e.to_string(),
                    input_size: p.count() as usize,
                });
                let v = self.valid_input(&p, r, s)?;
                let q = s.intersect(&self.abs_exec(base, ctx, &n, r, &p)?);
                if ctx.push(&mut n, &v) {
                    self.trace_point("bRepair basic: V⟨P,e,S⟩ (Alg 2 l.5)", e, &v);
                }
                if ctx.push(&mut n, &q) {
                    self.trace_point("bRepair basic: S ∧ ⟦e⟧♯P (Alg 2 l.5)", e, &q);
                }
                Ok((v, n))
            }
            // Lines 7–10: sequential composition.
            Reg::Seq(r0, r1) => {
                let mid = self.abs_exec(base, ctx, &n, r0, &p)?;
                let (v1, n1) = self.brepair(base, n.clone(), mid, r1, s, ctx)?;
                let (v0, n0) = self.brepair(base, n, p, r0, &v1, ctx)?;
                Ok((v0, Ctx::union_ids(n0, n1)))
            }
            // Lines 11–15: choice.
            Reg::Choice(r0, r1) => {
                let (v0, n0) = self.brepair(base, n.clone(), p.clone(), r0, s, ctx)?;
                let (v1, n1) = self.brepair(base, n.clone(), p.clone(), r1, s, ctx)?;
                let q = s.intersect(&self.abs_exec(base, ctx, &n, r, &p)?);
                let mut out = Ctx::union_ids(n0, n1);
                if ctx.push(&mut out, &q) {
                    self.trace_point("bRepair choice: S ∧ ⟦r⟧♯P (Alg 2 l.14)", r, &q);
                }
                Ok((v0.intersect(&v1), out))
            }
            // Lines 16–21: Kleene star.
            Reg::Star(r0) => {
                let r_step = self.abs_exec(base, ctx, &n, r0, &p)?;
                if r_step.is_subset(&p) {
                    self.inv(base, n, p, r0, s.clone(), ctx)
                } else {
                    let dom = ctx.domain(base, &n);
                    let grown = dom.join(&p, &r_step);
                    let unrolled = match self.strategy {
                        UnrollStrategy::Join => grown,
                        UnrollStrategy::PointedWidening => {
                            self.trace.emit_detail_with(|| EventKind::Widening {
                                site: "backward.star".to_string(),
                            });
                            dom.pointed_widen(&p, &grown)
                        }
                    };
                    let (v1, n1) = self.brepair(base, n, unrolled, r, s, ctx)?;
                    Ok((p.intersect(&v1), n1))
                }
            }
        }
    }

    /// Lines 22–27: the loop-invariant fixpoint `inv_A`.
    fn inv(
        &self,
        base: &SymDomain,
        n: Vec<PointId>,
        p: SymState,
        r: &Reg,
        mut v1: SymState,
        ctx: &mut Ctx,
    ) -> Result<(SymState, Vec<PointId>), RepairError> {
        loop {
            ctx.inv_iterations += 1;
            self.governor
                .check_with(|| "repair.backward.inv".to_string())?;
            let v0 = p.intersect(&v1);
            let mut n0 = n.clone();
            if ctx.push(&mut n0, &v0) {
                self.trace_point("bRepair inv: P ∧ V₁ (Alg 2 l.24)", r, &v0);
            }
            let (next_v1, n1) = self.brepair(base, n0, v0.clone(), r, &v0, ctx)?;
            if next_v1 == v0 {
                return Ok((next_v1, n1));
            }
            v1 = next_v1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backward::BackwardRepair;
    use crate::domain::EnumDomain;
    use air_domains::IntervalEnv;
    use air_lang::parse_program;

    fn int_dom(u: &Universe) -> EnumDomain {
        EnumDomain::from_abstraction(u, IntervalEnv::new(u))
    }

    #[test]
    fn sym_domain_close_matches_enum_domain() {
        let u = Universe::new(&[("x", -8, 8), ("y", 0, 3)]).unwrap();
        let edom = int_dom(&u);
        let sdom = SymDomain::interval(&u);
        let eng = SymEngine::new(&u);
        let probes = [
            u.empty(),
            u.full(),
            u.filter(|s| s[0] % 2 != 0),
            u.filter(|s| s[0] * s[0] + s[1] < 10),
            u.filter(|s| s[0] == 3 && s[1] == 1),
        ];
        for c in &probes {
            assert_eq!(
                eng.to_set(&sdom.close(&eng.from_set(c))),
                edom.close(c),
                "base closures must coincide"
            );
        }
        // With points: add the nonzero set and an odd-ish scatter.
        let nz = u.filter(|s| s[0] != 0);
        let scatter = u.filter(|s| s[0] % 3 == 1);
        let edom2 = edom.with_points([nz.clone(), scatter.clone()]);
        let sdom2 = sdom.with_points([eng.from_set(&nz), eng.from_set(&scatter)]);
        for c in &probes {
            assert_eq!(
                eng.to_set(&sdom2.close(&eng.from_set(c))),
                edom2.close(c),
                "refined closures must coincide"
            );
        }
        for (a, b) in probes.iter().zip(probes.iter().rev()) {
            assert_eq!(
                eng.to_set(&sdom2.pointed_widen(&eng.from_set(a), &eng.from_set(b))),
                edom2.pointed_widen(a, b),
                "pointed widenings must coincide"
            );
        }
    }

    #[test]
    fn symbolic_absint_matches_enumerative() {
        let u = Universe::new(&[("i", 0, 8), ("j", 0, 20)]).unwrap();
        let edom = int_dom(&u);
        let sdom = SymDomain::interval(&u);
        let asem = crate::absint::AbstractSemantics::new(&u);
        let ssem = SymbolicAbsint::new(&u);
        let eng = SymEngine::new(&u);
        let prog =
            parse_program("i := 1; j := 0; while (i <= 5) do { j := j + i; i := i + 1 }").unwrap();
        for input in [u.full(), u.filter(|s| s[0] <= 2), u.empty()] {
            let e = asem.exec(&edom, &prog, &edom.close(&input)).unwrap();
            let s = ssem
                .exec(&sdom, &prog, &sdom.close(&eng.from_set(&input)))
                .unwrap();
            assert_eq!(eng.to_set(&s), e);
        }
    }

    #[test]
    fn symbolic_backward_matches_enumerative() {
        let u = Universe::new(&[("x", -2, 6), ("y", -2, 6)]).unwrap();
        let edom = int_dom(&u);
        let prog = parse_program("while (x > 0) do { x := x - 1; y := y - 1 }").unwrap();
        let pre = u.filter(|s| s[0] > 0 && s[0] <= 3);
        let spec = u.filter(|s| s[1] == 0);
        let enm = BackwardRepair::new(&u)
            .repair(&edom, &pre, &prog, &spec)
            .unwrap();
        let sym = SymbolicBackward::new(&u)
            .repair(&[], &pre, &prog, &spec)
            .unwrap();
        assert_eq!(sym.valid_input, enm.valid_input);
        assert_eq!(sym.points, enm.points, "identical point discovery order");
        assert_eq!(sym.calls, enm.calls);
        assert_eq!(sym.inv_iterations, enm.inv_iterations);
    }

    #[test]
    fn symbolic_backward_max_calls_exhaustion_matches() {
        let u = Universe::new(&[("x", 0, 4)]).unwrap();
        let prog = parse_program("while (x < 4) do { x := x + 1 }").unwrap();
        let err = SymbolicBackward::new(&u)
            .max_calls(1)
            .repair(&[], &u.of_values([0]), &prog, &u.empty())
            .unwrap_err();
        let Some(exhaustion) = err.exhaustion() else {
            panic!("expected exhaustion, got {err:?}");
        };
        assert_eq!(exhaustion.phase, "repair.backward.max_calls");
        assert_eq!(exhaustion.reason, ExhaustReason::Fuel);
    }
}
