//! Rendering state sets as unions of interval boxes.
//!
//! Repaired abstract elements are plain state sets; to present them like
//! the paper's symbolic points (`P̄ = i ∈ [1,6] ∧ j ∈ [0, T_{i-1}]`,
//! `V̄ = (i ∈ [1,5] ∧ j ∈ [0,∞]) ∨ (i = 6 ∧ j ∈ [0,15])`, …), this module
//! greedily covers a set with maximal axis-aligned boxes and pretty-prints
//! the disjunction. The cover is exact (its union is the set), not
//! necessarily minimal.

use air_lang::{StateSet, Universe};

/// One axis-aligned box: a closed interval per variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoxSummary {
    /// Per-variable `[lo, hi]` bounds, in universe variable order.
    pub bounds: Vec<(i64, i64)>,
}

impl BoxSummary {
    /// Renders against the universe's variable names, eliding variables
    /// that span their full declared range.
    pub fn display(&self, universe: &Universe) -> String {
        let parts: Vec<String> = universe
            .var_names()
            .enumerate()
            .filter_map(|(i, name)| {
                let (lo, hi) = self.bounds[i];
                let (ulo, uhi) = universe.var_range(i);
                if (lo, hi) == (ulo, uhi) {
                    None // unconstrained
                } else if lo == hi {
                    Some(format!("{name} = {lo}"))
                } else {
                    Some(format!("{name} ∈ [{lo}, {hi}]"))
                }
            })
            .collect();
        if parts.is_empty() {
            "⊤".to_owned()
        } else {
            parts.join(" ∧ ")
        }
    }

    /// Membership test for the box.
    pub fn contains(&self, store: &[i64]) -> bool {
        self.bounds
            .iter()
            .zip(store)
            .all(|(&(lo, hi), &v)| lo <= v && v <= hi)
    }
}

/// Greedily covers `set` with maximal boxes: repeatedly grow a box from
/// the smallest uncovered store, expanding one dimension at a time as far
/// as the set allows.
///
/// # Example
///
/// ```
/// use air_core::summarize;
/// use air_lang::Universe;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let u = Universe::new(&[("x", -4, 4)])?;
/// let z_nonzero = u.filter(|s| s[0] != 0);
/// let boxes = summarize(&u, &z_nonzero);
/// assert_eq!(boxes.len(), 2); // [-4,-1] ∪ [1,4]
/// # Ok(())
/// # }
/// ```
pub fn summarize(universe: &Universe, set: &StateSet) -> Vec<BoxSummary> {
    let mut remaining = set.clone();
    let mut boxes = Vec::new();
    while let Some(seed_idx) = remaining.min_index() {
        let seed = universe.store_at(seed_idx);
        let mut bounds: Vec<(i64, i64)> = seed.iter().map(|&v| (v, v)).collect();
        // Expand each dimension upward and downward while the whole grown
        // box stays inside the *original* set (maximality w.r.t. the set,
        // not the remainder, gives nicer overlapping covers).
        let mut changed = true;
        while changed {
            changed = false;
            for d in 0..bounds.len() {
                let (ulo, uhi) = universe.var_range(d);
                while bounds[d].1 < uhi && slab_inside(universe, set, &bounds, d, bounds[d].1 + 1) {
                    bounds[d].1 += 1;
                    changed = true;
                }
                while bounds[d].0 > ulo && slab_inside(universe, set, &bounds, d, bounds[d].0 - 1) {
                    bounds[d].0 -= 1;
                    changed = true;
                }
            }
        }
        let bx = BoxSummary { bounds };
        // Remove the covered stores from the remainder.
        let mut store = vec![0i64; universe.num_vars()];
        remove_box(universe, &mut remaining, &bx, &mut store, 0);
        boxes.push(bx);
    }
    boxes
}

/// Checks that the slab `bounds` with dimension `d` pinned to `v` lies
/// inside `set`.
fn slab_inside(
    universe: &Universe,
    set: &StateSet,
    bounds: &[(i64, i64)],
    d: usize,
    v: i64,
) -> bool {
    let mut store = vec![0i64; bounds.len()];
    slab_rec(universe, set, bounds, d, v, &mut store, 0)
}

fn slab_rec(
    universe: &Universe,
    set: &StateSet,
    bounds: &[(i64, i64)],
    d: usize,
    v: i64,
    store: &mut Vec<i64>,
    dim: usize,
) -> bool {
    if dim == bounds.len() {
        return match universe.store_index(store) {
            Some(i) => set.contains(i),
            None => false,
        };
    }
    if dim == d {
        store[dim] = v;
        return slab_rec(universe, set, bounds, d, v, store, dim + 1);
    }
    let (lo, hi) = bounds[dim];
    for x in lo..=hi {
        store[dim] = x;
        if !slab_rec(universe, set, bounds, d, v, store, dim + 1) {
            return false;
        }
    }
    true
}

fn remove_box(
    universe: &Universe,
    remaining: &mut StateSet,
    bx: &BoxSummary,
    store: &mut Vec<i64>,
    dim: usize,
) {
    if dim == bx.bounds.len() {
        if let Some(i) = universe.store_index(store) {
            remaining.remove(i);
        }
        return;
    }
    let (lo, hi) = bx.bounds[dim];
    for v in lo..=hi {
        store[dim] = v;
        remove_box(universe, remaining, bx, store, dim + 1);
    }
}

/// Renders a full summary as a disjunction of boxes.
pub fn display_set(universe: &Universe, set: &StateSet) -> String {
    if set.is_empty() {
        return "⊥".to_owned();
    }
    let boxes = summarize(universe, set);
    boxes
        .iter()
        .map(|b| {
            let s = b.display(universe);
            if boxes.len() > 1 && s.contains('∧') {
                format!("({s})")
            } else {
                s
            }
        })
        .collect::<Vec<_>>()
        .join(" ∨ ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_box_summary() {
        let u = Universe::new(&[("x", 0, 9), ("y", 0, 9)]).unwrap();
        let s = u.filter(|st| (2..=4).contains(&st[0]) && (1..=3).contains(&st[1]));
        let boxes = summarize(&u, &s);
        assert_eq!(boxes.len(), 1);
        assert_eq!(boxes[0].bounds, vec![(2, 4), (1, 3)]);
        assert_eq!(boxes[0].display(&u), "x ∈ [2, 4] ∧ y ∈ [1, 3]");
    }

    #[test]
    fn hole_produces_two_boxes() {
        let u = Universe::new(&[("x", -4, 4)]).unwrap();
        let s = u.filter(|st| st[0] != 0);
        let boxes = summarize(&u, &s);
        assert_eq!(boxes.len(), 2);
        assert_eq!(display_set(&u, &s), "x ∈ [-4, -1] ∨ x ∈ [1, 4]");
    }

    #[test]
    fn cover_is_exact() {
        let u = Universe::new(&[("x", 0, 5), ("y", 0, 5)]).unwrap();
        // A diagonal: stress the box cover.
        let s = u.filter(|st| st[0] == st[1]);
        let boxes = summarize(&u, &s);
        let covered = u.filter(|st| boxes.iter().any(|b| b.contains(st)));
        assert_eq!(covered, s);
        assert_eq!(boxes.len(), 6); // each diagonal point is its own box
    }

    #[test]
    fn full_and_empty() {
        let u = Universe::new(&[("x", 0, 3)]).unwrap();
        assert_eq!(display_set(&u, &u.full()), "⊤");
        assert_eq!(display_set(&u, &u.empty()), "⊥");
    }

    #[test]
    fn singleton_renders_as_equality() {
        let u = Universe::new(&[("x", 0, 3), ("y", 0, 3)]).unwrap();
        let s = u.filter(|st| st[0] == 2 && st[1] == 2);
        assert_eq!(display_set(&u, &s), "x = 2 ∧ y = 2");
    }

    #[test]
    fn three_variable_boxes() {
        let u = Universe::new(&[("a", 0, 2), ("b", 0, 2), ("c", 0, 2)]).unwrap();
        let s = u.filter(|st| st[0] == 1 && st[2] >= 1);
        let boxes = summarize(&u, &s);
        assert_eq!(boxes.len(), 1);
        assert_eq!(boxes[0].display(&u), "a = 1 ∧ c ∈ [1, 2]");
        // An L-shaped region needs two boxes but stays exact.
        let l = u.filter(|st| st[0] == 0 || st[1] == 0);
        let cover = summarize(&u, &l);
        let covered = u.filter(|st| cover.iter().any(|b| b.contains(st)));
        assert_eq!(covered, l);
        assert!(cover.len() >= 2);
    }

    #[test]
    fn paper_v_element_shape() {
        // V̄ = (i ∈ [1,5] ∧ j ∈ [0,∞]) ∨ (i = 6 ∧ j ∈ [0,15]) over a
        // finite universe: j's "∞" is the universe top 20.
        let u = Universe::new(&[("i", 0, 8), ("j", 0, 20)]).unwrap();
        let v = u.filter(|s| ((1..=5).contains(&s[0])) || (s[0] == 6 && s[1] <= 15));
        let shown = display_set(&u, &v);
        // The greedy cover renders the same region as
        // (i ∈ [1,6] ∧ j ∈ [0,15]) ∨ (i ∈ [1,5]) — equivalent to the
        // paper's two disjuncts.
        assert!(shown.contains("i ∈ [1, 5]"), "{shown}");
        assert!(shown.contains("j ∈ [0, 15]"), "{shown}");
        let boxes = summarize(&u, &v);
        let covered = u.filter(|st| boxes.iter().any(|b| b.contains(st)));
        assert_eq!(covered, v);
    }
}
