//! The local completeness logic `LCL_A` and its AIR integration.
//!
//! The paper builds on the proof system of Bruni et al., *A Logic for
//! Locally Complete Abstract Interpretations* (LICS 2021, \[8\]): triples
//! `⊢_A [P] r [Q]` whose derivability guarantees
//!
//! ```text
//! Q ≤ ⟦r⟧P ≤ A(Q)          (under-approximation + locally complete
//!                            over-approximation, §1 of the PLDI paper)
//! ```
//!
//! so that any alarm in `Q` is a true alarm, and a spec `Spec ∈ A` holds
//! iff `Q ≤ Spec`. Derivations can only proceed through *local
//! completeness proof obligations* on basic commands; when an obligation
//! fails, \[8\] stops — and Section 9 of the PLDI paper proposes exactly
//! what [`Lcl::derive_with_repair`] implements: *"whenever a local
//! completeness proof obligation emerges, we can repair the abstract
//! interpreter to settle such an obligation."*
//!
//! The rule set (side conditions checked by [`Lcl::check`]):
//!
//! ```text
//! (transfer)  C^A_P(⟦e⟧)                       ⊢ [P] e [⟦e⟧P]
//! (seq)       ⊢ [P] r₁ [R]   ⊢ [R] r₂ [Q]      ⊢ [P] r₁;r₂ [Q]
//! (join)      ⊢ [P] r₁ [Q₁]  ⊢ [P] r₂ [Q₂]     ⊢ [P] r₁⊕r₂ [Q₁∨Q₂]
//! (rec)       ⊢ [P] r [R]   ⊢ [P∨R] r* [Q]     ⊢ [P] r* [Q]
//! (iterate)   ⊢ [P] r [R]   R ≤ P              ⊢ [P] r* [P]
//! (relax)     ⊢ [P] r [Q]   P ≤ P' ≤ A(P)      ⊢ [P'] r [Q']
//!             Q' ≤ Q, A(Q') = A(Q)
//! ```
//!
//! Soundness of every accepted derivation — the invariant `Q ≤ ⟦r⟧P ≤
//! A(Q)` together with local completeness `C^A_P(⟦r⟧)` — is verified
//! exhaustively in this module's tests and by the workspace property
//! tests.

use std::fmt;

use air_lang::ast::{Exp, Reg};
use air_lang::{Concrete, SemCache, SemError, StateSet, Universe};
use air_lattice::{ExhaustReason, Exhaustion, Governor};
use air_trace::{DotBuilder, EventKind, Tracer};

use crate::domain::EnumDomain;
use crate::forward::{RepairError, RepairRule};
use crate::local::{LocalCompleteness, ShellResult};

/// A judgement `⊢_A [pre] reg [post]`.
#[derive(Clone, Debug, PartialEq)]
pub struct Triple {
    /// The precondition `P` (a concrete property).
    pub pre: StateSet,
    /// The program.
    pub reg: Reg,
    /// The postcondition `Q` — an under-approximation of `⟦reg⟧P` whose
    /// abstraction is exact.
    pub post: StateSet,
}

/// A derivation tree for `LCL_A`.
#[derive(Clone, Debug)]
pub enum Derivation {
    /// `(transfer)`: a basic command under its local completeness proof
    /// obligation.
    Transfer {
        /// The derived triple; `post = ⟦e⟧pre`.
        triple: Triple,
    },
    /// `(seq)`.
    Seq {
        /// Derivation of the first command.
        left: Box<Derivation>,
        /// Derivation of the second command from the intermediate `R`.
        right: Box<Derivation>,
        /// The derived triple.
        triple: Triple,
    },
    /// `(join)`.
    Join {
        /// Left branch.
        left: Box<Derivation>,
        /// Right branch.
        right: Box<Derivation>,
        /// The derived triple (`post = Q₁ ∨ Q₂`).
        triple: Triple,
    },
    /// `(rec)`: unroll the star once.
    Rec {
        /// One iteration from `pre`.
        step: Box<Derivation>,
        /// The star from the grown precondition `pre ∨ R`.
        rest: Box<Derivation>,
        /// The derived triple.
        triple: Triple,
    },
    /// `(iterate)`: the loop invariant case `R ≤ P`.
    Iterate {
        /// One iteration whose result stays below `pre`.
        step: Box<Derivation>,
        /// The derived triple (`post = pre`).
        triple: Triple,
    },
    /// `(relax)`: widen the precondition within `A(P)` and/or shrink the
    /// postcondition without changing its abstraction.
    Relax {
        /// The premise derivation.
        inner: Box<Derivation>,
        /// The derived triple.
        triple: Triple,
    },
}

impl Derivation {
    /// The conclusion of the derivation.
    pub fn triple(&self) -> &Triple {
        match self {
            Derivation::Transfer { triple }
            | Derivation::Seq { triple, .. }
            | Derivation::Join { triple, .. }
            | Derivation::Rec { triple, .. }
            | Derivation::Iterate { triple, .. }
            | Derivation::Relax { triple, .. } => triple,
        }
    }

    /// The rule name at the root.
    pub fn rule(&self) -> &'static str {
        match self {
            Derivation::Transfer { .. } => "transfer",
            Derivation::Seq { .. } => "seq",
            Derivation::Join { .. } => "join",
            Derivation::Rec { .. } => "rec",
            Derivation::Iterate { .. } => "iterate",
            Derivation::Relax { .. } => "relax",
        }
    }

    /// Number of rule applications in the tree.
    pub fn size(&self) -> usize {
        match self {
            Derivation::Transfer { .. } => 1,
            Derivation::Seq { left, right, .. }
            | Derivation::Join { left, right, .. }
            | Derivation::Rec {
                step: left,
                rest: right,
                ..
            } => 1 + left.size() + right.size(),
            Derivation::Iterate { step, .. } => 1 + step.size(),
            Derivation::Relax { inner, .. } => 1 + inner.size(),
        }
    }

    /// Renders the derivation as an indented proof tree.
    pub fn render(&self, universe: &Universe) -> String {
        fn go(d: &Derivation, universe: &Universe, depth: usize, out: &mut String) {
            let t = d.triple();
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!(
                "[{}] {} [{}]   ({})\n",
                crate::summarize::display_set(universe, &t.pre),
                t.reg,
                crate::summarize::display_set(universe, &t.post),
                d.rule()
            ));
            match d {
                Derivation::Transfer { .. } => {}
                Derivation::Seq { left, right, .. }
                | Derivation::Join { left, right, .. }
                | Derivation::Rec {
                    step: left,
                    rest: right,
                    ..
                } => {
                    go(left, universe, depth + 1, out);
                    go(right, universe, depth + 1, out);
                }
                Derivation::Iterate { step, .. } => go(step, universe, depth + 1, out),
                Derivation::Relax { inner, .. } => go(inner, universe, depth + 1, out),
            }
        }
        let mut out = String::new();
        go(self, universe, 0, &mut out);
        out
    }

    /// Renders the derivation tree as a Graphviz DOT digraph: one node
    /// per rule application labelled with the rule name and its triple,
    /// edges from each conclusion to its premises. The companion of
    /// [`render`](Self::render) for the CLI's `--trace-format dot`.
    pub fn to_dot(&self, universe: &Universe) -> String {
        fn go(d: &Derivation, universe: &Universe, dot: &mut DotBuilder) -> air_trace::NodeId {
            let t = d.triple();
            let label = format!(
                "({})\n[{}]\n{}\n[{}]",
                d.rule(),
                crate::summarize::display_set(universe, &t.pre),
                t.reg,
                crate::summarize::display_set(universe, &t.post),
            );
            let node = dot.node(&label);
            let premises: Vec<&Derivation> = match d {
                Derivation::Transfer { .. } => vec![],
                Derivation::Seq { left, right, .. } | Derivation::Join { left, right, .. } => {
                    vec![left, right]
                }
                Derivation::Rec { step, rest, .. } => vec![step, rest],
                Derivation::Iterate { step, .. } => vec![step],
                Derivation::Relax { inner, .. } => vec![inner],
            };
            for premise in premises {
                let child = go(premise, universe, dot);
                dot.edge(node, child);
            }
            node
        }
        let mut dot = DotBuilder::new("lcl_derivation");
        go(self, universe, &mut dot);
        dot.finish()
    }
}

/// Why a derivation check or construction failed.
#[derive(Clone, Debug, PartialEq)]
pub enum LclError {
    /// A local completeness proof obligation `C^A_P(e)` is violated — the
    /// domain needs repair (Section 9).
    Obligation {
        /// The input on which completeness fails.
        input: StateSet,
        /// The offending basic command.
        exp: Exp,
    },
    /// A rule side condition is violated.
    SideCondition {
        /// The rule at fault.
        rule: &'static str,
        /// Human-readable description.
        reason: String,
    },
    /// Concrete evaluation failed.
    Sem(SemError),
    /// The star unrolling exceeded the bound (cannot happen on finite
    /// universes with correct semantics).
    Divergence,
}

impl fmt::Display for LclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LclError::Obligation { exp, .. } => {
                write!(f, "local completeness proof obligation failed on `{exp}`")
            }
            LclError::SideCondition { rule, reason } => {
                write!(f, "side condition of ({rule}) violated: {reason}")
            }
            LclError::Sem(e) => write!(f, "semantic evaluation failed: {e}"),
            LclError::Divergence => write!(f, "star unrolling diverged"),
        }
    }
}

impl std::error::Error for LclError {}

impl From<SemError> for LclError {
    fn from(e: SemError) -> Self {
        LclError::Sem(e)
    }
}

/// The `LCL_A` proof system over a fixed universe.
///
/// # Example
///
/// ```
/// use air_core::lcl::Lcl;
/// use air_core::EnumDomain;
/// use air_domains::IntervalEnv;
/// use air_lang::{parse_program, Universe};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let u = Universe::new(&[("x", -8, 8)])?;
/// let dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
/// let lcl = Lcl::new(&u);
/// let prog = parse_program("if (x >= 0) then { skip } else { x := 0 - x }")?;
/// let odd = u.filter(|s| s[0] % 2 != 0);
///
/// // Int cannot derive a triple for AbsVal on odd inputs (the guard
/// // obligation fails) — but repair settles the obligation (Section 9).
/// assert!(lcl.derive(&dom, &odd, &prog).is_err());
/// let (derivation, repaired) = lcl.derive_with_repair(dom, &odd, &prog)?;
/// assert!(lcl.check(&repaired, &derivation).is_ok());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Lcl<'u> {
    universe: &'u Universe,
    sem: Concrete<'u>,
    lc: LocalCompleteness<'u>,
    cache: Option<SemCache>,
    trace: Tracer,
    governor: Governor,
}

impl<'u> Lcl<'u> {
    /// Creates the proof system for a universe with a fresh shared cache
    /// (derivation attempts repeated across repairs hit memoized images).
    pub fn new(universe: &'u Universe) -> Self {
        Self::with_cache(universe, SemCache::new())
    }

    /// Creates the proof system memoizing into `cache`.
    pub fn with_cache(universe: &'u Universe, cache: SemCache) -> Self {
        Lcl {
            universe,
            sem: Concrete::new(universe),
            lc: LocalCompleteness::with_cache(universe, cache.clone()),
            cache: Some(cache),
            trace: Tracer::disabled(),
            governor: Governor::unlimited(),
        }
    }

    /// Creates the proof system without memoization (the reference path).
    pub fn uncached(universe: &'u Universe) -> Self {
        Lcl {
            universe,
            sem: Concrete::new(universe),
            lc: LocalCompleteness::uncached(universe),
            cache: None,
            trace: Tracer::disabled(),
            governor: Governor::unlimited(),
        }
    }

    /// The shared semantic cache, if caching is enabled.
    pub fn cache(&self) -> Option<&SemCache> {
        self.cache.as_ref()
    }

    /// Emits `lcl_rule`/`incompleteness`/`shell_point`/`verdict` events
    /// (and the cache's hit/miss/bypass telemetry) through `tracer`.
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        if let Some(cache) = &self.cache {
            cache.set_tracer(&tracer);
        }
        self.trace = tracer;
        self
    }

    /// Enforces `governor` at the repair loop and star-unroll heads of
    /// automatic derivation: exhaustion surfaces as
    /// [`RepairError::Exhausted`] with the points added so far.
    pub fn governor(mut self, governor: Governor) -> Self {
        self.governor = governor;
        self
    }

    fn trace_rule(&self, rule: &'static str) {
        self.trace.emit_detail_with(|| EventKind::LclRule {
            rule: rule.to_string(),
        });
    }

    fn exec_exp(&self, e: &Exp, p: &StateSet) -> Result<StateSet, SemError> {
        match &self.cache {
            Some(cache) => cache.exec_exp(&self.sem, e, p),
            None => self.sem.exec_exp(e, p),
        }
    }

    fn exec(&self, r: &Reg, p: &StateSet) -> Result<StateSet, SemError> {
        match &self.cache {
            Some(cache) => cache.exec(&self.sem, r, p),
            None => self.sem.exec(r, p),
        }
    }

    /// Checks a derivation against the domain `A`: every rule's side
    /// conditions, including the local completeness obligations at the
    /// leaves.
    ///
    /// # Errors
    ///
    /// The first violated obligation or side condition.
    pub fn check(&self, dom: &EnumDomain, d: &Derivation) -> Result<(), LclError> {
        match d {
            Derivation::Transfer { triple } => {
                let Reg::Basic(e) = &triple.reg else {
                    return Err(LclError::SideCondition {
                        rule: "transfer",
                        reason: "program is not a basic command".into(),
                    });
                };
                if !self.lc.check_exp(dom, e, &triple.pre)? {
                    return Err(LclError::Obligation {
                        input: triple.pre.clone(),
                        exp: e.clone(),
                    });
                }
                let post = self.exec_exp(e, &triple.pre)?;
                if post != triple.post {
                    return Err(LclError::SideCondition {
                        rule: "transfer",
                        reason: "postcondition is not ⟦e⟧P".into(),
                    });
                }
                Ok(())
            }
            Derivation::Seq {
                left,
                right,
                triple,
            } => {
                self.check(dom, left)?;
                self.check(dom, right)?;
                let (lt, rt) = (left.triple(), right.triple());
                let Reg::Seq(r1, r2) = &triple.reg else {
                    return Err(LclError::SideCondition {
                        rule: "seq",
                        reason: "program is not a sequence".into(),
                    });
                };
                if lt.reg != **r1 || rt.reg != **r2 {
                    return Err(LclError::SideCondition {
                        rule: "seq",
                        reason: "premise programs do not match".into(),
                    });
                }
                if lt.pre != triple.pre || rt.pre != lt.post || rt.post != triple.post {
                    return Err(LclError::SideCondition {
                        rule: "seq",
                        reason: "pre/intermediate/post conditions do not chain".into(),
                    });
                }
                Ok(())
            }
            Derivation::Join {
                left,
                right,
                triple,
            } => {
                self.check(dom, left)?;
                self.check(dom, right)?;
                let (lt, rt) = (left.triple(), right.triple());
                let Reg::Choice(r1, r2) = &triple.reg else {
                    return Err(LclError::SideCondition {
                        rule: "join",
                        reason: "program is not a choice".into(),
                    });
                };
                if lt.reg != **r1 || rt.reg != **r2 {
                    return Err(LclError::SideCondition {
                        rule: "join",
                        reason: "premise programs do not match".into(),
                    });
                }
                if lt.pre != triple.pre || rt.pre != triple.pre {
                    return Err(LclError::SideCondition {
                        rule: "join",
                        reason: "premise preconditions differ from the conclusion".into(),
                    });
                }
                if triple.post != lt.post.union(&rt.post) {
                    return Err(LclError::SideCondition {
                        rule: "join",
                        reason: "postcondition is not Q₁ ∨ Q₂".into(),
                    });
                }
                Ok(())
            }
            Derivation::Rec { step, rest, triple } => {
                self.check(dom, step)?;
                self.check(dom, rest)?;
                let (st, rt) = (step.triple(), rest.triple());
                let Reg::Star(body) = &triple.reg else {
                    return Err(LclError::SideCondition {
                        rule: "rec",
                        reason: "program is not a star".into(),
                    });
                };
                if st.reg != **body || rt.reg != triple.reg {
                    return Err(LclError::SideCondition {
                        rule: "rec",
                        reason: "premise programs do not match".into(),
                    });
                }
                if st.pre != triple.pre
                    || rt.pre != triple.pre.union(&st.post)
                    || rt.post != triple.post
                {
                    return Err(LclError::SideCondition {
                        rule: "rec",
                        reason: "conditions do not chain through the unroll".into(),
                    });
                }
                Ok(())
            }
            Derivation::Iterate { step, triple } => {
                self.check(dom, step)?;
                let st = step.triple();
                let Reg::Star(body) = &triple.reg else {
                    return Err(LclError::SideCondition {
                        rule: "iterate",
                        reason: "program is not a star".into(),
                    });
                };
                if st.reg != **body || st.pre != triple.pre {
                    return Err(LclError::SideCondition {
                        rule: "iterate",
                        reason: "premise does not match".into(),
                    });
                }
                if !st.post.is_subset(&triple.pre) {
                    return Err(LclError::SideCondition {
                        rule: "iterate",
                        reason: "R ≤ P fails: the body escapes the invariant".into(),
                    });
                }
                if triple.post != triple.pre {
                    return Err(LclError::SideCondition {
                        rule: "iterate",
                        reason: "postcondition must equal the invariant P".into(),
                    });
                }
                Ok(())
            }
            Derivation::Relax { inner, triple } => {
                self.check(dom, inner)?;
                let it = inner.triple();
                if it.reg != triple.reg {
                    return Err(LclError::SideCondition {
                        rule: "relax",
                        reason: "programs differ".into(),
                    });
                }
                // P ≤ P' ≤ A(P)
                if !it.pre.is_subset(&triple.pre) || !triple.pre.is_subset(&dom.close(&it.pre)) {
                    return Err(LclError::SideCondition {
                        rule: "relax",
                        reason: "precondition not within [P, A(P)]".into(),
                    });
                }
                // Q' ≤ Q with A(Q') = A(Q)
                if !triple.post.is_subset(&it.post)
                    || dom.close(&triple.post) != dom.close(&it.post)
                {
                    return Err(LclError::SideCondition {
                        rule: "relax",
                        reason: "postcondition not an abstraction-preserving shrink".into(),
                    });
                }
                Ok(())
            }
        }
    }

    /// Attempts to build a derivation of `⊢_A [p] r [Q]` automatically,
    /// failing on the first violated local completeness obligation.
    ///
    /// # Errors
    ///
    /// [`LclError::Obligation`] when the domain must be repaired;
    /// evaluation errors otherwise.
    pub fn derive(&self, dom: &EnumDomain, p: &StateSet, r: &Reg) -> Result<Derivation, LclError> {
        match r {
            Reg::Basic(e) => {
                if !self.lc.check_exp(dom, e, p)? {
                    return Err(LclError::Obligation {
                        input: p.clone(),
                        exp: e.clone(),
                    });
                }
                let post = self.exec_exp(e, p)?;
                self.trace_rule("transfer");
                Ok(Derivation::Transfer {
                    triple: Triple {
                        pre: p.clone(),
                        reg: r.clone(),
                        post,
                    },
                })
            }
            Reg::Seq(r1, r2) => {
                let left = self.derive(dom, p, r1)?;
                let mid = left.triple().post.clone();
                let right = self.derive(dom, &mid, r2)?;
                let post = right.triple().post.clone();
                self.trace_rule("seq");
                Ok(Derivation::Seq {
                    left: Box::new(left),
                    right: Box::new(right),
                    triple: Triple {
                        pre: p.clone(),
                        reg: r.clone(),
                        post,
                    },
                })
            }
            Reg::Choice(r1, r2) => {
                let left = self.derive(dom, p, r1)?;
                let right = self.derive(dom, p, r2)?;
                let post = left.triple().post.union(&right.triple().post);
                self.trace_rule("join");
                Ok(Derivation::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    triple: Triple {
                        pre: p.clone(),
                        reg: r.clone(),
                        post,
                    },
                })
            }
            Reg::Star(body) => self.derive_star(dom, p, r, body, 0),
        }
    }

    fn derive_star(
        &self,
        dom: &EnumDomain,
        p: &StateSet,
        star: &Reg,
        body: &Reg,
        depth: usize,
    ) -> Result<Derivation, LclError> {
        if depth > self.universe.size() {
            return Err(LclError::Divergence);
        }
        self.governor
            .check_with(|| "lcl.derive_star".to_string())
            .map_err(SemError::from)?;
        let step = self.derive(dom, p, body)?;
        let r_post = step.triple().post.clone();
        if r_post.is_subset(p) {
            self.trace_rule("iterate");
            return Ok(Derivation::Iterate {
                step: Box::new(step),
                triple: Triple {
                    pre: p.clone(),
                    reg: star.clone(),
                    post: p.clone(),
                },
            });
        }
        let grown = p.union(&r_post);
        let rest = self.derive_star(dom, &grown, star, body, depth + 1)?;
        let post = rest.triple().post.clone();
        self.trace_rule("rec");
        Ok(Derivation::Rec {
            step: Box::new(step),
            rest: Box::new(rest),
            triple: Triple {
                pre: p.clone(),
                reg: star.clone(),
                post,
            },
        })
    }

    /// The Section 9 integration: derive, and whenever a local
    /// completeness obligation emerges, repair the domain with the pointed
    /// shell (Theorem 4.11 for guards, Theorem 4.9 otherwise) and retry.
    /// Returns the derivation together with the repaired domain.
    ///
    /// # Errors
    ///
    /// Evaluation errors, or [`RepairError::Exhausted`] if the governor
    /// budget or the 10 000-repair cap runs out (the error carries the
    /// points added so far — each a sound pointed refinement).
    pub fn derive_with_repair(
        &self,
        mut dom: EnumDomain,
        p: &StateSet,
        r: &Reg,
    ) -> Result<(Derivation, EnumDomain), RepairError> {
        let _span = self.trace.span(|| "lcl.derive_with_repair".to_string());
        for _ in 0..10_000u64 {
            if let Err(e) = self.governor.check_with(|| "lcl.derive".to_string()) {
                return Err(self.exhausted(e.into(), &dom));
            }
            match self.derive(&dom, p, r) {
                Ok(d) => return Ok((d, dom)),
                Err(LclError::Obligation { input, exp }) => {
                    self.trace.emit_detail_with(|| EventKind::Incompleteness {
                        exp: exp.to_string(),
                        input_size: input.len(),
                    });
                    let shell = match &exp {
                        Exp::Assume(b) => self
                            .lc
                            .guard_shell(&dom, b, &input)
                            .map(|point| (point, RepairRule::GuardShell)),
                        e => self
                            .lc
                            .pointed_shell(&dom, &Reg::Basic(e.clone()), &input)
                            .map(|res| match res {
                                ShellResult::Shell { point } => (point, RepairRule::PointedShell),
                                ShellResult::NoShell { .. } => {
                                    (input.clone(), RepairRule::MostConcrete)
                                }
                            }),
                    };
                    let (point, rule) = match shell {
                        Ok(found) => found,
                        Err(e) => return Err(self.exhausted(e.into(), &dom)),
                    };
                    self.trace.emit_detail_with(|| EventKind::ShellPoint {
                        rule: rule.to_string(),
                        exp: exp.to_string(),
                        point_size: point.len(),
                    });
                    dom.add_point(point);
                }
                Err(LclError::Sem(e)) => return Err(self.exhausted(RepairError::from(e), &dom)),
                Err(other) => {
                    // `derive` builds its own trees, so side conditions
                    // cannot fail and star unrolls are bounded; anything
                    // else here is an engine bug, not a user error.
                    return Err(RepairError::Internal(format!(
                        "automatic derivation failed unexpectedly: {other}"
                    )));
                }
            }
        }
        let cap = Exhaustion {
            phase: "lcl.max_repairs".to_string(),
            spent: 10_000,
            reason: ExhaustReason::Fuel,
        };
        Err(self.exhausted(cap.into(), &dom))
    }

    /// Enriches a budget cutoff with the points added so far (the best
    /// partial derivation state); other errors pass through.
    fn exhausted(&self, err: RepairError, dom: &EnumDomain) -> RepairError {
        let RepairError::Exhausted(mut partial) = err else {
            return err;
        };
        if partial.points.is_empty() {
            partial.points = dom.points().to_vec();
        }
        self.trace.emit_with(|| EventKind::BudgetExhausted {
            phase: partial.exhaustion.phase.clone(),
            spent: partial.exhaustion.spent,
            reason: partial.exhaustion.reason.name().to_string(),
        });
        RepairError::Exhausted(partial)
    }

    /// The soundness invariant of a triple (used by tests and callers):
    /// `Q ≤ ⟦r⟧P ≤ A(Q)`.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn triple_sound(&self, dom: &EnumDomain, t: &Triple) -> Result<bool, SemError> {
        let post = self.exec(&t.reg, &t.pre)?;
        Ok(t.post.is_subset(&post) && post.is_subset(&dom.close(&t.post)))
    }

    /// Decides a specification through the logic (the §1 claim): derive a
    /// triple with repair, then `Spec` holds iff `A(Q) ≤ Spec` when `Spec`
    /// is expressible in the repaired domain, and any store of `Q ∖ Spec`
    /// is a *true alarm* (Q under-approximates the reachable states).
    ///
    /// # Errors
    ///
    /// Propagates [`RepairError`].
    pub fn prove_spec(
        &self,
        dom: EnumDomain,
        p: &StateSet,
        r: &Reg,
        spec: &StateSet,
    ) -> Result<SpecVerdict, RepairError> {
        let (derivation, mut repaired) = self.derive_with_repair(dom, p, r)?;
        // Make Spec expressible so that A(Q) ≤ Spec is a faithful check
        // (a pointed refinement, like the paper's Q̄ = Q ∧ Spec step).
        repaired.add_point(spec.clone());
        let q = &derivation.triple().post;
        if !q.is_subset(spec) {
            let Some(witness) = q.difference(spec).min_index() else {
                return Err(RepairError::Internal(
                    "Q ⊄ Spec but Q ∖ Spec is empty".to_string(),
                ));
            };
            self.trace.emit_detail_with(|| EventKind::Verdict {
                phase: "lcl.prove_spec".to_string(),
                verdict: "true_alarm".to_string(),
            });
            return Ok(SpecVerdict::TrueAlarm {
                derivation,
                domain: repaired,
                witness,
            });
        }
        debug_assert!(
            repaired.close(q).is_subset(spec),
            "A(Q) ≤ Spec after tightening"
        );
        self.trace.emit_detail_with(|| EventKind::Verdict {
            phase: "lcl.prove_spec".to_string(),
            verdict: "valid".to_string(),
        });
        Ok(SpecVerdict::Valid {
            derivation,
            domain: repaired,
        })
    }
}

/// The outcome of deciding a spec through `LCL_A` (see
/// [`Lcl::prove_spec`]).
#[derive(Clone, Debug)]
pub enum SpecVerdict {
    /// `⟦r⟧P ≤ Spec`, certified by the derivation in the repaired domain.
    Valid {
        /// The certifying derivation.
        derivation: Derivation,
        /// The repaired domain (with `Spec` made expressible).
        domain: EnumDomain,
    },
    /// `⟦r⟧P ≰ Spec`; the triple's under-approximation exhibits a
    /// reachable violating store — a true alarm, as in incorrectness
    /// logic.
    TrueAlarm {
        /// The derivation whose post witnesses the violation.
        derivation: Derivation,
        /// The repaired domain.
        domain: EnumDomain,
        /// Index of a reachable store outside the spec.
        witness: usize,
    },
}

impl SpecVerdict {
    /// Returns `true` for [`SpecVerdict::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, SpecVerdict::Valid { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use air_domains::IntervalEnv;
    use air_lang::parse_program;

    fn setup() -> (Universe, EnumDomain) {
        let u = Universe::new(&[("x", -8, 8)]).unwrap();
        let dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
        (u, dom)
    }

    #[test]
    fn derive_straightline_and_check() {
        let (u, dom) = setup();
        let lcl = Lcl::new(&u);
        let prog = parse_program("x := x + 1; x := x * 2").unwrap();
        let p = u.filter(|s| (0..=2).contains(&s[0]));
        let d = lcl.derive(&dom, &p, &prog).unwrap();
        lcl.check(&dom, &d).unwrap();
        assert!(lcl.triple_sound(&dom, d.triple()).unwrap());
        assert_eq!(d.rule(), "seq");
        assert_eq!(d.size(), 3);
    }

    #[test]
    fn derivation_fails_on_incomplete_guard_then_repairs() {
        let (u, dom) = setup();
        let lcl = Lcl::new(&u);
        let prog = parse_program("if (x >= 0) then { skip } else { x := 0 - x }").unwrap();
        let odd = u.filter(|s| s[0] % 2 != 0);
        let err = lcl.derive(&dom, &odd, &prog).unwrap_err();
        assert!(matches!(err, LclError::Obligation { .. }));
        let (d, repaired) = lcl.derive_with_repair(dom, &odd, &prog).unwrap();
        lcl.check(&repaired, &d).unwrap();
        assert!(lcl.triple_sound(&repaired, d.triple()).unwrap());
        // The derived post excludes 0 — the alarm is settled.
        assert!(!d.triple().post.contains(u.store_index(&[0]).unwrap()));
        // And the abstraction of the post excludes it too.
        assert!(!repaired
            .close(&d.triple().post)
            .contains(u.store_index(&[0]).unwrap()));
    }

    #[test]
    fn loops_derive_via_rec_and_iterate() {
        let u = Universe::new(&[("i", 0, 8), ("j", 0, 24)]).unwrap();
        let dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
        let lcl = Lcl::new(&u);
        let prog =
            parse_program("i := 1; j := 0; while (i <= 3) do { j := j + i; i := i + 1 }").unwrap();
        let (d, repaired) = lcl.derive_with_repair(dom, &u.full(), &prog).unwrap();
        lcl.check(&repaired, &d).unwrap();
        assert!(lcl.triple_sound(&repaired, d.triple()).unwrap());
        // The triple's post is exactly the concrete result (i = 4, j = 6).
        assert_eq!(d.triple().post, u.filter(|s| s[0] == 4 && s[1] == 6));
        // The tree mentions the star rules.
        let rendered = d.render(&u);
        assert!(
            rendered.contains("(rec)") || rendered.contains("(iterate)"),
            "{rendered}"
        );
        assert!(rendered.contains("(iterate)"), "{rendered}");
    }

    #[test]
    fn check_rejects_tampered_derivations() {
        let (u, dom) = setup();
        let lcl = Lcl::new(&u);
        let prog = parse_program("x := x + 1").unwrap();
        let p = u.filter(|s| (0..=2).contains(&s[0]));
        let d = lcl.derive(&dom, &p, &prog).unwrap();
        // Tamper with the postcondition.
        let Derivation::Transfer { mut triple } = d else {
            panic!("transfer expected");
        };
        triple.post = u.filter(|s| (0..=9).contains(&s[0]));
        let bad = Derivation::Transfer { triple };
        let err = lcl.check(&dom, &bad).unwrap_err();
        assert!(matches!(
            err,
            LclError::SideCondition {
                rule: "transfer",
                ..
            }
        ));
    }

    #[test]
    fn relax_rule_checks_convexity_window() {
        let (u, dom) = setup();
        let lcl = Lcl::new(&u);
        let prog = parse_program("x := x + 1").unwrap();
        let p = u.of_values([1, 3]);
        let inner = lcl.derive(&dom, &p, &prog).unwrap();
        // Valid relax: widen P to [1,3] (within A(P)), keep Q.
        let good = Derivation::Relax {
            triple: Triple {
                pre: u.filter(|s| (1..=3).contains(&s[0])),
                reg: prog.clone(),
                post: inner.triple().post.clone(),
            },
            inner: Box::new(inner.clone()),
        };
        lcl.check(&dom, &good).unwrap();
        assert!(lcl.triple_sound(&dom, good.triple()).unwrap());
        // Invalid relax: precondition outside A(P).
        let bad = Derivation::Relax {
            triple: Triple {
                pre: u.filter(|s| (0..=5).contains(&s[0])),
                reg: prog.clone(),
                post: inner.triple().post.clone(),
            },
            inner: Box::new(inner.clone()),
        };
        assert!(lcl.check(&dom, &bad).is_err());
        // Invalid relax: postcondition shrink that changes the abstraction.
        let bad2 = Derivation::Relax {
            triple: Triple {
                pre: p,
                reg: prog,
                post: u.empty(),
            },
            inner: Box::new(inner),
        };
        assert!(lcl.check(&dom, &bad2).is_err());
    }

    #[test]
    fn derivation_render_is_readable() {
        let (u, dom) = setup();
        let lcl = Lcl::new(&u);
        let prog = parse_program("either { x := 1 } or { x := 2 }").unwrap();
        let p = u.of_values([0]);
        let d = lcl.derive(&dom, &p, &prog).unwrap();
        let rendered = d.render(&u);
        assert!(rendered.contains("(join)"));
        assert!(rendered.lines().count() == 3, "{rendered}");
    }

    #[test]
    fn prove_spec_valid_and_true_alarm() {
        let (u, dom) = setup();
        let lcl = Lcl::new(&u);
        let prog = parse_program("if (x >= 0) then { skip } else { x := 0 - x }").unwrap();
        let odd = u.filter(|s| s[0] % 2 != 0);
        // Valid spec: x ≠ 0.
        let spec = u.filter(|s| s[0] != 0);
        let v = lcl.prove_spec(dom.clone(), &odd, &prog, &spec).unwrap();
        assert!(v.is_valid());
        // Invalid spec: x ≥ 2 — x = 1 is reachable, a true alarm.
        let bad_spec = u.filter(|s| s[0] >= 2);
        let v2 = lcl.prove_spec(dom, &odd, &prog, &bad_spec).unwrap();
        let SpecVerdict::TrueAlarm { witness, .. } = v2 else {
            panic!("expected a true alarm");
        };
        assert_eq!(u.store_at(witness), vec![1]);
    }

    /// Spec checking through LCL: a spec expressible in A holds iff
    /// Q ≤ Spec (the §1 claim).
    #[test]
    fn spec_decidability_from_triples() {
        let (u, dom) = setup();
        let lcl = Lcl::new(&u);
        let prog = parse_program("if (x >= 0) then { skip } else { x := 0 - x }").unwrap();
        let odd = u.filter(|s| s[0] % 2 != 0);
        let (d, repaired) = lcl.derive_with_repair(dom, &odd, &prog).unwrap();
        let q = &d.triple().post;
        // Spec1 = x ≠ 0 (expressible after repair): holds iff A(Q) ≤ Spec.
        let spec1 = u.filter(|s| s[0] != 0);
        assert!(repaired.close(q).is_subset(&spec1));
        // Spec2 = x ≥ 2: Q ⊄ Spec2, so a true alarm exists (x = 1).
        let spec2 = u.filter(|s| s[0] >= 2);
        assert!(!q.is_subset(&spec2));
        let sem = Concrete::new(&u);
        let real = sem.exec(&prog, &odd).unwrap();
        assert!(!real.is_subset(&spec2), "the alarm is real");
    }
}
