//! The abstract semantics `⟦·⟧♯_{A⊞N}` over enumerated domains.
//!
//! Basic commands are interpreted by their *best correct approximation*
//! `⟦e⟧_A = A ∘ ⟦e⟧ ∘ γ` (paper, Section 3.2) — on an [`EnumDomain`] whose
//! elements are already concretized state sets this is just
//! `A_N(⟦e⟧(a))`. Kleene stars iterate to the least fixpoint, optionally
//! accelerated by the pointed widening `∇_N` (Definition 7.11) to mirror
//! the paper's widened analyses.

use air_lang::ast::Reg;
use air_lang::{Concrete, SemCache, SemError, StateSet, TermId, TermNode};
use air_lattice::Governor;
use air_trace::{EventKind, Tracer};

use crate::domain::EnumDomain;

/// Star acceleration strategy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum StarStrategy {
    /// Exact least fixpoint by Kleene iteration (always terminates on a
    /// finite universe).
    #[default]
    Lfp,
    /// Pointed widening `X ∇_N (X ∨ step)` per Definition 7.11 — converges
    /// faster and reproduces the paper's widened invariants.
    PointedWidening,
}

/// An abstract interpreter over an [`EnumDomain`].
///
/// # Example
///
/// ```
/// use air_core::{AbstractSemantics, EnumDomain};
/// use air_domains::IntervalEnv;
/// use air_lang::{parse_program, Universe};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let u = Universe::new(&[("x", -8, 8)])?;
/// let dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
/// let sem = AbstractSemantics::new(&u);
/// let prog = parse_program("if (x >= 0) then { skip } else { x := 0 - x }")?;
/// let odd = u.filter(|s| s[0] % 2 != 0);
/// let out = sem.exec(&dom, &prog, &dom.close(&odd))?;
/// // The false alarm of the paper's introduction: 0 is included.
/// assert!(out.contains(u.store_index(&[0]).unwrap()));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct AbstractSemantics<'u> {
    sem: Concrete<'u>,
    strategy: StarStrategy,
    cache: Option<SemCache>,
    /// Whether leaf images go through the cache's concrete exec table.
    /// Resolved once at construction from the cache's bypass threshold,
    /// so small universes never pay a per-call probe: their leaves call
    /// the concrete semantics directly while the id-space image memo
    /// (which wins from the first repeated subterm) stays on.
    exec_table: bool,
    trace: Tracer,
    governor: Governor,
}

impl<'u> AbstractSemantics<'u> {
    /// Creates the abstract interpreter with exact star fixpoints and a
    /// fresh transfer-function cache.
    pub fn new(universe: &'u air_lang::Universe) -> Self {
        Self::with_cache(universe, SemCache::new())
    }

    /// Creates the interpreter memoizing concrete transfer images into
    /// `cache` (shareable across engines and threads).
    pub fn with_cache(universe: &'u air_lang::Universe, cache: SemCache) -> Self {
        let exec_table = !cache.is_bypassed(universe.size());
        AbstractSemantics {
            sem: Concrete::new(universe),
            strategy: StarStrategy::Lfp,
            cache: Some(cache),
            exec_table,
            trace: Tracer::disabled(),
            governor: Governor::unlimited(),
        }
    }

    /// Creates the interpreter without memoization (the reference path).
    pub fn uncached(universe: &'u air_lang::Universe) -> Self {
        AbstractSemantics {
            sem: Concrete::new(universe),
            strategy: StarStrategy::Lfp,
            cache: None,
            exec_table: false,
            trace: Tracer::disabled(),
            governor: Governor::unlimited(),
        }
    }

    /// Selects the star acceleration strategy.
    pub fn star_strategy(mut self, strategy: StarStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Emits `widening` events (and the cache's hit/miss/bypass
    /// telemetry) through `tracer`.
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        if let Some(cache) = &self.cache {
            cache.set_tracer(&tracer);
        }
        self.trace = tracer;
        self
    }

    /// Enforces `governor` at the star fixpoint's loop head: exhaustion
    /// surfaces as [`SemError::Exhausted`] instead of running the
    /// iteration to the universe bound.
    pub fn governor(mut self, governor: Governor) -> Self {
        self.governor = governor;
        self
    }

    fn exec_exp(&self, e: &air_lang::ast::Exp, a: &StateSet) -> Result<StateSet, SemError> {
        match &self.cache {
            Some(cache) => cache.exec_exp(&self.sem, e, a),
            None => self.sem.exec_exp(e, a),
        }
    }

    /// `⟦r⟧♯_{A⊞N} a` for an expressible `a` (callers pass `dom.close`d
    /// inputs; the function also accepts raw sets and closes basic-command
    /// outputs).
    ///
    /// With a cache attached, the term is interned once and interpreted
    /// in id space, memoizing the *abstract* image of every node in the
    /// domain's per-`N` image memo — so re-analyses of a subterm on an
    /// input already seen in this refinement are O(1). Universes at or
    /// under the bypass cutoff skip only the concrete exec table (leaves
    /// evaluate directly); see the `exec_table` field. The uncached
    /// interpreter below is the reference path and recomputes everything.
    ///
    /// # Errors
    ///
    /// Propagates [`SemError`] from concrete transfer functions (universe
    /// escapes, overflow).
    pub fn exec(&self, dom: &EnumDomain, r: &Reg, a: &StateSet) -> Result<StateSet, SemError> {
        if let Some(cache) = &self.cache {
            if self.strategy == StarStrategy::Lfp {
                let root = cache.intern(r).root;
                return self.exec_node(dom, cache, root, a);
            }
        }
        self.exec_plain(dom, r, a)
    }

    /// Id-keyed [`exec`](Self::exec): `id` must come from the arena of the
    /// cache this interpreter was built with. Engines that intern their
    /// program once drive this entry point to skip the per-call interning
    /// walk.
    ///
    /// # Errors
    ///
    /// Propagates [`SemError`]; panics if this interpreter has no cache.
    pub fn exec_id(
        &self,
        dom: &EnumDomain,
        id: TermId,
        a: &StateSet,
    ) -> Result<StateSet, SemError> {
        let cache = self.cache.as_ref().expect("exec_id requires a cache");
        if self.strategy == StarStrategy::Lfp {
            self.exec_node(dom, cache, id, a)
        } else {
            self.exec_plain(dom, &cache.arena().resolve(id), a)
        }
    }

    /// The memoized id-space interpreter: one `absmemo` entry per
    /// `(node, input)` reached in this refinement.
    fn exec_node(
        &self,
        dom: &EnumDomain,
        cache: &SemCache,
        id: TermId,
        a: &StateSet,
    ) -> Result<StateSet, SemError> {
        let key = (cache.arena().token(), id, a.clone());
        dom.abs_memo()
            .try_get_or_insert_with(&key, || match cache.arena().node(id) {
                TermNode::Basic(e) => {
                    let image = if self.exec_table {
                        cache.exec_exp(&self.sem, &e, a)?
                    } else {
                        self.sem.exec_exp(&e, a)?
                    };
                    Ok(dom.close(&image))
                }
                TermNode::Seq(r1, r2) => {
                    let mid = self.exec_node(dom, cache, r1, a)?;
                    self.exec_node(dom, cache, r2, &mid)
                }
                TermNode::Choice(r1, r2) => {
                    let l = self.exec_node(dom, cache, r1, a)?;
                    let rr = self.exec_node(dom, cache, r2, a)?;
                    Ok(dom.close(&l.union(&rr)))
                }
                TermNode::Star(body) => {
                    let mut x = dom.close(a);
                    // Same strictly-increasing Lfp iteration as the plain
                    // path; each round's body image is memoized.
                    for _ in 0..=self.sem.universe().size() {
                        self.governor.check_with(|| "absint.star".to_string())?;
                        let step = self.exec_node(dom, cache, body, &x)?;
                        let grown = dom.close(&x.union(&step));
                        if grown.is_subset(&x) {
                            return Ok(x);
                        }
                        x = grown;
                    }
                    Err(SemError::Divergence)
                }
            })
    }

    /// The reference interpreter over the plain AST (no image memo).
    fn exec_plain(&self, dom: &EnumDomain, r: &Reg, a: &StateSet) -> Result<StateSet, SemError> {
        match r {
            Reg::Basic(e) => Ok(dom.close(&self.exec_exp(e, a)?)),
            Reg::Seq(r1, r2) => {
                let mid = self.exec_plain(dom, r1, a)?;
                self.exec_plain(dom, r2, &mid)
            }
            Reg::Choice(r1, r2) => {
                let l = self.exec_plain(dom, r1, a)?;
                let rr = self.exec_plain(dom, r2, a)?;
                Ok(dom.close(&l.union(&rr)))
            }
            Reg::Star(body) => {
                let mut x = dom.close(a);
                // Strictly increasing on a finite lattice: ≤ |Σ|+1 rounds
                // for Lfp; pointed widening converges at least as fast.
                for _ in 0..=self.sem.universe().size() {
                    self.governor.check_with(|| "absint.star".to_string())?;
                    let step = self.exec_plain(dom, body, &x)?;
                    let grown = dom.close(&x.union(&step));
                    if grown.is_subset(&x) {
                        return Ok(x);
                    }
                    x = match self.strategy {
                        StarStrategy::Lfp => grown,
                        StarStrategy::PointedWidening => {
                            self.trace.emit_detail_with(|| EventKind::Widening {
                                site: "absint.star".to_string(),
                            });
                            dom.pointed_widen(&x, &grown)
                        }
                    };
                }
                Err(SemError::Divergence)
            }
        }
    }

    /// The underlying concrete semantics.
    pub fn concrete(&self) -> &Concrete<'u> {
        &self.sem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use air_domains::IntervalEnv;
    use air_lang::{parse_program, Universe};

    fn setup() -> (Universe, EnumDomain) {
        let u = Universe::new(&[("i", 0, 8), ("j", 0, 20)]).unwrap();
        let dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
        (u, dom)
    }

    #[test]
    fn abstract_exec_is_sound() {
        let (u, dom) = setup();
        let sem = AbstractSemantics::new(&u);
        let prog =
            parse_program("i := 1; j := 0; while (i <= 5) do { j := j + i; i := i + 1 }").unwrap();
        let conc = sem.concrete().exec(&prog, &u.full()).unwrap();
        let abst = sem.exec(&dom, &prog, &u.full()).unwrap();
        assert!(conc.is_subset(&abst));
        // The Int analysis loses the i-j relation: j's upper bound at exit
        // covers the whole enumerated range, like the paper's [0, ∞].
        assert!(abst.contains(u.store_index(&[6, 20]).unwrap()));
    }

    #[test]
    fn bca_of_basic_commands() {
        let (u, dom) = setup();
        let sem = AbstractSemantics::new(&u);
        let guard = parse_program("assume i <= 5").unwrap();
        let input = dom.close(&u.filter(|s| s[0] == 2 || s[0] == 7));
        let out = sem.exec(&dom, &guard, &input).unwrap();
        // bca: A(⟦b?⟧([2,7]×…)) = i ∈ [2,5].
        assert_eq!(out, u.filter(|s| (2..=5).contains(&s[0])));
    }

    #[test]
    fn repaired_domain_changes_abstract_output() {
        let (u, dom) = setup();
        let sem = AbstractSemantics::new(&u);
        let prog = parse_program("assume i <= 5").unwrap();
        let odd = u.filter(|s| s[0] % 2 == 1);
        // Base Int: closure of odd inputs includes evens.
        let base_out = sem.exec(&dom, &prog, &dom.close(&odd)).unwrap();
        assert!(base_out.contains(u.store_index(&[2, 0]).unwrap()));
        // After adding the odd set as a point, the guard stays exact.
        let dom2 = dom.with_point(odd.clone());
        let refined_out = sem.exec(&dom2, &prog, &dom2.close(&odd)).unwrap();
        assert!(!refined_out.contains(u.store_index(&[2, 0]).unwrap()));
    }

    #[test]
    fn star_lfp_and_widened_agree_in_inclusion() {
        let (u, dom) = setup();
        let prog = parse_program("star { assume i < 5; i := i + 1 }").unwrap();
        let input = u.filter(|s| s[0] == 0 && s[1] == 0);
        let exact = AbstractSemantics::new(&u)
            .exec(&dom, &prog, &dom.close(&input))
            .unwrap();
        let sink = std::sync::Arc::new(air_trace::MemorySink::new());
        let widened = AbstractSemantics::new(&u)
            .star_strategy(StarStrategy::PointedWidening)
            .tracer(air_trace::Tracer::new(sink.clone()))
            .exec(&dom, &prog, &dom.close(&input))
            .unwrap();
        assert!(exact.is_subset(&widened));
        // Each ∇_N application at the loop head is traced.
        assert!(sink
            .drain()
            .iter()
            .any(|e| matches!(e.kind, EventKind::Widening { ref site } if site == "absint.star")));
    }
}
