//! Local completeness and pointed shells (Section 4 of the paper).
//!
//! - [`LocalCompleteness::check`] — Definition 4.1: `C^A_c(f) ⇔ A f(c) =
//!   A f A(c)`.
//! - [`LocalCompleteness::sup_l`] — the lub of the local completeness set
//!   `L^A_{c,f} = {x ≤ A(c) | f(x) ≤ A f(c)}`; for additive `f` (every
//!   collecting semantics here) `∨L = A(c) ∧ wlp(f, A f(c))`
//!   (Theorem 4.4(ii)).
//! - [`LocalCompleteness::pointed_shell`] — Theorem 4.9: `A_u` with
//!   `u = ∨L` is the pointed shell iff `f(c) ≤ u ⇒ f(u) ≤ u`.
//! - [`LocalCompleteness::guard_shell`] — Theorem 4.11: the always-existing
//!   shell for a Boolean guard pair `{b?, ¬b?}`:
//!   `u = (A(P∩b)∩b) ∪ (A(P∩¬b)∩¬b)`.

use air_lang::ast::{BExp, Exp, Reg};
use air_lang::{Concrete, SemCache, SemError, StateSet, Universe, Wlp};

use crate::domain::EnumDomain;

/// The result of a pointed-shell construction (Theorem 4.9).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShellResult {
    /// The pointed shell exists; `A ⊞ {point}` is the most abstract
    /// locally complete pointed refinement.
    Shell {
        /// The new point `u = ∨L^A_{c,f}`.
        point: StateSet,
    },
    /// No pointed shell exists (Theorem 4.9's condition fails); callers
    /// may fall back to the most concrete pointed refinement `A ⊞ {c}`.
    NoShell {
        /// The candidate `u = ∨L^A_{c,f}` that failed the condition.
        candidate: StateSet,
    },
}

impl ShellResult {
    /// The shell point if one exists.
    pub fn shell_point(&self) -> Option<&StateSet> {
        match self {
            ShellResult::Shell { point } => Some(point),
            ShellResult::NoShell { .. } => None,
        }
    }
}

/// Local-completeness queries over a universe.
///
/// Created [`cached`](LocalCompleteness::new) by default: concrete
/// images, `wlp`s and guard sets are memoized in a [`SemCache`] shared
/// by all clones. Use [`uncached`](LocalCompleteness::uncached) for the
/// reference path (differential tests, baseline benchmarks).
#[derive(Clone, Debug)]
pub struct LocalCompleteness<'u> {
    universe: &'u Universe,
    sem: Concrete<'u>,
    wlp: Wlp<'u>,
    cache: Option<SemCache>,
}

impl<'u> LocalCompleteness<'u> {
    /// Creates the query context with a fresh shared cache.
    pub fn new(universe: &'u Universe) -> Self {
        Self::with_cache(universe, SemCache::new())
    }

    /// Creates the query context memoizing into `cache` (share one cache
    /// across engines and threads working on the same universe).
    pub fn with_cache(universe: &'u Universe, cache: SemCache) -> Self {
        LocalCompleteness {
            universe,
            sem: Concrete::new(universe),
            wlp: Wlp::new(universe),
            cache: Some(cache),
        }
    }

    /// Creates the query context without any memoization — every image is
    /// recomputed. The reference path for differential tests.
    pub fn uncached(universe: &'u Universe) -> Self {
        LocalCompleteness {
            universe,
            sem: Concrete::new(universe),
            wlp: Wlp::new(universe),
            cache: None,
        }
    }

    /// The shared semantic cache, if caching is enabled.
    pub fn cache(&self) -> Option<&SemCache> {
        self.cache.as_ref()
    }

    fn exec(&self, r: &Reg, c: &StateSet) -> Result<StateSet, SemError> {
        match &self.cache {
            Some(cache) => cache.exec(&self.sem, r, c),
            None => self.sem.exec(r, c),
        }
    }

    fn wlp_reg(&self, r: &Reg, post: &StateSet) -> Result<StateSet, SemError> {
        match &self.cache {
            Some(cache) => cache.wlp_reg(&self.wlp, r, post),
            None => self.wlp.reg(r, post),
        }
    }

    fn sat(&self, b: &BExp) -> Result<StateSet, SemError> {
        match &self.cache {
            Some(cache) => cache.sat(&self.sem, b),
            None => self.sem.sat(b),
        }
    }

    /// Definition 4.1: is `dom` locally complete for `⟦r⟧` on `c`?
    ///
    /// # Errors
    ///
    /// Propagates [`SemError`] from concrete execution.
    pub fn check(&self, dom: &EnumDomain, r: &Reg, c: &StateSet) -> Result<bool, SemError> {
        Ok(self.defect(dom, r, c)?.is_empty())
    }

    /// The *incompleteness defect* `A f A(c) ∖ A f(c)`: the spurious
    /// states introduced by abstracting the input. Empty iff locally
    /// complete; exposing the witness makes diagnostics and tests precise.
    ///
    /// # Errors
    ///
    /// Propagates [`SemError`].
    pub fn defect(&self, dom: &EnumDomain, r: &Reg, c: &StateSet) -> Result<StateSet, SemError> {
        let exact = dom.close(&self.exec(r, c)?);
        let through = dom.close(&self.exec(r, &dom.close(c))?);
        Ok(through.difference(&exact))
    }

    /// `∨L^A_{c,f} = A(c) ∧ wlp(f, A f(c))` for the additive `f = ⟦r⟧`
    /// (Theorem 4.4(ii)).
    ///
    /// # Errors
    ///
    /// Propagates [`SemError`].
    pub fn sup_l(&self, dom: &EnumDomain, r: &Reg, c: &StateSet) -> Result<StateSet, SemError> {
        let afc = dom.close(&self.exec(r, c)?);
        let pre = self.wlp_reg(r, &afc)?;
        Ok(dom.close(c).intersection(&pre))
    }

    /// Theorem 4.4: `C^A_c(f) ⇔ ∨L ∈ A` for additive `f`.
    ///
    /// # Errors
    ///
    /// Propagates [`SemError`].
    pub fn check_via_sup(&self, dom: &EnumDomain, r: &Reg, c: &StateSet) -> Result<bool, SemError> {
        Ok(dom.is_expressible(&self.sup_l(dom, r, c)?))
    }

    /// Theorem 4.9(ii): constructs the pointed shell of `dom` for `⟦r⟧` on
    /// `c` when it exists. For additive `f` the shell is `A_u` with
    /// `u = ∨L`, and it exists iff `f(c) ≤ u ⇒ f(u) ≤ u`.
    ///
    /// # Errors
    ///
    /// Propagates [`SemError`].
    pub fn pointed_shell(
        &self,
        dom: &EnumDomain,
        r: &Reg,
        c: &StateSet,
    ) -> Result<ShellResult, SemError> {
        let u = self.sup_l(dom, r, c)?;
        let fc = self.exec(r, c)?;
        let exists = if fc.is_subset(&u) {
            self.exec(r, &u)?.is_subset(&u)
        } else {
            true
        };
        Ok(if exists {
            ShellResult::Shell { point: u }
        } else {
            ShellResult::NoShell { candidate: u }
        })
    }

    /// Theorem 4.11: the pointed shell for the guard pair `{b?, ¬b?}` on
    /// `P`, which always exists:
    /// `u = (A(P∩b) ∩ b) ∪ (A(P∩¬b) ∩ ¬b)`.
    ///
    /// # Errors
    ///
    /// Propagates [`SemError`] from guard evaluation.
    pub fn guard_shell(
        &self,
        dom: &EnumDomain,
        b: &BExp,
        p: &StateSet,
    ) -> Result<StateSet, SemError> {
        let sat_b = self.sat(b)?;
        let not_b = sat_b.complement();
        let pos = dom.close(&p.intersection(&sat_b)).intersection(&sat_b);
        let neg = dom.close(&p.intersection(&not_b)).intersection(&not_b);
        Ok(pos.union(&neg))
    }

    /// Local completeness of a single basic command (`Definition 4.1` with
    /// `f = ⟦e⟧`).
    ///
    /// # Errors
    ///
    /// Propagates [`SemError`].
    pub fn check_exp(&self, dom: &EnumDomain, e: &Exp, c: &StateSet) -> Result<bool, SemError> {
        self.check(dom, &Reg::Basic(e.clone()), c)
    }

    /// The universe this context works over.
    pub fn universe(&self) -> &'u Universe {
        self.universe
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use air_domains::IntervalEnv;
    use air_lang::{parse_bexp, parse_program};

    fn int_universe() -> Universe {
        Universe::new(&[("x", -8, 8)]).unwrap()
    }

    fn int_domain(u: &Universe) -> EnumDomain {
        EnumDomain::from_abstraction(u, IntervalEnv::new(u))
    }

    /// Example 4.2: c = if (0 < x) then x := x − 2 else x := x + 1.
    fn example_4_2_program() -> Reg {
        parse_program("if (0 < x) then { x := x - 2 } else { x := x + 1 }").unwrap()
    }

    #[test]
    fn example_4_2_local_completeness_cases() {
        let u = int_universe();
        let dom = int_domain(&u);
        let lc = LocalCompleteness::new(&u);
        let c = example_4_2_program();
        // Locally complete on P1 = {2, 5} ⊆ Z>0 ...
        assert!(lc.check(&dom, &c, &u.of_values([2, 5])).unwrap());
        // ... and on subsets of Z≤0, and when {0,1} ⊆ P ...
        assert!(lc.check(&dom, &c, &u.of_values([-4, -1])).unwrap());
        assert!(lc.check(&dom, &c, &u.of_values([0, 1, 5])).unwrap());
        // ... but not on P2 = {0, 3}.
        assert!(!lc.check(&dom, &c, &u.of_values([0, 3])).unwrap());
        // Theorem 4.4 equivalence on all four inputs.
        for vals in [vec![2, 5], vec![-4, -1], vec![0, 1, 5], vec![0, 3]] {
            let p = u.of_values(vals);
            assert_eq!(
                lc.check(&dom, &c, &p).unwrap(),
                lc.check_via_sup(&dom, &c, &p).unwrap()
            );
        }
    }

    #[test]
    fn example_4_2_composition_breaks_local_completeness() {
        let u = int_universe();
        let dom = int_domain(&u);
        let lc = LocalCompleteness::new(&u);
        let c = example_4_2_program();
        let cc = c.clone().seq(c.clone());
        let p1 = u.of_values([2, 5]);
        assert!(lc.check(&dom, &c, &p1).unwrap());
        assert!(!lc.check(&dom, &cc, &p1).unwrap());
        // Int(⟦c;c⟧{2,5}) = [1,1] but Int(⟦c;c⟧[2,5]) = [-1,1].
        let defect = lc.defect(&dom, &cc, &p1).unwrap();
        assert_eq!(defect, u.of_values([-1, 0]));
    }

    #[test]
    fn example_4_5_sup_l_values() {
        let u = int_universe();
        let dom = int_domain(&u);
        let lc = LocalCompleteness::new(&u);
        let c = example_4_2_program();
        // ∨L on P1 = {2,5} is [2,5] (expressible ⇒ locally complete).
        assert_eq!(
            lc.sup_l(&dom, &c, &u.of_values([2, 5])).unwrap(),
            u.filter(|s| (2..=5).contains(&s[0]))
        );
        // ∨L on P2 = {0,3} is {0,3} (not expressible ⇒ incomplete).
        assert_eq!(
            lc.sup_l(&dom, &c, &u.of_values([0, 3])).unwrap(),
            u.of_values([0, 3])
        );
    }

    #[test]
    fn example_4_6_and_4_10_toy_shell() {
        // A = {Z, [0,4], [1,3]}, f = x := x + 1, P = {0, 2}.
        let u = int_universe();
        let dom = EnumDomain::from_family(
            &u,
            "Toy",
            [
                u.filter(|s| (0..=4).contains(&s[0])),
                u.filter(|s| (1..=3).contains(&s[0])),
            ],
        );
        let lc = LocalCompleteness::new(&u);
        let f = parse_program("x := x + 1").unwrap();
        let p = u.of_values([0, 2]);
        assert!(!lc.check(&dom, &f, &p).unwrap());
        // ∨L = [0,2]; f(P) = {1,3} ⊄ [0,2] so the premise fails and the
        // shell exists: A_{[0,2]}.
        let shell = lc.pointed_shell(&dom, &f, &p).unwrap();
        assert_eq!(
            shell.shell_point().unwrap(),
            &u.filter(|s| (0..=2).contains(&s[0]))
        );
        // The refined domain is locally complete on P (Example 4.6).
        let refined = dom.with_point(shell.shell_point().unwrap().clone());
        assert!(lc.check(&refined, &f, &p).unwrap());
    }

    #[test]
    fn example_4_10_interval_shell_for_compound() {
        // Int is not locally complete for Example 4.2's c on P2 = {0,3};
        // ∨L = {0,3} and ⟦c⟧P2 = {1} ⊄ {0,3}, so Int ⊞ {0,3} is the shell.
        let u = int_universe();
        let dom = int_domain(&u);
        let lc = LocalCompleteness::new(&u);
        let c = example_4_2_program();
        let p2 = u.of_values([0, 3]);
        let shell = lc.pointed_shell(&dom, &c, &p2).unwrap();
        assert_eq!(shell.shell_point().unwrap(), &p2);
        let refined = dom.with_point(p2.clone());
        assert!(lc.check(&refined, &c, &p2).unwrap());
    }

    #[test]
    fn example_4_12_guard_shell() {
        // b = x > 0, P = {-3, -1, 2}: u = [-3,-1] ∪ {2}.
        let u = int_universe();
        let dom = int_domain(&u);
        let lc = LocalCompleteness::new(&u);
        let b = parse_bexp("x > 0").unwrap();
        let p = u.of_values([-3, -1, 2]);
        let shell = lc.guard_shell(&dom, &b, &p).unwrap();
        assert_eq!(shell, u.of_values([-3, -2, -1, 2]));
        // The refinement makes both guards locally complete on P.
        let refined = dom.with_point(shell);
        assert!(lc.check_exp(&refined, &Exp::Assume(b.clone()), &p).unwrap());
        assert!(lc
            .check_exp(&refined, &Exp::Assume(b.negate()), &p)
            .unwrap());
    }

    #[test]
    fn convexity_of_local_completeness() {
        // Remark after Def. 4.1: C^A_c(f) implies C^A_x(f) for c ≤ x ≤ A(c).
        let u = int_universe();
        let dom = int_domain(&u);
        let lc = LocalCompleteness::new(&u);
        let c = example_4_2_program();
        let p = u.of_values([2, 5]);
        assert!(lc.check(&dom, &c, &p).unwrap());
        let closure = dom.close(&p); // [2,5]
        for extra in [3, 4] {
            let mut x = p.clone();
            x.insert(u.store_index(&[extra]).unwrap());
            assert!(x.is_subset(&closure));
            assert!(lc.check(&dom, &c, &x).unwrap(), "failed at x ∪ {{{extra}}}");
        }
    }

    #[test]
    fn shell_optimality_among_pointed_refinements() {
        // Any point x ≤ A(c) whose pointed refinement is locally complete
        // satisfies x ≤ u (maximality of the shell point).
        let u = Universe::new(&[("x", -4, 4)]).unwrap();
        let lc = LocalCompleteness::new(&u);
        let f = parse_program("x := x + 1").unwrap();
        // Build a genuinely incomplete instance on the toy domain.
        let toy = EnumDomain::from_family(
            &u,
            "Toy",
            [
                u.filter(|s| (0..=4).contains(&s[0])),
                u.filter(|s| (1..=3).contains(&s[0])),
            ],
        );
        let p = u.of_values([0, 2]);
        let ShellResult::Shell { point: shell } = lc.pointed_shell(&toy, &f, &p).unwrap() else {
            panic!("shell must exist here");
        };
        let a_of_p = toy.close(&p);
        // Enumerate all subsets of A(p) containing p (small: |A(p)| = 5).
        let extra: Vec<usize> = a_of_p.difference(&p).iter().collect();
        for mask in 0u32..(1 << extra.len()) {
            let mut x = p.clone();
            for (k, &idx) in extra.iter().enumerate() {
                if mask & (1 << k) != 0 {
                    x.insert(idx);
                }
            }
            let refined = toy.with_point(x.clone());
            if lc.check(&refined, &f, &p).unwrap() {
                assert!(
                    x.is_subset(&shell),
                    "locally complete point {x:?} exceeds the shell {shell:?}"
                );
            }
        }
    }
}
