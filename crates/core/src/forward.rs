//! Forward repair — Algorithm 1 of the paper (`fRepair`).
//!
//! The `find` oracle walks the program alongside the *concrete* semantics,
//! checking one local completeness proof obligation per basic command; the
//! first violated obligation `⟨R, e⟩` is repaired by a pointed shell
//! (Theorem 4.11 for guards — always exists; Theorem 4.9 for assignments,
//! falling back to the most concrete refinement `A ⊞ {R}` when no shell
//! exists), and the analysis is restarted in the refined domain, exactly
//! as the paper prescribes ("after any repair, the forward strategy must
//! redo the abstract interpretation").

use std::fmt;

use air_lang::ast::{Exp, Reg};
use air_lang::{SemCache, SemError, StateSet, Universe};
use air_lattice::{ExhaustReason, Exhaustion, Governor};
use air_trace::{EventKind, Tracer};

use crate::domain::EnumDomain;
use crate::local::{LocalCompleteness, ShellResult};

/// The best partial result available when a repair ran out of budget.
///
/// Everything in it is *sound*: `points` were legitimately added to the
/// domain before exhaustion (any pointed refinement is a valid domain,
/// Thm. 4.9/4.11), and `invariant`, when present, is the abstract
/// interpretation of the program in the partially-repaired domain — an
/// over-approximation of the reachable states by construction, merely
/// less precise than the fully-repaired one (Thm. 7.1/7.6 describe the
/// precision the *completed* repair would certify).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartialRepair {
    /// Which phase tripped, how much fuel was spent, and why.
    pub exhaustion: Exhaustion,
    /// Points added to the domain before the budget ran out.
    pub points: Vec<StateSet>,
    /// A sound over-approximation of `⟦r⟧(A(P))` in the partially
    /// repaired domain, when one could be computed.
    pub invariant: Option<StateSet>,
}

impl PartialRepair {
    /// A partial result carrying only the exhaustion record (engines
    /// enrich it with points/invariant at their catch sites).
    pub fn bare(exhaustion: Exhaustion) -> Self {
        PartialRepair {
            exhaustion,
            points: Vec::new(),
            invariant: None,
        }
    }
}

/// Errors from the repair algorithms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RepairError {
    /// Concrete or abstract evaluation failed.
    Sem(SemError),
    /// A resource budget (fuel, deadline, cancellation, or the engine's
    /// own iteration cap) ran out; the boxed [`PartialRepair`] carries
    /// the best sound result computed before the cutoff.
    Exhausted(Box<PartialRepair>),
    /// An internal invariant was violated — a bug in the engine, never
    /// the user's fault.
    Internal(String),
}

impl RepairError {
    /// The exhaustion record, when this error is a budget cutoff.
    pub fn exhaustion(&self) -> Option<&Exhaustion> {
        match self {
            RepairError::Exhausted(p) => Some(&p.exhaustion),
            _ => None,
        }
    }
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::Sem(e) => write!(f, "semantic evaluation failed: {e}"),
            RepairError::Exhausted(p) => {
                write!(f, "{} ({} partial points)", p.exhaustion, p.points.len())
            }
            RepairError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for RepairError {}

impl From<SemError> for RepairError {
    fn from(e: SemError) -> Self {
        match e {
            SemError::Exhausted(x) => RepairError::from(x),
            other => RepairError::Sem(other),
        }
    }
}

impl From<Exhaustion> for RepairError {
    fn from(e: Exhaustion) -> Self {
        RepairError::Exhausted(Box::new(PartialRepair::bare(e)))
    }
}

/// Which construction produced a repair point (provenance for reports).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RepairRule {
    /// Theorem 4.11 — the always-existing Boolean-guard shell.
    GuardShell,
    /// Theorem 4.9 — the pointed shell `u = ∨L`.
    PointedShell,
    /// No shell exists; the most concrete pointed refinement `A ⊞ {c}`
    /// was used (Section 5's fallback).
    MostConcrete,
}

impl fmt::Display for RepairRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RepairRule::GuardShell => "guard shell (Thm 4.11)",
            RepairRule::PointedShell => "pointed shell (Thm 4.9)",
            RepairRule::MostConcrete => "most concrete refinement",
        })
    }
}

/// The outcome of a successful forward repair.
#[derive(Clone, Debug)]
pub struct RepairOutcome {
    /// The repaired domain `A ⊞ N'` — locally complete for the program on
    /// the input.
    pub domain: EnumDomain,
    /// The under-approximation `Q ≤ ⟦r⟧P` with `A_{N'}(Q) = A_{N'}(⟦r⟧P)`
    /// (Theorem 7.1). With the concrete `find` oracle this is exact.
    pub under: StateSet,
    /// Number of pointed-shell refinements performed.
    pub repairs: usize,
    /// Number of `find` restarts (= repairs + 1 on success).
    pub analysis_runs: usize,
    /// Local completeness proof obligations checked across all runs.
    pub obligations_checked: usize,
    /// For each added point (in order): the rule that produced it and the
    /// basic command whose obligation it repaired.
    pub provenance: Vec<(RepairRule, Exp)>,
}

/// One violated proof obligation found by the oracle.
struct Obligation {
    input: StateSet,
    exp: Exp,
}

enum FindOutcome {
    Under(StateSet),
    Incomplete(Obligation),
}

/// The forward repair strategy (Algorithm 1).
///
/// # Example
///
/// ```
/// use air_core::{EnumDomain, ForwardRepair};
/// use air_domains::IntervalEnv;
/// use air_lang::{parse_program, Universe};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let u = Universe::new(&[("x", -8, 8)])?;
/// let dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
/// let prog = parse_program("if (x >= 0) then { skip } else { x := 0 - x }")?;
/// let odd = u.filter(|s| s[0] % 2 != 0);
///
/// let outcome = ForwardRepair::new(&u).repair(dom, &prog, &odd)?;
/// // One guard repair (the paper's Example 7.2) suffices.
/// assert_eq!(outcome.repairs, 1);
/// assert!(!outcome.domain.close(&outcome.under).contains(u.store_index(&[0]).unwrap()));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct ForwardRepair<'u> {
    universe: &'u Universe,
    lc: LocalCompleteness<'u>,
    cache: Option<SemCache>,
    max_repairs: usize,
    trace: Tracer,
    governor: Governor,
}

impl<'u> ForwardRepair<'u> {
    /// Creates the strategy with a default budget of 10 000 refinements
    /// and a fresh shared cache (obligations re-checked across the
    /// restarts of Algorithm 1 hit the memoized images).
    pub fn new(universe: &'u Universe) -> Self {
        Self::with_cache(universe, SemCache::new())
    }

    /// Creates the strategy memoizing into `cache`.
    pub fn with_cache(universe: &'u Universe, cache: SemCache) -> Self {
        ForwardRepair {
            universe,
            lc: LocalCompleteness::with_cache(universe, cache.clone()),
            cache: Some(cache),
            max_repairs: 10_000,
            trace: Tracer::disabled(),
            governor: Governor::unlimited(),
        }
    }

    /// Creates the strategy without memoization (the reference path).
    pub fn uncached(universe: &'u Universe) -> Self {
        ForwardRepair {
            universe,
            lc: LocalCompleteness::uncached(universe),
            cache: None,
            max_repairs: 10_000,
            trace: Tracer::disabled(),
            governor: Governor::unlimited(),
        }
    }

    /// The shared semantic cache, if caching is enabled.
    pub fn cache(&self) -> Option<&SemCache> {
        self.cache.as_ref()
    }

    /// Sets the refinement budget.
    pub fn max_repairs(mut self, max: usize) -> Self {
        self.max_repairs = max;
        self
    }

    /// Enforces `governor` at the repair-loop and star-unroll heads:
    /// fuel/deadline exhaustion (or cancellation from a sibling worker)
    /// surfaces as [`RepairError::Exhausted`] with the partial result.
    pub fn governor(mut self, governor: Governor) -> Self {
        self.governor = governor;
        self
    }

    /// Emits `incompleteness`/`shell_point` events (and the cache's
    /// hit/miss/bypass telemetry) through `tracer`.
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        if let Some(cache) = &self.cache {
            cache.set_tracer(&tracer);
        }
        self.trace = tracer;
        self
    }

    /// Algorithm 1: repairs `dom` until every local completeness proof
    /// obligation raised by `r` on input `p` holds. Returns the repaired
    /// domain and the exact under-approximation of `⟦r⟧p`.
    ///
    /// # Errors
    ///
    /// [`RepairError::Sem`] on evaluation failures (universe escape,
    /// overflow) and [`RepairError::Exhausted`] if the refinement cap or
    /// the configured [`Governor`] budget runs out — the error then
    /// carries the points added so far and a sound partial invariant.
    pub fn repair(
        &self,
        mut dom: EnumDomain,
        r: &Reg,
        p: &StateSet,
    ) -> Result<RepairOutcome, RepairError> {
        let _span = self.trace.span(|| "repair.forward".to_string());
        // Engine-level demotion: on universes at or under the bypass
        // threshold the memo tables cannot win, so drop the cache once
        // here (one counted/traced bypass) and run the whole loop on the
        // plain path with zero per-obligation probes.
        let cache = self
            .cache
            .as_ref()
            .filter(|c| !c.demote_for(self.universe.size()));
        let mut repairs = 0;
        let mut analysis_runs = 0;
        let mut obligations_checked = 0;
        let mut provenance = Vec::new();
        loop {
            analysis_runs += 1;
            if let Err(e) = self.governor.check_with(|| "repair.forward".to_string()) {
                return Err(self.exhausted(e.into(), &dom, r, p));
            }
            match self.find(&dom, cache, r, p, &mut obligations_checked) {
                Err(e) => return Err(self.exhausted(e, &dom, r, p)),
                Ok(FindOutcome::Under(q)) => {
                    self.trace.emit_detail_with(|| EventKind::Counter {
                        name: "forward.analysis_runs".to_string(),
                        delta: analysis_runs as u64,
                    });
                    self.trace.emit_detail_with(|| EventKind::Counter {
                        name: "forward.obligations_checked".to_string(),
                        delta: obligations_checked as u64,
                    });
                    return Ok(RepairOutcome {
                        domain: dom,
                        under: q,
                        repairs,
                        analysis_runs,
                        obligations_checked,
                        provenance,
                    });
                }
                Ok(FindOutcome::Incomplete(ob)) => {
                    self.trace.emit_detail_with(|| EventKind::Incompleteness {
                        exp: ob.exp.to_string(),
                        input_size: ob.input.len(),
                    });
                    if repairs >= self.max_repairs {
                        let cap = Exhaustion {
                            phase: "repair.forward.max_repairs".to_string(),
                            spent: repairs as u64,
                            reason: ExhaustReason::Fuel,
                        };
                        return Err(self.exhausted(cap.into(), &dom, r, p));
                    }
                    let (point, rule) = match self.refine_point(&dom, &ob) {
                        Ok(found) => found,
                        Err(e) => return Err(self.exhausted(e, &dom, r, p)),
                    };
                    self.trace.emit_detail_with(|| EventKind::ShellPoint {
                        rule: rule.to_string(),
                        exp: ob.exp.to_string(),
                        point_size: point.len(),
                    });
                    provenance.push((rule, ob.exp.clone()));
                    dom.add_point(point);
                    repairs += 1;
                }
            }
        }
    }

    /// Enriches a budget cutoff with the best partial result: the points
    /// added so far and the (always sound) abstract invariant in the
    /// partially repaired domain. Non-exhaustion errors pass through.
    fn exhausted(&self, err: RepairError, dom: &EnumDomain, r: &Reg, p: &StateSet) -> RepairError {
        let RepairError::Exhausted(mut partial) = err else {
            return err;
        };
        if partial.points.is_empty() {
            partial.points = dom.points().to_vec();
        }
        if partial.invariant.is_none() {
            // An ungoverned pass: the absint fixpoint is bounded by the
            // universe size, so this terminates even though the budget
            // is spent; soundness needs no completed repair.
            let sem = match &self.cache {
                Some(cache) => {
                    crate::absint::AbstractSemantics::with_cache(self.universe, cache.clone())
                }
                None => crate::absint::AbstractSemantics::uncached(self.universe),
            };
            partial.invariant = sem.exec(dom, r, &dom.close(p)).ok();
        }
        self.trace.emit_with(|| EventKind::BudgetExhausted {
            phase: partial.exhaustion.phase.clone(),
            spent: partial.exhaustion.spent,
            reason: partial.exhaustion.reason.name().to_string(),
        });
        RepairError::Exhausted(partial)
    }

    /// `refine_A(N, R, e)`: the pointed shell for the violated obligation.
    fn refine_point(
        &self,
        dom: &EnumDomain,
        ob: &Obligation,
    ) -> Result<(StateSet, RepairRule), RepairError> {
        match &ob.exp {
            // Theorem 4.11: guards always have a pointed shell.
            Exp::Assume(b) => Ok((
                self.lc.guard_shell(dom, b, &ob.input)?,
                RepairRule::GuardShell,
            )),
            // Theorem 4.9 for assignments (skip is globally complete and
            // never raises an obligation).
            e => {
                let r = Reg::Basic(e.clone());
                match self.lc.pointed_shell(dom, &r, &ob.input)? {
                    ShellResult::Shell { point } => Ok((point, RepairRule::PointedShell)),
                    // No shell: take the most concrete pointed refinement,
                    // as the paper suggests (Section 5).
                    ShellResult::NoShell { .. } => Ok((ob.input.clone(), RepairRule::MostConcrete)),
                }
            }
        }
    }

    /// The structural `find_A` oracle: returns an under-approximation when
    /// every obligation along the (concrete) computation holds, or the
    /// first violated obligation.
    fn find(
        &self,
        dom: &EnumDomain,
        cache: Option<&SemCache>,
        r: &Reg,
        p: &StateSet,
        checked: &mut usize,
    ) -> Result<FindOutcome, RepairError> {
        let sem = air_lang::Concrete::new(self.universe);
        match r {
            Reg::Basic(e) => {
                *checked += 1;
                if self.lc.check_exp(dom, e, p)? {
                    let image = match cache {
                        Some(cache) => cache.exec_exp(&sem, e, p)?,
                        None => sem.exec_exp(e, p)?,
                    };
                    Ok(FindOutcome::Under(image))
                } else {
                    Ok(FindOutcome::Incomplete(Obligation {
                        input: p.clone(),
                        exp: e.clone(),
                    }))
                }
            }
            Reg::Seq(r1, r2) => match self.find(dom, cache, r1, p, checked)? {
                FindOutcome::Under(q) => self.find(dom, cache, r2, &q, checked),
                incomplete => Ok(incomplete),
            },
            Reg::Choice(r1, r2) => {
                let q1 = match self.find(dom, cache, r1, p, checked)? {
                    FindOutcome::Under(q) => q,
                    incomplete => return Ok(incomplete),
                };
                let q2 = match self.find(dom, cache, r2, p, checked)? {
                    FindOutcome::Under(q) => q,
                    incomplete => return Ok(incomplete),
                };
                Ok(FindOutcome::Under(q1.union(&q2)))
            }
            Reg::Star(body) => {
                // Concrete unrolling: obligations are raised on every
                // intermediate input until the concrete fixpoint.
                let mut acc = p.clone();
                for _ in 0..=self.universe.size() {
                    self.governor
                        .check_with(|| "repair.forward.find".to_string())?;
                    let step = match self.find(dom, cache, body, &acc, checked)? {
                        FindOutcome::Under(q) => q,
                        incomplete => return Ok(incomplete),
                    };
                    let next = acc.union(&step);
                    if next == acc {
                        return Ok(FindOutcome::Under(acc));
                    }
                    acc = next;
                }
                Err(RepairError::Sem(SemError::Divergence))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::absint::AbstractSemantics;
    use air_domains::IntervalEnv;
    use air_lang::{parse_program, Universe};

    fn setup() -> (Universe, EnumDomain) {
        let u = Universe::new(&[("x", -8, 8)]).unwrap();
        let dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
        (u, dom)
    }

    /// Example 7.2: forward repair of AbsVal on odd inputs adds Z≠0 (the
    /// guard shell) and the repaired analysis proves x ≠ 0.
    #[test]
    fn example_7_2_absval_forward_repair() {
        let (u, dom) = setup();
        let prog = parse_program("if (x >= 0) then { skip } else { x := 0 - x }").unwrap();
        let odd = u.filter(|s| s[0] % 2 != 0);
        let fr = ForwardRepair::new(&u);
        let out = fr.repair(dom, &prog, &odd).unwrap();
        assert_eq!(out.repairs, 1);
        // Provenance: the single repair came from the guard shell.
        assert_eq!(out.provenance.len(), 1);
        assert_eq!(out.provenance[0].0, RepairRule::GuardShell);
        assert!(matches!(out.provenance[0].1, Exp::Assume(_)));
        // The added point is the guard shell: hull(odd>0)∩(x≥0) ∪ hull(odd<0)∩(x<0)
        // = [1,7] ∪ [-7,-1] — the finite-universe rendering of Z≠0.
        let zneq0 = u.filter(|s| s[0] != 0 && s[0].abs() <= 7);
        assert_eq!(out.domain.points(), &[zneq0]);
        // Q = ⟦AbsVal⟧(odd) exactly; its closure excludes 0.
        let sem = air_lang::Concrete::new(&u);
        assert_eq!(out.under, sem.exec(&prog, &odd).unwrap());
        let closure = out.domain.close(&out.under);
        assert!(!closure.contains(u.store_index(&[0]).unwrap()));
        // Theorem 7.1 postconditions: C^{A_N'}_P(r) and A(Q) = A(⟦r⟧P).
        let lc = LocalCompleteness::new(&u);
        assert!(lc.check(&out.domain, &prog, &odd).unwrap());
    }

    #[test]
    fn already_complete_program_needs_no_repair() {
        let (u, dom) = setup();
        let prog = parse_program("x := x + 1").unwrap();
        let p = u.filter(|s| (-3..=3).contains(&s[0]));
        let out = ForwardRepair::new(&u).repair(dom, &prog, &p).unwrap();
        assert_eq!(out.repairs, 0);
        assert_eq!(out.analysis_runs, 1);
    }

    #[test]
    fn repaired_abstract_analysis_loses_no_precision() {
        // After repair, the abstract analysis in the refined domain equals
        // the closure of the concrete output (no false alarms).
        let (u, dom) = setup();
        let prog = parse_program("if (0 < x) then { x := x - 2 } else { x := x + 1 }").unwrap();
        let p = u.of_values([0, 3]);
        let out = ForwardRepair::new(&u).repair(dom, &prog, &p).unwrap();
        let asem = AbstractSemantics::new(&u);
        let abstract_out = asem
            .exec(&out.domain, &prog, &out.domain.close(&p))
            .unwrap();
        assert_eq!(abstract_out, out.domain.close(&out.under));
    }

    #[test]
    fn loop_repair_terminates() {
        let u = Universe::new(&[("i", 0, 8), ("j", 0, 20)]).unwrap();
        let dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
        let prog =
            parse_program("i := 1; j := 0; while (i <= 5) do { j := j + i; i := i + 1 }").unwrap();
        let p = u.filter(|s| s[0] == 0 && s[1] == 0);
        let out = ForwardRepair::new(&u).repair(dom, &prog, &p).unwrap();
        // The concrete result is i=6, j=15.
        assert_eq!(out.under, u.filter(|s| s[0] == 6 && s[1] == 15));
        let lc = LocalCompleteness::new(&u);
        assert!(lc.check(&out.domain, &prog, &p).unwrap());
    }

    #[test]
    fn budget_exhaustion_reports_error() {
        let (u, dom) = setup();
        let prog = parse_program("if (0 < x) then { x := x - 2 } else { x := x + 1 }").unwrap();
        let p = u.of_values([0, 3]);
        let err = ForwardRepair::new(&u)
            .max_repairs(0)
            .repair(dom, &prog, &p)
            .unwrap_err();
        let RepairError::Exhausted(partial) = err else {
            panic!("expected exhaustion, got {err:?}");
        };
        assert_eq!(partial.exhaustion.reason, air_lattice::ExhaustReason::Fuel);
        assert_eq!(partial.exhaustion.phase, "repair.forward.max_repairs");
        // The partial invariant is a sound over-approximation even though
        // no repair completed.
        let conc = air_lang::Concrete::new(&u).exec(&prog, &p).unwrap();
        let inv = partial.invariant.expect("partial invariant computed");
        assert!(conc.is_subset(&inv));
    }

    #[test]
    fn governed_repair_exhausts_fuel_with_partial_result() {
        let (u, dom) = setup();
        let prog = parse_program("if (0 < x) then { x := x - 2 } else { x := x + 1 }").unwrap();
        let p = u.of_values([0, 3]);
        let g = air_lattice::Governor::new(air_lattice::Budget::fuel(1));
        let err = ForwardRepair::new(&u)
            .governor(g.clone())
            .repair(dom, &prog, &p)
            .unwrap_err();
        let Some(exhaustion) = err.exhaustion() else {
            panic!("expected exhaustion, got {err:?}");
        };
        assert_eq!(exhaustion.reason, air_lattice::ExhaustReason::Fuel);
        assert!(g.is_cancelled(), "exhaustion cancels the shared governor");
    }

    #[test]
    fn obligations_counted() {
        let (u, dom) = setup();
        let prog = parse_program("skip; x := x + 1").unwrap();
        let p = u.of_values([0]);
        let out = ForwardRepair::new(&u).repair(dom, &prog, &p).unwrap();
        assert_eq!(out.obligations_checked, 2);
    }
}
