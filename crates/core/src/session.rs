//! Incremental re-repair: a long-lived verification session.
//!
//! A [`RepairSession`] owns the warm state of one `(universe, domain)`
//! pair — the shared [`SemCache`] (term arena, `wlp`/exec tables) and a
//! base [`EnumDomain`] whose closure and image memos persist across
//! verifications. Verifying a program warms those tables; re-verifying
//! it after an edit re-interns the program into the same arena, so every
//! subterm untouched by the edit keeps its id and with it every memoized
//! derivation — `wlp` sets, concrete transfer images, whole-term abstract
//! images. The re-repair cost is then proportional to the *edit*, not
//! the program: [`ReuseStats::fresh_nodes`] is exactly the structural
//! distance between the new program and everything the session has seen.
//!
//! Determinism: warm tables only memoize pure functions, so a session
//! verdict is byte-identical to a from-scratch run of the same program
//! (the edited-program equivalence tests in the umbrella crate pin this).

use air_lang::{SemCache, StateSet, TermArena, Universe};
use air_lattice::Governor;
use air_trace::Tracer;

use crate::domain::EnumDomain;
use crate::verify::{Verdict, Verifier};
use crate::RepairError;

/// What a session verification reused from its warm state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReuseStats {
    /// Distinct structural nodes in the verified program.
    pub program_nodes: usize,
    /// Nodes this verification added to the session arena — the
    /// structural distance from everything verified before (`0` when
    /// re-verifying an unchanged program).
    pub fresh_nodes: usize,
    /// `true` when the session had verified at least one program before
    /// this call (so warm-table reuse was possible at all).
    pub incremental: bool,
}

impl ReuseStats {
    /// Nodes already interned before this call: `program_nodes -
    /// fresh_nodes`.
    pub fn reused_nodes(&self) -> usize {
        self.program_nodes - self.fresh_nodes
    }

    /// Fraction of the program's nodes that were already known, in
    /// `[0, 1]`; `0` for an empty program.
    pub fn reuse_ratio(&self) -> f64 {
        if self.program_nodes == 0 {
            0.0
        } else {
            self.reused_nodes() as f64 / self.program_nodes as f64
        }
    }
}

/// A session verdict: the ordinary [`Verdict`] plus what was reused.
#[derive(Clone, Debug)]
pub struct SessionOutcome {
    /// The verification verdict — byte-identical to a from-scratch run.
    pub verdict: Verdict,
    /// Warm-state reuse accounting for this call.
    pub reuse: ReuseStats,
}

/// A long-lived verification session with warm caches (see the module
/// docs). Construct once per `(universe, base domain)` pair; call
/// [`verify`](RepairSession::verify) for every program revision.
#[derive(Clone, Debug)]
pub struct RepairSession {
    universe: Universe,
    base: EnumDomain,
    cache: SemCache,
    tracer: Tracer,
    governor: Governor,
    runs: usize,
}

impl RepairSession {
    /// Creates a session over `universe` starting every verification
    /// from `base` (the unrefined domain; repairs never mutate it).
    pub fn new(universe: Universe, base: EnumDomain) -> RepairSession {
        RepairSession {
            universe,
            base,
            cache: SemCache::new(),
            tracer: Tracer::disabled(),
            governor: Governor::unlimited(),
            runs: 0,
        }
    }

    /// Routes engine and cache telemetry through `tracer`.
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.cache.set_tracer(&tracer);
        self.tracer = tracer;
        self
    }

    /// Enforces `governor` in every verification this session runs.
    pub fn governor(mut self, governor: Governor) -> Self {
        self.governor = governor;
        self
    }

    /// The session's universe.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The session's base domain (unrefined; verdicts carry the repaired
    /// clones).
    pub fn base(&self) -> &EnumDomain {
        &self.base
    }

    /// The shared semantic cache (for stats snapshots).
    pub fn cache(&self) -> &SemCache {
        &self.cache
    }

    /// Verifications run so far.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// Verifies `⟦r⟧pre ≤ spec` by backward repair, reusing every warm
    /// derivation from earlier calls. The first call is an ordinary cold
    /// verification that warms the session; later calls — re-verifying
    /// after an edit, or re-checking unchanged programs — pay roughly
    /// per-fresh-node cost.
    ///
    /// # Errors
    ///
    /// Propagates [`RepairError`] exactly like [`Verifier::backward`].
    pub fn verify(
        &mut self,
        r: &air_lang::ast::Reg,
        pre: &StateSet,
        spec: &StateSet,
    ) -> Result<SessionOutcome, RepairError> {
        // Intern before the run so the outcome reports the structural
        // distance of *this revision* (the engine's own intern call then
        // sees zero fresh nodes).
        let outcome = self.cache.intern(r);
        let program_nodes = TermArena::new().intern(r).fresh_nodes;
        let incremental = self.runs > 0;
        let verdict = Verifier::with_cache(&self.universe, self.cache.clone())
            .tracer(self.tracer.clone())
            .governor(self.governor.clone())
            .backward(self.base.clone(), r, pre, spec)?;
        self.runs += 1;
        Ok(SessionOutcome {
            verdict,
            reuse: ReuseStats {
                program_nodes,
                fresh_nodes: outcome.fresh_nodes,
                incremental,
            },
        })
    }

    /// Drops every warm table (arena ids survive; memo entries do not).
    /// The reset hook for long-lived daemons.
    pub fn flush(&mut self) {
        self.cache.reset();
        self.base.clear_caches();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use air_domains::IntervalEnv;
    use air_lang::parse_program;

    fn session() -> (RepairSession, StateSet, StateSet) {
        let u = Universe::new(&[("x", -8, 8)]).unwrap();
        let dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
        let pre = u.filter(|s| s[0] % 2 != 0);
        let spec = u.filter(|s| s[0] != 0);
        (RepairSession::new(u, dom), pre, spec)
    }

    #[test]
    fn reverifying_unchanged_program_reuses_everything() {
        let (mut sess, pre, spec) = session();
        let prog = parse_program("if (x >= 0) then { skip } else { x := 0 - x }").unwrap();
        let first = sess.verify(&prog, &pre, &spec).unwrap();
        assert!(first.verdict.is_proved());
        assert!(!first.reuse.incremental);
        assert!(first.reuse.fresh_nodes > 0);
        let again = sess.verify(&prog, &pre, &spec).unwrap();
        assert!(again.verdict.is_proved());
        assert!(again.reuse.incremental);
        assert_eq!(again.reuse.fresh_nodes, 0, "unchanged program: full reuse");
        assert_eq!(again.reuse.reuse_ratio(), 1.0);
    }

    #[test]
    fn edits_cost_their_structural_distance() {
        let (mut sess, pre, spec) = session();
        let v1 = parse_program("if (x >= 0) then { skip } else { x := 0 - x }").unwrap();
        let v2 = parse_program("if (x >= 0) then { x := x } else { x := 0 - x }").unwrap();
        sess.verify(&v1, &pre, &spec).unwrap();
        let edited = sess.verify(&v2, &pre, &spec).unwrap();
        let total = edited.reuse.program_nodes;
        assert!(edited.reuse.fresh_nodes < total, "most nodes reused");
        assert!(edited.reuse.reused_nodes() > 0);
    }

    #[test]
    fn session_verdict_matches_from_scratch() {
        let (mut sess, pre, spec) = session();
        let v1 = parse_program("if (x >= 0) then { skip } else { x := 0 - x }").unwrap();
        let v2 = parse_program("if (x > 0) then { skip } else { x := 0 - x }").unwrap();
        sess.verify(&v1, &pre, &spec).unwrap();
        let incremental = sess.verify(&v2, &pre, &spec).unwrap();
        let u = sess.universe().clone();
        let scratch = Verifier::new(&u)
            .backward(sess.base().clone_fresh_caches(), &v2, &pre, &spec)
            .unwrap();
        assert_eq!(
            incremental.verdict.report(&u),
            scratch.report(&u),
            "incremental re-repair must be byte-identical to from-scratch"
        );
    }

    #[test]
    fn flush_drops_warm_state_but_keeps_results_identical() {
        let (mut sess, pre, spec) = session();
        let prog = parse_program("if (x >= 0) then { skip } else { x := 0 - x }").unwrap();
        let before = sess.verify(&prog, &pre, &spec).unwrap();
        sess.flush();
        let after = sess.verify(&prog, &pre, &spec).unwrap();
        let u = sess.universe().clone();
        assert_eq!(before.verdict.report(&u), after.verdict.report(&u));
    }
}
