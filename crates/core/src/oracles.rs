//! Executable theorem oracles — the paper's guarantees as predicates.
//!
//! Each oracle takes an [`OracleInstance`] (universe, base domain,
//! program, precondition, spec, guard, auxiliary seed) and decides
//! whether one theorem of the paper holds on it, using the enumerative
//! concrete semantics as ground truth. The fuzzer (`air-fuzz`) drives
//! these over generated instances; `tests/properties.rs` exercises the
//! same statements over proptest-style seeds.
//!
//! Oracles in this module, with their paper artifacts:
//!
//! | Oracle | Paper artifact |
//! |---|---|
//! | [`forward_repair_postconditions`] | Theorem 7.1 (fRepair) |
//! | [`backward_repair_postconditions`] | Theorem 7.6 + Corollary 7.7 (bRepair) |
//! | [`abstract_soundness`] | §3.2 (soundness of `⟦·⟧♯_{A⊞N}`) |
//! | [`sup_l_characterization`] | Theorem 4.4 (`∨L = A(c) ∧ wlp(f, A f(c))`) |
//! | [`pointed_shell_restores`] | Theorem 4.9 (pointed shells) |
//! | [`guard_shell_restores`] | Theorem 4.11 (Boolean-guard shell) |
//! | [`completeness_convexity`] | Definition 4.1, convexity remark |
//! | [`pointed_widening_laws`] | Definition 7.11 / Theorem 7.12 |
//! | [`lcl_spec_decision`] | §5 (`LCL_A`) + §1 spec claim |
//!
//! The tenth oracle, CEGAR spuriousness ⇔ local incompleteness
//! (Lemmas 6.1/6.3), needs the transition-system machinery and lives in
//! `air_cegar::oracle`.
//!
//! # Error convention
//!
//! Oracles return `Err(SemError)` when the *instance* cannot be
//! evaluated (universe escape, overflow, budget exhaustion) — harnesses
//! should count these as skips, not failures. `Ok(Violation(..))` means
//! the theorem's statement was falsified on a well-defined instance:
//! always a bug, either in the engine or in the oracle itself.

use air_lang::gen::XorShift;
use air_lang::{BExp, Concrete, Reg, SemCache, SemError, StateSet, Universe, Wlp};

use crate::absint::AbstractSemantics;
use crate::backward::BackwardRepair;
use crate::domain::EnumDomain;
use crate::forward::{ForwardRepair, RepairError};
use crate::lcl::Lcl;
use crate::local::{LocalCompleteness, ShellResult};

/// The verdict of a single oracle run on a single instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OracleOutcome {
    /// The theorem held on this instance.
    Pass,
    /// The theorem was falsified; the message pinpoints which clause.
    Violation(String),
}

impl OracleOutcome {
    /// Returns `true` for [`OracleOutcome::Violation`].
    pub fn is_violation(&self) -> bool {
        matches!(self, OracleOutcome::Violation(_))
    }

    /// The violation message, if any.
    pub fn message(&self) -> Option<&str> {
        match self {
            OracleOutcome::Pass => None,
            OracleOutcome::Violation(m) => Some(m),
        }
    }
}

/// One fuzz instance: everything an oracle might need.
#[derive(Clone, Debug)]
pub struct OracleInstance<'u> {
    /// The finite universe of stores.
    pub universe: &'u Universe,
    /// The base abstract domain `A`.
    pub domain: EnumDomain,
    /// The regular command `r`.
    pub program: Reg,
    /// The precondition `P` (a concrete state set).
    pub pre: StateSet,
    /// The specification `Spec`.
    pub spec: StateSet,
    /// A Boolean guard, for the guard-shell oracle.
    pub guard: BExp,
    /// Seed for oracle-internal randomness (growth sets, widening
    /// chains); derived deterministically from the case seed.
    pub aux_seed: u64,
    /// The semantic cache — and with it the engine backend — every
    /// repair engine in an oracle run memoizes through. The default
    /// [`SemCache::new`] runs the enumerative engine; pass
    /// [`SemCache::symbolic`] to check the same theorems against the
    /// symbolic backend. Ground-truth sides ([`Concrete`], [`Wlp`])
    /// always stay enumerative — that asymmetry is the point.
    pub cache: SemCache,
}

/// Name and paper artifact of every oracle in this module, in the order
/// the fuzzer runs them. The CEGAR oracle (`cegar_spuriousness`,
/// Lemmas 6.1/6.3) is appended by `air-fuzz`, which can see both crates.
pub const ORACLES: &[(&str, &str)] = &[
    ("forward_repair", "Theorem 7.1"),
    ("backward_repair", "Theorem 7.6 + Corollary 7.7"),
    ("soundness", "Section 3.2"),
    ("sup_l", "Theorem 4.4"),
    ("pointed_shell", "Theorem 4.9"),
    ("guard_shell", "Theorem 4.11"),
    ("convexity", "Definition 4.1 (convexity remark)"),
    ("pointed_widening", "Definition 7.11 / Theorem 7.12"),
    ("lcl_spec", "Section 5 (LCL_A spec decision)"),
];

/// Runs the oracle with the given registry name. Returns `None` for an
/// unknown name (the CEGAR oracle is dispatched by `air-fuzz` instead).
pub fn run_oracle(
    name: &str,
    inst: &OracleInstance<'_>,
) -> Option<Result<OracleOutcome, SemError>> {
    Some(match name {
        "forward_repair" => forward_repair_postconditions(inst),
        "backward_repair" => backward_repair_postconditions(inst),
        "soundness" => abstract_soundness(inst),
        "sup_l" => sup_l_characterization(inst),
        "pointed_shell" => pointed_shell_restores(inst),
        "guard_shell" => guard_shell_restores(inst),
        "convexity" => completeness_convexity(inst),
        "pointed_widening" => pointed_widening_laws(inst),
        "lcl_spec" => lcl_spec_decision(inst),
        _ => return None,
    })
}

fn violation(msg: impl Into<String>) -> Result<OracleOutcome, SemError> {
    Ok(OracleOutcome::Violation(msg.into()))
}

/// Maps engine errors into the oracle error convention: evaluation and
/// budget failures become skips (`Err`), internal engine errors are
/// *bugs* and become violations.
fn lift(e: RepairError) -> Result<OracleOutcome, SemError> {
    match e {
        RepairError::Sem(e) => Err(e),
        RepairError::Exhausted(p) => Err(SemError::Exhausted(p.exhaustion.clone())),
        RepairError::Internal(msg) => violation(format!("internal engine error: {msg}")),
    }
}

fn random_set(u: &Universe, seed: u64) -> StateSet {
    let mut rng = XorShift::new(seed);
    let mut s = u.empty();
    for i in 0..u.size() {
        if rng.chance(1, 3) {
            s.insert(i);
        }
    }
    s
}

/// Theorem 7.1: `fRepair` returns a locally complete refinement, its
/// under-approximation is exactly `⟦r⟧P`, and the abstract analysis in
/// the repaired domain computes `A'(⟦r⟧P)`.
pub fn forward_repair_postconditions(inst: &OracleInstance<'_>) -> Result<OracleOutcome, SemError> {
    let u = inst.universe;
    let out = match ForwardRepair::with_cache(u, inst.cache.clone())
        .max_repairs(4_000)
        .repair(inst.domain.clone(), &inst.program, &inst.pre)
    {
        Ok(out) => out,
        Err(e) => return lift(e),
    };
    let sem = Concrete::new(u);
    let exact = sem.exec(&inst.program, &inst.pre)?;
    if out.under != exact {
        return violation("Thm 7.1: under-approximation Q differs from ⟦r⟧P");
    }
    let lc = LocalCompleteness::with_cache(u, inst.cache.clone());
    if !lc.check(&out.domain, &inst.program, &inst.pre)? {
        return violation("Thm 7.1: repaired domain is not locally complete on P");
    }
    let asem = AbstractSemantics::with_cache(u, inst.cache.clone());
    let abs = asem.exec(&out.domain, &inst.program, &out.domain.close(&inst.pre))?;
    if abs != out.domain.close(&out.under) {
        return violation("Thm 7.1: abstract analysis disagrees with A'(⟦r⟧P)");
    }
    Ok(OracleOutcome::Pass)
}

/// Theorem 7.6 + Corollary 7.7: `bRepair` returns the greatest valid
/// input, expressible and abstractly certified; membership of any
/// sub-input decides the concrete spec exactly.
pub fn backward_repair_postconditions(
    inst: &OracleInstance<'_>,
) -> Result<OracleOutcome, SemError> {
    let u = inst.universe;
    let out = match BackwardRepair::with_cache(u, inst.cache.clone()).repair(
        &inst.domain,
        &inst.pre,
        &inst.program,
        &inst.spec,
    ) {
        Ok(out) => out,
        Err(e) => return lift(e),
    };
    let repaired = out.domain(&inst.domain);
    if !repaired.is_expressible(&out.valid_input) {
        return violation("Thm 7.6: valid input is not expressible in A ⊞ N'");
    }
    let asem = AbstractSemantics::with_cache(u, inst.cache.clone());
    let abs = asem.exec(&repaired, &inst.program, &repaired.close(&out.valid_input))?;
    if !abs.is_subset(&inst.spec) {
        return violation("Thm 7.6: abstract run from V is not certified under Spec");
    }
    let wlp = Wlp::new(u);
    let brute = wlp.valid_input(&inst.domain.close(&inst.pre), &inst.program, &inst.spec)?;
    if out.valid_input != brute {
        return violation("Thm 7.6: valid input is not the greatest one");
    }
    // Corollary 7.7 on a derived random sub-input.
    let p_prime = random_set(u, inst.aux_seed ^ 0xABCD).intersection(&inst.domain.close(&inst.pre));
    let sem = Concrete::new(u);
    let concrete_ok = sem.exec(&inst.program, &p_prime)?.is_subset(&inst.spec);
    if concrete_ok != p_prime.is_subset(&out.valid_input) {
        return violation("Cor 7.7: membership in V does not decide the spec");
    }
    Ok(OracleOutcome::Pass)
}

/// §3.2 soundness: the abstract semantics over-approximates the concrete
/// collecting semantics in the given domain.
pub fn abstract_soundness(inst: &OracleInstance<'_>) -> Result<OracleOutcome, SemError> {
    let u = inst.universe;
    let sem = Concrete::new(u);
    let conc = sem.exec(&inst.program, &inst.pre)?;
    let asem = AbstractSemantics::with_cache(u, inst.cache.clone());
    let abs = asem.exec(&inst.domain, &inst.program, &inst.domain.close(&inst.pre))?;
    if !conc.is_subset(&abs) {
        return violation(format!(
            "§3.2: abstract semantics unsound for {}",
            inst.domain.base_name()
        ));
    }
    Ok(OracleOutcome::Pass)
}

/// Theorem 4.4: the direct completeness check (defect emptiness) agrees
/// with the `∨L`-expressibility characterization, and `∨L ≤ A(c)`.
pub fn sup_l_characterization(inst: &OracleInstance<'_>) -> Result<OracleOutcome, SemError> {
    let lc = LocalCompleteness::with_cache(inst.universe, inst.cache.clone());
    let direct = lc.check(&inst.domain, &inst.program, &inst.pre)?;
    let via_sup = lc.check_via_sup(&inst.domain, &inst.program, &inst.pre)?;
    if direct != via_sup {
        return violation(format!(
            "Thm 4.4: defect check ({direct}) disagrees with ∨L expressibility ({via_sup})"
        ));
    }
    let sup = lc.sup_l(&inst.domain, &inst.program, &inst.pre)?;
    if !sup.is_subset(&inst.domain.close(&inst.pre)) {
        return violation("Thm 4.4: ∨L is not below A(c)");
    }
    Ok(OracleOutcome::Pass)
}

/// Theorem 4.9: when the pointed shell exists, adding its point restores
/// local completeness; the point is `∨L` itself.
pub fn pointed_shell_restores(inst: &OracleInstance<'_>) -> Result<OracleOutcome, SemError> {
    let lc = LocalCompleteness::with_cache(inst.universe, inst.cache.clone());
    match lc.pointed_shell(&inst.domain, &inst.program, &inst.pre)? {
        ShellResult::Shell { point } => {
            let sup = lc.sup_l(&inst.domain, &inst.program, &inst.pre)?;
            if point != sup {
                return violation("Thm 4.9: shell point is not ∨L");
            }
            let refined = inst.domain.with_point(point);
            if !lc.check(&refined, &inst.program, &inst.pre)? {
                return violation("Thm 4.9: A ⊞ {∨L} is not locally complete on c");
            }
        }
        ShellResult::NoShell { candidate } => {
            // The existence condition must genuinely fail:
            // f(c) ≤ u but f(u) ≰ u.
            let sem = Concrete::new(inst.universe);
            let fc = sem.exec(&inst.program, &inst.pre)?;
            let fu = sem.exec(&inst.program, &candidate)?;
            if !fc.is_subset(&candidate) || fu.is_subset(&candidate) {
                return violation("Thm 4.9: NoShell reported but the existence condition holds");
            }
        }
    }
    Ok(OracleOutcome::Pass)
}

/// Theorem 4.11: the Boolean-guard shell restores local completeness for
/// both `b?` and `¬b?` on `P`.
pub fn guard_shell_restores(inst: &OracleInstance<'_>) -> Result<OracleOutcome, SemError> {
    let lc = LocalCompleteness::with_cache(inst.universe, inst.cache.clone());
    let shell = lc.guard_shell(&inst.domain, &inst.guard, &inst.pre)?;
    let refined = inst.domain.with_point(shell);
    let pos = Reg::assume(inst.guard.clone());
    let neg = Reg::assume(inst.guard.negate());
    if !lc.check(&refined, &pos, &inst.pre)? {
        return violation("Thm 4.11: guard shell incomplete for b?");
    }
    if !lc.check(&refined, &neg, &inst.pre)? {
        return violation("Thm 4.11: guard shell incomplete for ¬b?");
    }
    Ok(OracleOutcome::Pass)
}

/// Convexity remark after Definition 4.1: local completeness on `c`
/// implies local completeness on every `x` with `c ≤ x ≤ A(c)`.
pub fn completeness_convexity(inst: &OracleInstance<'_>) -> Result<OracleOutcome, SemError> {
    let lc = LocalCompleteness::with_cache(inst.universe, inst.cache.clone());
    if !lc.check(&inst.domain, &inst.program, &inst.pre)? {
        return Ok(OracleOutcome::Pass); // premise empty: vacuously true
    }
    let closure = inst.domain.close(&inst.pre);
    let extra =
        random_set(inst.universe, inst.aux_seed).intersection(&closure.difference(&inst.pre));
    let x = inst.pre.union(&extra);
    if !lc.check(&inst.domain, &inst.program, &x)? {
        return violation("Def 4.1: completeness not convex between c and A(c)");
    }
    Ok(OracleOutcome::Pass)
}

/// Definition 7.11 / Theorem 7.12: the pointed widening is an upper
/// bound of its arguments and stabilizes increasing chains.
pub fn pointed_widening_laws(inst: &OracleInstance<'_>) -> Result<OracleOutcome, SemError> {
    let u = inst.universe;
    let dom = inst
        .domain
        .with_point(random_set(u, inst.aux_seed ^ 0x9E37));
    let x = inst.pre.clone();
    let y = inst.spec.clone();
    let w = dom.pointed_widen(&x, &y);
    if !(x.is_subset(&w) && y.is_subset(&w)) {
        return violation("Def 7.11: pointed widening is not an upper bound");
    }
    let mut acc = x;
    let mut stable = 0u32;
    for k in 0..64u64 {
        let grow = acc.union(&random_set(u, inst.aux_seed.wrapping_add(k)));
        let next = dom.pointed_widen(&acc, &grow);
        if next == acc {
            stable += 1;
            if stable > 2 {
                break;
            }
        } else {
            stable = 0;
        }
        acc = next;
    }
    if stable <= 2 {
        return violation("Thm 7.12: pointed widening chain did not stabilize");
    }
    Ok(OracleOutcome::Pass)
}

/// §5 + the §1 claim: `LCL_A` decides the spec exactly — `prove_spec`
/// returns `Valid` iff `⟦r⟧P ⊆ Spec` concretely, and a `TrueAlarm`
/// witness is a reachable store outside the spec.
pub fn lcl_spec_decision(inst: &OracleInstance<'_>) -> Result<OracleOutcome, SemError> {
    let u = inst.universe;
    let lcl = Lcl::with_cache(u, inst.cache.clone());
    let verdict = match lcl.prove_spec(inst.domain.clone(), &inst.pre, &inst.program, &inst.spec) {
        Ok(v) => v,
        Err(e) => return lift(e),
    };
    let sem = Concrete::new(u);
    let reach = sem.exec(&inst.program, &inst.pre)?;
    let truth = reach.is_subset(&inst.spec);
    if verdict.is_valid() != truth {
        return violation(format!(
            "§5: LCL verdict {} but concrete truth {}",
            verdict.is_valid(),
            truth
        ));
    }
    if let crate::lcl::SpecVerdict::TrueAlarm { witness, .. } = &verdict {
        if !reach.contains(*witness) || inst.spec.contains(*witness) {
            return violation("§5: TrueAlarm witness is not a reachable spec violation");
        }
    }
    Ok(OracleOutcome::Pass)
}

#[cfg(test)]
mod tests {
    use super::*;
    use air_domains::IntervalEnv;
    use air_lang::parse_program;

    fn instance(u: &Universe) -> OracleInstance<'_> {
        OracleInstance {
            universe: u,
            domain: EnumDomain::from_abstraction(u, IntervalEnv::new(u)),
            program: parse_program("if (x >= 0) then { skip } else { x := 0 - x }").unwrap(),
            pre: u.filter(|s| s[0] % 2 != 0),
            spec: u.filter(|s| s[0] != 0),
            guard: air_lang::parse_bexp("x >= 0").unwrap(),
            aux_seed: 7,
            cache: SemCache::new(),
        }
    }

    #[test]
    fn all_oracles_pass_on_absval() {
        let u = Universe::new(&[("x", -8, 8)]).unwrap();
        let inst = instance(&u);
        for (name, theorem) in ORACLES {
            let out = run_oracle(name, &inst)
                .expect("registered oracle")
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(out, OracleOutcome::Pass, "{name} ({theorem})");
        }
    }

    #[test]
    fn all_oracles_pass_on_absval_with_symbolic_backend() {
        // The same theorem statements, with every engine routed through
        // the symbolic backend while Concrete/Wlp ground truth stays
        // enumerative: a backend bug breaks the theorem, not the oracle.
        let u = Universe::new(&[("x", -8, 8)]).unwrap();
        let mut inst = instance(&u);
        inst.cache = SemCache::symbolic();
        for (name, theorem) in ORACLES {
            let out = run_oracle(name, &inst)
                .expect("registered oracle")
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(out, OracleOutcome::Pass, "{name} ({theorem}) [symbolic]");
        }
    }

    #[test]
    fn unknown_oracle_is_none() {
        let u = Universe::new(&[("x", -2, 2)]).unwrap();
        assert!(run_oracle("no_such_oracle", &instance(&u)).is_none());
    }

    #[test]
    fn violation_surface_reports_message() {
        let v = OracleOutcome::Violation("broken".into());
        assert!(v.is_violation());
        assert_eq!(v.message(), Some("broken"));
        assert_eq!(OracleOutcome::Pass.message(), None);
    }
}
