//! Global complete shells (Giacobazzi–Ranzato–Scozzari 2000), for
//! comparison with pointed shells.
//!
//! The *complete shell* of `A` w.r.t. a transfer function `f` is the most
//! abstract refinement of `A` that is complete for `f` on **all** inputs
//! (paper, Section 1 and Related Work). Constructively, for additive `f`
//! it is the closure of `γ(A)` under `wlp(f, ·)` and meets: completeness
//! `A f = A f A` holds iff `γ(A)` is closed under maximal inverse images
//! `wlp(f, a)` for every `a ∈ γ(A)`.
//!
//! The paper's motivation for AIR is precisely that this global
//! construction "yields an abstract domain that is often way too fine
//! grained, possibly blowing up to the whole concrete domain", while the
//! pointed shell adds *one* element per failing obligation. This module
//! makes that comparison measurable: [`complete_shell`] materializes the
//! shell over a finite universe (with a size cap), and the T3 experiment
//! reports its cardinality against the pointed repair's.

use std::collections::BTreeSet;

use air_lang::ast::{Exp, Reg};
use air_lang::{SemError, StateSet, Universe, Wlp};

use crate::domain::EnumDomain;

/// The outcome of a complete-shell construction.
#[derive(Clone, Debug)]
pub enum ShellOutcome {
    /// The shell was materialized: every element of the refined domain,
    /// including `Σ`.
    Family(Vec<StateSet>),
    /// The construction exceeded `max_size` elements — the blow-up the
    /// paper warns about.
    Overflow {
        /// Elements materialized before giving up.
        reached: usize,
    },
}

impl ShellOutcome {
    /// The family size, if materialized.
    pub fn size(&self) -> Option<usize> {
        match self {
            ShellOutcome::Family(f) => Some(f.len()),
            ShellOutcome::Overflow { .. } => None,
        }
    }
}

/// Collects the basic commands of a program (the transfer functions whose
/// completeness the shell must guarantee).
pub fn basic_commands(r: &Reg) -> Vec<Exp> {
    fn go(r: &Reg, out: &mut Vec<Exp>) {
        match r {
            Reg::Basic(e) => {
                if !out.contains(e) {
                    out.push(e.clone());
                }
            }
            Reg::Seq(a, b) | Reg::Choice(a, b) => {
                go(a, out);
                go(b, out);
            }
            Reg::Star(a) => go(a, out),
        }
    }
    let mut out = Vec::new();
    go(r, &mut out);
    out
}

/// Materializes the γ-image of `dom`: every closure of a subset of `Σ`.
/// Since ucos satisfy `A(A(X) ∪ Y) = A(X ∪ Y)`, the image is generated
/// from the closures of `∅` and the singletons by iterating the *closed
/// join* `(x, y) ↦ A(x ∪ y)`.
fn materialize_family(
    universe: &Universe,
    dom: &EnumDomain,
    max_size: usize,
) -> Option<BTreeSet<StateSet>> {
    let mut family: BTreeSet<StateSet> = BTreeSet::new();
    family.insert(universe.full());
    family.insert(dom.close(&universe.empty()));
    for i in 0..universe.size() {
        let single = StateSet::from_indices(universe.size(), [i]);
        family.insert(dom.close(&single));
    }
    let mut worklist: Vec<StateSet> = family.iter().cloned().collect();
    while let Some(x) = worklist.pop() {
        let snapshot: Vec<StateSet> = family.iter().cloned().collect();
        for y in snapshot {
            let j = dom.close(&x.union(&y));
            if !family.contains(&j) {
                if family.len() >= max_size {
                    return None;
                }
                family.insert(j.clone());
                worklist.push(j);
            }
        }
    }
    Some(family)
}

/// Closes a family under binary meets; `None` on overflow.
fn close_under_meets(family: &mut BTreeSet<StateSet>, max_size: usize) -> Option<()> {
    let mut worklist: Vec<StateSet> = family.iter().cloned().collect();
    while let Some(x) = worklist.pop() {
        let snapshot: Vec<StateSet> = family.iter().cloned().collect();
        for y in snapshot {
            let m = x.intersection(&y);
            if !family.contains(&m) {
                if family.len() >= max_size {
                    return None;
                }
                family.insert(m.clone());
                worklist.push(m);
            }
        }
    }
    Some(())
}

/// Computes the complete shell of `dom` for the basic commands of `r`:
/// the closure of `γ(A)` under every `wlp(⟦e⟧, ·)` and meets, capped at
/// `max_size` elements.
///
/// # Errors
///
/// Propagates evaluation errors from wlp computation.
pub fn complete_shell(
    universe: &Universe,
    dom: &EnumDomain,
    r: &Reg,
    max_size: usize,
) -> Result<ShellOutcome, SemError> {
    let wlp = Wlp::new(universe);
    let exps = basic_commands(r);
    let Some(mut family) = materialize_family(universe, dom, max_size) else {
        return Ok(ShellOutcome::Overflow { reached: max_size });
    };
    // Iterate: add wlp(e, a) for every member a and every transfer e,
    // re-closing under meets, until stable.
    loop {
        let mut fresh: Vec<StateSet> = Vec::new();
        for a in family.iter() {
            for e in &exps {
                let w = wlp.exp(e, a)?;
                if !family.contains(&w) && !fresh.contains(&w) {
                    fresh.push(w);
                }
            }
        }
        if fresh.is_empty() {
            break;
        }
        for w in fresh {
            if family.len() >= max_size {
                return Ok(ShellOutcome::Overflow {
                    reached: family.len(),
                });
            }
            family.insert(w);
        }
        if close_under_meets(&mut family, max_size).is_none() {
            return Ok(ShellOutcome::Overflow {
                reached: family.len(),
            });
        }
    }
    Ok(ShellOutcome::Family(family.into_iter().collect()))
}

/// Checks *global* completeness of a family-presented domain for a basic
/// command: `A(⟦e⟧(A(c))) = A(⟦e⟧(c))` for every probe input.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn globally_complete_on(
    universe: &Universe,
    family: &[StateSet],
    e: &Exp,
    probes: &[StateSet],
) -> Result<bool, SemError> {
    let sem = air_lang::Concrete::new(universe);
    let close = |c: &StateSet| -> StateSet {
        let mut acc = universe.full();
        for m in family {
            if c.is_subset(m) {
                acc.intersect_with(m);
            }
        }
        acc
    };
    for p in probes {
        let exact = close(&sem.exec_exp(e, p)?);
        let through = close(&sem.exec_exp(e, &close(p))?);
        if exact != through {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use air_domains::IntervalEnv;
    use air_lang::parse_program;

    fn setup() -> (Universe, EnumDomain) {
        let u = Universe::new(&[("x", -6, 6)]).unwrap();
        let dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
        (u, dom)
    }

    #[test]
    fn basic_commands_deduplicated() {
        let r = parse_program("x := x + 1; x := x + 1; assume x > 0").unwrap();
        assert_eq!(basic_commands(&r).len(), 2);
    }

    #[test]
    fn interval_family_materializes() {
        let (u, dom) = setup();
        let fam = materialize_family(&u, &dom, 10_000).unwrap();
        // Intervals over 13 points: 13·14/2 = 91 non-empty + ∅ = 92.
        assert_eq!(fam.len(), 92);
    }

    #[test]
    fn complete_shell_makes_guards_globally_complete() {
        let (u, dom) = setup();
        let r = parse_program("if (x >= 0) then { skip } else { x := 0 - x }").unwrap();
        let shell = complete_shell(&u, &dom, &r, 1 << 14).unwrap();
        let ShellOutcome::Family(family) = shell else {
            panic!("shell should fit for one variable");
        };
        // Probe with assorted inputs, including the paper's odd set.
        let probes = vec![
            u.filter(|s| s[0] % 2 != 0),
            u.of_values([0, 3]),
            u.of_values([-5, -1, 2]),
            u.full(),
            u.empty(),
        ];
        for e in basic_commands(&r) {
            assert!(
                globally_complete_on(&u, &family, &e, &probes).unwrap(),
                "shell not complete for {e}"
            );
        }
    }

    #[test]
    fn complete_shell_is_much_larger_than_pointed_repair() {
        // The paper's §1 claim, measured: the pointed repair for AbsVal
        // adds 2 points; the complete shell multiplies the domain.
        let (u, dom) = setup();
        let r = parse_program("if (x >= 0) then { skip } else { x := 0 - x }").unwrap();
        let base_size = materialize_family(&u, &dom, 1 << 14).unwrap().len();
        let shell = complete_shell(&u, &dom, &r, 1 << 14).unwrap();
        let shell_size = shell.size().expect("fits");
        let odd = u.filter(|s| s[0] % 2 != 0);
        let spec = u.filter(|s| s[0] != 0);
        let v = crate::verify::Verifier::new(&u)
            .backward(dom, &r, &odd, &spec)
            .unwrap();
        let pointed_added = v.added_points().len();
        assert!(shell_size > base_size, "{shell_size} vs {base_size}");
        assert!(
            shell_size - base_size > 5 * pointed_added,
            "shell grew by {} elements, pointed repair by {pointed_added}",
            shell_size - base_size
        );
    }

    #[test]
    fn overflow_reported_when_capped() {
        let (u, dom) = setup();
        let r = parse_program("if (x >= 0) then { skip } else { x := 0 - x }").unwrap();
        let out = complete_shell(&u, &dom, &r, 50).unwrap();
        assert!(matches!(out, ShellOutcome::Overflow { reached } if reached <= 50));
        assert_eq!(out.size(), None);
    }
}
