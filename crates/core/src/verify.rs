//! The user-facing verifier (Corollary 7.7).
//!
//! Given a program `r`, an input property `P` and a specification `Spec`,
//! the verifier repairs the chosen abstract domain and returns a
//! [`Verdict`]:
//!
//! - **Proved** — `⟦r⟧P ≤ Spec`, with the repaired domain as a certificate
//!   (the abstract analysis in it has no false alarm);
//! - **Refuted** — a *true alarm*: a concrete input store violating the
//!   spec is produced as a witness.
//!
//! Both repair strategies are exposed; backward repair additionally
//! characterizes the *greatest valid input* `V`, deciding
//! `⟦r⟧P' ≤ Spec ⇔ P' ≤ V` for every `P' ≤ A(P)` at once.

use air_lang::ast::Reg;
use air_lang::{Concrete, EngineBackend, SemCache, StateSet, Store, Universe};
use air_lattice::Governor;
use air_trace::{EventKind, Tracer};

use crate::backward::{BackwardOutcome, BackwardRepair};
use crate::domain::EnumDomain;
use crate::forward::{ForwardRepair, RepairError};
use crate::summarize::display_set;
use crate::symbolic::SymbolicBackward;

/// The verification result.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// The specification holds on every store of the input.
    Proved {
        /// The repaired domain (a certificate: its analysis of the program
        /// on the input has no false alarm).
        domain: EnumDomain,
        /// The greatest valid input `V` (backward) or the input closure
        /// (forward).
        valid_input: StateSet,
        /// Points added during repair.
        added_points: Vec<StateSet>,
    },
    /// The specification fails on some input store — a true alarm.
    Refuted {
        /// The repaired domain.
        domain: EnumDomain,
        /// The greatest valid input: exactly the sub-inputs that satisfy
        /// the spec.
        valid_input: StateSet,
        /// Points added during repair.
        added_points: Vec<StateSet>,
        /// A concrete input store whose execution violates the spec.
        witness: Store,
    },
}

impl Verdict {
    /// Returns `true` for [`Verdict::Proved`].
    pub fn is_proved(&self) -> bool {
        matches!(self, Verdict::Proved { .. })
    }

    /// The greatest valid input.
    pub fn valid_input(&self) -> &StateSet {
        match self {
            Verdict::Proved { valid_input, .. } | Verdict::Refuted { valid_input, .. } => {
                valid_input
            }
        }
    }

    /// The repaired domain.
    pub fn domain(&self) -> &EnumDomain {
        match self {
            Verdict::Proved { domain, .. } | Verdict::Refuted { domain, .. } => domain,
        }
    }

    /// The points added during repair.
    pub fn added_points(&self) -> &[StateSet] {
        match self {
            Verdict::Proved { added_points, .. } | Verdict::Refuted { added_points, .. } => {
                added_points
            }
        }
    }

    /// A human-readable report of the added points.
    pub fn report(&self, universe: &Universe) -> String {
        let mut out = String::new();
        out.push_str(match self {
            Verdict::Proved { .. } => "PROVED",
            Verdict::Refuted { .. } => "REFUTED",
        });
        if let Verdict::Refuted { witness, .. } = self {
            out.push_str(&format!(" (witness: {})", universe.display_store(witness)));
        }
        out.push('\n');
        for (k, p) in self.added_points().iter().enumerate() {
            out.push_str(&format!(
                "  point {}: {}\n",
                k + 1,
                display_set(universe, p)
            ));
        }
        out
    }
}

/// A verifier over a fixed universe.
///
/// # Example
///
/// ```
/// use air_core::{EnumDomain, Verifier};
/// use air_domains::IntervalEnv;
/// use air_lang::{parse_program, Universe};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let u = Universe::new(&[("x", -8, 8)])?;
/// let dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
/// let prog = parse_program("if (x >= 0) then { skip } else { x := 0 - x }")?;
/// let odd = u.filter(|s| s[0] % 2 != 0);
/// let spec = u.filter(|s| s[0] != 0);
/// let verdict = Verifier::new(&u).backward(dom, &prog, &odd, &spec)?;
/// assert!(verdict.is_proved());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Verifier<'u> {
    universe: &'u Universe,
    cache: Option<SemCache>,
    trace: Tracer,
    governor: Governor,
}

impl<'u> Verifier<'u> {
    /// Creates a verifier with a fresh semantic cache shared across all
    /// verification calls made through it.
    pub fn new(universe: &'u Universe) -> Self {
        Self::with_cache(universe, SemCache::new())
    }

    /// Creates a verifier memoizing into `cache` (shareable across
    /// verifiers and threads).
    pub fn with_cache(universe: &'u Universe, cache: SemCache) -> Self {
        Verifier {
            universe,
            cache: Some(cache),
            trace: Tracer::disabled(),
            governor: Governor::unlimited(),
        }
    }

    /// Creates a verifier without memoization (the reference path).
    pub fn uncached(universe: &'u Universe) -> Self {
        Verifier {
            universe,
            cache: None,
            trace: Tracer::disabled(),
            governor: Governor::unlimited(),
        }
    }

    /// The shared semantic cache, if caching is enabled.
    pub fn cache(&self) -> Option<&SemCache> {
        self.cache.as_ref()
    }

    /// Routes this verifier's events — verdict assembly plus everything the
    /// repair engines and the semantic cache emit — through `tracer`.
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        if let Some(cache) = &self.cache {
            cache.set_tracer(&tracer);
        }
        self.trace = tracer;
        self
    }

    /// Enforces `governor` in the repair engines this verifier runs.
    pub fn governor(mut self, governor: Governor) -> Self {
        self.governor = governor;
        self
    }

    fn backward_engine(&self) -> BackwardRepair<'u> {
        match &self.cache {
            Some(cache) => BackwardRepair::with_cache(self.universe, cache.clone()),
            None => BackwardRepair::uncached(self.universe),
        }
        .tracer(self.trace.clone())
        .governor(self.governor.clone())
    }

    fn forward_engine(&self) -> ForwardRepair<'u> {
        match &self.cache {
            Some(cache) => ForwardRepair::with_cache(self.universe, cache.clone()),
            None => ForwardRepair::uncached(self.universe),
        }
        .tracer(self.trace.clone())
        .governor(self.governor.clone())
    }

    fn trace_verdict(&self, phase: &'static str, proved: bool) {
        self.trace.emit_detail_with(|| EventKind::Verdict {
            phase: phase.to_string(),
            verdict: if proved { "proved" } else { "refuted" }.to_string(),
        });
    }

    /// `true` when backward verification runs on the native symbolic
    /// pipeline: the semantic cache selects the symbolic backend and the
    /// base domain is `Int`, the one base whose closure has a cheap
    /// diagram form ([`SymDomain`](crate::SymDomain)). Other bases keep
    /// the enumerative engines (their semantic queries still route
    /// through the symbolic cache backend).
    fn backward_is_symbolic(&self, domain: &EnumDomain) -> bool {
        self.cache
            .as_ref()
            .is_some_and(|c| c.backend() == EngineBackend::Symbolic)
            && domain.base_name() == "Int"
    }

    fn backward_outcome(
        &self,
        domain: &EnumDomain,
        r: &Reg,
        input: &StateSet,
        spec: &StateSet,
    ) -> Result<BackwardOutcome, RepairError> {
        if self.backward_is_symbolic(domain) {
            SymbolicBackward::new(self.universe)
                .tracer(self.trace.clone())
                .governor(self.governor.clone())
                .repair(domain.points(), input, r, spec)
        } else {
            self.backward_engine().repair(domain, input, r, spec)
        }
    }

    /// Verifies `⟦r⟧input ≤ spec` by backward repair (Algorithm 2 +
    /// Corollary 7.7), dispatching to the native symbolic pipeline when
    /// this verifier's cache selects the symbolic backend and the base
    /// domain is `Int` — same verdict either way, the symbolic path just
    /// scales to universes the bitset engine cannot enumerate.
    ///
    /// # Errors
    ///
    /// Propagates [`RepairError`].
    pub fn backward(
        &self,
        domain: EnumDomain,
        r: &Reg,
        input: &StateSet,
        spec: &StateSet,
    ) -> Result<Verdict, RepairError> {
        let _span = self.trace.span(|| "verify.backward".to_string());
        let out = self.backward_outcome(&domain, r, input, spec)?;
        let repaired = out.domain(&domain);
        if input.is_subset(&out.valid_input) {
            self.trace_verdict("verify.backward", true);
            Ok(Verdict::Proved {
                domain: repaired,
                valid_input: out.valid_input,
                added_points: out.points,
            })
        } else {
            let Some(witness_idx) = input.difference(&out.valid_input).min_index() else {
                return Err(RepairError::Internal(
                    "input ⊄ V but input ∖ V is empty".to_string(),
                ));
            };
            self.trace_verdict("verify.backward", false);
            Ok(Verdict::Refuted {
                domain: repaired,
                valid_input: out.valid_input,
                added_points: out.points,
                witness: self.universe.store_at(witness_idx),
            })
        }
    }

    /// Verifies `⟦r⟧input ≤ spec` by forward repair (Algorithm 1). The
    /// exactness of the concrete `find` oracle decides the verdict; the
    /// repaired domain certifies it abstractly (Theorem 7.1).
    ///
    /// # Errors
    ///
    /// Propagates [`RepairError`].
    pub fn forward(
        &self,
        domain: EnumDomain,
        r: &Reg,
        input: &StateSet,
        spec: &StateSet,
    ) -> Result<Verdict, RepairError> {
        let _span = self.trace.span(|| "verify.forward".to_string());
        let out = self.forward_engine().repair(domain, r, input)?;
        let post_closure = out.domain.close(&out.under);
        let points: Vec<StateSet> = out.domain.points().to_vec();
        if post_closure.is_subset(spec) {
            self.trace_verdict("verify.forward", true);
            Ok(Verdict::Proved {
                valid_input: out.domain.close(input),
                domain: out.domain,
                added_points: points,
            })
        } else if !out.under.is_subset(spec) {
            // Q ≤ ⟦r⟧input violates the spec: find an input store that
            // produces a bad output (exists because Q is exact here).
            let sem = Concrete::new(self.universe);
            let Some(witness_idx) = input.iter().find(|&i| {
                let single = StateSet::from_indices(self.universe.size(), [i]);
                sem.exec(r, &single)
                    .map(|post| !post.is_subset(spec))
                    .unwrap_or(true)
            }) else {
                return Err(RepairError::Internal(
                    "Q ⊄ Spec but no input store violates the spec".to_string(),
                ));
            };
            // The valid inputs among `input` are those whose runs stay in
            // the spec.
            let valid_input = self.universe.filter(|s| {
                let Some(i) = self.universe.store_index(s) else {
                    return false;
                };
                if !input.contains(i) {
                    return false;
                }
                let single = StateSet::from_indices(self.universe.size(), [i]);
                sem.exec(r, &single)
                    .map(|post| post.is_subset(spec))
                    .unwrap_or(false)
            });
            self.trace_verdict("verify.forward", false);
            Ok(Verdict::Refuted {
                domain: out.domain,
                valid_input,
                added_points: points,
                witness: self.universe.store_at(witness_idx),
            })
        } else {
            // Q fits the spec but its closure does not: the repaired
            // domain is locally complete, so A(Q) = A(⟦r⟧input) and the
            // residual alarm means the spec is not expressible enough —
            // repair once more against the spec by intersecting.
            let tightened = out.domain.with_point(spec.clone());
            if tightened.close(&out.under).is_subset(spec) {
                self.trace_verdict("verify.forward", true);
                Ok(Verdict::Proved {
                    valid_input: tightened.close(input),
                    added_points: tightened.points().to_vec(),
                    domain: tightened,
                })
            } else {
                Err(RepairError::Internal(
                    "closing under the spec point must fit the spec".to_string(),
                ))
            }
        }
    }

    /// Counts alarms of a plain (unrepaired) abstract analysis: the stores
    /// in `γ(⟦r⟧♯A(input)) ∖ spec`. Paired with the concrete true alarms
    /// `⟦r⟧input ∖ spec`, this quantifies false alarms before/after repair
    /// (experiment T6).
    ///
    /// # Errors
    ///
    /// Propagates semantic errors.
    pub fn alarm_counts(
        &self,
        domain: &EnumDomain,
        r: &Reg,
        input: &StateSet,
        spec: &StateSet,
    ) -> Result<AlarmCounts, RepairError> {
        let asem = match &self.cache {
            Some(cache) => {
                crate::absint::AbstractSemantics::with_cache(self.universe, cache.clone())
            }
            None => crate::absint::AbstractSemantics::uncached(self.universe),
        }
        .tracer(self.trace.clone())
        .governor(self.governor.clone());
        let abstract_out = asem.exec(domain, r, &domain.close(input))?;
        let sem = Concrete::new(self.universe);
        let concrete_out = match &self.cache {
            Some(cache) => cache.exec(&sem, r, input)?,
            None => sem.exec(r, input)?,
        };
        let total = abstract_out.difference(spec).len();
        let true_alarms = concrete_out.difference(spec).len();
        Ok(AlarmCounts {
            total,
            true_alarms,
            false_alarms: total - true_alarms.min(total),
        })
    }
}

/// Alarm statistics of one abstract analysis run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AlarmCounts {
    /// Stores flagged by the abstract analysis (outside the spec).
    pub total: usize,
    /// Concretely reachable stores outside the spec.
    pub true_alarms: usize,
    /// Spurious flags (`total − true_alarms`).
    pub false_alarms: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use air_domains::IntervalEnv;
    use air_lang::parse_program;

    fn setup() -> (Universe, EnumDomain) {
        let u = Universe::new(&[("x", -8, 8)]).unwrap();
        let dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
        (u, dom)
    }

    #[test]
    fn backward_proves_absval() {
        let (u, dom) = setup();
        let prog = parse_program("if (x >= 0) then { skip } else { x := 0 - x }").unwrap();
        let odd = u.filter(|s| s[0] % 2 != 0);
        let spec = u.filter(|s| s[0] != 0);
        let v = Verifier::new(&u).backward(dom, &prog, &odd, &spec).unwrap();
        assert!(v.is_proved());
        assert!(!v.added_points().is_empty());
        let report = v.report(&u);
        assert!(report.starts_with("PROVED"), "{report}");
    }

    #[test]
    fn forward_proves_absval() {
        let (u, dom) = setup();
        let prog = parse_program("if (x >= 0) then { skip } else { x := 0 - x }").unwrap();
        let odd = u.filter(|s| s[0] % 2 != 0);
        let spec = u.filter(|s| s[0] != 0);
        let v = Verifier::new(&u).forward(dom, &prog, &odd, &spec).unwrap();
        assert!(v.is_proved());
    }

    #[test]
    fn both_strategies_refute_with_witness() {
        let (u, dom) = setup();
        let prog = parse_program("x := x + 1").unwrap();
        let input = u.filter(|s| (0..=5).contains(&s[0]));
        let spec = u.filter(|s| s[0] <= 3);
        for verdict in [
            Verifier::new(&u)
                .backward(dom.clone(), &prog, &input, &spec)
                .unwrap(),
            Verifier::new(&u)
                .forward(dom, &prog, &input, &spec)
                .unwrap(),
        ] {
            let Verdict::Refuted {
                witness,
                valid_input,
                ..
            } = verdict
            else {
                panic!("expected refutation");
            };
            // The witness concretely violates the spec.
            assert!(witness[0] + 1 > 3);
            assert_eq!(
                valid_input.intersection(&input),
                u.filter(|s| (0..=2).contains(&s[0]))
            );
        }
    }

    #[test]
    fn alarm_counts_before_and_after_repair() {
        let (u, dom) = setup();
        let prog = parse_program("if (x >= 0) then { skip } else { x := 0 - x }").unwrap();
        let odd = u.filter(|s| s[0] % 2 != 0);
        let spec = u.filter(|s| s[0] != 0);
        let verifier = Verifier::new(&u);
        let before = verifier.alarm_counts(&dom, &prog, &odd, &spec).unwrap();
        assert_eq!(before.true_alarms, 0);
        assert!(before.false_alarms > 0);
        let verdict = verifier.backward(dom, &prog, &odd, &spec).unwrap();
        let after = verifier
            .alarm_counts(verdict.domain(), &prog, &odd, &spec)
            .unwrap();
        assert_eq!(after.false_alarms, 0, "repair must remove all false alarms");
    }

    #[test]
    fn alarm_counts_distinguish_true_alarms() {
        // A program with a genuine violation: true alarms survive repair
        // accounting (they are not "false").
        let (u, dom) = setup();
        let prog = parse_program("x := x + 1").unwrap();
        let input = u.filter(|s| (0..=5).contains(&s[0]));
        let spec = u.filter(|s| s[0] <= 4); // x = 5 violates it
        let counts = Verifier::new(&u)
            .alarm_counts(&dom, &prog, &input, &spec)
            .unwrap();
        assert_eq!(counts.true_alarms, 2); // x = 5, 6 reachable, both > 4
        assert_eq!(counts.total, 2);
        assert_eq!(counts.false_alarms, 0); // interval analysis is exact here
    }

    #[test]
    fn forward_verdict_when_spec_needs_tightening() {
        // Q fits the spec but its closure does not: the verifier tightens
        // the domain with the spec point and still proves.
        let (u, dom) = setup();
        let prog = parse_program("either { x := 1 } or { x := 3 }").unwrap();
        let input = u.of_values([0]);
        let spec = u.of_values([1, 3]); // not an interval
        let v = Verifier::new(&u)
            .forward(dom, &prog, &input, &spec)
            .unwrap();
        assert!(v.is_proved());
        assert!(v.domain().is_expressible(&spec));
    }

    #[test]
    fn traced_backward_run_emits_pipeline_events() {
        use air_trace::{MemorySink, Tracer};
        use std::sync::Arc;

        let (u, dom) = setup();
        let prog = parse_program("if (x >= 0) then { skip } else { x := 0 - x }").unwrap();
        let odd = u.filter(|s| s[0] % 2 != 0);
        let spec = u.filter(|s| s[0] != 0);
        let sink = Arc::new(MemorySink::new());
        let tracer = Tracer::new(sink.clone());
        let v = Verifier::new(&u)
            .tracer(tracer)
            .backward(dom, &prog, &odd, &spec)
            .unwrap();
        assert!(v.is_proved());
        let kinds: Vec<&'static str> = sink.drain().iter().map(|e| e.kind.kind_name()).collect();
        for expected in [
            "span_enter",
            "span_exit",
            "incompleteness",
            "shell_point",
            "verdict",
            // 17 stores < DEFAULT_BYPASS_THRESHOLD: the SemCache steps
            // aside and says so.
            "cache_bypass",
        ] {
            assert!(kinds.contains(&expected), "missing {expected}: {kinds:?}");
        }
    }

    #[test]
    fn report_renders_points() {
        let (u, dom) = setup();
        let prog = parse_program("if (x >= 0) then { skip } else { x := 0 - x }").unwrap();
        let odd = u.filter(|s| s[0] % 2 != 0);
        let spec = u.filter(|s| s[0] != 0);
        let v = Verifier::new(&u).backward(dom, &prog, &odd, &spec).unwrap();
        let report = v.report(&u);
        assert!(report.contains("point 1:"), "{report}");
    }
}
