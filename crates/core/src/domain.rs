//! Enumerated abstract domains and pointed refinements `A ⊞ N`.
//!
//! An [`EnumDomain`] is an upper closure operator on `℘(Σ)` for a finite
//! universe `Σ`, given by a *base* closure (usually `γ∘α` of a symbolic
//! domain from `air-domains`, enumerated and memoized) together with a
//! finite list of *added points* `N ⊆ ℘(Σ)`. Following Section 3.1 of the
//! paper, the refined closure is
//!
//! ```text
//! A_N(c) = ⋀{ x ∈ N ∪ {A(c)} | c ≤ x } = A(c) ∩ ⋂{ p ∈ N | c ⊆ p }
//! ```
//!
//! so the Moore closure of `γ(A) ∪ N` never needs to be materialized.
//!
//! Domains are `Send + Sync`: the base-closure memo table is a sharded
//! [`MemoTable`] whose values are hash-consed through an [`Interner`]
//! (closures map many inputs to few fixpoints, so distinct cache entries
//! share one allocation), and clones share both — which is how a single
//! abstraction cache serves every worker of a parallel corpus sweep.

use std::fmt;
use std::sync::Arc;

use air_domains::Abstraction;
use air_lang::{StateSet, TermId, Universe};
use air_lattice::{CacheStats, Interner, MemoTable};
use air_trace::Tracer;

/// Key of the abstract-image memo: `(arena token, term id, input)`. The
/// token pins entries to the [`TermArena`](air_lang::TermArena) that
/// issued the id, so two caches' ids can never alias one another.
type AbsImageKey = (u64, TermId, StateSet);

/// A unary operator on state sets (the base closure).
type SetOp = Box<dyn Fn(&StateSet) -> StateSet + Send + Sync>;
/// A binary operator on state sets (the base widening).
type SetOp2 = Box<dyn Fn(&StateSet, &StateSet) -> StateSet + Send + Sync>;

/// A closure function on state sets plus an optional base widening.
struct Base {
    name: String,
    close: SetOp,
    /// `γ(α(x) ∇_A α(y))` of the base domain, used by the pointed widening
    /// of Definition 7.11; `None` falls back to the closed union.
    widen: Option<SetOp2>,
}

/// An abstract domain over a finite universe, with pointed refinements.
///
/// Cloning is cheap: the base closure and its memo table are shared, only
/// the list of added points is copied.
///
/// # Example
///
/// ```
/// use air_core::EnumDomain;
/// use air_domains::IntervalEnv;
/// use air_lang::Universe;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let u = Universe::new(&[("x", -8, 8)])?;
/// let mut dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
/// let odd = u.filter(|s| s[0] % 2 != 0);
/// assert!(!dom.is_expressible(&odd)); // Int(odd) = [-7, 7]
///
/// // The paper's repair adds Z≠0; afterwards odd is still inexpressible
/// // but the nonzero hull is.
/// let nonzero = u.filter(|s| s[0] != 0);
/// dom.add_point(nonzero.clone());
/// assert!(dom.is_expressible(&nonzero));
/// assert_eq!(dom.close(&odd), u.filter(|s| s[0] != 0 && s[0].abs() <= 7));
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct EnumDomain {
    universe: Universe,
    base: Arc<Base>,
    /// Memoized base closure `c ↦ A(c)`; values hash-consed via `interner`.
    memo: MemoTable<StateSet, Arc<StateSet>>,
    interner: Interner<StateSet>,
    points: Vec<StateSet>,
    /// Memoized whole-term abstract images `⟦r⟧♯_{A⊞N}(a)` for *this*
    /// point list, keyed by [`AbsImageKey`]. Shared by clones (same `N` ⇒
    /// same images); replaced wholesale the moment the point list grows,
    /// since every image depends on `N`.
    absmemo: MemoTable<AbsImageKey, StateSet>,
}

impl fmt::Debug for EnumDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EnumDomain")
            .field("base", &self.base.name)
            .field("points", &self.points.len())
            .finish()
    }
}

impl fmt::Display for EnumDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ⊞ {} points", self.base.name, self.points.len())
    }
}

impl EnumDomain {
    /// Wraps a symbolic abstraction (any [`Abstraction`] from
    /// `air-domains`) as an enumerated closure over `universe`.
    pub fn from_abstraction<A: Abstraction + Send + Sync + 'static>(
        universe: &Universe,
        abs: A,
    ) -> EnumDomain {
        let u1 = universe.clone();
        let u2 = universe.clone();
        let abs = Arc::new(abs);
        let abs2 = Arc::clone(&abs);
        let name = abs.name().to_owned();
        EnumDomain {
            universe: universe.clone(),
            base: Arc::new(Base {
                name,
                close: Box::new(move |c| abs.closure_set(&u1, c)),
                widen: Some(Box::new(move |x, y| {
                    let ax = abs2.alpha_set(&u2, x);
                    let ay = abs2.alpha_set(&u2, y);
                    abs2.gamma_set(&u2, &abs2.widen(&ax, &ay))
                })),
            }),
            memo: MemoTable::new(),
            interner: Interner::new(),
            points: Vec::new(),
            absmemo: MemoTable::new(),
        }
    }

    /// Builds a domain from an explicit finite family of abstract elements
    /// (meets are taken lazily; `Σ` itself is always a member). Used for
    /// the paper's toy domains, e.g. `A = {ℤ, [0,4], [1,3]}` of
    /// Example 4.6.
    pub fn from_family<I>(universe: &Universe, name: &str, members: I) -> EnumDomain
    where
        I: IntoIterator<Item = StateSet>,
    {
        let members: Vec<StateSet> = members.into_iter().collect();
        let full = universe.full();
        let name = name.to_owned();
        EnumDomain {
            universe: universe.clone(),
            base: Arc::new(Base {
                name,
                close: Box::new(move |c| {
                    let mut acc = full.clone();
                    for m in &members {
                        if c.is_subset(m) {
                            acc.intersect_with(m);
                        }
                    }
                    acc
                }),
                widen: None,
            }),
            memo: MemoTable::new(),
            interner: Interner::new(),
            points: Vec::new(),
            absmemo: MemoTable::new(),
        }
    }

    /// The trivial domain `{Σ}` (the "don't know" abstraction).
    pub fn trivial(universe: &Universe) -> EnumDomain {
        EnumDomain::from_family(universe, "Triv", [])
    }

    /// The underlying universe.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The base domain's name.
    pub fn base_name(&self) -> &str {
        &self.base.name
    }

    /// The added points `N`, in insertion order.
    pub fn points(&self) -> &[StateSet] {
        &self.points
    }

    /// Number of added points.
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// The base closure `A(c)` (without added points), memoized in a
    /// thread-safe table shared by all clones; results are hash-consed so
    /// the many inputs collapsing to one fixpoint share storage.
    pub fn base_close(&self, c: &StateSet) -> StateSet {
        let mut computed = false;
        let shared = self.memo.get_or_insert_with(c, || {
            computed = true;
            self.interner.intern((self.base.close)(c))
        });
        // Closures are idempotent: `A(A(c)) = A(c)`. Seed the fixpoint as
        // its own key on every fresh computation, so closing an
        // already-closed set — the common case once callers pass
        // `close`d inputs around — hits on first sight instead of
        // keying the table on the pre-image alone.
        if computed && *shared != *c {
            self.memo.insert((*shared).clone(), Arc::clone(&shared));
        }
        (*shared).clone()
    }

    /// Hit/miss/entry counters of the base-closure memo table.
    pub fn cache_stats(&self) -> CacheStats {
        self.memo.stats()
    }

    /// The whole-term abstract-image memo for this exact point list (see
    /// the `absmemo` field). The abstract interpreter checks it at every
    /// term node; anything else should treat it as opaque.
    pub(crate) fn abs_memo(&self) -> &MemoTable<AbsImageKey, StateSet> {
        &self.absmemo
    }

    /// Hit/miss/entry counters of the abstract-image memo.
    pub fn abs_cache_stats(&self) -> CacheStats {
        self.absmemo.stats()
    }

    /// Empties the shared base-closure memo and the hash-consing pool in
    /// place — clones sharing them (e.g. the warm prototype a serve
    /// daemon keeps per universe) all observe the reset. Closure results
    /// are recomputed on the next request; verdicts are unaffected
    /// (memoization only decides *whether* work is redone).
    pub fn clear_caches(&self) {
        self.memo.clear();
        self.interner.clear();
        self.absmemo.clear();
    }

    /// Hit/miss/entry counters of the closure-result hash-consing pool (a
    /// hit means a structurally equal closure result already existed).
    pub fn interner_stats(&self) -> CacheStats {
        self.interner.stats()
    }

    /// Emits `cache_hit`/`cache_miss` events (table `"closure"`) for the
    /// base-closure memo through `tracer`. Shared by all clones of this
    /// domain; the first enabled tracer wins.
    pub fn set_tracer(&self, tracer: &Tracer) {
        self.memo.set_tracer("closure", tracer);
    }

    /// A clone sharing the base closure and points but starting from empty
    /// memo and interner tables — the reference domain for differential
    /// tests (a memo entry gone stale would make the two clones diverge).
    pub fn clone_fresh_caches(&self) -> EnumDomain {
        EnumDomain {
            universe: self.universe.clone(),
            base: Arc::clone(&self.base),
            memo: MemoTable::new(),
            interner: Interner::new(),
            points: self.points.clone(),
            absmemo: MemoTable::new(),
        }
    }

    /// The refined closure `A_N(c) = A(c) ∩ ⋂{p ∈ N | c ⊆ p}`.
    pub fn close(&self, c: &StateSet) -> StateSet {
        let mut acc = self.base_close(c);
        for p in &self.points {
            if c.is_subset(p) {
                acc.intersect_with(p);
            }
        }
        acc
    }

    /// Returns `true` if `c` is expressible: `A_N(c) = c`.
    pub fn is_expressible(&self, c: &StateSet) -> bool {
        self.close(c) == *c
    }

    /// Adds a point (the pointed refinement `A ⊞ {p}`). Returns `false` if
    /// `p` was already expressible (no-op).
    pub fn add_point(&mut self, p: StateSet) -> bool {
        if self.is_expressible(&p) {
            return false;
        }
        self.points.push(p);
        // Every memoized abstract image was computed in the old `N`;
        // detach from the shared table rather than poison the siblings.
        self.absmemo = MemoTable::new();
        true
    }

    /// Adds every point in `ps`; returns how many actually refined the
    /// domain.
    pub fn add_points<I: IntoIterator<Item = StateSet>>(&mut self, ps: I) -> usize {
        ps.into_iter().filter(|p| self.add_point(p.clone())).count()
    }

    /// A fresh domain with one more point (`self` unchanged).
    pub fn with_point(&self, p: StateSet) -> EnumDomain {
        let mut d = self.clone();
        d.add_point(p);
        d
    }

    /// A fresh domain with the given extra points.
    pub fn with_points<I: IntoIterator<Item = StateSet>>(&self, ps: I) -> EnumDomain {
        let mut d = self.clone();
        d.add_points(ps);
        d
    }

    /// Abstract join `x ∨_{A_N} y = A_N(x ∪ y)` of expressible elements.
    pub fn join(&self, x: &StateSet, y: &StateSet) -> StateSet {
        self.close(&x.union(y))
    }

    /// The base widening `γ(α(x) ∇ α(y))` if the base domain provides one,
    /// else the closed union.
    pub fn base_widen(&self, x: &StateSet, y: &StateSet) -> StateSet {
        match &self.base.widen {
            Some(w) => w(x, y),
            None => self.join(x, y),
        }
    }

    /// The pointed widening `∇_N` of Definition 7.11:
    /// `x ∇_N y = ⋀{z ∈ N ∪ {A(x) ∇_A A(y)} | x, y ≤ z}`.
    pub fn pointed_widen(&self, x: &StateSet, y: &StateSet) -> StateSet {
        let mut acc = self.base_widen(x, y);
        for p in &self.points {
            if x.is_subset(p) && y.is_subset(p) {
                acc.intersect_with(p);
            }
        }
        acc
    }

    /// Counts the members of the full Moore closure `M(γ(A) ∪ N)`
    /// *restricted to closures of subsets actually distinguishable*, by
    /// enumerating `A_N(c)` over the given probe sets. Used by the
    /// shell-growth experiment; exact domain cardinality is exponential.
    pub fn distinct_closures<'a, I>(&self, probes: I) -> usize
    where
        I: IntoIterator<Item = &'a StateSet>,
    {
        let mut seen = std::collections::HashSet::new();
        for c in probes {
            seen.insert(self.close(c));
        }
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use air_domains::{IntervalEnv, SignEnv};

    fn universe() -> Universe {
        Universe::new(&[("x", -8, 8)]).unwrap()
    }

    #[test]
    fn base_closure_matches_symbolic_domain() {
        let u = universe();
        let dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
        let s = u.of_values([-2, 5]);
        assert_eq!(dom.close(&s), u.filter(|st| (-2..=5).contains(&st[0])));
        assert!(dom.is_expressible(&u.filter(|st| st[0] >= 0)));
        assert!(!dom.is_expressible(&s));
        assert_eq!(dom.base_name(), "Int");
    }

    #[test]
    fn closure_laws_hold_with_points() {
        let u = universe();
        let mut dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
        dom.add_point(u.filter(|s| s[0] != 0));
        dom.add_point(u.of_values([1, 3, 5]));
        let probes = [
            u.empty(),
            u.full(),
            u.of_values([1, 3]),
            u.of_values([0]),
            u.filter(|s| s[0] > 2),
        ];
        for c in &probes {
            let cc = dom.close(c);
            assert!(c.is_subset(&cc), "extensive");
            assert_eq!(dom.close(&cc), cc, "idempotent");
            for d in &probes {
                if c.is_subset(d) {
                    assert!(dom.close(c).is_subset(&dom.close(d)), "monotone");
                }
            }
        }
    }

    #[test]
    fn pointed_refinement_formula() {
        // A_z(c) = z ∧ A(c) if c ≤ z, else A(c)  (Section 3.1).
        let u = universe();
        let base = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
        let z = u.filter(|s| s[0] != 0);
        let dom = base.with_point(z.clone());
        let c_under = u.of_values([-3, 3]); // ⊆ z
        assert_eq!(dom.close(&c_under), base.close(&c_under).intersection(&z));
        let c_not_under = u.of_values([0, 3]); // ⊄ z
        assert_eq!(dom.close(&c_not_under), base.close(&c_not_under));
    }

    #[test]
    fn add_point_skips_expressible() {
        let u = universe();
        let mut dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
        assert!(!dom.add_point(u.filter(|s| s[0] <= 3))); // an interval already
        assert_eq!(dom.num_points(), 0);
        assert!(dom.add_point(u.of_values([1, 5])));
        assert!(!dom.add_point(u.of_values([1, 5])));
        assert_eq!(dom.num_points(), 1);
    }

    #[test]
    fn from_family_toy_domain_of_example_4_6() {
        // A = {Z, [0,4], [1,3]} over x ∈ [-8, 8].
        let u = universe();
        let dom = EnumDomain::from_family(
            &u,
            "Toy",
            [
                u.filter(|s| (0..=4).contains(&s[0])),
                u.filter(|s| (1..=3).contains(&s[0])),
            ],
        );
        // A({0,2}) = [0,4]
        assert_eq!(
            dom.close(&u.of_values([0, 2])),
            u.filter(|s| (0..=4).contains(&s[0]))
        );
        // A({2}) = [1,3]
        assert_eq!(
            dom.close(&u.of_values([2])),
            u.filter(|s| (1..=3).contains(&s[0]))
        );
        // A({5}) = Z
        assert_eq!(dom.close(&u.of_values([5])), u.full());
    }

    #[test]
    fn trivial_domain_maps_to_top() {
        let u = universe();
        let dom = EnumDomain::trivial(&u);
        assert_eq!(dom.close(&u.of_values([3])), u.full());
        assert_eq!(dom.close(&u.empty()), u.full()); // {Σ} has no ⊥
    }

    #[test]
    fn join_closes_union() {
        let u = universe();
        let dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
        let a = u.of_values([1]);
        let b = u.of_values([4]);
        assert_eq!(dom.join(&a, &b), u.filter(|s| (1..=4).contains(&s[0])));
    }

    #[test]
    fn pointed_widening_respects_points() {
        let u = universe();
        let nonneg = u.filter(|s| s[0] >= 0);
        let dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u)).with_point(nonneg.clone());
        let x = u.filter(|s| (0..=1).contains(&s[0]));
        let y = u.filter(|s| (0..=2).contains(&s[0]));
        let w = dom.pointed_widen(&x, &y);
        // Interval widening pushes the bound to the hull top, but the added
        // point ≥0 (above both iterates) caps the result.
        assert!(x.is_subset(&w) && y.is_subset(&w));
        assert!(w.is_subset(&nonneg));
    }

    #[test]
    fn clone_shares_memo_but_not_points() {
        let u = universe();
        let dom = EnumDomain::from_abstraction(&u, SignEnv::new(&u));
        let mut d2 = dom.clone();
        d2.add_point(u.of_values([2, 4]));
        assert_eq!(dom.num_points(), 0);
        assert_eq!(d2.num_points(), 1);
        assert_eq!(
            dom.base_close(&u.of_values([2])),
            d2.base_close(&u.of_values([2]))
        );
    }

    #[test]
    fn enum_domain_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EnumDomain>();
    }

    #[test]
    fn base_close_memo_counts_and_interns() {
        let u = universe();
        let dom = EnumDomain::from_abstraction(&u, SignEnv::new(&u));
        // Two distinct inputs with the same Sign closure (>0).
        let closed = dom.base_close(&u.of_values([1]));
        dom.base_close(&u.of_values([2]));
        dom.base_close(&u.of_values([1])); // memo hit
        let memo = dom.cache_stats();
        // Three entries: the two pre-images plus their (shared) closure
        // result, seeded as its own key by idempotence.
        assert_eq!((memo.hits, memo.misses, memo.entries), (1, 2, 3));
        // The two entries collapse to one interned closure result.
        let pool = dom.interner_stats();
        assert_eq!((pool.hits, pool.entries), (1, 1));
        // Closing an already-closed set hits on first sight.
        dom.base_close(&closed);
        assert_eq!(dom.cache_stats().hits, 2);
    }

    #[test]
    fn distinct_closures_counts() {
        let u = universe();
        let dom = EnumDomain::from_abstraction(&u, SignEnv::new(&u));
        let probes = [u.of_values([1]), u.of_values([2]), u.of_values([-1])];
        assert_eq!(dom.distinct_closures(probes.iter()), 2); // >0 twice, <0 once
    }
}
