//! The paper's Section 2 illustrative example: triangular numbers.
//!
//! `c = i := 1; j := 0; while (i ≤ 5) do { j := j + i; i := i + 1 }`
//! computes `j = T₅ = 15`. The goal is `Spec = (j ≤ 15)`. Neither `Int`
//! nor `Oct` proves it directly; backward repair (Example 7.13) refines
//! `Int` with a handful of points — including the *relational* invariant
//! `j ≤ T_{i−1}` that no nonrelational domain can express — and the spec
//! is proved.
//!
//! Run with `cargo run --example triangular`.

use air::core::summarize::display_set;
use air::core::{AbstractSemantics, EnumDomain, Verifier};
use air::domains::{IntervalEnv, OctagonDomain};
use air::lang::{parse_program, Universe};

fn triangular(k: i64) -> i64 {
    k * (k + 1) / 2
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let universe = Universe::new(&[("i", 0, 8), ("j", 0, 24)])?;
    let prog = parse_program("i := 1; j := 0; while (i <= 5) do { j := j + i; i := i + 1 }")?;
    let spec = universe.filter(|s| s[1] <= 15);

    println!("program: {prog}");
    println!("spec:    j <= 15\n");

    let asem = AbstractSemantics::new(&universe);

    // 1. Int and Oct both fail to prove the spec.
    for (name, dom) in [
        (
            "Int",
            EnumDomain::from_abstraction(&universe, IntervalEnv::new(&universe)),
        ),
        (
            "Oct",
            EnumDomain::from_abstraction(&universe, OctagonDomain::new(&universe)),
        ),
    ] {
        let out = asem.exec(&dom, &prog, &universe.full())?;
        let proves = out.is_subset(&spec);
        println!(
            "{name} analysis output: {}  -> proves spec: {proves}",
            display_set(&universe, &out)
        );
    }

    // 2. Backward repair on Int proves it.
    let int_domain = EnumDomain::from_abstraction(&universe, IntervalEnv::new(&universe));
    let verifier = Verifier::new(&universe);
    let verdict = verifier.backward(int_domain, &prog, &universe.full(), &spec)?;
    println!("\nbackward repair on Int:\n{}", verdict.report(&universe));
    assert!(verdict.is_proved());

    // The repaired analysis output satisfies the spec — no false alarm —
    // and still covers the concrete result (i = 6, j = 15).
    let repaired = verdict.domain();
    let out = asem.exec(repaired, &prog, &universe.full())?;
    println!("repaired analysis output: {}", display_set(&universe, &out));
    assert!(out.is_subset(&spec));
    assert!(out.contains(universe.store_index(&[6, 15]).expect("in range")));

    // 3. Section 2's generalization: n ∈ [K, K] with Spec = j ≤ T.
    println!("\ngeneralization j ≤ T_K for K = 3..6 (constant boundary K):");
    for k in 3..=6i64 {
        let t_k = triangular(k);
        let u = Universe::new(&[("i", 0, k + 2), ("j", 0, 2 * t_k + 2)])?;
        let p = parse_program(&format!(
            "i := 1; j := 0; while (i <= {k}) do {{ j := j + i; i := i + 1 }}"
        ))?;
        let spec_k = u.filter(|s| s[1] <= t_k);
        let dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
        let v = Verifier::new(&u).backward(dom, &p, &u.full(), &spec_k)?;
        println!(
            "  K = {k}: T_K = {t_k:>2}  -> {}  ({} points added)",
            if v.is_proved() { "PROVED" } else { "refuted" },
            v.added_points().len()
        );
        assert!(v.is_proved());
    }

    // 4. Variable boundary n ∈ [K1, K2] (the paper's last generalization).
    println!("\ngeneralization with variable boundary n ∈ [2, 4], Spec = j ≤ T_4 = 10:");
    let u = Universe::new(&[("n", 0, 5), ("i", 0, 6), ("j", 0, 14)])?;
    let p = parse_program("i := 1; j := 0; while (i <= n) do { j := j + i; i := i + 1 }")?;
    let pre = u.filter(|s| (2..=4).contains(&s[0]));
    let spec_n = u.filter(|s| s[2] <= 10);
    let dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
    let v = Verifier::new(&u).backward(dom, &p, &pre, &spec_n)?;
    println!(
        "  -> {} ({} points added)",
        if v.is_proved() { "PROVED" } else { "refuted" },
        v.added_points().len()
    );
    assert!(v.is_proved());

    println!("\nall Section 2 claims reproduced.");
    Ok(())
}
