//! Section 6: CEGAR as Abstract Interpretation Repair.
//!
//! The same program property is model-checked with three refinement
//! heuristics — the classic CEGAR split, the forward-AIR pointed shell
//! (Theorem 6.2) and the backward-AIR `V_k` split (Theorem 6.4) — and the
//! run statistics are compared. Backward repair leaves no residual
//! spurious path along a counterexample (Fig. 3), so it typically proves
//! safety in the fewest iterations.
//!
//! Run with `cargo run --example cegar`.

use air::cegar::driver::{Cegar, CegarResult, Heuristic};
use air::cegar::moore::{MooreAbstraction, MooreCegar};
use air::cegar::partition::Partition;
use air::cegar::program_ts::ProgramTs;
use air::lang::{parse_program, Universe};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // AbsVal once more, now as a reachability property: from odd inputs,
    // can the program exit with x = 0?
    let universe = Universe::new(&[("x", -6, 6)])?;
    let prog = parse_program("if (x >= 0) then { skip } else { x := 0 - x }")?;
    let pts = ProgramTs::compile(&universe, &prog)?;
    let odd = universe.filter(|s| s[0] % 2 != 0);
    let spec = universe.filter(|s| s[0] != 0);
    let init = pts.init_states(&odd);
    let bad = pts.bad_states(&spec);

    println!("program:   {prog}");
    println!(
        "TS size:   {} states, {} transitions",
        pts.ts().num_states(),
        pts.ts().num_edges()
    );
    println!("property:  exit with x = 0 unreachable from odd inputs\n");

    // Initial abstraction: predicate "control location" only — the
    // standard starting point of software model checking.
    let loc = Partition::from_key(pts.ts().num_states(), |s| pts.location_of(s));

    println!(
        "{:<14} {:>10} {:>12} {:>8} {:>13}",
        "heuristic", "iterations", "refinements", "splits", "final blocks"
    );
    for h in Heuristic::ALL {
        let res = Cegar::new(pts.ts(), &init, &bad, h)
            .initial_partition(loc.clone())
            .run()?;
        let s = res.stats();
        println!(
            "{:<14} {:>10} {:>12} {:>8} {:>13}",
            h.label(),
            s.iterations,
            s.refinements,
            s.splits,
            s.final_blocks
        );
        assert!(res.is_safe(), "{} must prove safety", h.label());
    }

    // Beyond partitions: the same property via a Moore-family abstraction
    // (arbitrary closure on ℘(Σ)) starting from the trivial domain {Σ} —
    // the generality Section 6 claims over early abstract model checking.
    let moore = MooreCegar::new(
        pts.ts(),
        &init,
        &bad,
        MooreAbstraction::trivial(pts.ts().num_states()),
    )
    .run()?;
    let ms = moore.stats();
    println!(
        "\nMoore-family run (no partitions): safe = {}, rounds = {}, points added = {}",
        moore.is_safe(),
        ms.rounds,
        ms.points_added
    );
    assert!(moore.is_safe());

    // A buggy variant is refuted with a concrete counterexample.
    println!("\nbuggy variant (skips the negation):");
    let buggy = parse_program("if (x > 0) then { skip } else { skip }")?;
    let pts2 = ProgramTs::compile(&universe, &buggy)?;
    let init2 = pts2.init_states(&universe.filter(|s| s[0] % 2 == 0));
    let bad2 = pts2.bad_states(&spec);
    let res = Cegar::new(pts2.ts(), &init2, &bad2, Heuristic::BackwardAir).run()?;
    match res {
        CegarResult::Unsafe { path, stats, .. } => {
            println!(
                "  UNSAFE in {} iterations; concrete counterexample of length {}",
                stats.iterations,
                path.len()
            );
        }
        CegarResult::Safe { .. } => panic!("the buggy variant must be unsafe"),
    }

    println!("\nCEGAR-as-AIR demo complete.");
    Ok(())
}
