//! LCL_A derivations with on-demand repair (Section 9's proposal).
//!
//! The local completeness logic of [8] derives triples `⊢_A [P] r [Q]`
//! certifying `Q ≤ ⟦r⟧P ≤ A(Q)`: every alarm in `Q` is true, and a spec
//! expressible in `A` holds iff `Q ≤ Spec`. Derivations get stuck on
//! violated local completeness obligations; AIR repairs the domain and
//! resumes — turning the logic into a push-button prover over the
//! enumerative engine.
//!
//! Run with `cargo run --example lcl_proof`.

use air::core::lcl::Lcl;
use air::core::summarize::display_set;
use air::core::EnumDomain;
use air::domains::product::Product;
use air::domains::{IntervalEnv, ParityEnv};
use air::lang::{parse_program, Universe};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let u = Universe::new(&[("x", -8, 8)])?;
    let lcl = Lcl::new(&u);
    let prog = parse_program("if (x >= 0) then { skip } else { x := 0 - x }")?;
    let odd = u.filter(|s| s[0] % 2 != 0);

    // 1. On plain Int the derivation gets stuck on the guard obligation.
    let int_dom = EnumDomain::from_abstraction(&u, IntervalEnv::new(&u));
    match lcl.derive(&int_dom, &odd, &prog) {
        Err(e) => println!("Int derivation stuck: {e}"),
        Ok(_) => unreachable!("Int is locally incomplete here"),
    }

    // 2. derive_with_repair settles the obligation with a pointed shell.
    let (derivation, repaired) = lcl.derive_with_repair(int_dom, &odd, &prog)?;
    println!(
        "\nrepaired with {} point(s); derivation ({} rules):\n",
        repaired.num_points(),
        derivation.size()
    );
    print!("{}", derivation.render(&u));
    println!(
        "\nQ = {}   (0 is excluded: the alarm was false)",
        display_set(&u, &derivation.triple().post)
    );
    assert!(lcl.check(&repaired, &derivation).is_ok());

    // 3. A domain that already expresses the input needs no repair: the
    //    reduced product Int ⊗ Parity.
    let prod = Product::reduced_interval(IntervalEnv::new(&u), ParityEnv::new(&u));
    let prod_dom = EnumDomain::from_abstraction(&u, prod);
    let direct = lcl.derive(&prod_dom, &odd, &prog)?;
    println!(
        "\nInt⊗Par derives directly ({} rules), no repair needed.",
        direct.size()
    );

    Ok(())
}
