//! Example 7.8: the countdown loop needs relational information.
//!
//! `c = while (x > 0) do { x := x − 1; y := y − 1 }` with input
//! `0 < x ≤ K` and `Spec = (y = 0)`. Neither `Int` nor `Oct` proves or
//! refutes the spec. Backward repair characterizes the *greatest valid
//! input* — exactly `y = x` — adding the relational points `P̄, R₁…R₃` to
//! the nonrelational interval domain (paper: "backward repair is able to
//! add the minimal relational information in a nonrelational domain").
//!
//! Run with `cargo run --example countdown`.

use air::core::summarize::display_set;
use air::core::{BackwardRepair, EnumDomain, Verifier};
use air::domains::{IntervalEnv, OctagonDomain};
use air::lang::{parse_program, Concrete, Universe};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Scaled-down bounds (the paper uses K = 100); y has headroom below so
    // no run from the analyzed inputs is truncated by the finite universe.
    let k = 6;
    let universe = Universe::new(&[("x", -2, 8), ("y", -10, 8)])?;
    let prog = parse_program("while (x > 0) do { x := x - 1; y := y - 1 }")?;
    let pre = universe.filter(|s| s[0] > 0 && s[0] <= k && s[1] >= -2);
    let spec = universe.filter(|s| s[1] == 0);

    println!("program: {prog}");
    println!("input P: 0 < x <= {k} ∧ y >= -2");
    println!("spec:    y = 0\n");

    // 1. Backward repair on Int.
    let int_domain = EnumDomain::from_abstraction(&universe, IntervalEnv::new(&universe));
    let out = BackwardRepair::new(&universe).repair(&int_domain, &pre, &prog, &spec)?;
    println!(
        "greatest valid input V = {}",
        display_set(&universe, &out.valid_input)
    );
    println!("points added: {}", out.points.len());
    for (i, p) in out.points.iter().enumerate().take(4) {
        println!("  N{} = {}", i + 1, display_set(&universe, p));
    }

    // V is exactly the diagonal y = x within A(P).
    let diagonal = universe.filter(|s| (1..=k).contains(&s[0]) && s[1] == s[0]);
    assert_eq!(out.valid_input, diagonal);

    // 2. Corollary 7.7 in action: decide three sub-inputs instantly.
    let sem = Concrete::new(&universe);
    println!("\nCorollary 7.7 — deciding sub-inputs against V:");
    for (desc, p_prime) in [
        ("x = 3 ∧ y = 3", universe.filter(|s| s[0] == 3 && s[1] == 3)),
        ("x = 3 ∧ y = 4", universe.filter(|s| s[0] == 3 && s[1] == 4)),
        (
            "1 ≤ x ≤ 4 ∧ y = x",
            universe.filter(|s| (1..=4).contains(&s[0]) && s[1] == s[0]),
        ),
    ] {
        let decided = p_prime.is_subset(&out.valid_input);
        let concrete = sem.exec(&prog, &p_prime)?.is_subset(&spec);
        println!("  {desc}: decided {decided}, concrete {concrete}");
        assert_eq!(decided, concrete);
    }

    // 3. The paper's closing remark: all the new points are octagons, so
    //    the Oct analysis on the repaired input V also proves the spec.
    let oct_domain = EnumDomain::from_abstraction(&universe, OctagonDomain::new(&universe));
    let verdict = Verifier::new(&universe).backward(oct_domain, &prog, &diagonal, &spec)?;
    println!(
        "\nOct on input V (= R1): {} with {} extra points",
        if verdict.is_proved() {
            "PROVED"
        } else {
            "refuted"
        },
        verdict.added_points().len()
    );
    assert!(verdict.is_proved());

    println!("\nExample 7.8 reproduced: minimal relational repair of Int.");
    Ok(())
}
