//! Example 7.9: predicate abstraction repaired more abstractly than the
//! Boolean completion.
//!
//! For the do-while program of Ball–Podelski–Rajamani and the Cartesian
//! predicate abstraction over `p = (z = 0)`, `q = (x = y)`:
//!
//! - the literature's refinement is the *Boolean completion* `B`, which
//!   behaves like adding `p ↔ q`;
//! - backward repair instead adds the strictly more abstract point
//!   `q → p`, and the repaired analysis proves `⟦c⟧⊤ ≤ p`.
//!
//! Run with `cargo run --example predicates`.

use air::core::summarize::display_set;
use air::core::{AbstractSemantics, BackwardRepair, EnumDomain};
use air::domains::{BooleanPredicateDomain, PredicateDomain};
use air::lang::{parse_bexp, parse_program, Universe};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Variables: w (branch selector), x, y, z. Small ranges keep the
    // universe compact; the predicates only compare x=y and z=0.
    let universe = Universe::new(&[("w", 0, 1), ("x", 0, 3), ("y", 0, 2), ("z", 0, 1)])?;
    let prog = parse_program(
        "do { z := 0; x := y; if (w != 0) then { x := x + 1; z := 1 } } while (x != y)",
    )?;
    let p = parse_bexp("z = 0")?;
    let q = parse_bexp("x = y")?;
    println!("program: {prog}\n");

    let spec = universe.filter(|s| s[3] == 0); // p = (z = 0)

    // 1. The Cartesian predicate abstraction cannot prove ⟦c⟧⊤ ≤ p.
    let cart = PredicateDomain::new(&universe, vec![("p", p.clone()), ("q", q.clone())]);
    let cart_dom = EnumDomain::from_abstraction(&universe, cart);
    let asem = AbstractSemantics::new(&universe);
    let out = asem.exec(&cart_dom, &prog, &universe.full())?;
    println!(
        "Cartesian analysis output: {}",
        display_set(&universe, &out)
    );
    println!("  proves z = 0: {}\n", out.is_subset(&spec));
    assert!(!out.is_subset(&spec));

    // 2. The Boolean completion B proves it, at the cost of tracking all
    //    minterms (isomorphic to adding p ↔ q).
    let boolean = BooleanPredicateDomain::new(&universe, vec![p.clone(), q.clone()]);
    let bool_dom = EnumDomain::from_abstraction(&universe, boolean);
    let out_b = asem.exec(&bool_dom, &prog, &universe.full())?;
    println!(
        "Boolean-completion output: {}",
        display_set(&universe, &out_b)
    );
    println!("  proves z = 0: {}\n", out_b.is_subset(&spec));
    assert!(out_b.is_subset(&spec));

    // 3. Backward repair of the Cartesian domain adds q → p — strictly
    //    more abstract than p ↔ q — and proves the spec.
    let out_r = BackwardRepair::new(&universe).repair(&cart_dom, &universe.full(), &prog, &spec)?;
    println!("backward repair added {} point(s):", out_r.points.len());
    for (i, pt) in out_r.points.iter().enumerate() {
        println!("  N{} = {}", i + 1, display_set(&universe, pt));
    }
    assert_eq!(
        universe.full(),
        out_r.valid_input,
        "⟦c⟧⊤ ≤ p must be proved"
    );

    // The key point is q → p, i.e. ¬q ∨ p as a state set.
    let sem = air::lang::Concrete::new(&universe);
    let sat_p = sem.sat(&p)?;
    let sat_q = sem.sat(&q)?;
    let q_implies_p = sat_q.complement().union(&sat_p);
    let p_iff_q = sat_p
        .intersection(&sat_q)
        .union(&sat_p.complement().intersection(&sat_q.complement()));
    let repaired = out_r.domain(&cart_dom);
    assert!(
        repaired.is_expressible(&q_implies_p),
        "q → p must be expressible after repair"
    );
    // q → p is strictly more abstract than p ↔ q.
    assert!(p_iff_q.is_subset(&q_implies_p) && p_iff_q != q_implies_p);
    println!("\nq → p is expressible in the repaired domain and strictly");
    println!("more abstract than the Boolean completion's p ↔ q.");

    // 4. The repaired Cartesian analysis proves the spec.
    let out_fixed = asem.exec(&repaired, &prog, &universe.full())?;
    println!(
        "\nrepaired analysis output: {}",
        display_set(&universe, &out_fixed)
    );
    assert!(out_fixed.is_subset(&spec));
    println!("Example 7.9 reproduced.");
    Ok(())
}
