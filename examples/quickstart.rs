//! Quickstart: the paper's introductory example, end to end.
//!
//! `AbsVal(x) = if (x ≥ 0) then skip else x := −x` on odd inputs never
//! returns 0, but the interval analysis reports `[0, +hull]` — a
//! division-by-zero false alarm. Abstract Interpretation Repair refines
//! `Int` with the single point `Z≠0` and the alarm disappears.
//!
//! Run with `cargo run --example quickstart`.

use air::core::summarize::display_set;
use air::core::{AbstractSemantics, EnumDomain, Verifier};
use air::domains::IntervalEnv;
use air::lang::{parse_program, Universe};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let universe = Universe::new(&[("x", -8, 8)])?;
    let prog = parse_program("if (x >= 0) then { skip } else { x := 0 - x }")?;
    let odd = universe.filter(|s| s[0] % 2 != 0);
    let spec = universe.filter(|s| s[0] != 0);

    println!("program:  {prog}");
    println!("input I:  {}", display_set(&universe, &odd));
    println!("spec:     x != 0\n");

    // 1. The plain interval analysis raises a false alarm.
    let int_domain = EnumDomain::from_abstraction(&universe, IntervalEnv::new(&universe));
    let asem = AbstractSemantics::new(&universe);
    let plain = asem.exec(&int_domain, &prog, &int_domain.close(&odd))?;
    println!(
        "Int analysis output:      {}",
        display_set(&universe, &plain)
    );
    println!(
        "  -> contains 0: {} (FALSE ALARM: no odd input maps to 0)\n",
        plain.contains(universe.store_index(&[0]).expect("0 in range"))
    );

    // 2. Backward repair proves the spec by adding one point.
    let verifier = Verifier::new(&universe);
    let verdict = verifier.backward(int_domain.clone(), &prog, &odd, &spec)?;
    println!("backward repair: {}", verdict.report(&universe));

    // 3. The repaired analysis has no false alarm.
    let repaired = verdict.domain();
    let fixed = asem.exec(repaired, &prog, &repaired.close(&odd))?;
    println!(
        "repaired analysis output: {}",
        display_set(&universe, &fixed)
    );
    assert!(verdict.is_proved());
    assert!(!fixed.contains(universe.store_index(&[0]).expect("0 in range")));

    // 4. Forward repair reaches the same verdict (Example 7.2).
    let verdict_f = verifier.forward(int_domain, &prog, &odd, &spec)?;
    println!("\nforward repair:  {}", verdict_f.report(&universe));
    assert!(verdict_f.is_proved());

    println!("both strategies prove x != 0 — the false alarm is repaired.");
    Ok(())
}
